"""Table 4 — Libra replication factor vs partition count.

Paper values (average clones per vertex):
    Reddit:        1.75 2.94 4.66 6.93            (2..16)
    OGBN-Products: 1.49 2.16 2.98 3.90 4.85 5.74  (2..64)
    Proteins:      1.33 1.65 1.91 2.11 2.27 2.37  (2..64)
    OGBN-Papers:   4.63 5.63 6.62                 (32..128)

Contract: same ordering (Reddit worst, Proteins best) and the same
concave growth with partition count.
"""

import pytest
from bench_utils import emit, table

from repro.partition import build_partitions, libra_partition, partition_stats

PAPER = {
    "reddit": {2: 1.75, 4: 2.94, 8: 4.66, 16: 6.93},
    "ogbn-products": {2: 1.49, 4: 2.16, 8: 2.98, 16: 3.90, 32: 4.85, 64: 5.74},
    "proteins": {2: 1.33, 4: 1.65, 8: 1.91, 16: 2.11, 32: 2.27, 64: 2.37},
    "ogbn-papers": {32: 4.63, 64: 5.63, 128: 6.62},
}


def _measure(ds, counts):
    out = {}
    for p in counts:
        asn = libra_partition(ds.graph, p, seed=0)
        st = partition_stats(build_partitions(ds.graph, asn, p))
        out[p] = (st.replication_factor, st.edge_balance)
    return out


def test_table4_replication_factor(
    reddit_bench, products_bench, proteins_bench, papers_bench, benchmark
):
    datasets = {
        "reddit": (reddit_bench, (2, 4, 8, 16)),
        "ogbn-products": (products_bench, (2, 4, 8, 16, 32)),
        "proteins": (proteins_bench, (2, 4, 8, 16, 32)),
        "ogbn-papers": (papers_bench, (32, 64, 128)),
    }
    rows = []
    measured = {}
    for name, (ds, counts) in datasets.items():
        m = _measure(ds, counts)
        measured[name] = {p: rf for p, (rf, _) in m.items()}
        for p in counts:
            rf, bal = m[p]
            rows.append([name, p, PAPER[name].get(p, "-"), round(rf, 2), round(bal, 3)])
    lines = table(
        ["dataset", "#partitions", "paper_rf", "measured_rf", "edge_balance"], rows
    )
    emit("table4_replication", lines)

    # contracts
    for name, vals in measured.items():
        ps = sorted(vals)
        for a, b in zip(ps, ps[1:]):
            assert vals[a] < vals[b], f"{name}: rf must grow with partitions"
    common = 8
    assert (
        measured["proteins"][common]
        < measured["ogbn-products"][common]
        < measured["reddit"][common]
    ), "Proteins best, Reddit worst (paper ordering)"

    benchmark(libra_partition, proteins_bench.graph, 8, 0)
