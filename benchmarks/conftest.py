"""Benchmark fixtures: medium-scale stand-in datasets, session-cached."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro.graph.datasets import load_dataset


@pytest.fixture(scope="session")
def reddit_bench():
    return load_dataset("reddit", scale=0.35, seed=0)


@pytest.fixture(scope="session")
def products_bench():
    return load_dataset("ogbn-products", scale=0.3, seed=0)


@pytest.fixture(scope="session")
def proteins_bench():
    return load_dataset("proteins", scale=0.25, seed=0)


@pytest.fixture(scope="session")
def papers_bench():
    return load_dataset("ogbn-papers", scale=0.2, seed=0)


@pytest.fixture(scope="session")
def am_bench():
    return load_dataset("am", scale=0.3, seed=0)
