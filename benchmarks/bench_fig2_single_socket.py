"""Fig. 2 — single-socket per-epoch Total and AP time, baseline DGL vs
optimized, on the four single-socket workloads.

The paper reports up to 3.66x total / 4.41x AP speedup from its C++
optimizations.  Our "baseline DGL" is the Alg.-1 per-destination kernel
(:mod:`repro.kernels.baseline`); the optimized path is the auto-dispatched
vectorized segment-reduce engine (bucketed above the cache threshold).
Baseline total time is reconstructed as
``total_opt - AP_opt + AP_baseline`` (the optimizations only touch the AP).
"""

import time

import numpy as np
import pytest
from bench_utils import emit, table

from repro.core import Trainer, TrainConfig
from repro.kernels import aggregate
from repro.kernels.instrumentation import AP_TIMER
from repro.nn import RGCN, Tensor, masked_cross_entropy
from repro.nn.rgcn import relation_norms


def _epoch_times(ds, num_layers, hidden, epochs=3):
    cfg = TrainConfig(
        num_layers=num_layers,
        hidden_features=hidden,
        learning_rate=0.01,
        eval_every=0,
        seed=0,
    )
    trainer = Trainer(ds, cfg)
    res = trainer.fit(num_epochs=epochs)
    return res.avg_epoch_time_s, res.avg_ap_time_s


def _baseline_ap_time(ds, reps=1):
    t0 = time.perf_counter()
    for _ in range(reps):
        aggregate(ds.graph, ds.features, kernel="baseline")
    return (time.perf_counter() - t0) / reps


def _rgcn_epoch(ds):
    model = RGCN(ds.feature_dim, 16, ds.num_classes, sorted(ds.relations), seed=0)
    norms = relation_norms(ds.relations)
    x = Tensor(ds.features)
    AP_TIMER.reset()
    t0 = time.perf_counter()
    out = model(ds.relations, x, norms)
    loss = masked_cross_entropy(out, ds.labels, ds.train_mask)
    loss.backward()
    total = time.perf_counter() - t0
    return total, AP_TIMER.elapsed_s


def test_fig2_total_vs_ap(
    reddit_bench, products_bench, proteins_bench, am_bench, benchmark
):
    rows = []
    for name, ds, layers, hidden in [
        ("reddit (GraphSAGE)", reddit_bench, 2, 16),
        ("ogbn-products (GraphSAGE)", products_bench, 3, 64),
        ("proteins (GraphSAGE)", proteins_bench, 3, 64),
    ]:
        total_opt, ap_opt = _epoch_times(ds, layers, hidden)
        # scale per-pass baseline AP cost to the number of AP invocations
        ap_calls_per_epoch = 2 * layers - 1  # forward L + backward L-1
        ap_base = _baseline_ap_time(ds) * ap_calls_per_epoch
        total_base = total_opt - ap_opt + ap_base
        rows.append(
            [
                name,
                round(total_base, 3),
                round(ap_base, 3),
                round(total_opt, 3),
                round(ap_opt, 3),
                round(total_base / total_opt, 2),
                round(ap_base / ap_opt, 2),
            ]
        )
    # R-GCN on AM (Fig. 2d): optimized epoch, baseline AP scaled per relation
    total_opt, ap_opt = _rgcn_epoch(am_bench)
    ap_base = sum(
        _baseline_ap_time_rel(am_bench, rel) for rel in am_bench.relations
    ) * 3  # 2 layers fwd + 1 bwd
    total_base = total_opt - ap_opt + ap_base
    rows.append(
        [
            "am (RGCN-hetero)",
            round(total_base, 3),
            round(ap_base, 3),
            round(total_opt, 3),
            round(ap_opt, 3),
            round(total_base / total_opt, 2),
            round(ap_base / max(ap_opt, 1e-9), 2),
        ]
    )
    lines = table(
        [
            "workload",
            "base_total_s",
            "base_AP_s",
            "opt_total_s",
            "opt_AP_s",
            "total_speedup",
            "AP_speedup",
        ],
        rows,
    )
    lines.append("")
    lines.append("paper: total speedups 3.66x (Reddit), 1.95x (Products); AP up to 4.41x")
    lines.append("(python-loop baseline inflates our ratios; ordering/shape is the contract)")
    emit("fig2_single_socket", lines)

    benchmark(aggregate, reddit_bench.graph, reddit_bench.features, kernel="auto")


def _baseline_ap_time_rel(ds, rel):
    t0 = time.perf_counter()
    aggregate(ds.relations[rel], ds.features, kernel="baseline")
    return time.perf_counter() - t0


def test_fig2_kernel_speedup_bench(reddit_bench, benchmark):
    """pytest-benchmark timing of the optimized AP on the Reddit stand-in."""
    result = benchmark(
        aggregate, reddit_bench.graph, reddit_bench.features, kernel="auto"
    )
    assert result.shape == reddit_bench.features.shape
