"""Feature-store hit rates + out-of-core cost -> ``BENCH_featurestore.json``.

The repo's fourth perf-trajectory file (next to kernels / serving /
streaming): validates the cachesim-driven hot-set cache of
:mod:`repro.featurestore` against live traffic and prices the mmap cold
tier against the fully-resident default.

Two series (schema v1):

- ``hit_rate`` — measured hot-set hit rate vs the cache simulator's
  prediction across (access pattern x hot fraction x policy) cells.
  Patterns are the three real consumers: ``minibatch`` (neighbor-sampled
  input frontiers), ``refresh`` (k-hop affected sets of random feature
  updates, the incremental-refresh read pattern), and ``precompute``
  (the full sequential scan).  Predictions are made on a *held-out*
  trace drawn from the same access process with an independent seed —
  static from the pinned set's frequency mass, LRU from the exact
  :class:`~repro.cachesim.lru.LRUFeatureCache` replay — so
  ``within_tolerance`` bounds sampling noise, not leakage.
- ``end_to_end`` — full-batch epoch time and serving predict latency,
  resident vs mmap+hotset, at ``--e2e-scale`` (~4x the serving bench's
  default graph), with slowdown ratios and bit-identical parity flags.

Usage::

    python benchmarks/bench_featurestore.py           # full baseline
    python benchmarks/bench_featurestore.py --smoke   # CI schema check
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_utils import emit, emit_json, table  # noqa: E402

from repro.core import TrainConfig, Trainer, save_checkpoint  # noqa: E402
from repro.core.checkpoint import training_meta  # noqa: E402
from repro.featurestore import (  # noqa: E402
    FeatureStore,
    predict_lru_hit_rate,
    top_rows_by_weight,
    write_feature_layout,
)
from repro.featurestore.hotset import PREDICTION_TOLERANCE  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.sampling import NeighborSampler  # noqa: E402
from repro.serving import InferenceEngine  # noqa: E402

SCHEMA_VERSION = 1

#: gather granularity when replaying a trace through the store — matches
#: the batch sizes the real consumers use; hit counting is
#: order-preserving, so the rate is chunk-size independent.
CHUNK = 512


# -- access-pattern traces ---------------------------------------------------------


def _minibatch_trace(ds, rng, target: int) -> np.ndarray:
    """Input frontiers of neighbor-sampled batches (the sampler path)."""
    sampler = NeighborSampler(ds.graph, [10, 10], seed=int(rng.integers(2**31)))
    train = np.flatnonzero(ds.train_mask)
    parts = []
    total = 0
    while total < target:
        order = rng.permutation(train)
        for lo in range(0, order.size, 256):
            seeds = order[lo : lo + 256]
            if seeds.size == 0:
                continue
            batch = sampler.sample(seeds)
            parts.append(batch.input_vertices)
            total += batch.input_vertices.size
            if total >= target:
                break
    return np.concatenate(parts)


def _refresh_trace(ds, rng, target: int, changed_per_round: int = 32) -> np.ndarray:
    """K-hop affected-set reads: each round feature-updates a random
    vertex set; the incremental refresh then re-reads the features of
    the 2-hop in-neighborhoods it must recompute."""
    g = ds.graph
    indptr, indices = g.indptr, g.indices
    parts = []
    total = 0
    while total < target:
        frontier = rng.integers(0, ds.num_vertices, size=changed_per_round)
        touched = [frontier]
        for _hop in range(2):
            nbrs = np.concatenate(
                [indices[indptr[v] : indptr[v + 1]] for v in frontier]
                or [np.zeros(0, dtype=indices.dtype)]
            )
            if nbrs.size == 0:
                break
            frontier = np.unique(nbrs)
            touched.append(frontier)
        reads = np.concatenate(touched)
        parts.append(reads)
        total += reads.size
    return np.concatenate(parts)


def _precompute_trace(ds, rng, target: int) -> np.ndarray:
    """The full-matrix sequential scan (deterministic: rng unused)."""
    del rng, target
    return np.arange(ds.num_vertices, dtype=np.int64)


PATTERNS = {
    "minibatch": _minibatch_trace,
    "refresh": _refresh_trace,
    "precompute": _precompute_trace,
}


# -- hit-rate cells ----------------------------------------------------------------


def _measure_hit_rate(layout_dir, degrees, policy, hot_fraction, trace) -> dict:
    """Replay ``trace`` through a fresh store; counters start after the
    warm-up pin so only steady-state traffic is measured."""
    store = FeatureStore.open(
        layout_dir, hot_fraction=hot_fraction, policy=policy, degrees=degrees
    )
    assert store.hot is not None
    store.hot.reset_counters()
    store.cold_rows_read = 0
    for lo in range(0, trace.size, CHUNK):
        store.gather(trace[lo : lo + CHUNK])
    return {
        "capacity": store.hot.capacity,
        "measured_hit_rate": store.hot.hit_rate,
        "accesses": store.hot.lookups,
        "cold_rows_read": store.cold_rows_read,
        "evictions": store.hot.evictions,
        "decision": store.decision.to_json(),
    }


def _predict_hit_rate(policy, degrees, capacity, pred_trace) -> float:
    """Cachesim prediction on the held-out trace: the frequency mass of
    the degree-pinned set (static) or the exact LRU replay."""
    if policy == "static":
        pinned = top_rows_by_weight(degrees, capacity)
        if pred_trace.size == 0:
            return 0.0
        return float(np.isin(pred_trace, pinned).mean())
    return predict_lru_hit_rate(pred_trace, capacity)


def run_hit_rate_series(ds, layout_dir, args) -> list:
    degrees = ds.graph.in_degrees().astype(np.float64)
    rows = []
    for pattern, make_trace in PATTERNS.items():
        live = make_trace(ds, np.random.default_rng(args.seed + 1), args.accesses)
        held_out = make_trace(
            ds, np.random.default_rng(args.seed + 20_001), args.accesses
        )
        for frac in args.hot_fractions:
            capacity = int(round(frac * ds.num_vertices))
            if capacity < 1:
                continue
            for policy in ("static", "lru"):
                measured = _measure_hit_rate(
                    layout_dir, degrees, policy, frac, live
                )
                predicted = _predict_hit_rate(
                    policy, degrees, measured["capacity"], held_out
                )
                err = abs(measured["measured_hit_rate"] - predicted)
                rows.append({
                    "pattern": pattern,
                    "hot_fraction": frac,
                    "policy": policy,
                    "predicted_hit_rate": predicted,
                    "abs_err": err,
                    "within_tolerance": bool(err <= PREDICTION_TOLERANCE),
                    **measured,
                })
                print(
                    f"  {pattern:<10s} hot {frac:4.2f} {policy:<6s}: "
                    f"measured {measured['measured_hit_rate']:.3f} "
                    f"predicted {predicted:.3f} "
                    f"(|err| {err:.3f}, "
                    f"{'ok' if err <= PREDICTION_TOLERANCE else 'MISS'})"
                )
    return rows


# -- end-to-end: resident vs mmap --------------------------------------------------


def _epoch_time(ds, store, epochs: int, seed: int):
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=seed
    )
    trainer = Trainer(ds, cfg, feature_store=store)
    result = trainer.fit(num_epochs=epochs)
    losses = [e.loss for e in result.epochs]
    # steady-state epoch: drop the first (cold page cache / allocator)
    times = [e.total_time_s for e in result.epochs]
    steady = times[1:] or times
    return float(np.mean(steady)), losses, trainer


def _serving_latency(engine, stream, batch: int = 8) -> dict:
    t0 = time.perf_counter()
    precompute_s = None
    engine.precompute()
    precompute_s = time.perf_counter() - t0
    latencies = []
    outputs = []
    for lo in range(0, stream.size, batch):
        ids = stream[lo : lo + batch]
        t1 = time.perf_counter()
        outputs.append(engine.predict(ids))
        latencies.append(time.perf_counter() - t1)
    lat = np.asarray(latencies) * 1e3
    return {
        "precompute_s": precompute_s,
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
        "_logits": np.concatenate(outputs),
    }


def run_end_to_end(args, tmp) -> dict:
    ds = load_dataset(args.dataset, scale=args.e2e_scale, seed=args.seed)
    layout = os.path.join(tmp, "e2e-features")
    write_feature_layout(layout, ds.features)
    degrees = ds.graph.in_degrees()

    def mmap_store():
        return FeatureStore.open(
            layout, hot_fraction=args.hot_fractions[0],
            policy="static", degrees=degrees,
        )

    res_epoch_s, res_losses, trainer = _epoch_time(
        ds, None, args.train_epochs, args.seed
    )
    mmap_epoch_s, mmap_losses, _ = _epoch_time(
        ds, mmap_store(), args.train_epochs, args.seed
    )

    ckpt = os.path.join(tmp, "e2e.npz")
    cfg = TrainConfig(num_layers=2, hidden_features=16, eval_every=0, seed=args.seed)
    save_checkpoint(
        ckpt, trainer.model, trainer.optimizer,
        epoch=args.train_epochs, extra=training_meta(cfg),
    )
    rng = np.random.default_rng(args.seed + 5)
    stream = rng.integers(0, ds.num_vertices, size=args.serve_requests * 8)

    res_engine = InferenceEngine.from_checkpoint(ckpt, ds)
    res = _serving_latency(res_engine, stream)
    mmap_engine = InferenceEngine.from_checkpoint(
        ckpt, ds, feature_store=mmap_store()
    )
    mm = _serving_latency(mmap_engine, stream)

    predictions_equal = bool(np.array_equal(res.pop("_logits"), mm.pop("_logits")))
    out = {
        "num_vertices": ds.num_vertices,
        "num_edges": ds.num_edges,
        "feature_mb": float(np.asarray(ds.features).nbytes / 1e6),
        "train_epochs": args.train_epochs,
        "resident_epoch_s": res_epoch_s,
        "mmap_epoch_s": mmap_epoch_s,
        "epoch_slowdown": mmap_epoch_s / max(res_epoch_s, 1e-9),
        "losses_equal": bool(res_losses == mmap_losses),
        "serving": {
            "resident": res,
            "mmap": mm,
            "precompute_slowdown": mm["precompute_s"] / max(res["precompute_s"], 1e-9),
            "p99_slowdown": mm["p99_ms"] / max(res["p99_ms"], 1e-9),
            "predictions_equal": predictions_equal,
        },
    }
    print(
        f"  epoch: resident {res_epoch_s:.3f}s  mmap {mmap_epoch_s:.3f}s "
        f"({out['epoch_slowdown']:.2f}x)  losses equal: {out['losses_equal']}"
    )
    print(
        f"  serve: p99 resident {res['p99_ms']:.2f} ms  "
        f"mmap {mm['p99_ms']:.2f} ms "
        f"({out['serving']['p99_slowdown']:.2f}x)  "
        f"predictions equal: {predictions_equal}"
    )
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dataset", default="ogbn-products")
    ap.add_argument("--scale", type=float, default=0.1,
                    help="graph scale for the hit-rate series")
    ap.add_argument("--e2e-scale", type=float, default=0.4,
                    help="graph scale for the end-to-end series (~4x the "
                    "serving bench default)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--accesses", type=int, default=60_000,
                    help="row accesses per hit-rate trace")
    ap.add_argument("--hot-fractions", type=float, nargs="+",
                    default=[0.05, 0.1, 0.2])
    ap.add_argument("--train-epochs", type=int, default=4)
    ap.add_argument("--serve-requests", type=int, default=400,
                    help="batch-8 predict requests per serving tier")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny run for CI schema validation")
    args = ap.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.05)
        args.e2e_scale = min(args.e2e_scale, 0.05)
        args.accesses = 5_000
        args.hot_fractions = [0.1]
        args.train_epochs = 2
        args.serve_requests = 50

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        layout_dir = os.path.join(tmp, "features")
        write_feature_layout(layout_dir, ds.features)
        print(f"hit-rate series over {ds.name} ({ds.num_vertices} vertices):")
        hit_rows = run_hit_rate_series(ds, layout_dir, args)
        print(f"end-to-end at scale {args.e2e_scale:g}:")
        e2e = run_end_to_end(args, tmp)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "dataset": ds.name,
        "scale": args.scale,
        "e2e_scale": args.e2e_scale,
        "num_vertices": ds.num_vertices,
        "num_edges": ds.num_edges,
        "accesses": args.accesses,
        "hot_fractions": args.hot_fractions,
        "tolerance": PREDICTION_TOLERANCE,
        "smoke": bool(args.smoke),
        "hit_rate": hit_rows,
        "end_to_end": e2e,
    }
    path = emit_json("featurestore", payload)
    emit(
        "featurestore_table",
        table(
            ["pattern", "hot", "policy", "measured", "predicted",
             "|err|", "ok", "evictions"],
            [
                [
                    r["pattern"], f"{r['hot_fraction']:.2f}", r["policy"],
                    f"{r['measured_hit_rate']:.3f}",
                    f"{r['predicted_hit_rate']:.3f}",
                    f"{r['abs_err']:.3f}",
                    "yes" if r["within_tolerance"] else "NO",
                    r["evictions"],
                ]
                for r in hit_rows
            ],
        ),
    )
    bad = [r for r in hit_rows if not r["within_tolerance"]]
    print(f"\n{len(hit_rows)} hit-rate cells, "
          f"{len(hit_rows) - len(bad)} within tolerance "
          f"{PREDICTION_TOLERANCE:g}")
    print(f"wrote {path}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
