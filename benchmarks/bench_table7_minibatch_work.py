"""Table 7 — Dist-DGL sampled aggregation work per hop / batch / socket.

Paper rows (OGBN-Products, batch 2000, fan-outs 15/10/5):
    hop-0: 2,000 verts x 15 x 256   = 0.007 B ops
    hop-1: 30,214 x 10 x 256        = 0.077 B ops
    hop-2: 233,692 x 5 x 100        = 0.116 B ops
    1 batch 0.202; 99 batches/socket -> 19.98; 16 sockets -> 1.41.
"""

import numpy as np
import pytest
from bench_utils import emit, table

from repro.perf.minibatch import (
    PRODUCTS_BATCH_SIZE,
    PRODUCTS_FANOUTS,
    PRODUCTS_MB_FEATURE_DIMS,
    minibatch_epoch_work,
    minibatch_hops,
    sampled_frontier_sizes,
)
from repro.perf.workmodel import PRODUCTS_NUM_VERTICES

PAPER_HOPS = [
    ("Hop-0", 2_000, 15, 256, 0.007),
    ("Hop-1", 30_214, 10, 256, 0.077),
    ("Hop-2", 233_692, 5, 100, 0.116),
]


def test_table7_minibatch_work(products_bench, benchmark):
    hops = minibatch_hops(
        PRODUCTS_BATCH_SIZE,
        PRODUCTS_FANOUTS,
        PRODUCTS_MB_FEATURE_DIMS,
        population=PRODUCTS_NUM_VERTICES,
    )
    rows = []
    for (label, pv, pf, pd, pb), h in zip(PAPER_HOPS, hops):
        rows.append(
            [label, pv, int(h.num_vertices), pf, pd, pb, round(h.b_ops, 4)]
        )
    _, bops1, batches1 = minibatch_epoch_work(
        PRODUCTS_BATCH_SIZE,
        PRODUCTS_FANOUTS,
        PRODUCTS_MB_FEATURE_DIMS,
        population=PRODUCTS_NUM_VERTICES,
        num_sockets=1,
    )
    _, bops16, batches16 = minibatch_epoch_work(
        PRODUCTS_BATCH_SIZE,
        PRODUCTS_FANOUTS,
        PRODUCTS_MB_FEATURE_DIMS,
        population=PRODUCTS_NUM_VERTICES,
        num_sockets=16,
    )
    lines = table(
        ["hop", "paper_verts", "model_verts", "fanout", "feats", "paper_Bops", "model_Bops"],
        rows,
    )
    lines.append("")
    lines.append(
        f"1 socket: {batches1} batches, {bops1:.2f} B ops (paper: 99, 19.98)"
    )
    lines.append(
        f"16 sockets: {batches16} batches, {bops16:.2f} B ops (paper: 7, 1.41)"
    )

    # empirical sampler on the stand-in graph for shape validation
    rng = np.random.default_rng(0)
    seeds = rng.choice(
        products_bench.num_vertices, size=min(200, products_bench.num_vertices), replace=False
    )
    sizes = sampled_frontier_sizes(
        products_bench.graph, seeds, PRODUCTS_FANOUTS, seed=0
    )
    lines.append(f"empirical stand-in frontier sizes (seeds=200): {sizes}")
    emit("table7_minibatch_work", lines)

    assert batches1 == 99 and batches16 == 7
    assert bops1 == pytest.approx(19.98, rel=0.2)
    # frontier grows then saturates by dedup
    assert sizes[1] > sizes[0]

    benchmark(
        minibatch_epoch_work,
        PRODUCTS_BATCH_SIZE,
        PRODUCTS_FANOUTS,
        PRODUCTS_MB_FEATURE_DIMS,
        PRODUCTS_NUM_VERTICES,
    )
