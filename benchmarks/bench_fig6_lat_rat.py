"""Fig. 6 — forward-pass local (LAT) vs remote (RAT) aggregation scaling.

Paper contracts: LAT scales near-linearly with sockets; RAT scales poorly
(driven by replication); cd-0's RAT exceeds cd-5's (exposed wire time);
0c has no RAT at all; for OGBN-Papers RAT dominates LAT.
"""

import pytest
from bench_utils import emit, table

from repro.core import DistributedTrainer, TrainConfig
from repro.perf.epochmodel import DatasetScale, EpochModel, profiles_from_standin

from bench_fig5_scaling import COUNTS, PAPER_SCALES


def test_fig6_modeled_lat_rat(
    reddit_bench, products_bench, proteins_bench, papers_bench, benchmark
):
    datasets = {
        "reddit": reddit_bench,
        "ogbn-products": products_bench,
        "proteins": proteins_bench,
        "ogbn-papers": papers_bench,
    }
    lines = []
    checks = {}
    for name, ds in datasets.items():
        profiles = profiles_from_standin(ds.graph, COUNTS[name], seed=0)
        model = EpochModel(PAPER_SCALES[name], profiles)
        rows = []
        for p in COUNTS[name]:
            cd0 = model.breakdown(p, "cd-0")
            cd5 = model.breakdown(p, "cd-5")
            rows.append(
                [
                    p,
                    round(cd0.lat_forward, 3),
                    round(cd0.rat_total, 3),
                    round(cd5.rat_total, 3),
                ]
            )
        lines.append(f"--- {name} ---")
        lines += table(["P", "LAT_s", "RAT_cd0_s", "RAT_cd5_s"], rows)
        lines.append("")
        checks[name] = rows
    lines.append("contracts: LAT shrinks with P; RAT_cd0 > RAT_cd5;")
    lines.append("OGBN-Papers RAT >= LAT (paper: RAT always higher there)")
    emit("fig6_lat_rat", lines)

    for name, rows in checks.items():
        lats = [r[1] for r in rows]
        assert lats == sorted(lats, reverse=True), f"{name}: LAT must shrink"
        for r in rows:
            assert r[2] >= r[3], f"{name}: cd-0 RAT must exceed cd-5 RAT"
    papers_rows = checks["ogbn-papers"]
    assert all(r[2] > r[1] for r in papers_rows), "Papers: RAT dominates LAT"

    benchmark(
        profiles_from_standin, reddit_bench.graph, (2, 4), 0
    )


def test_fig6_measured_lat_rat(products_bench, benchmark):
    """Measured wall-clock LAT/RAT split from the executing trainer."""
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
    )
    rows = []
    for P in (2, 4, 8):
        dt = DistributedTrainer(products_bench, P, algorithm="cd-0", config=cfg)
        stats = dt.train_epoch(0)
        rows.append(
            [
                P,
                round(stats.local_agg_time_s * 1e3, 2),
                round(stats.remote_agg_time_s * 1e3, 2),
            ]
        )
    lines = table(["P", "LAT_ms/socket", "RAT_ms/socket"], rows)
    emit("fig6_measured_lat_rat", lines)
    # per-socket LAT must shrink as partitions shrink
    assert rows[-1][1] < rows[0][1]

    dt = DistributedTrainer(products_bench, 2, algorithm="cd-0", config=cfg)
    benchmark(dt.train_epoch, 0)
