"""Table 9 — epoch time: Dist-DGL (sampled) vs DistGNN cd-5 (full batch).

Paper (OGBN-Products): Dist-DGL 20s / 1.5s at 1 / 16 sockets; DistGNN
cd-5 11s / 1.9s.  The paper's point: full-batch DistGNN does ~4x the
aggregation work yet is comparable or faster, because sampled training
pays for neighbour sampling and random feature gathers.

Model: DistGNN from the Fig.-5 epoch model; Dist-DGL = sampled
aggregation (roofline at gather efficiency) + per-sampled-edge sampling
cost + per-batch feature-fetch traffic.
"""

import pytest
from bench_utils import emit, table

from repro.perf.epochmodel import DatasetScale, EpochModel, profiles_from_standin
from repro.perf.hardware import XEON_9242
from repro.perf.minibatch import (
    PRODUCTS_BATCH_SIZE,
    PRODUCTS_FANOUTS,
    PRODUCTS_MB_FEATURE_DIMS,
    minibatch_epoch_work,
    minibatch_hops,
)
from repro.perf.workmodel import PRODUCTS_NUM_VERTICES

#: cost of drawing one sampled edge (hash lookups + RNG + remote fetch
#: amortization) — the paper calls Dist-DGL's sampling "inefficient".
SAMPLING_COST_PER_EDGE_S = 1.2e-7

PAPER = {1: (20.0, 11.0), 16: (1.5, 1.9)}  # (dist-dgl, distgnn cd-5)


def _distdgl_epoch_time(num_sockets: int) -> float:
    hops, _, batches = minibatch_epoch_work(
        PRODUCTS_BATCH_SIZE,
        PRODUCTS_FANOUTS,
        PRODUCTS_MB_FEATURE_DIMS,
        population=PRODUCTS_NUM_VERTICES,
        num_sockets=num_sockets,
    )
    sampled_edges = sum(h.num_vertices * h.fanout for h in hops)
    sampling = sampled_edges * SAMPLING_COST_PER_EDGE_S
    # aggregation at gather-bound efficiency + feature fetch of the frontier
    agg_flops = sum(h.ops for h in hops)
    agg = agg_flops / (XEON_9242.peak_flops * 0.05)  # random-access SpMM
    fetch_bytes = sum(h.num_vertices * h.feature_dim * 4 for h in hops)
    fetch = fetch_bytes / (XEON_9242.mem_bw_Bps * 0.2)
    return batches * (sampling + agg + fetch)


def test_table9_distdgl_comparison(products_bench, benchmark):
    scale = DatasetScale(
        "ogbn-products", PRODUCTS_NUM_VERTICES, 123_718_280, 100, (256, 256), 47,
        cache_reuse=2.0,
    )
    profiles = profiles_from_standin(products_bench.graph, (2, 4, 8, 16), seed=0)
    model = EpochModel(scale, profiles)

    rows = []
    ours = {}
    for sockets in (1, 16):
        dgl_t = _distdgl_epoch_time(sockets)
        gnn_t = (
            model.single_socket_time()
            if sockets == 1
            else model.breakdown(16, "cd-5").total
        )
        ours[sockets] = (dgl_t, gnn_t)
        p_dgl, p_gnn = PAPER[sockets]
        rows.append(
            [sockets, round(dgl_t, 2), p_dgl, round(gnn_t, 2), p_gnn]
        )
    lines = table(
        ["#sockets", "DistDGL_model_s", "paper", "DistGNN_cd5_model_s", "paper"],
        rows,
    )
    lines.append("")
    lines.append("contract: comparable epoch times despite ~4x aggregation work,")
    lines.append("DistGNN ahead at 1 socket; gap closes by 16 sockets")
    emit("table9_distdgl", lines)

    dgl1, gnn1 = ours[1]
    dgl16, gnn16 = ours[16]
    assert gnn1 < dgl1, "full-batch DistGNN should win at 1 socket (paper 11 vs 20)"
    # at 16 sockets they are comparable (within ~4x either way)
    assert 0.25 < gnn16 / dgl16 < 4.0

    benchmark(_distdgl_epoch_time, 16)
