"""Table 9 — epoch time: Dist-DGL (sampled) vs DistGNN cd-5 (full batch).

Paper (OGBN-Products): Dist-DGL 20s / 1.5s at 1 / 16 sockets; DistGNN
cd-5 11s / 1.9s.  The paper's point: full-batch DistGNN does ~4x the
aggregation work yet is comparable or faster, because sampled training
pays for neighbour sampling and random feature gathers.

Model: DistGNN from the Fig.-5 epoch model; Dist-DGL = sampled
aggregation (roofline at gather efficiency) + per-sampled-edge sampling
cost + per-batch feature-fetch traffic.

CLI mode: ``python benchmarks/bench_table9_distdgl.py --backend shm``
re-runs the comparison *executed* instead of modelled — the mini-batch
(Dist-DGL-style) trainer against full-batch cd-5 on the chosen execution
backend, reporting measured wall-clock per epoch.
"""

import pytest
from bench_utils import emit, table

from repro.perf.epochmodel import DatasetScale, EpochModel, profiles_from_standin
from repro.perf.hardware import XEON_9242
from repro.perf.minibatch import (
    PRODUCTS_BATCH_SIZE,
    PRODUCTS_FANOUTS,
    PRODUCTS_MB_FEATURE_DIMS,
    minibatch_epoch_work,
    minibatch_hops,
)
from repro.perf.workmodel import PRODUCTS_NUM_VERTICES

#: cost of drawing one sampled edge (hash lookups + RNG + remote fetch
#: amortization) — the paper calls Dist-DGL's sampling "inefficient".
SAMPLING_COST_PER_EDGE_S = 1.2e-7

PAPER = {1: (20.0, 11.0), 16: (1.5, 1.9)}  # (dist-dgl, distgnn cd-5)


def _distdgl_epoch_time(num_sockets: int) -> float:
    hops, _, batches = minibatch_epoch_work(
        PRODUCTS_BATCH_SIZE,
        PRODUCTS_FANOUTS,
        PRODUCTS_MB_FEATURE_DIMS,
        population=PRODUCTS_NUM_VERTICES,
        num_sockets=num_sockets,
    )
    sampled_edges = sum(h.num_vertices * h.fanout for h in hops)
    sampling = sampled_edges * SAMPLING_COST_PER_EDGE_S
    # aggregation at gather-bound efficiency + feature fetch of the frontier
    agg_flops = sum(h.ops for h in hops)
    agg = agg_flops / (XEON_9242.peak_flops * 0.05)  # random-access SpMM
    fetch_bytes = sum(h.num_vertices * h.feature_dim * 4 for h in hops)
    fetch = fetch_bytes / (XEON_9242.mem_bw_Bps * 0.2)
    return batches * (sampling + agg + fetch)


def test_table9_distdgl_comparison(products_bench, benchmark):
    scale = DatasetScale(
        "ogbn-products", PRODUCTS_NUM_VERTICES, 123_718_280, 100, (256, 256), 47,
        cache_reuse=2.0,
    )
    profiles = profiles_from_standin(products_bench.graph, (2, 4, 8, 16), seed=0)
    model = EpochModel(scale, profiles)

    rows = []
    ours = {}
    for sockets in (1, 16):
        dgl_t = _distdgl_epoch_time(sockets)
        gnn_t = (
            model.single_socket_time()
            if sockets == 1
            else model.breakdown(16, "cd-5").total
        )
        ours[sockets] = (dgl_t, gnn_t)
        p_dgl, p_gnn = PAPER[sockets]
        rows.append(
            [sockets, round(dgl_t, 2), p_dgl, round(gnn_t, 2), p_gnn]
        )
    lines = table(
        ["#sockets", "DistDGL_model_s", "paper", "DistGNN_cd5_model_s", "paper"],
        rows,
    )
    lines.append("")
    lines.append("contract: comparable epoch times despite ~4x aggregation work,")
    lines.append("DistGNN ahead at 1 socket; gap closes by 16 sockets")
    emit("table9_distdgl", lines)

    dgl1, gnn1 = ours[1]
    dgl16, gnn16 = ours[16]
    assert gnn1 < dgl1, "full-batch DistGNN should win at 1 socket (paper 11 vs 20)"
    # at 16 sockets they are comparable (within ~4x either way)
    assert 0.25 < gnn16 / dgl16 < 4.0

    benchmark(_distdgl_epoch_time, 16)


# -- executed comparison (CLI) ------------------------------------------------


def executed_comparison(
    backend: str, ranks: int = 4, epochs: int = 4, scale: float = 0.1
):
    """Measured Table-9 stand-in: sampled mini-batch vs full-batch cd-5.

    Both trainers run for real on the products stand-in; the full-batch
    side uses the chosen execution backend (``shm`` = one process per
    rank, measured parallel wall-clock).
    """
    from repro.core import DistributedTrainer, TrainConfig
    from repro.graph.datasets import load_dataset
    from repro.sampling import MiniBatchTrainer

    ds = load_dataset("ogbn-products", scale=scale, seed=0)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01,
        eval_every=0, seed=0, backend=backend,
    )
    mb = MiniBatchTrainer(ds, fanouts=[10, 10], batch_size=1024, config=cfg)
    mb_result = mb.fit(num_epochs=epochs)
    fb = DistributedTrainer(ds, ranks, algorithm="cd-5", config=cfg)
    fb_result = fb.fit(num_epochs=epochs)
    rows = [
        ["minibatch (DistDGL-style)", 1, round(mb_result.avg_epoch_time_s, 4),
         round(mb_result.final_test_acc, 4)],
        [f"full-batch cd-5 ({backend})", ranks,
         round(fb_result.avg_epoch_time_s, 4),
         round(fb_result.final_test_acc, 4)],
    ]
    lines = [f"executed Table-9 stand-in — {ds.summary()}", ""]
    lines += table(["trainer", "ranks", "epoch_s", "test_acc"], rows)
    emit(f"table9_executed_{backend}", lines)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "shm"), default="shm")
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args(argv)
    executed_comparison(
        args.backend, ranks=args.ranks, epochs=args.epochs, scale=args.scale
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
