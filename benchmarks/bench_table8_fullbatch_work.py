"""Table 8 — DistGNN full-batch aggregation work per hop and per socket.

Paper rows (OGBN-Products): 1 socket 12.61 + 32.29 + 32.29 = 77.19 B ops;
16 sockets (596,499 clone-inclusive vertices each) total 18.80 B ops.
"""

import pytest
from bench_utils import emit, table

from repro.perf.workmodel import (
    PRODUCTS_AVG_DEGREE,
    PRODUCTS_FEATURE_DIMS,
    full_batch_work,
    products_full_batch_bops,
    products_partition_vertices,
)

PAPER = {1: 77.19, 16: 18.80}


def test_table8_fullbatch_work(benchmark):
    lines = []
    for sockets in (1, 16):
        verts = products_partition_vertices(sockets)
        layers = full_batch_work(verts, PRODUCTS_AVG_DEGREE, PRODUCTS_FEATURE_DIMS)
        rows = [
            [f"Hop-{l.hop}", int(l.num_vertices), l.avg_degree, l.feature_dim, round(l.b_ops, 2)]
            for l in layers
        ]
        total = products_full_batch_bops(sockets)
        lines.append(f"--- {sockets} socket(s) ---")
        lines += table(["hop", "verts/partition", "avg_deg", "feats", "B_ops"], rows)
        lines.append(f"full batch total: {total:.2f} B ops (paper: {PAPER[sockets]})")
        lines.append("")
    ratio = products_full_batch_bops(1) / 19.98
    lines.append(
        f"full-batch vs sampled work ratio at 1 socket: {ratio:.1f}x "
        "(paper: ~4x more work, 77.19/19.98)"
    )
    emit("table8_fullbatch_work", lines)

    assert products_full_batch_bops(1) == pytest.approx(77.19, rel=0.01)
    assert products_full_batch_bops(16) == pytest.approx(18.80, rel=0.02)

    benchmark(products_full_batch_bops, 16)
