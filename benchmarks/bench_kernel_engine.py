"""Kernel-engine benchmark — the perf trajectory's first baseline.

Measures per-kernel, per-operator aggregation throughput on the synthetic
generator graphs (R-MAT power-law, the paper's Graph500-style workload)
and emits a machine-readable ``BENCH_kernels.json`` at the repo root so
later PRs have a baseline to improve against.

For every ``(graph, kernel, ⊗, ⊕)`` combination the harness also checks
the output against ``aggregate_baseline`` (atol 1e-6, float64 features),
so a kernel can never get faster by getting wrong.

The payload additionally carries a **thread-scaling series**
(``thread_scaling``): the parallel execution engine timed at 1/2/4/8
threads for each chunking policy on the largest graph — the measured
counterpart of the paper's Fig. 4 scheduling comparison.  Every threaded
run is asserted bit-identical to the single-threaded engine first.

Usage::

    python benchmarks/bench_kernel_engine.py            # full baseline
    python benchmarks/bench_kernel_engine.py --smoke    # CI schema check

The full run asserts the headline acceptance bar: the vectorized engine
must beat the Alg.-1 baseline kernel by >= 5x on the largest graph.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

import numpy as np

from bench_utils import emit, emit_json, table
from repro.graph.generators import rmat_graph
from repro.kernels import KERNELS, aggregate

#: Kernels timed per operator combination ("reference" is O(E) Python —
#: far too slow beyond toy scale and already covered by the test suite;
#: "parallel" is timed separately in the thread-scaling series).
BENCH_KERNELS = ("baseline", "vectorized", "reordered", "blocked")

#: Thread counts of the scaling series (acceptance: 1/2/4/8 recorded for
#: at least two operator pairs).
THREAD_SERIES = (1, 2, 4, 8)

#: Chunking policies swept per thread count.
THREAD_SCHEDULES = ("static", "dynamic", "balanced")

#: Operator pairs of the scaling series: the SpMM fast path and a
#: general gather → ⊗ → reduceat path.
THREAD_OPERATORS = (("copylhs", "sum"), ("mul", "max"))

#: Operator table swept per graph: the GNN workhorse, the attention
#: weighting, edge-only copy, and a non-add reducer.
OPERATOR_TABLE = (
    ("copylhs", "sum"),
    ("copylhs", "mean"),
    ("copylhs", "max"),
    ("copyrhs", "sum"),
    ("add", "sum"),
    ("mul", "sum"),
    ("mul", "max"),
    ("mul", "min"),
)

SPEEDUP_BAR = 5.0  # acceptance: vectorized >= 5x baseline on largest graph


def _graphs(smoke: bool):
    """(name, CSRGraph) pairs, ordered smallest to largest."""
    scales = (7,) if smoke else (10, 12, 14)
    out = []
    for scale in scales:
        g = rmat_graph(scale=scale, edge_factor=8.0, seed=3)
        out.append((f"rmat-s{scale}", g))
    return out


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_graph(name, graph, dim: int, repeats: int, operators) -> list:
    rng = np.random.default_rng(0)
    f_v = rng.standard_normal((graph.num_src, dim)) + 2.0
    f_e = rng.standard_normal((graph.num_edges, dim)) + 2.0
    rows = []
    for binary_op, reduce_op in operators:
        ref = aggregate(graph, f_v, f_e, binary_op, reduce_op, kernel="baseline")
        base_s = None
        for kernel in BENCH_KERNELS:
            out = aggregate(graph, f_v, f_e, binary_op, reduce_op, kernel=kernel)
            err = float(np.max(np.abs(out - ref))) if out.size else 0.0
            if err > 1e-6:
                raise AssertionError(
                    f"{kernel} diverges from baseline on {name} "
                    f"{binary_op}/{reduce_op}: max abs err {err:.3e}"
                )
            seconds = _time(
                lambda: aggregate(
                    graph, f_v, f_e, binary_op, reduce_op, kernel=kernel
                ),
                repeats,
            )
            if kernel == "baseline":
                base_s = seconds
            rows.append(
                {
                    "graph": name,
                    "kernel": kernel,
                    "binary_op": binary_op,
                    "reduce_op": reduce_op,
                    "seconds": seconds,
                    "edges_per_s": graph.num_edges / seconds if seconds else 0.0,
                    "speedup_vs_baseline": base_s / seconds if seconds else 0.0,
                    "max_abs_err_vs_baseline": err,
                }
            )
    return rows


def bench_thread_scaling(name, graph, dim: int, repeats: int) -> list:
    """Time the parallel engine at each (op pair, threads, schedule).

    ``speedup_vs_1_thread`` compares against the same schedule at one
    thread, so each policy's scaling curve is self-relative.
    """
    rng = np.random.default_rng(0)
    f_v = rng.standard_normal((graph.num_src, dim)) + 2.0
    f_e = rng.standard_normal((graph.num_edges, dim)) + 2.0
    rows = []
    for binary_op, reduce_op in THREAD_OPERATORS:
        ref = aggregate(
            graph, f_v, f_e, binary_op, reduce_op, kernel="vectorized"
        )
        base_by_schedule = {}
        for num_threads in THREAD_SERIES:
            for schedule in THREAD_SCHEDULES:
                out = aggregate(
                    graph, f_v, f_e, binary_op, reduce_op,
                    kernel="parallel", num_threads=num_threads,
                    schedule=schedule,
                )
                if not np.array_equal(out, ref):
                    raise AssertionError(
                        f"parallel diverges from vectorized on {name} "
                        f"{binary_op}/{reduce_op} nt={num_threads} "
                        f"schedule={schedule}"
                    )
                seconds = _time(
                    lambda: aggregate(
                        graph, f_v, f_e, binary_op, reduce_op,
                        kernel="parallel", num_threads=num_threads,
                        schedule=schedule,
                    ),
                    repeats,
                )
                if num_threads == 1:
                    base_by_schedule[schedule] = seconds
                base_s = base_by_schedule[schedule]
                rows.append(
                    {
                        "graph": name,
                        "kernel": "parallel",
                        "binary_op": binary_op,
                        "reduce_op": reduce_op,
                        "num_threads": num_threads,
                        "schedule": schedule,
                        "seconds": seconds,
                        "edges_per_s": (
                            graph.num_edges / seconds if seconds else 0.0
                        ),
                        "speedup_vs_1_thread": (
                            base_s / seconds if seconds else 0.0
                        ),
                    }
                )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny graph, 1 repeat: schema/plumbing check for CI",
    )
    parser.add_argument("--dim", type=int, default=32, help="feature width")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else max(1, args.repeats)
    dim = 8 if args.smoke else args.dim
    operators = OPERATOR_TABLE[:2] if args.smoke else OPERATOR_TABLE

    graphs = _graphs(args.smoke)
    results = []
    for name, graph in graphs:
        print(f"benchmarking {name}: |V|={graph.num_vertices} |E|={graph.num_edges}")
        results.extend(bench_graph(name, graph, dim, repeats, operators))

    largest_name, largest_graph = graphs[-1]
    print(
        f"thread scaling on {largest_name}: "
        f"{THREAD_SERIES} threads x {THREAD_SCHEDULES}"
    )
    thread_scaling = bench_thread_scaling(largest_name, largest_graph, dim, repeats)

    largest = largest_name
    headline = {
        r["reduce_op"]: r["speedup_vs_baseline"]
        for r in results
        if r["graph"] == largest
        and r["kernel"] == "vectorized"
        and r["binary_op"] == "copylhs"
    }
    payload = {
        "schema_version": 1,
        "benchmark": "kernel_engine",
        "config": {
            "dim": dim,
            "repeats": repeats,
            "smoke": args.smoke,
            "operator_table": [list(op) for op in operators],
            "kernels": list(BENCH_KERNELS),
            "thread_series": list(THREAD_SERIES),
            "thread_schedules": list(THREAD_SCHEDULES),
            "thread_operators": [list(op) for op in THREAD_OPERATORS],
        },
        "graphs": [
            {
                "name": name,
                "generator": "rmat",
                "num_vertices": g.num_vertices,
                "num_edges": g.num_edges,
            }
            for name, g in graphs
        ],
        "results": results,
        "thread_scaling": thread_scaling,
        "summary": {
            "largest_graph": largest,
            "vectorized_speedup_copylhs_sum": headline.get("sum", 0.0),
            "speedup_bar": SPEEDUP_BAR,
        },
    }
    # Smoke runs only refresh benchmarks/results/ — never the tracked
    # repo-root baseline, which always holds a full run.
    path = emit_json("kernels", payload, root_copy=not args.smoke)
    print(f"wrote {path}")

    headers = ["graph", "kernel", "op", "reduce", "sec", "Medges/s", "vs baseline"]
    emit(
        "kernel_engine",
        table(
            headers,
            [
                [
                    r["graph"],
                    r["kernel"],
                    r["binary_op"],
                    r["reduce_op"],
                    r["seconds"],
                    r["edges_per_s"] / 1e6,
                    r["speedup_vs_baseline"],
                ]
                for r in results
            ],
        ),
    )
    emit(
        "kernel_thread_scaling",
        table(
            ["graph", "op", "reduce", "threads", "schedule", "sec",
             "Medges/s", "vs 1 thread"],
            [
                [
                    r["graph"],
                    r["binary_op"],
                    r["reduce_op"],
                    r["num_threads"],
                    r["schedule"],
                    r["seconds"],
                    r["edges_per_s"] / 1e6,
                    r["speedup_vs_1_thread"],
                ]
                for r in thread_scaling
            ],
        ),
    )

    if not args.smoke:
        speedup = headline.get("sum", 0.0)
        if speedup < SPEEDUP_BAR:
            print(
                f"FAIL: vectorized copylhs/sum speedup {speedup:.1f}x on "
                f"{largest} is below the {SPEEDUP_BAR}x bar"
            )
            return 1
        print(
            f"OK: vectorized copylhs/sum speedup on {largest}: {speedup:.1f}x "
            f"(bar: {SPEEDUP_BAR}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
