"""Streaming-graph baseline -> ``BENCH_streaming.json``.

The repo's third perf-trajectory file (next to ``BENCH_kernels.json``
and ``BENCH_serving.json``), opening the dynamic-topology workload axis
of :mod:`repro.dyngraph`.  Three series:

- ``ingest``      edge-ingest throughput: a held-out edge suffix is
  replayed (seeded arrival order) chunk by chunk into the delta-CSR
  :class:`~repro.dyngraph.delta.DynamicGraph`, with and without online
  Libra assignment riding along, across chunk sizes.
- ``update_latency``  update -> fresh-prediction latency: each round
  pushes a mutation batch through ``PredictionService.update_edges`` and
  immediately queries the mutated vertices; the measured time is the
  full freshness path (graph merge + refresh + lookup), across batch
  sizes.
- ``compaction``  cost of folding a delta of the given fraction back
  into a frozen base (the price the auto-compaction threshold trades
  against view overhead).

Usage::

    python benchmarks/bench_streaming.py            # full baseline
    python benchmarks/bench_streaming.py --smoke    # CI schema check
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_utils import emit, emit_json, table  # noqa: E402

from repro.core import TrainConfig, Trainer  # noqa: E402
from repro.dyngraph import DynamicGraph, LibraState  # noqa: E402
from repro.graph.builders import coo_to_csr  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.serving import (  # noqa: E402
    IncrementalRefresher,
    InferenceEngine,
    PredictionService,
)

SCHEMA_VERSION = 1


def _arrival_stream(ds, seed: int):
    """All edges in a seeded random arrival order (CSR dump order is
    Libra's pathological case — real traffic interleaves destinations)."""
    src, dst, _ = ds.graph.to_coo()
    order = np.random.default_rng(seed).permutation(src.size)
    return src[order], dst[order]


def bench_ingest(ds, args) -> list:
    src, dst = _arrival_stream(ds, args.seed)
    m = src.size
    split = int(m * (1.0 - args.stream_fraction))
    n = ds.num_vertices
    base = coo_to_csr(src[:split], dst[:split], num_dst=n, num_src=n)
    rows = []
    for chunk_size in args.chunk_sizes:
        for with_partitioner in (False, True):
            # fresh structures per cell; compaction cost is measured in
            # its own series, so disable the auto trigger here
            dyn = DynamicGraph(base, compact_threshold=None)
            state = (
                LibraState(n, args.partitions, seed=args.seed)
                if with_partitioner
                else None
            )
            if state is not None:
                state.assign(src[:split], dst[:split])
                state.set_baseline()
            t0 = time.perf_counter()
            for lo in range(split, m, chunk_size):
                hi = min(lo + chunk_size, m)
                if state is not None:
                    state.assign(src[lo:hi], dst[lo:hi])
                dyn.add_edges(src[lo:hi], dst[lo:hi])
            seconds = time.perf_counter() - t0
            rows.append({
                "chunk_size": chunk_size,
                "partitioner": "libra" if with_partitioner else "none",
                "edges": m - split,
                "seconds": seconds,
                "edges_per_s": (m - split) / max(seconds, 1e-12),
                "replication_factor": (
                    state.replication_factor if state is not None else None
                ),
                "drift": state.drift() if state is not None else None,
            })
    return rows


def _make_service(ds, args):
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=args.seed
    )
    trainer = Trainer(ds, cfg)
    trainer.fit(num_epochs=args.train_epochs)
    engine = InferenceEngine(ds, trainer.model, cfg).precompute()
    refresher = IncrementalRefresher(engine, full_threshold=args.full_threshold)
    return PredictionService(engine, refresher=refresher)


def bench_update_latency(ds, args) -> list:
    rows = []
    rng = np.random.default_rng(args.seed + 3)
    n = ds.num_vertices
    for batch_size in args.batch_sizes:
        svc = _make_service(ds, args)  # fresh engine per cell
        latencies = []
        modes: dict = {}
        for _ in range(args.rounds):
            add = np.stack(
                [rng.integers(0, n, batch_size), rng.integers(0, n, batch_size)],
                axis=1,
            )
            probe = np.unique(add[:, 1])
            t0 = time.perf_counter()
            stats = svc.update_edges(add=add)
            svc.predict_logits(probe)  # freshness: read the mutated rows
            latencies.append(time.perf_counter() - t0)
            modes[stats.mode] = modes.get(stats.mode, 0) + 1
        svc.close()
        lat_ms = np.asarray(latencies) * 1e3
        rows.append({
            "batch_size": batch_size,
            "rounds": len(latencies),
            "mean_ms": float(lat_ms.mean()),
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p99_ms": float(np.percentile(lat_ms, 99)),
            "modes": modes,
        })
    return rows


def bench_compaction(ds, args) -> list:
    rows = []
    rng = np.random.default_rng(args.seed + 5)
    n = ds.num_vertices
    for frac in args.delta_fractions:
        dyn = DynamicGraph(ds.graph, compact_threshold=None)
        k = max(1, int(ds.graph.num_edges * frac))
        dyn.add_edges(rng.integers(0, n, k), rng.integers(0, n, k))
        t0 = time.perf_counter()
        compacted = dyn.compact()
        seconds = time.perf_counter() - t0
        rows.append({
            "delta_fraction": frac,
            "delta_edges": k,
            "total_edges": int(compacted.num_edges),
            "seconds": seconds,
            "edges_per_s": compacted.num_edges / max(seconds, 1e-12),
        })
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dataset", default="ogbn-products")
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--partitions", type=int, default=4)
    ap.add_argument("--stream-fraction", type=float, default=0.2)
    ap.add_argument("--chunk-sizes", type=int, nargs="+",
                    default=[1, 64, 1024])
    ap.add_argument("--batch-sizes", type=int, nargs="+",
                    default=[1, 16, 128],
                    help="edge-mutation batch sizes for the latency series")
    ap.add_argument("--rounds", type=int, default=30,
                    help="update->predict rounds per latency cell")
    ap.add_argument("--delta-fractions", type=float, nargs="+",
                    default=[0.05, 0.25, 0.5])
    ap.add_argument("--train-epochs", type=int, default=3)
    ap.add_argument("--full-threshold", type=float, default=0.25)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny run for CI schema validation")
    args = ap.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.05)
        args.chunk_sizes = [64, 1024]
        args.batch_sizes = [1, 16]
        args.rounds = 5
        args.delta_fractions = [0.25]
        args.train_epochs = 1

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)

    ingest_rows = bench_ingest(ds, args)
    latency_rows = bench_update_latency(ds, args)
    compaction_rows = bench_compaction(ds, args)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "dataset": ds.name,
        "scale": args.scale,
        "num_vertices": ds.num_vertices,
        "num_edges": ds.num_edges,
        "partitions": args.partitions,
        "stream_fraction": args.stream_fraction,
        "full_threshold": args.full_threshold,
        "smoke": bool(args.smoke),
        "ingest": ingest_rows,
        "update_latency": latency_rows,
        "compaction": compaction_rows,
    }
    path = emit_json("streaming", payload)
    emit(
        "streaming_table",
        table(
            ["series", "config", "metric", "value"],
            [
                *[
                    [
                        "ingest",
                        f"chunk={r['chunk_size']} part={r['partitioner']}",
                        "edges/s",
                        f"{r['edges_per_s']:,.0f}",
                    ]
                    for r in ingest_rows
                ],
                *[
                    [
                        "update",
                        f"batch={r['batch_size']}",
                        "p50/p99 ms",
                        f"{r['p50_ms']:.2f} / {r['p99_ms']:.2f}",
                    ]
                    for r in latency_rows
                ],
                *[
                    [
                        "compaction",
                        f"delta={r['delta_fraction']}",
                        "edges/s",
                        f"{r['edges_per_s']:,.0f}",
                    ]
                    for r in compaction_rows
                ],
            ],
        ),
    )
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
