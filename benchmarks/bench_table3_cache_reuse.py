"""Table 3 — cache reuse of the AP kernel vs number of blocks (nB).

Paper: Reddit reuse climbs from 3.1 (nB=1) to a sweet spot of 27.0 at
nB=16 then falls; OGBN-Products stays flat around 2 (too sparse to reuse).
The cache is pressure-scaled (see ``cache_vectors_for``) so the stand-in
graphs see the same f_V-to-LLC ratio the paper's graphs did.
"""

import pytest
from bench_utils import emit, table

from repro.cachesim import cache_vectors_for, simulate_lru_reuse
from repro.cachesim.analytic import analytic_reuse
from repro.graph.utils import average_degree

NBS = (1, 2, 4, 8, 16, 32, 64)

#: paper f_V sizes (|V| x d x 4B): Reddit 561 MB, Products 980 MB
PAPER_FV_BYTES = {"reddit": 232_965 * 602 * 4, "ogbn-products": 2_449_029 * 100 * 4}

PAPER_ROWS = {
    "reddit": [3.1, 4.3, 7.3, 16.1, 27.0, 16.7, 9.6],
    "ogbn-products": [2.3, 2.2, 2.2, 2.1, 2.1, 2.0, 1.8],
}


def _reuse_rows(ds, name):
    cache = cache_vectors_for(
        ds.graph.num_src,
        ds.feature_dim,
        paper_fv_bytes=PAPER_FV_BYTES[name],
    )
    lru = [simulate_lru_reuse(ds.graph, nb, cache).reuse for nb in NBS]
    model = [analytic_reuse(ds.graph, nb, cache) for nb in NBS]
    return cache, lru, model


def test_table3_cache_reuse(reddit_bench, products_bench, benchmark):
    rows = []
    for name, ds in [("reddit", reddit_bench), ("ogbn-products", products_bench)]:
        cache, lru, model = _reuse_rows(ds, name)
        rows.append([f"{name} (paper)"] + PAPER_ROWS[name])
        rows.append([f"{name} (LRU sim)"] + [round(x, 1) for x in lru])
        rows.append([f"{name} (analytic)"] + [round(x, 1) for x in model])
        rows.append(
            [
                f"{name} ideal=avg_deg",
                round(average_degree(ds.graph), 1),
            ]
            + [""] * 6
        )
    lines = table(["dataset / nB"] + [str(n) for n in NBS], rows)
    lines.append("")
    lines.append("contract: dense graph peaks at an interior nB; sparse graph stays flat ~2")
    emit("table3_cache_reuse", lines)

    # shape assertions (the reproduction contract)
    _, lru_reddit, _ = _reuse_rows(reddit_bench, "reddit")
    _, lru_products, _ = _reuse_rows(products_bench, "ogbn-products")
    best = NBS[lru_reddit.index(max(lru_reddit))]
    assert best not in (1,), "dense graph must benefit from blocking"
    assert max(lru_products) / max(min(lru_products), 1e-9) < 3.0, "sparse stays flat"

    benchmark(
        simulate_lru_reuse,
        products_bench.graph,
        8,
        cache_vectors_for(
            products_bench.graph.num_src,
            products_bench.feature_dim,
            paper_fv_bytes=PAPER_FV_BYTES["ogbn-products"],
        ),
    )
