"""Extension bench — low-precision DRPA payloads (paper future work).

"To further reduce communication volume, we will deploy low-precision
data formats such FP16 and BFLOAT16" (Section 7).  Contract: fp16/bf16
halve the aggregate-exchange volume with negligible accuracy impact.
"""

import numpy as np
import pytest
from bench_utils import emit, table

from repro.core import DistributedTrainer, TrainConfig
from repro.graph.datasets import load_dataset

EPOCHS = 40


def test_extension_compression(benchmark):
    ds = load_dataset("reddit", scale=0.12, seed=0)
    rows = []
    results = {}
    for mode in ("none", "fp16", "bf16"):
        cfg = TrainConfig(
            num_layers=2, hidden_features=16, learning_rate=0.01,
            eval_every=0, seed=0, compression=mode,
        )
        dt = DistributedTrainer(ds, 4, algorithm="cd-0", config=cfg)
        res = dt.fit(num_epochs=EPOCHS)
        agg_bytes = np.mean([e.comm_bytes for e in res.epochs[1:]])
        results[mode] = (agg_bytes, res.final_test_acc)
        rows.append(
            [mode, round(agg_bytes / 1e6, 3), round(100 * res.final_test_acc, 2)]
        )
    lines = table(["wire precision", "comm_MB/epoch", "test_acc_%"], rows)
    lines.append("")
    lines.append("contract: half the aggregate volume, accuracy within 1%")
    emit("extension_compression", lines)

    none_b, none_acc = results["none"]
    for mode in ("fp16", "bf16"):
        b, acc = results[mode]
        assert b < none_b  # aggregate payloads halved (AllReduce stays fp32)
        assert acc > none_acc - 0.03

    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01,
        eval_every=0, seed=0, compression="bf16",
    )
    dt = DistributedTrainer(ds, 4, algorithm="cd-0", config=cfg)
    benchmark(dt.train_epoch, 0)


def test_extension_executable_distdgl(benchmark):
    """Executable Table 9 complement: measured comm of Dist-DGL-style
    sampled training vs DistGNN cd-5 on the same stand-in and rank count."""
    from repro.sampling import DistMiniBatchTrainer

    ds = load_dataset("ogbn-products", scale=0.1, seed=0)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
    )
    P, epochs = 4, 6

    gnn = DistributedTrainer(ds, P, algorithm="cd-5", config=cfg)
    gnn_res = gnn.fit(num_epochs=epochs)
    dgl = DistMiniBatchTrainer(ds, P, fanouts=(10, 10), batch_size=256, config=cfg)
    dgl_res = dgl.fit(num_epochs=epochs)

    gnn_comm = gnn_res.total_comm_bytes / 1e6
    dgl_comm = sum(e.comm_bytes for e in dgl_res.epochs) / 1e6
    lines = table(
        ["system", "test_acc_%", "comm_MB_total", "epoch_time_ms"],
        [
            [
                "DistGNN cd-5",
                round(100 * gnn_res.final_test_acc, 2),
                round(gnn_comm, 2),
                round(1e3 * gnn_res.avg_epoch_time_s, 1),
            ],
            [
                "DistDGL-style sampled",
                round(100 * dgl_res.final_test_acc, 2),
                round(dgl_comm, 2),
                round(1e3 * dgl_res.avg_epoch_time_s, 1),
            ],
        ],
    )
    lines.append("")
    lines.append("measured counterpart of Table 9 (modelled version: bench_table9)")
    emit("extension_executable_distdgl", lines)

    assert gnn_res.final_test_acc > 0
    assert dgl_comm > 0

    benchmark(dgl.train_epoch, 0)
