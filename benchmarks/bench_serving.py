"""Serving throughput/latency baseline -> ``BENCH_serving.json``.

The repo's second perf-trajectory file (next to ``BENCH_kernels.json``):
measures the online request path of :mod:`repro.serving` — requests per
second and p50/p99 latency — across request batch sizes and cache
configurations, over a Zipf-skewed request stream (heavy-traffic
workloads hit a hot vertex set, which is what makes the LRU result
cache pay).

Three request modes per (batch size, cache) cell:

- ``direct``   synchronous ``PredictionService.predict_logits`` calls —
  the floor: one table gather per request.
- ``batched``  4 client threads submitting through the micro-batcher —
  measures the coalescing path including its queueing latency tax.

Usage::

    python benchmarks/bench_serving.py            # full baseline
    python benchmarks/bench_serving.py --smoke    # CI schema check
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_utils import emit, emit_json, table  # noqa: E402

from repro.core import TrainConfig, Trainer, save_checkpoint  # noqa: E402
from repro.core.checkpoint import training_meta  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.serving import (  # noqa: E402
    InferenceEngine,
    PredictionService,
    ResultCache,
)

SCHEMA_VERSION = 1


def _zipf_stream(rng, num_vertices: int, size: int, skew: float = 1.1) -> np.ndarray:
    """Zipf-distributed vertex ids over a random hot-set permutation."""
    ranks = rng.zipf(skew, size=size) - 1
    perm = rng.permutation(num_vertices)
    return perm[np.minimum(ranks, num_vertices - 1)]


def _percentiles_ms(latencies_s) -> dict:
    lat = np.asarray(latencies_s) * 1e3
    return {
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
    }


def _run_direct(service, stream, batch_size: int) -> dict:
    latencies = []
    t0 = time.perf_counter()
    for lo in range(0, stream.size, batch_size):
        ids = stream[lo : lo + batch_size]
        t1 = time.perf_counter()
        service.predict_logits(ids)
        latencies.append(time.perf_counter() - t1)
    total = time.perf_counter() - t0
    return {
        "requests": len(latencies),
        "total_s": total,
        "reqs_per_s": len(latencies) / total,
        "vertices_per_s": stream.size / total,
        **_percentiles_ms(latencies),
    }


def _run_batched(service, stream, batch_size: int, num_clients: int = 4) -> dict:
    """Concurrent clients; each request's latency includes queueing."""
    shards = [stream[c::num_clients] for c in range(num_clients)]
    latencies = [[] for _ in range(num_clients)]

    def client(c: int) -> None:
        shard = shards[c]
        for lo in range(0, shard.size, batch_size):
            ids = shard[lo : lo + batch_size]
            t1 = time.perf_counter()
            service.predict_logits(ids)
            latencies[c].append(time.perf_counter() - t1)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(num_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = time.perf_counter() - t0
    flat = [l for sub in latencies for l in sub]
    return {
        "requests": len(flat),
        "total_s": total,
        "reqs_per_s": len(flat) / total,
        "vertices_per_s": stream.size / total,
        **_percentiles_ms(flat),
    }


def _make_engine(args):
    """Train briefly, round-trip through a real checkpoint, precompute."""
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=args.seed
    )
    trainer = Trainer(ds, cfg)
    trainer.fit(num_epochs=args.train_epochs)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.npz")
        save_checkpoint(
            path, trainer.model, trainer.optimizer,
            epoch=args.train_epochs, extra=training_meta(cfg),
        )
        engine = InferenceEngine.from_checkpoint(path, ds)
    t0 = time.perf_counter()
    engine.precompute()
    return ds, engine, time.perf_counter() - t0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dataset", default="ogbn-products")
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--train-epochs", type=int, default=3)
    ap.add_argument("--requests", type=int, default=2000,
                    help="request-stream length in vertices per config")
    ap.add_argument("--cache-size", type=int, default=2048)
    ap.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 16, 128])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny run for CI schema validation")
    args = ap.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.05)
        args.requests = 200
        args.batch_sizes = [1, 16]
        args.train_epochs = 1

    ds, engine, precompute_s = _make_engine(args)
    rng = np.random.default_rng(args.seed + 7)

    rows = []
    for batch_size in args.batch_sizes:
        stream_len = max(args.requests * batch_size, batch_size)
        stream = _zipf_stream(rng, ds.num_vertices, stream_len)
        for cache_on in (False, True):
            cache = ResultCache(args.cache_size) if cache_on else None
            with PredictionService(engine, cache=cache) as svc:
                measured = _run_direct(svc, stream, batch_size)
                hit_rate = cache.hit_rate if cache is not None else 0.0
                rows.append({
                    "mode": "direct",
                    "batch_size": batch_size,
                    "cache": "on" if cache_on else "off",
                    "cache_hit_rate": float(hit_rate),
                    **measured,
                })
            cache = ResultCache(args.cache_size) if cache_on else None
            with PredictionService(
                engine, cache=cache, batch=True,
                max_batch=max(64, batch_size), max_wait_ms=0.5,
            ) as svc:
                measured = _run_batched(svc, stream, batch_size)
                hit_rate = cache.hit_rate if cache is not None else 0.0
                rows.append({
                    "mode": "batched",
                    "batch_size": batch_size,
                    "cache": "on" if cache_on else "off",
                    "cache_hit_rate": float(hit_rate),
                    **measured,
                })

    payload = {
        "schema_version": SCHEMA_VERSION,
        "dataset": ds.name,
        "scale": args.scale,
        "num_vertices": ds.num_vertices,
        "num_edges": ds.num_edges,
        "cache_size": args.cache_size,
        "precompute_s": precompute_s,
        "smoke": bool(args.smoke),
        "results": rows,
    }
    path = emit_json("serving", payload)
    emit(
        "serving_table",
        table(
            ["mode", "batch", "cache", "req/s", "p50 ms", "p99 ms", "hit%"],
            [
                [
                    r["mode"], r["batch_size"], r["cache"],
                    f"{r['reqs_per_s']:.0f}", f"{r['p50_ms']:.3f}",
                    f"{r['p99_ms']:.3f}", f"{100 * r['cache_hit_rate']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    print(f"\nprecompute: {precompute_s:.3f}s for {ds.num_vertices} vertices")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
