"""Serving throughput/latency baseline -> ``BENCH_serving.json``.

The repo's second perf-trajectory file (next to ``BENCH_kernels.json``):
measures the online request path of :mod:`repro.serving` over a
Zipf-skewed request stream (heavy-traffic workloads hit a hot vertex
set, which is what makes the LRU result cache pay).

Three series (schema v2):

- ``results`` — closed-loop floor, as in schema v1: ``direct``
  synchronous ``predict_logits`` calls and ``batched`` micro-batcher
  clients across (batch size, cache) cells.
- ``offered_load`` — **open-loop** latency-vs-offered-load curves
  through the bounded :class:`~repro.serving.frontend.ServingFrontend`:
  seeded Poisson and bursty (MMPP) arrivals swept across fractions and
  multiples of the measured closed-loop capacity, reporting offered vs
  achieved req/s, p50/p99 from scheduled arrival time (no coordinated
  omission), and reject/timeout rates — the saturation knee is where
  achieved flattens and p99/rejects take off.
- ``ingest_while_serving`` — sustained predict/topk traffic at half
  capacity while a background ingester applies a continuous stream of
  edge updates (each one a graceful drain + incremental refresh):
  the cost of mutation-while-serving in latency and shed requests.
- ``latency_decomposition`` — a fully-traced run at half capacity:
  per-endpoint mean queue / gate / batch / compute / feature component
  latencies cross-checked against the end-to-end mean (attributed sum
  and unattributed slack), from :mod:`repro.obs.trace`.

Usage::

    python benchmarks/bench_serving.py            # full baseline
    python benchmarks/bench_serving.py --smoke    # CI schema check
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_utils import emit, emit_json, table  # noqa: E402

from repro.core import TrainConfig, Trainer, save_checkpoint  # noqa: E402
from repro.core.checkpoint import training_meta  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.serving import (  # noqa: E402
    IncrementalRefresher,
    InferenceEngine,
    PredictionService,
    ResultCache,
    ServingFrontend,
)
from repro.serving.loadgen import (  # noqa: E402
    ARRIVALS,
    FrontendTarget,
    build_schedule,
    run_open_loop,
)

SCHEMA_VERSION = 2

#: open-loop sweep mix: reads only — every update quiesces the pool, so
#: even a 2% update share at N× capacity is a drain storm that floors
#: the whole curve; mutation-while-serving cost is its own series.
SWEEP_MIX = {"predict": 0.75, "topk": 0.25}


def _zipf_stream(rng, num_vertices: int, size: int, skew: float = 1.1) -> np.ndarray:
    """Zipf-distributed vertex ids over a random hot-set permutation."""
    ranks = rng.zipf(skew, size=size) - 1
    perm = rng.permutation(num_vertices)
    return perm[np.minimum(ranks, num_vertices - 1)]


def _percentiles_ms(latencies_s) -> dict:
    lat = np.asarray(latencies_s) * 1e3
    return {
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
    }


def _run_direct(service, stream, batch_size: int) -> dict:
    latencies = []
    t0 = time.perf_counter()
    for lo in range(0, stream.size, batch_size):
        ids = stream[lo : lo + batch_size]
        t1 = time.perf_counter()
        service.predict_logits(ids)
        latencies.append(time.perf_counter() - t1)
    total = time.perf_counter() - t0
    return {
        "requests": len(latencies),
        "total_s": total,
        "reqs_per_s": len(latencies) / total,
        "vertices_per_s": stream.size / total,
        **_percentiles_ms(latencies),
    }


def _run_batched(service, stream, batch_size: int, num_clients: int = 4) -> dict:
    """Concurrent clients; each request's latency includes queueing."""
    shards = [stream[c::num_clients] for c in range(num_clients)]
    latencies = [[] for _ in range(num_clients)]

    def client(c: int) -> None:
        shard = shards[c]
        for lo in range(0, shard.size, batch_size):
            ids = shard[lo : lo + batch_size]
            t1 = time.perf_counter()
            service.predict_logits(ids)
            latencies[c].append(time.perf_counter() - t1)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(num_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = time.perf_counter() - t0
    flat = [l for sub in latencies for l in sub]
    return {
        "requests": len(flat),
        "total_s": total,
        "reqs_per_s": len(flat) / total,
        "vertices_per_s": stream.size / total,
        **_percentiles_ms(flat),
    }


def _make_engine(args):
    """Train briefly, round-trip through a real checkpoint, precompute."""
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=args.seed
    )
    trainer = Trainer(ds, cfg)
    trainer.fit(num_epochs=args.train_epochs)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.npz")
        save_checkpoint(
            path, trainer.model, trainer.optimizer,
            epoch=args.train_epochs, extra=training_meta(cfg),
        )
        engine = InferenceEngine.from_checkpoint(path, ds)
    t0 = time.perf_counter()
    engine.precompute()
    return ds, engine, time.perf_counter() - t0


# -- open-loop series (schema v2) -------------------------------------------------


def _fresh_frontend(engine, args, tracer=None) -> ServingFrontend:
    """The production composition behind one rate point: cache +
    micro-batcher + incremental refresher + bounded frontend."""
    service = PredictionService(
        engine,
        cache=ResultCache(args.cache_size),
        batch=True,
        max_batch=64,
        max_wait_ms=0.5,
        refresher=IncrementalRefresher(engine),
    )
    return ServingFrontend(
        service,
        num_workers=args.workers,
        max_queue=args.max_queue,
        default_timeout_s=args.request_timeout,
        tracer=tracer,
    )


def _estimate_capacity(engine, args, duration_s: float) -> float:
    """Closed-loop ceiling (req/s): ``workers`` clients re-issuing
    batch-8 predicts as fast as the service answers.  The offered-load
    sweep expresses its rates as fractions/multiples of this number, so
    the knee lands inside the swept range on any machine."""
    frontend = _fresh_frontend(engine, args)
    svc = frontend.service
    rng = np.random.default_rng(args.seed + 13)
    stream = _zipf_stream(rng, engine.num_vertices, 4096)
    counts = [0] * args.workers
    deadline = time.perf_counter() + duration_s

    def client(c: int) -> None:
        i = c
        while time.perf_counter() < deadline:
            ids = stream[(i * 8) % 4088 : (i * 8) % 4088 + 8]
            frontend.call("predict", lambda: svc.predict_logits(ids))
            counts[c] += 1
            i += args.workers

    threads = [threading.Thread(target=client, args=(c,)) for c in range(args.workers)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    frontend.close()
    svc.close()
    return sum(counts) / elapsed


def _dispatch_ceiling(args, duration_s: float = 0.5) -> float:
    """Max req/s the open-loop generator itself can fire (null target).

    At small bench scales the engine outruns a Python dispatcher; rate
    points above this ceiling would measure the generator, not the
    server, so the sweep base is capped well below it."""
    rng = np.random.default_rng(1)
    arrivals = ARRIVALS["poisson"](50_000.0, duration_s, rng)
    schedule = build_schedule(arrivals, 100, rng, mix={"predict": 1.0},
                              batch_size=8)
    report = run_open_loop(
        lambda req: None, schedule, num_clients=args.loadgen_clients
    )
    return report.offered / max(report.elapsed_s, 1e-9)


def _run_offered_point(engine, args, arrival: str, rate: float,
                       duration_s: float, seed: int) -> dict:
    """One (arrival process, offered rate) point through a fresh stack."""
    frontend = _fresh_frontend(engine, args)
    try:
        rng = np.random.default_rng(seed)
        arrivals = ARRIVALS[arrival](rate, duration_s, rng)
        schedule = build_schedule(
            arrivals, engine.num_vertices, rng, mix=SWEEP_MIX, batch_size=8
        )
        report = run_open_loop(
            FrontendTarget(frontend), schedule, num_clients=args.loadgen_clients
        )
    finally:
        frontend.close()
        frontend.service.close()
    s = report.summary()
    return {
        "arrival": arrival,
        "target_rps": rate,
        "offered": s["offered"],
        "offered_rps": s["offered_rps"],
        "achieved_rps": s["achieved_rps"],
        "ok": s["ok"],
        "rejected": s["rejected"],
        "timeouts": s["timeouts"],
        "errors": s["errors"],
        "reject_rate": s["reject_rate"],
        "timeout_rate": s["timeout_rate"],
        # quantile keys are omitted from the summary when nothing was
        # served (e.g. a fully-saturated point); keep the row schema
        # stable with an explicit 0.0
        "p50_ms": s.get("p50_ms", 0.0),
        "p99_ms": s.get("p99_ms", 0.0),
    }


def _run_ingest_while_serving(engine, args, rate: float,
                              duration_s: float) -> dict:
    """Read traffic at ``rate`` while a background ingester applies a
    continuous edge-update stream (drain + incremental refresh each)."""
    frontend = _fresh_frontend(engine, args)
    svc = frontend.service
    stop = threading.Event()
    updates_applied = [0]
    update_errors = [0]

    def ingester() -> None:
        rng = np.random.default_rng(args.seed + 101)
        while not stop.is_set():
            edges = rng.integers(0, engine.num_vertices, size=(8, 2))
            try:
                frontend.update_edges(add=edges)
                updates_applied[0] += 1
            except Exception:  # noqa: BLE001 — counted, bench must finish
                update_errors[0] += 1
            stop.wait(0.05)

    t = threading.Thread(target=ingester, name="bench-ingester", daemon=True)
    try:
        rng = np.random.default_rng(args.seed + 31)
        arrivals = ARRIVALS["poisson"](rate, duration_s, rng)
        schedule = build_schedule(
            arrivals, engine.num_vertices, rng,
            mix={"predict": 0.75, "topk": 0.25}, batch_size=8,
        )
        t.start()
        report = run_open_loop(
            FrontendTarget(frontend), schedule, num_clients=args.loadgen_clients
        )
    finally:
        stop.set()
        t.join(timeout=30.0)
        snap = frontend.metrics_snapshot()
        frontend.close()
        svc.close()
    s = report.summary()
    update_ep = snap["endpoints"].get("update_edges", {})
    return {
        "target_rps": rate,
        "duration_s": duration_s,
        "offered": s["offered"],
        "achieved_rps": s["achieved_rps"],
        "reject_rate": s["reject_rate"],
        "p50_ms": s.get("p50_ms", 0.0),
        "p99_ms": s.get("p99_ms", 0.0),
        "updates_applied": updates_applied[0],
        "update_errors": update_errors[0],
        "update_p50_ms": update_ep.get("p50_ms", 0.0),
        "update_p99_ms": update_ep.get("p99_ms", 0.0),
        "num_drains": snap["num_drains"],
    }


def _run_decomposition(engine, args, rate: float, duration_s: float) -> dict:
    """Fully-traced run at ``rate``: where does each endpoint's latency
    go?  Returns per-endpoint component means plus the conservation
    check (attributed component sum vs end-to-end mean)."""
    from repro.obs.trace import Tracer

    tracer = Tracer(enabled=True, sample_rate=1.0, capacity=8192)
    frontend = _fresh_frontend(engine, args, tracer=tracer)
    try:
        rng = np.random.default_rng(args.seed + 57)
        arrivals = ARRIVALS["poisson"](rate, duration_s, rng)
        schedule = build_schedule(
            arrivals, engine.num_vertices, rng, mix=SWEEP_MIX, batch_size=8
        )
        run_open_loop(
            FrontendTarget(frontend), schedule, num_clients=args.loadgen_clients
        )
    finally:
        frontend.close()
        frontend.service.close()
    endpoints = {}
    for name, dec in tracer.decomposition().items():
        endpoints[name] = {
            "count": dec["count"],
            "e2e_mean_ms": dec["e2e"]["mean_ms"],
            "e2e_p99_ms": dec["e2e"]["p99_ms"],
            "components_mean_ms": {
                c: v["mean_ms"] for c, v in dec["components"].items()
            },
            "attributed_mean_ms": dec["component_sum_mean_ms"],
            "unattributed_mean_ms": dec["unattributed_mean_ms"],
        }
    return {
        "target_rps": rate,
        "duration_s": duration_s,
        "trace": tracer.stats(),
        "endpoints": endpoints,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dataset", default="ogbn-products")
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--train-epochs", type=int, default=3)
    ap.add_argument("--requests", type=int, default=2000,
                    help="request-stream length in vertices per config")
    ap.add_argument("--cache-size", type=int, default=2048)
    ap.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 16, 128])
    ap.add_argument("--workers", type=int, default=4,
                    help="frontend worker-pool size for the open-loop series")
    ap.add_argument("--max-queue", type=int, default=16,
                    help="frontend admission-queue bound (kept below "
                    "--loadgen-clients so saturation actually sheds)")
    ap.add_argument("--request-timeout", type=float, default=5.0,
                    help="per-request deadline in the open-loop series")
    ap.add_argument("--loadgen-clients", type=int, default=32,
                    help="open-loop client threads")
    ap.add_argument("--sweep-fractions", type=float, nargs="+",
                    default=[0.25, 0.5, 0.75, 1.0, 1.5, 2.0],
                    help="offered rates as fractions of measured capacity")
    ap.add_argument("--point-duration", type=float, default=3.0,
                    help="seconds per offered-load rate point")
    ap.add_argument("--ingest-duration", type=float, default=5.0,
                    help="seconds for the ingest-while-serving series")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny run for CI schema validation")
    args = ap.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.05)
        args.requests = 200
        args.batch_sizes = [1, 16]
        args.train_epochs = 1
        args.sweep_fractions = [0.5, 2.0]
        args.point_duration = 0.6
        args.ingest_duration = 1.0

    ds, engine, precompute_s = _make_engine(args)
    rng = np.random.default_rng(args.seed + 7)

    rows = []
    for batch_size in args.batch_sizes:
        stream_len = max(args.requests * batch_size, batch_size)
        stream = _zipf_stream(rng, ds.num_vertices, stream_len)
        for cache_on in (False, True):
            cache = ResultCache(args.cache_size) if cache_on else None
            with PredictionService(engine, cache=cache) as svc:
                measured = _run_direct(svc, stream, batch_size)
                hit_rate = cache.hit_rate if cache is not None else 0.0
                rows.append({
                    "mode": "direct",
                    "batch_size": batch_size,
                    "cache": "on" if cache_on else "off",
                    "cache_hit_rate": float(hit_rate),
                    **measured,
                })
            cache = ResultCache(args.cache_size) if cache_on else None
            with PredictionService(
                engine, cache=cache, batch=True,
                max_batch=max(64, batch_size), max_wait_ms=0.5,
            ) as svc:
                measured = _run_batched(svc, stream, batch_size)
                hit_rate = cache.hit_rate if cache is not None else 0.0
                rows.append({
                    "mode": "batched",
                    "batch_size": batch_size,
                    "cache": "on" if cache_on else "off",
                    "cache_hit_rate": float(hit_rate),
                    **measured,
                })

    # -- open-loop offered-load sweep (schema v2) ---------------------------------
    capacity_rps = _estimate_capacity(
        engine, args, duration_s=min(args.point_duration, 2.0)
    )
    ceiling_rps = _dispatch_ceiling(args)
    # keep every swept rate honestly generatable: the top fraction (2x)
    # must still sit below the dispatcher's own ceiling
    sweep_base_rps = min(capacity_rps, 0.4 * ceiling_rps)
    print(f"closed-loop capacity estimate: {capacity_rps:.0f} req/s")
    print(f"loadgen dispatch ceiling     : {ceiling_rps:.0f} req/s")
    print(f"sweep base (1.0x)            : {sweep_base_rps:.0f} req/s")
    offered_rows = []
    for arrival in ("poisson", "bursty"):
        for frac in args.sweep_fractions:
            point = _run_offered_point(
                engine, args, arrival,
                rate=frac * sweep_base_rps,
                duration_s=args.point_duration,
                seed=args.seed + int(1000 * frac),
            )
            point["rate_fraction"] = frac
            offered_rows.append(point)
            print(
                f"  {arrival:<8s} {frac:>4.2f}x: offered "
                f"{point['offered_rps']:7.1f} achieved "
                f"{point['achieved_rps']:7.1f} req/s  "
                f"p99 {point['p99_ms']:7.2f} ms  "
                f"reject {100 * point['reject_rate']:5.1f}%"
            )

    ingest_row = _run_ingest_while_serving(
        engine, args, rate=0.5 * sweep_base_rps, duration_s=args.ingest_duration
    )

    decomposition = _run_decomposition(
        engine, args, rate=0.5 * sweep_base_rps,
        duration_s=args.point_duration,
    )
    for name, ep in sorted(decomposition["endpoints"].items()):
        parts = "  ".join(
            f"{c} {v:.2f}" for c, v in sorted(ep["components_mean_ms"].items())
        )
        print(f"  decomp {name:<14s} e2e {ep['e2e_mean_ms']:6.2f} ms | "
              f"{parts}  (attributed {ep['attributed_mean_ms']:.2f}, "
              f"slack {ep['unattributed_mean_ms']:.2f})")

    payload = {
        "schema_version": SCHEMA_VERSION,
        "dataset": ds.name,
        "scale": args.scale,
        "num_vertices": ds.num_vertices,
        "num_edges": ds.num_edges,
        "cache_size": args.cache_size,
        "precompute_s": precompute_s,
        "smoke": bool(args.smoke),
        "results": rows,
        "frontend": {
            "workers": args.workers,
            "max_queue": args.max_queue,
            "request_timeout_s": args.request_timeout,
            "loadgen_clients": args.loadgen_clients,
        },
        "capacity_rps": capacity_rps,
        "dispatch_ceiling_rps": ceiling_rps,
        "sweep_base_rps": sweep_base_rps,
        "offered_load": offered_rows,
        "ingest_while_serving": ingest_row,
        "latency_decomposition": decomposition,
    }
    path = emit_json("serving", payload)
    emit(
        "serving_table",
        table(
            ["mode", "batch", "cache", "req/s", "p50 ms", "p99 ms", "hit%"],
            [
                [
                    r["mode"], r["batch_size"], r["cache"],
                    f"{r['reqs_per_s']:.0f}", f"{r['p50_ms']:.3f}",
                    f"{r['p99_ms']:.3f}", f"{100 * r['cache_hit_rate']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    emit(
        "serving_offered_load_table",
        table(
            ["arrival", "x cap", "offered/s", "achieved/s",
             "p50 ms", "p99 ms", "reject%", "timeout%"],
            [
                [
                    r["arrival"], f"{r['rate_fraction']:.2f}",
                    f"{r['offered_rps']:.0f}", f"{r['achieved_rps']:.0f}",
                    f"{r['p50_ms']:.2f}", f"{r['p99_ms']:.2f}",
                    f"{100 * r['reject_rate']:.1f}",
                    f"{100 * r['timeout_rate']:.1f}",
                ]
                for r in offered_rows
            ],
        ),
    )
    print(f"\nprecompute: {precompute_s:.3f}s for {ds.num_vertices} vertices")
    print(
        f"ingest-while-serving: {ingest_row['achieved_rps']:.1f} req/s with "
        f"{ingest_row['updates_applied']} updates "
        f"({ingest_row['num_drains']} drains), "
        f"p99 {ingest_row['p99_ms']:.2f} ms"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
