"""Fig. 4 — optimization breakdown: baseline -> +DS -> +Block -> +LR.

Paper: dynamic scheduling (DS) is the big win on OGBN-Products (power-law
imbalance), cache blocking dominates on Reddit, and LIBXSMM loop
reordering helps both.  We reproduce the breakdown with the traffic model
(IO), the scheduling simulator (imbalance), and the roofline (time), and
cross-check with measured kernel walltime for the blocked/reordered steps.
"""

import pytest
from bench_utils import emit, table

from repro.cachesim import cache_vectors_for
from repro.cachesim.traffic import traffic_for_kernel
from repro.kernels.scheduling import per_destination_work, simulate_schedule
from repro.kernels.tuning import choose_num_blocks
from repro.perf.hardware import XEON_8280
from repro.perf.roofline import KernelCost, SCALAR_INSTRUCTION_FACTOR, roofline_time

PAPER_FV_BYTES = {"reddit": 232_965 * 602 * 4, "ogbn-products": 2_449_029 * 100 * 4}

VARIANTS = ("baseline", "dynamic", "blocked", "reordered")


def _breakdown(ds, name, threads=28):
    cache = cache_vectors_for(
        ds.graph.num_src, ds.feature_dim, paper_fv_bytes=PAPER_FV_BYTES[name]
    )
    nb = choose_num_blocks(ds.graph, ds.feature_dim, cache_vectors=cache)
    work = per_destination_work(ds.graph, ds.feature_dim)
    imb_static = simulate_schedule(work, threads, policy="static").imbalance
    imb_dynamic = simulate_schedule(
        work, threads, policy="dynamic", chunk=max(1, work.size // (threads * 32))
    ).imbalance
    rows = []
    for variant in VARIANTS:
        io = traffic_for_kernel(
            ds.graph, ds.feature_dim, variant, cache, num_blocks=nb
        )
        imbalance = imb_static if variant == "baseline" else imb_dynamic
        instr = SCALAR_INSTRUCTION_FACTOR if variant != "reordered" else 1.0
        t = roofline_time(
            KernelCost(
                bytes_moved=io.total,
                flops=ds.graph.num_edges * ds.feature_dim,
                imbalance=imbalance,
                instruction_factor=instr,
            ),
            XEON_8280,
        )
        rows.append(
            [
                variant,
                round(io.total / 1e6, 1),
                round(imbalance, 2),
                round(instr, 1),
                round(t * 1e3, 2),
            ]
        )
    return nb, rows


def test_fig4_optimization_breakdown(reddit_bench, products_bench, benchmark):
    lines = []
    times = {}
    for name, ds in [("reddit", reddit_bench), ("ogbn-products", products_bench)]:
        nb, rows = _breakdown(ds, name)
        lines.append(f"--- {name} (auto nB={nb}) ---")
        lines += table(
            ["variant", "modeled_IO_MB", "imbalance", "instr_factor", "modeled_ms"],
            rows,
        )
        lines.append("")
        times[name] = {r[0]: r[4] for r in rows}
    lines.append("contract: DS step helps Products more than Reddit;")
    lines.append("blocking step helps Reddit more than Products; LR helps both")
    emit("fig4_opt_breakdown", lines)

    # shape assertions
    r, p = times["reddit"], times["ogbn-products"]
    ds_gain_reddit = r["baseline"] / r["dynamic"]
    ds_gain_products = p["baseline"] / p["dynamic"]
    assert ds_gain_products >= ds_gain_reddit - 0.05
    block_gain_reddit = r["dynamic"] / r["blocked"]
    block_gain_products = p["dynamic"] / p["blocked"]
    assert block_gain_reddit >= block_gain_products - 0.05
    assert r["reordered"] <= r["blocked"] + 1e-9
    assert p["reordered"] <= p["blocked"] + 1e-9

    benchmark(_breakdown, products_bench, "ogbn-products")
