"""Table 6 — per-partition peak memory and split-vertex share, OGBN-Papers.

Paper values (GB): at 32/64/128 partitions cd-0 199/124/78,
cd-5 311/196/120, 0c 180/112/70; split vertices 90/92/93%.
Contracts: cd-5 > cd-0 > 0c at every count; memory shrinks with count;
split share stays high and grows slightly.
"""

import pytest
from bench_utils import emit, table

from repro.partition import build_partitions, libra_partition, partition_stats
from repro.perf.memory import graphsage_memory_bytes, papers_partition_vertices

PAPER = {
    32: {"cd-0": 199, "cd-5": 311, "0c": 180, "split%": 90},
    64: {"cd-0": 124, "cd-5": 196, "0c": 112, "split%": 92},
    128: {"cd-0": 78, "cd-5": 120, "0c": 70, "split%": 93},
}
PAPERS_RF = {32: 4.63, 64: 5.63, 128: 6.62}
ALGOS = ("cd-0", "cd-5", "0c")


def test_table6_memory(papers_bench, benchmark):
    # measure split share from the stand-in partitioning
    split_shares = {}
    for p in (32, 64, 128):
        parted = build_partitions(
            papers_bench.graph, libra_partition(papers_bench.graph, p, seed=0), p
        )
        split_shares[p] = partition_stats(parted).avg_split_fraction_per_partition

    rows = []
    totals = {}
    for p in (32, 64, 128):
        n = papers_partition_vertices(p, PAPERS_RF[p])
        entry = [p]
        for algo in ALGOS:
            m = graphsage_memory_bytes(
                n,
                feature_dim=128,
                hidden_dims=[256, 256],
                num_classes=172,
                algorithm=algo,
                split_fraction=split_shares[p],
            )
            totals[(p, algo)] = m.total_GB
            entry.append(round(m.total_GB, 1))
            entry.append(PAPER[p][algo])
        entry.append(round(100 * split_shares[p], 1))
        entry.append(PAPER[p]["split%"])
        rows.append(entry)
    lines = table(
        [
            "P",
            "cd-0_GB",
            "paper",
            "cd-5_GB",
            "paper",
            "0c_GB",
            "paper",
            "split%",
            "paper",
        ],
        rows,
    )
    emit("table6_memory", lines)

    for p in (32, 64, 128):
        assert totals[(p, "0c")] < totals[(p, "cd-0")] < totals[(p, "cd-5")]
    for algo in ALGOS:
        assert totals[(32, algo)] > totals[(64, algo)] > totals[(128, algo)]
    assert all(s > 0.5 for s in split_shares.values())

    benchmark(
        graphsage_memory_bytes,
        papers_partition_vertices(32, 4.63),
        128,
        [256, 256],
        172,
        algorithm="cd-5",
        split_fraction=0.9,
    )
