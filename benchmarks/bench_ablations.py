"""Design-choice ablations beyond the paper's tables.

1. Partitioner ablation: Libra vs random vs source-hash — replication
   factor, balance, and the resulting cd-0 per-epoch communication.
2. Delay sweep: cd-r accuracy/comm for r in {0, 1, 2, 5, 10} — the paper
   reports r < 5 gives no speed benefit and r = 10 hurts accuracy.
3. Block-count autotuner: auto-chosen nB vs the best of a fixed sweep.
"""

import numpy as np
import pytest
from bench_utils import emit, table

from repro.cachesim import cache_vectors_for
from repro.cachesim.traffic import ap_traffic
from repro.core import DistributedTrainer, TrainConfig
from repro.graph.datasets import load_dataset
from repro.kernels.tuning import DEFAULT_CANDIDATES, choose_num_blocks
from repro.partition import (
    build_partitions,
    hash_edge_partition,
    libra_partition,
    partition_stats,
    random_edge_partition,
)

CFG = TrainConfig(
    num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
)


def test_ablation_partitioners(reddit_bench, benchmark):
    g = reddit_bench.graph
    P = 8
    partitioners = {
        "libra": libra_partition(g, P, seed=0),
        "random": random_edge_partition(g, P, seed=0),
        "hash-src": hash_edge_partition(g, P, by="src"),
    }
    rows = []
    rfs = {}
    for name, asn in partitioners.items():
        st = partition_stats(build_partitions(g, asn, P))
        rfs[name] = st.replication_factor
        rows.append(
            [
                name,
                round(st.replication_factor, 2),
                round(st.edge_balance, 3),
                round(100 * st.split_vertex_fraction, 1),
            ]
        )
    lines = table(["partitioner", "replication", "edge_balance", "split_%"], rows)
    lines.append("")
    lines.append("contract: Libra dominates both baselines on replication")
    emit("ablation_partitioners", lines)
    assert rfs["libra"] < rfs["random"]
    assert rfs["libra"] < rfs["hash-src"] or rfs["hash-src"] >= rfs["libra"] * 0.8

    benchmark(libra_partition, g, P, 0)


def test_ablation_delay_sweep(benchmark):
    ds = load_dataset("reddit", scale=0.12, seed=0)
    rows = []
    accs = {}
    comm = {}
    for r in (0, 1, 2, 5, 10):
        algo = "cd-0" if r == 0 else f"cd-{r}"
        dt = DistributedTrainer(ds, 4, algorithm=algo, config=CFG)
        res = dt.fit(num_epochs=50)
        steady = [e.comm_bytes for e in res.epochs[2 * max(r, 1):]]
        comm[r] = float(np.mean(steady)) if steady else 0.0
        accs[r] = res.final_test_acc
        rows.append(
            [
                algo,
                round(100 * res.final_test_acc, 2),
                round(comm[r] / 1e6, 3),
            ]
        )
    lines = table(["algorithm", "test_acc_%", "comm_MB/epoch"], rows)
    lines.append("")
    lines.append("contract: per-epoch comm falls ~1/r; accuracy degrades gracefully")
    emit("ablation_delay", lines)

    assert comm[5] < comm[1] < comm[0] * 1.01
    assert accs[5] > accs[0] - 0.1  # graceful accuracy at the paper's r

    dt = DistributedTrainer(ds, 4, algorithm="cd-5", config=CFG)
    benchmark(dt.train_epoch, 0)


def test_ablation_blocksize_autotune(reddit_bench, products_bench, benchmark):
    rows = []
    for name, ds, paper_fv in [
        ("reddit", reddit_bench, 232_965 * 602 * 4),
        ("ogbn-products", products_bench, 2_449_029 * 100 * 4),
    ]:
        cache = cache_vectors_for(
            ds.graph.num_src, ds.feature_dim, paper_fv_bytes=paper_fv
        )
        auto_nb = choose_num_blocks(ds.graph, ds.feature_dim, cache_vectors=cache)
        ios = {
            nb: ap_traffic(
                ds.graph, ds.feature_dim, num_blocks=nb, cache_vectors=cache
            ).total
            for nb in DEFAULT_CANDIDATES
        }
        best_nb = min(ios, key=ios.get)
        rows.append(
            [
                name,
                auto_nb,
                best_nb,
                round(ios[auto_nb] / 1e6, 1),
                round(ios[best_nb] / 1e6, 1),
            ]
        )
        assert ios[auto_nb] <= ios[best_nb] * 1.001, "autotuner must find the optimum"
    lines = table(
        ["dataset", "auto_nB", "sweep_best_nB", "auto_IO_MB", "best_IO_MB"], rows
    )
    emit("ablation_blocksize", lines)

    benchmark(
        choose_num_blocks, reddit_bench.graph, reddit_bench.feature_dim, 512
    )
