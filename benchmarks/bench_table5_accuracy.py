"""Table 5 — test accuracy of cd-0 / cd-5 / 0c vs partition count.

Paper contract: all three algorithms stay within ~1% of the single-socket
accuracy at every socket count (with retuned learning rates); cd-0
matches exactly in expectation.  We run the real trainers on the labelled
Reddit and OGBN-Products stand-ins.
"""

import pytest
from bench_utils import emit, table

from repro.core import DistributedTrainer, Trainer, TrainConfig
from repro.graph.datasets import load_dataset

EPOCHS = 60
ALGOS = ("cd-0", "cd-5", "0c")


def _dataset_rows(ds, num_layers, hidden, lr, partition_counts):
    cfg = TrainConfig(
        num_layers=num_layers,
        hidden_features=hidden,
        learning_rate=lr,
        eval_every=0,
        seed=0,
    )
    single = Trainer(ds, cfg).fit(num_epochs=EPOCHS)
    rows = [[1, "single", round(100 * single.final_test_acc, 2), lr]]
    accs = {"single": single.final_test_acc}
    for p in partition_counts:
        for algo in ALGOS:
            res = DistributedTrainer(ds, p, algorithm=algo, config=cfg).fit(
                num_epochs=EPOCHS
            )
            rows.append([p, algo, round(100 * res.final_test_acc, 2), lr])
            accs[(p, algo)] = res.final_test_acc
    return rows, accs


def test_table5_accuracy(benchmark):
    # smaller stand-ins so 60-epoch sweeps stay fast
    reddit = load_dataset("reddit", scale=0.15, seed=0)
    products = load_dataset("ogbn-products", scale=0.12, seed=0)
    lines = []
    all_accs = {}
    for name, ds, layers, hidden, lr, counts in [
        ("reddit", reddit, 2, 16, 0.01, (2, 4)),
        ("ogbn-products", products, 3, 32, 0.01, (2, 4)),
    ]:
        rows, accs = _dataset_rows(ds, layers, hidden, lr, counts)
        lines.append(f"--- {name} (epochs={EPOCHS}) ---")
        lines += table(["#partitions", "algorithm", "test_acc_%", "lr"], rows)
        lines.append("")
        all_accs[name] = accs
    lines.append("paper: every algorithm within ~1% of single socket")
    lines.append("(cd-0 is mathematically identical to single socket here)")
    emit("table5_accuracy", lines)

    for name, accs in all_accs.items():
        single = accs["single"]
        for key, acc in accs.items():
            if key == "single":
                continue
            p, algo = key
            # cd-0 is mathematically identical to single socket; 0c/cd-r
            # get a loose band here because the paper's 1%-band protocol
            # retunes the learning rate per configuration (Table 5 uses
            # lr up to 0.08 for 0c/cd-5) and trains 200-300 epochs, while
            # this bench holds lr fixed at the single-socket value.
            tol = 0.01 if algo == "cd-0" else 0.12
            assert acc >= single - tol, (
                f"{name} {algo} P={p}: {acc:.3f} vs single {single:.3f}"
            )

    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
    )
    trainer = Trainer(reddit, cfg)
    benchmark(trainer.train_epoch, 0)
