"""Observability overhead baseline -> ``BENCH_obs.json``.

Measures what end-to-end request tracing (:mod:`repro.obs.trace`) costs
on the serving hot path.  The same seeded closed-loop predict workload
runs under three tracing modes through the full production composition
(cache + micro-batcher + bounded frontend):

- ``off``     — tracing disabled (the default; every ``current_span()``
  site sees ``None`` and the per-request cost is one sampling check).
- ``sampled`` — head-based sampling at ``--sample-rate`` (default 10%),
  the recommended production setting.
- ``full``    — every request traced (``sample_rate=1.0``), the debug
  setting; its run also yields the latency-decomposition sanity block.

Modes are interleaved round-robin across ``--rounds`` repetitions so
machine noise (thermal drift, page cache warmup) spreads evenly instead
of biasing whichever mode runs last.  The committed baseline must show
``sampled`` p99 overhead within 5% of ``off`` — that bound is what makes
always-on sampled tracing a defensible default, and CI gates on it.

Usage::

    python benchmarks/bench_obs.py            # full baseline
    python benchmarks/bench_obs.py --smoke    # tiny run for CI schema check
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_utils import emit, emit_json, table  # noqa: E402

from repro.core import TrainConfig, Trainer, save_checkpoint  # noqa: E402
from repro.core.checkpoint import training_meta  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.obs.trace import Tracer, validate_chrome_trace, chrome_trace  # noqa: E402
from repro.serving import (  # noqa: E402
    InferenceEngine,
    PredictionService,
    ResultCache,
    ServingFrontend,
)

SCHEMA_VERSION = 1

#: committed-baseline acceptance bound: sampled-mode p99 must stay
#: within this fraction of tracing-off p99 (CI reads it from the JSON)
SAMPLED_P99_BOUND = 0.05


def _make_engine(args):
    """Train briefly, round-trip through a real checkpoint, precompute."""
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=args.seed
    )
    trainer = Trainer(ds, cfg)
    trainer.fit(num_epochs=args.train_epochs)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.npz")
        save_checkpoint(
            path, trainer.model, trainer.optimizer,
            epoch=args.train_epochs, extra=training_meta(cfg),
        )
        engine = InferenceEngine.from_checkpoint(path, ds)
    engine.precompute()
    return ds, engine


def _fresh_frontend(engine, args, tracer) -> ServingFrontend:
    service = PredictionService(
        engine,
        cache=ResultCache(args.cache_size),
        batch=True,
        max_batch=64,
        max_wait_ms=0.5,
    )
    return ServingFrontend(
        service,
        num_workers=args.workers,
        max_queue=args.max_queue,
        default_timeout_s=args.request_timeout,
        tracer=tracer,
    )


def _closed_loop_round(frontend, engine, args, seed: int) -> list:
    """``--clients`` threads each firing ``--requests-per-client``
    batch-8 predicts as fast as the service answers; per-request
    latencies in seconds."""
    svc = frontend.service
    rng = np.random.default_rng(seed)
    stream = rng.integers(0, engine.num_vertices, size=4096)
    latencies = [[] for _ in range(args.clients)]

    def client(c: int) -> None:
        i = c
        for _ in range(args.requests_per_client):
            lo = (i * 8) % 4088
            ids = stream[lo : lo + 8]
            t1 = time.perf_counter()
            try:
                frontend.call("predict", lambda: svc.predict_logits(ids))
            except Exception:  # noqa: BLE001 — shed under overload, bench continues
                continue
            latencies[c].append(time.perf_counter() - t1)
            i += args.clients

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [l for sub in latencies for l in sub]


def _mode_tracer(mode: str, args):
    if mode == "off":
        return Tracer(enabled=False)
    rate = args.sample_rate if mode == "sampled" else 1.0
    return Tracer(enabled=True, sample_rate=rate, capacity=args.buffer)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dataset", default="ogbn-products")
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--train-epochs", type=int, default=3)
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--requests-per-client", type=int, default=400)
    ap.add_argument("--rounds", type=int, default=3,
                    help="interleaved repetitions per mode")
    ap.add_argument("--sample-rate", type=float, default=0.1)
    ap.add_argument("--buffer", type=int, default=4096)
    ap.add_argument("--cache-size", type=int, default=2048)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--max-queue", type=int, default=256)
    ap.add_argument("--request-timeout", type=float, default=10.0)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny run for CI schema validation")
    args = ap.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.05)
        args.train_epochs = 1
        args.requests_per_client = 60
        args.rounds = 2

    ds, engine = _make_engine(args)

    modes = ("off", "sampled", "full")
    latencies = {m: [] for m in modes}
    trace_stats = {}
    decomposition = {}
    chrome_events = 0
    for rnd in range(args.rounds):
        # one warmup round per mode on the first pass keeps JIT-ish
        # effects (allocator, page cache) out of the measured rounds
        for mode in modes:
            tracer = _mode_tracer(mode, args)
            frontend = _fresh_frontend(engine, args, tracer)
            try:
                if rnd == 0:
                    _closed_loop_round(frontend, engine, args,
                                       seed=args.seed + 999)
                    tracer.clear()
                lat = _closed_loop_round(frontend, engine, args,
                                         seed=args.seed + 31 * rnd)
                latencies[mode].extend(lat)
            finally:
                frontend.close()
                frontend.service.close()
            if mode == "full" and rnd == args.rounds - 1:
                trace_stats = tracer.stats()
                chrome_events = validate_chrome_trace(
                    chrome_trace(tracer.export())
                )
                for name, dec in tracer.decomposition().items():
                    decomposition[name] = {
                        "count": dec["count"],
                        "e2e_mean_ms": dec["e2e"]["mean_ms"],
                        "components_mean_ms": {
                            c: v["mean_ms"]
                            for c, v in dec["components"].items()
                        },
                        "attributed_mean_ms": dec["component_sum_mean_ms"],
                        "unattributed_mean_ms": dec["unattributed_mean_ms"],
                    }

    rows = []
    for mode in modes:
        lat = np.asarray(latencies[mode]) * 1e3
        rows.append({
            "mode": mode,
            "sample_rate": (0.0 if mode == "off"
                            else args.sample_rate if mode == "sampled"
                            else 1.0),
            "requests": int(lat.size),
            "p50_ms": float(np.percentile(lat, 50)),
            "p99_ms": float(np.percentile(lat, 99)),
            "mean_ms": float(lat.mean()),
        })
    by_mode = {r["mode"]: r for r in rows}
    overhead = {
        m: {
            "p50_pct": 100.0 * (by_mode[m]["p50_ms"] / by_mode["off"]["p50_ms"] - 1.0),
            "p99_pct": 100.0 * (by_mode[m]["p99_ms"] / by_mode["off"]["p99_ms"] - 1.0),
            "mean_pct": 100.0 * (by_mode[m]["mean_ms"] / by_mode["off"]["mean_ms"] - 1.0),
        }
        for m in ("sampled", "full")
    }

    payload = {
        "schema_version": SCHEMA_VERSION,
        "dataset": ds.name,
        "scale": args.scale,
        "num_vertices": ds.num_vertices,
        "smoke": bool(args.smoke),
        "clients": args.clients,
        "requests_per_client": args.requests_per_client,
        "rounds": args.rounds,
        "sample_rate": args.sample_rate,
        "sampled_p99_bound": SAMPLED_P99_BOUND,
        "modes": rows,
        "overhead_pct": overhead,
        "trace": trace_stats,
        "chrome_events": chrome_events,
        "decomposition": decomposition,
    }
    # smoke runs validate the schema only — never overwrite the committed
    # perf-trajectory baseline (CI gates on its overhead numbers)
    path = emit_json("obs", payload, root_copy=not args.smoke)
    emit(
        "obs_table",
        table(
            ["mode", "sample", "reqs", "p50 ms", "p99 ms", "mean ms"],
            [
                [
                    r["mode"], f"{r['sample_rate']:g}", r["requests"],
                    f"{r['p50_ms']:.3f}", f"{r['p99_ms']:.3f}",
                    f"{r['mean_ms']:.3f}",
                ]
                for r in rows
            ],
        ),
    )
    print(f"\nsampled overhead: p99 {overhead['sampled']['p99_pct']:+.1f}%  "
          f"mean {overhead['sampled']['mean_pct']:+.1f}%")
    print(f"full overhead   : p99 {overhead['full']['p99_pct']:+.1f}%  "
          f"mean {overhead['full']['mean_pct']:+.1f}%")
    print(f"trace           : {chrome_events} events "
          f"(sampled {trace_stats.get('sampled', 0)}"
          f"/{trace_stats.get('seen', 0)} roots)")
    for name, ep in sorted(decomposition.items()):
        parts = "  ".join(
            f"{c} {v:.2f}" for c, v in sorted(ep["components_mean_ms"].items())
        )
        print(f"  {name:<14s} e2e {ep['e2e_mean_ms']:6.2f} ms | {parts}  "
              f"(attributed {ep['attributed_mean_ms']:.2f}, "
              f"slack {ep['unattributed_mean_ms']:.2f})")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
