"""Shared benchmark harness utilities.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and persists it under ``benchmarks/results/`` so the EXPERIMENTS.md
record can be refreshed from a single run.

Machine-readable perf baselines additionally go through
:func:`emit_json`: the payload lands both in ``benchmarks/results/`` and
(optionally) as a repo-root ``BENCH_<name>.json``, which is the file the
perf trajectory across PRs is tracked against.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit_json(name: str, payload: dict, root_copy: bool = True) -> str:
    """Persist ``payload`` as ``benchmarks/results/<name>.json``.

    When ``root_copy`` is set, also write the repo-root
    ``BENCH_<name>.json`` perf-trajectory file.  Returns the root path
    (or the results path when ``root_copy`` is off).
    """
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    results_path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(results_path, "w") as fh:
        fh.write(text)
    if not root_copy:
        return results_path
    root_path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(root_path, "w") as fh:
        fh.write(text)
    return root_path


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and save it to ``benchmarks/results/<name>.txt``."""
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
    return path


def table(headers: Sequence[str], rows: Sequence[Sequence], widths=None) -> List[str]:
    """Plain-text table rows."""
    if widths is None:
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
    out = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        out.append("  ".join(_fmt(c).ljust(w) for c, w in zip(r, widths)))
    return out


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
