"""Shared benchmark harness utilities.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and persists it under ``benchmarks/results/`` so the EXPERIMENTS.md
record can be refreshed from a single run.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and save it to ``benchmarks/results/<name>.txt``."""
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
    return path


def table(headers: Sequence[str], rows: Sequence[Sequence], widths=None) -> List[str]:
    """Plain-text table rows."""
    if widths is None:
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
    out = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        out.append("  ".join(_fmt(c).ljust(w) for c, w in zip(r, widths)))
    return out


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
