"""Fig. 5 — per-epoch time and speedup of cd-0 / cd-5 / 0c vs sockets.

Two layers of reproduction:

1. **Modelled paper-scale curves**: Libra profiles measured on the
   stand-ins (replication factor / split fraction transfer structurally)
   drive the epoch-time model at the paper's |V|/|E|/d, producing the
   Fig. 5 curves in paper-comparable seconds.
2. **Executed small-scale validation**: the real distributed trainer runs
   all three algorithms at small partition counts; its counted per-epoch
   communication bytes must follow the same ordering.

3. **Measured wall-clock scaling** (CLI mode): ``python
   benchmarks/bench_fig5_scaling.py --backend shm`` trains on real
   processes (one per rank over the shared-memory backend) and reports
   *measured* per-epoch time and speedup at 1/2/4 ranks next to the
   modelled curves; ``--backend sim`` runs the same protocol on the
   lockstep simulator for the serial reference.

Paper contract: 0c fastest / cd-0 slowest everywhere; Proteins scales
near-linearly; Reddit saturates by 16 sockets.
"""

import pytest
from bench_utils import emit, table

from repro.core import DistributedTrainer, TrainConfig
from repro.perf.epochmodel import DatasetScale, EpochModel, profiles_from_standin

PAPER_SCALES = {
    "reddit": DatasetScale(
        "reddit", 232_965, 114_615_892, 602, (16,), 41, cache_reuse=6.0
    ),
    "ogbn-products": DatasetScale(
        "ogbn-products", 2_449_029, 123_718_280, 100, (256, 256), 47, cache_reuse=2.0
    ),
    "proteins": DatasetScale(
        "proteins", 8_745_542, 1_309_240_502, 128, (256, 256), 256, cache_reuse=2.5
    ),
    "ogbn-papers": DatasetScale(
        "ogbn-papers", 111_059_956, 1_615_685_872, 128, (256, 256), 172, cache_reuse=2.0
    ),
}

COUNTS = {
    "reddit": (2, 4, 8, 16),
    "ogbn-products": (2, 4, 8, 16, 32, 64),
    "proteins": (2, 4, 8, 16, 32, 64),
    "ogbn-papers": (32, 64, 128),
}

#: paper Fig. 5 speedups at each dataset's largest socket count
PAPER_SPEEDUPS = {
    "reddit": {"cd-0": 0.98, "cd-5": 2.08, "0c": 2.91},
    "ogbn-products": {"cd-0": 6.3, "cd-5": 9.9, "0c": 16.1},
    "proteins": {"cd-0": 37.9, "cd-5": 59.8, "0c": 75.4},
    "ogbn-papers": {"cd-0": 27.43, "cd-5": 83.16, "0c": 123.13},
}

ALGOS = ("cd-0", "cd-5", "0c")


def _model_for(name, ds):
    profiles = profiles_from_standin(ds.graph, COUNTS[name], seed=0)
    return EpochModel(PAPER_SCALES[name], profiles)


def test_fig5_modeled_scaling(
    reddit_bench, products_bench, proteins_bench, papers_bench, benchmark
):
    datasets = {
        "reddit": reddit_bench,
        "ogbn-products": products_bench,
        "proteins": proteins_bench,
        "ogbn-papers": papers_bench,
    }
    lines = []
    final_speedups = {}
    for name, ds in datasets.items():
        model = _model_for(name, ds)
        base = model.single_socket_time()
        lines.append(f"--- {name} (modeled 1-socket epoch: {base:.2f}s) ---")
        rows = []
        for p in COUNTS[name]:
            entry = [p]
            for algo in ALGOS:
                b = model.breakdown(p, algo)
                entry += [round(b.total, 3), round(base / b.total, 1)]
            rows.append(entry)
        lines += table(
            ["P", "cd-0_s", "x", "cd-5_s", "x", "0c_s", "x"], rows
        )
        last = COUNTS[name][-1]
        final_speedups[name] = {
            algo: base / model.breakdown(last, algo).total for algo in ALGOS
        }
        paper = PAPER_SPEEDUPS[name]
        lines.append(
            f"paper @P={last}: cd-0 {paper['cd-0']}x  cd-5 {paper['cd-5']}x  "
            f"0c {paper['0c']}x"
        )
        lines.append("")
    emit("fig5_scaling", lines)

    # contracts: ordering holds at every dataset's largest count;
    # proteins scales better than reddit
    for name, sp in final_speedups.items():
        assert sp["0c"] >= sp["cd-5"] >= sp["cd-0"], name
    assert final_speedups["proteins"]["0c"] > final_speedups["reddit"]["0c"]

    benchmark(_model_for, "reddit", reddit_bench)


def test_fig5_executed_validation(reddit_bench, benchmark):
    """Run the real trainer at P=4: counted comm bytes must order
    cd-0 > cd-5 > 0c and all must train."""
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
    )
    rows = []
    bytes_per_epoch = {}
    for algo in ALGOS:
        dt = DistributedTrainer(reddit_bench, 4, algorithm=algo, config=cfg)
        stats = [dt.train_epoch(e) for e in range(7)]
        steady = stats[6]
        bytes_per_epoch[algo] = steady.comm_bytes
        rows.append(
            [
                algo,
                round(steady.loss, 3),
                round(steady.comm_bytes / 1e6, 2),
                round(steady.local_agg_time_s * 1e3, 1),
                round(steady.remote_agg_time_s * 1e3, 1),
            ]
        )
    lines = table(
        ["algorithm", "loss@7", "comm_MB/epoch", "LAT_ms", "RAT_ms"], rows
    )
    emit("fig5_executed_validation", lines)
    assert bytes_per_epoch["0c"] < bytes_per_epoch["cd-5"] < bytes_per_epoch["cd-0"]

    dt = DistributedTrainer(reddit_bench, 4, algorithm="0c", config=cfg)
    benchmark(dt.train_epoch, 0)


# -- measured wall-clock mode (CLI) -------------------------------------------


def measured_scaling(
    backend: str,
    ranks=(1, 2, 4),
    epochs: int = 6,
    dataset: str = "reddit",
    scale: float = 0.2,
    algorithms=ALGOS,
):
    """Train for real at each rank count and report measured epoch times.

    Per-epoch wall-clock averages skip the warm-up epoch (the paper's
    protocol); speedups are against the same algorithm at the *first*
    entry of ``ranks`` (the 1-rank serial baseline with the default
    list).  On the shm backend the measurement is genuinely parallel —
    one OS process per rank, cd-r overlapping communication with
    computation.
    """
    import os

    from repro.graph.datasets import load_dataset

    ds = load_dataset(dataset, scale=scale, seed=0)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01,
        eval_every=0, seed=0, backend=backend,
    )
    cores = os.cpu_count() or 1
    lines = [
        f"measured wall-clock scaling — backend={backend}, "
        f"{cores} cores, {ds.summary()}",
        "",
    ]
    payload = {
        "backend": backend,
        "dataset": dataset,
        "cpu_cores": cores,
        "base_ranks": ranks[0],
        "rows": [],
    }
    base: dict = {}
    rows = []
    for p in ranks:
        entry = [p]
        for algo in algorithms:
            trainer = DistributedTrainer(ds, p, algorithm=algo, config=cfg)
            result = trainer.fit(num_epochs=epochs)
            t = result.avg_epoch_time_s
            base.setdefault(algo, t)
            speedup = base[algo] / t if t else 0.0
            entry += [round(t * 1e3, 1), round(speedup, 2)]
            payload["rows"].append(
                {
                    "ranks": p,
                    "algorithm": algo,
                    "epoch_s": t,
                    "speedup_vs_base": speedup,
                    "comm_bytes_per_epoch": (
                        result.epochs[-1].comm_bytes if result.epochs else 0
                    ),
                }
            )
        rows.append(entry)
    header = ["ranks"]
    for algo in algorithms:
        header += [f"{algo}_ms", "x"]
    lines += table(header, rows)
    lines.append("")
    lines.append(
        f"speedup is vs the same algorithm at {ranks[0]} rank(s); shm "
        "measures real multi-process parallelism (bounded by the "
        "machine's core count above), sim executes ranks serially (its "
        "per-epoch time grows with P — use the modelled curves above "
        "for paper-scale projections)"
    )
    emit(f"fig5_measured_{backend}", lines)
    return payload


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "shm"), default="shm")
    parser.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--dataset", default="reddit")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args(argv)
    measured_scaling(
        args.backend,
        ranks=tuple(args.ranks),
        epochs=args.epochs,
        dataset=args.dataset,
        scale=args.scale,
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
