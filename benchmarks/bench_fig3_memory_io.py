"""Fig. 3 — memory IO (read / written / total) and kernel time vs nB.

Paper: data read falls as blocking improves f_V reuse, data written grows
with the extra f_O passes; the best kernel time sits at the total-IO
minimum, further right for denser graphs.
"""

import time

import pytest
from bench_utils import emit, table

from repro.cachesim import cache_vectors_for
from repro.cachesim.traffic import ap_traffic
from repro.kernels import aggregate

NBS = (1, 2, 4, 8, 16, 32, 64)
PAPER_FV_BYTES = {"reddit": 232_965 * 602 * 4, "ogbn-products": 2_449_029 * 100 * 4}


def _sweep(ds, name):
    cache = cache_vectors_for(
        ds.graph.num_src, ds.feature_dim, paper_fv_bytes=PAPER_FV_BYTES[name]
    )
    rows = []
    for nb in NBS:
        t = ap_traffic(
            ds.graph, ds.feature_dim, num_blocks=nb, cache_vectors=cache
        )
        t0 = time.perf_counter()
        aggregate(ds.graph, ds.features, kernel="blocked", num_blocks=nb)
        wall = time.perf_counter() - t0
        rows.append(
            [
                nb,
                round(t.bytes_read / 1e6, 1),
                round(t.bytes_written / 1e6, 1),
                round(t.total / 1e6, 1),
                round(wall * 1e3, 1),
            ]
        )
    return rows


def test_fig3_memory_io(reddit_bench, products_bench, benchmark):
    lines = []
    optima = {}
    gains = {}
    for name, ds in [("reddit", reddit_bench), ("ogbn-products", products_bench)]:
        rows = _sweep(ds, name)
        lines.append(f"--- {name} ---")
        lines += table(
            ["nB", "read_MB", "written_MB", "total_MB", "kernel_ms"], rows
        )
        lines.append("")
        totals = [r[3] for r in rows]
        optima[name] = NBS[totals.index(min(totals))]
        gains[name] = totals[0] / min(totals)
    lines.append(f"total-IO optimum: {optima}")
    lines.append(
        f"IO reduction from blocking (IO@nB=1 / IO@best): "
        f"{ {k: round(v, 2) for k, v in gains.items()} }"
    )
    lines.append("contract: blocking cuts IO strongly on the dense graph,")
    lines.append("barely on the sparse one (paper Figs. 3-4)")
    emit("fig3_memory_io", lines)

    assert gains["reddit"] > 1.5, "dense graph must benefit from blocking"
    assert gains["reddit"] > 1.5 * gains["ogbn-products"]

    benchmark(
        ap_traffic,
        reddit_bench.graph,
        reddit_bench.feature_dim,
        num_blocks=16,
        cache_vectors=1024,
    )
