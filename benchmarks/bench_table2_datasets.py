"""Table 2 — dataset statistics: paper scale vs stand-in scale."""

from bench_utils import emit, table

from repro.graph.datasets import PAPER_DATASET_STATS, load_dataset
from repro.graph.utils import average_degree, density


def test_table2_dataset_statistics(
    reddit_bench, products_bench, proteins_bench, papers_bench, am_bench, benchmark
):
    datasets = {
        "am": am_bench,
        "reddit": reddit_bench,
        "ogbn-products": products_bench,
        "proteins": proteins_bench,
        "ogbn-papers": papers_bench,
    }
    rows = []
    for name, ds in datasets.items():
        paper = PAPER_DATASET_STATS[name]
        rows.append(
            [
                name,
                paper.num_vertices,
                paper.num_edges,
                ds.num_vertices,
                ds.num_edges,
                round(average_degree(ds.graph), 1),
                f"{density(ds.graph):.2e}",
                ds.feature_dim,
                ds.num_classes,
            ]
        )
    lines = table(
        [
            "dataset",
            "paper|V|",
            "paper|E|",
            "standin|V|",
            "standin|E|",
            "avg_deg",
            "density",
            "#feat",
            "#class",
        ],
        rows,
    )
    emit("table2_datasets", lines)

    # benchmark: generation cost of the densest stand-in
    benchmark(load_dataset, "reddit", scale=0.1, seed=1)
