"""Unit contracts of :mod:`repro.obs.registry`.

Naming discipline, duplicate detection, the Prometheus render /
re-parse round trip, weakref'd comm-world sources, and the agreement
between the Prometheus view and the JSON snapshot it is derived from.
The live-server agreement check (a real ``GET /metrics?format=prom``
against ``GET /metrics``) is in ``tests/serving/test_tracing.py``.
"""

import gc

import numpy as np
import pytest

from repro.obs.registry import (
    Metric,
    Registry,
    comm_metrics,
    parse_prometheus,
    register_comm_world,
    render_prometheus,
    serving_registry,
    to_json,
    unregister_comm_world,
)
from repro.obs.trace import Tracer
from repro.serving.metrics import OUTCOMES, ServingMetrics


# -- Metric / Registry basics -----------------------------------------------------


def test_metric_enforces_namespace_and_kind():
    with pytest.raises(ValueError, match="repro_"):
        Metric("requests_total", "counter", "off-namespace")
    with pytest.raises(ValueError, match="kind"):
        Metric("repro_requests_total", "histogram", "unsupported kind")


def test_registry_rejects_duplicate_collectors_and_families():
    reg = Registry()
    reg.register("a", lambda: [Metric("repro_x", "counter", "x").add(1)])
    with pytest.raises(ValueError, match="already registered"):
        reg.register("a", lambda: [])
    reg.register("b", lambda: [Metric("repro_x", "counter", "x again").add(2)])
    with pytest.raises(ValueError, match="emitted by both"):
        reg.collect()
    reg.unregister("b")
    assert [m.name for m in reg.collect()] == ["repro_x"]


def test_collect_sorts_families_by_name():
    reg = Registry()
    reg.register("z", lambda: [Metric("repro_zz", "gauge", "z").add(0)])
    reg.register("a", lambda: [Metric("repro_aa", "gauge", "a").add(0)])
    assert [m.name for m in reg.collect()] == ["repro_aa", "repro_zz"]


# -- exposition -------------------------------------------------------------------


def test_prometheus_render_parse_round_trip():
    metrics = [
        Metric("repro_requests_total", "counter", "requests")
        .add(3, endpoint="predict", outcome="ok")
        .add(1, endpoint="predict", outcome="timeout"),
        Metric("repro_queue_depth", "gauge", "depth").add(2.5),
        Metric("repro_labels", "gauge", 'escaping").add(')
        .add(1, path='we"ird\\label\nvalue'),
    ]
    text = render_prometheus(metrics)
    # HELP/TYPE lines present for every family
    for m in metrics:
        assert f"# TYPE {m.name} {m.kind}" in text
    parsed = parse_prometheus(text)
    assert parsed["repro_requests_total"][
        (("endpoint", "predict"), ("outcome", "ok"))
    ] == 3.0
    assert parsed["repro_queue_depth"][()] == 2.5
    assert len(parsed["repro_labels"]) == 1
    # integers render without a trailing .0 (stable diffs, exact parse)
    assert "repro_requests_total{endpoint=\"predict\",outcome=\"ok\"} 3\n" in text


def test_to_json_mirrors_samples():
    m = Metric("repro_x_total", "counter", "x").add(7, a="b")
    j = to_json([m])
    assert j["repro_x_total"]["samples"] == [
        {"labels": {"a": "b"}, "value": 7.0}
    ]


# -- comm-world sources -----------------------------------------------------------


class _StubWorld:
    """counters-shaped object (the duck type ``comm_metrics`` reads)."""

    class counters:  # noqa: N801 — instance attribute stand-in
        num_ranks = 2
        bytes_sent = [10, 20]
        bytes_received = [20, 10]
        messages_sent = [1, 2]
        collective_calls = {"allreduce": 3}


def _world_samples():
    by_name = {m.name: m for m in comm_metrics()}
    return {
        labels["world"]
        for labels, _ in by_name["repro_comm_bytes_sent_total"].samples
    }


def test_comm_worlds_are_weakly_referenced():
    world = _StubWorld()
    name = register_comm_world(world, kind="test")
    try:
        assert name in _world_samples()
        del world
        gc.collect()
        assert name not in _world_samples()
    finally:
        unregister_comm_world(name)


def test_sim_world_self_registers_and_counts():
    from repro.comm.communicator import World

    world = World(2)
    try:
        comm = world.communicator(0)
        comm.isend(1, np.zeros(4, dtype=np.float64))
        by_name = {m.name: m for m in comm_metrics()}
        sent = {
            labels["rank"]: value
            for labels, value in by_name["repro_comm_bytes_sent_total"].samples
            if labels["world"] == world.obs_name
        }
        assert sent["0"] == 32.0 and sent["1"] == 0.0
    finally:
        unregister_comm_world(world.obs_name)


# -- the serving composition ------------------------------------------------------


class _StubFrontend:
    """metrics_snapshot()-shaped object mirroring ServingFrontend."""

    def __init__(self):
        self.metrics = ServingMetrics()

    def metrics_snapshot(self):
        return self.metrics.snapshot(
            queue_depth=1,
            in_flight=2,
            draining=False,
            max_queue=8,
            num_workers=4,
            cache_hit_rate=0.5,
            feature_store=None,
        )


def test_prometheus_agrees_with_json_snapshot_counter_for_counter():
    fe = _StubFrontend()
    fe.metrics.record("predict", "ok", latency_s=0.010)
    fe.metrics.record("predict", "ok", latency_s=0.030)
    fe.metrics.record("predict", "timeout")
    fe.metrics.record("topk", "rejected_queue_full")
    fe.metrics.record_drain()

    reg = serving_registry(frontend=fe, include_ap=False, include_comm=False)
    parsed = parse_prometheus(render_prometheus(reg.collect()))
    snap = fe.metrics_snapshot()

    for endpoint, ep in snap["endpoints"].items():
        for outcome in OUTCOMES:
            key = (("endpoint", endpoint), ("outcome", outcome))
            assert parsed["repro_requests_total"][key] == float(ep[outcome]), (
                endpoint, outcome,
            )
    assert parsed["repro_drains_total"][()] == snap["num_drains"]
    assert parsed["repro_queue_depth"][()] == snap["queue_depth"]
    assert parsed["repro_in_flight"][()] == snap["in_flight"]
    assert parsed["repro_result_cache_hit_rate"][()] == snap["cache_hit_rate"]
    # quantiles present exactly for endpoints with served requests
    lat = parsed["repro_request_latency_ms"]
    assert (("endpoint", "predict"), ("quantile", "p50")) in lat
    assert (("endpoint", "topk"), ("quantile", "p50")) not in lat


def test_trace_collector_conserves_sampling_decisions():
    tracer = Tracer(enabled=True, sample_rate=0.5, capacity=16)
    for _ in range(10):
        span = tracer.root("predict")
        if span is not None:
            span.add_component("compute", 0.001)
            span.end("ok", e2e_s=0.002)
    reg = serving_registry(tracer=tracer, include_ap=False, include_comm=False)
    parsed = parse_prometheus(render_prometheus(reg.collect()))
    spans = parsed["repro_trace_spans_total"]
    st = tracer.stats()
    assert spans[(("result", "sampled"),)] == st["sampled"]
    assert spans[(("result", "sampled"),)] + spans[(("result", "skipped"),)] == st["seen"]
    assert parsed["repro_trace_finished_spans_total"][()] == st["finished"]
    comp = parsed["repro_request_component_samples_total"]
    assert comp[(("component", "e2e"), ("endpoint", "predict"))] == st["sampled"]


def test_ap_collector_reads_kernel_timer():
    from repro.kernels.instrumentation import AP_TIMER

    reg = serving_registry(include_ap=True, include_comm=False)
    before = {m.name: m for m in reg.collect()}
    AP_TIMER.add(0.25)
    try:
        after = {m.name: m for m in reg.collect()}
        gained = (
            after["repro_ap_seconds_total"].samples[0][1]
            - before["repro_ap_seconds_total"].samples[0][1]
        )
        assert gained == pytest.approx(0.25)
        assert (
            after["repro_ap_calls_total"].samples[0][1]
            == before["repro_ap_calls_total"].samples[0][1] + 1
        )
    finally:
        AP_TIMER.reset()
