"""Unit contracts of :mod:`repro.obs.trace`.

The serving-level behaviour (one root per admitted request, component
conservation against end-to-end latency) lives in
``tests/serving/test_tracing.py``; this suite pins the tracer machinery
itself: deterministic head sampling, the bounded ring, first-close-wins
span completion, explicit context activation, and the pinned Chrome
trace-event schema.
"""

import json
import threading

import pytest

from repro.obs.trace import (
    COMPONENTS,
    Span,
    Tracer,
    activate,
    chrome_trace,
    current_span,
    get_tracer,
    set_tracer,
    to_jsonl,
    validate_chrome_trace,
)


def make_tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("sample_rate", 1.0)
    return Tracer(**kwargs)


# -- sampling ---------------------------------------------------------------------


def test_head_sampling_is_deterministic():
    """rate 0.25 keeps exactly every 4th root — twice, identically."""
    decisions = []
    for _ in range(2):
        t = make_tracer(sample_rate=0.25)
        kept = [t.root("predict") is not None for _ in range(100)]
        decisions.append(kept)
        assert sum(kept) == 25
        st = t.stats()
        assert st["seen"] == 100 and st["sampled"] == 25
    assert decisions[0] == decisions[1]


def test_disabled_tracer_returns_none_and_counts_nothing():
    t = Tracer(enabled=False)
    assert t.root("predict") is None
    assert t.stats()["seen"] == 0


def test_zero_sample_rate_keeps_nothing():
    t = make_tracer(sample_rate=0.0)
    assert all(t.root("predict") is None for _ in range(10))


def test_tracer_validates_parameters():
    with pytest.raises(ValueError, match="sample_rate"):
        make_tracer(sample_rate=1.5)
    with pytest.raises(ValueError, match="capacity"):
        make_tracer(capacity=0)


def test_env_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert not Tracer().enabled
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.5")
    monkeypatch.setenv("REPRO_TRACE_BUFFER", "17")
    t = Tracer()
    assert t.enabled and t.sample_rate == 0.5 and t.capacity == 17


# -- bounded ring -----------------------------------------------------------------


def test_ring_bounds_memory_and_counts_drops():
    t = make_tracer(capacity=8)
    for i in range(20):
        t.root(f"r{i}").end("ok")
    st = t.stats()
    assert st["buffered"] == 8
    assert st["finished"] == 20
    assert st["dropped"] == 12
    # oldest-first export of the surviving suffix
    assert [s["name"] for s in t.export()] == [f"r{i}" for i in range(12, 20)]


def test_clear_empties_the_ring():
    t = make_tracer(capacity=4)
    t.root("a").end("ok")
    t.clear()
    assert t.export() == [] and t.stats()["buffered"] == 0


# -- span lifecycle ---------------------------------------------------------------


def test_end_is_idempotent_first_close_wins():
    t = make_tracer()
    span = t.root("predict")
    span.add_component("queue", 0.001)
    span.end("timeout")
    # a background worker finishing late must not mutate the record
    span.add_component("compute", 0.5)
    span.annotate(late=True)
    span.end("ok")
    records = t.export()
    assert len(records) == 1
    rec = records[0]
    assert rec["outcome"] == "timeout"
    assert set(rec["components_ms"]) == {"queue"}
    assert "late" not in rec["args"]
    assert span.ended


def test_child_complete_lands_even_after_parent_end():
    t = make_tracer()
    span = t.root("predict")
    span.end("timeout")
    span.child_complete("kernel.ap", 0.002, cat="kernel", rows=4)
    kinds = {(r["name"], r["parent_id"]) for r in t.export()}
    assert ("kernel.ap", span.span_id) in kinds


def test_child_spans_share_trace_id():
    t = make_tracer()
    root = t.root("predict")
    child = root.child("engine.predict")
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    child.end("ok")
    root.end("ok")


def test_with_block_closes_as_error_on_exception():
    t = make_tracer()
    with pytest.raises(RuntimeError):
        with t.root("predict"):
            raise RuntimeError("boom")
    assert t.export()[0]["outcome"] == "error"


# -- explicit activation ----------------------------------------------------------


def test_activate_scopes_and_restores():
    t = make_tracer()
    outer, inner = t.root("outer"), t.root("inner")
    assert current_span() is None
    with activate(outer):
        assert current_span() is outer
        with activate(inner):
            assert current_span() is inner
        assert current_span() is outer
        with activate(None):  # explicit clear, e.g. unsampled request
            assert current_span() is None
        assert current_span() is outer
    assert current_span() is None


def test_activation_never_crosses_threads():
    t = make_tracer()
    span = t.root("predict")
    seen = []
    with activate(span):
        worker = threading.Thread(target=lambda: seen.append(current_span()))
        worker.start()
        worker.join()
    assert seen == [None]


def test_default_tracer_swap():
    sentinel = make_tracer()
    previous = set_tracer(sentinel)
    try:
        assert get_tracer() is sentinel
    finally:
        set_tracer(previous)


# -- export formats ---------------------------------------------------------------


def _traced_request(t: Tracer) -> None:
    span = t.root("predict")
    span.add_component("queue", 0.001)
    span.add_component("compute", 0.003)
    span.child_complete("engine.predict", 0.003, cat="serving", rows=8)
    span.end("ok", e2e_s=0.005)


def test_chrome_trace_passes_pinned_schema():
    t = make_tracer()
    for _ in range(3):
        _traced_request(t)
    payload = chrome_trace(t.export())
    assert validate_chrome_trace(payload) == 6  # 3 roots + 3 children
    assert payload["displayTimeUnit"] == "ms"
    # the payload is genuinely JSON-serializable
    assert validate_chrome_trace(json.loads(json.dumps(payload))) == 6


@pytest.mark.parametrize(
    "mutate",
    [
        lambda p: p.pop("traceEvents"),
        lambda p: p["traceEvents"][0].pop("ts"),
        lambda p: p["traceEvents"][0].update(ph="B"),
        lambda p: p["traceEvents"][0].update(dur=-1.0),
        lambda p: p["traceEvents"][0].update(pid=True),
        lambda p: p["traceEvents"][0]["args"].pop("outcome"),
    ],
)
def test_schema_validation_rejects_deviations(mutate):
    t = make_tracer()
    _traced_request(t)
    payload = chrome_trace(t.export())
    mutate(payload)
    with pytest.raises(ValueError):
        validate_chrome_trace(payload)


def test_jsonl_is_one_record_per_line():
    t = make_tracer()
    for _ in range(2):
        _traced_request(t)
    lines = to_jsonl(t.export()).strip().splitlines()
    assert len(lines) == 4
    names = {json.loads(line)["name"] for line in lines}
    assert names == {"predict", "engine.predict"}


# -- latency decomposition --------------------------------------------------------


def test_decomposition_tracks_components_vs_e2e():
    t = make_tracer()
    for _ in range(4):
        _traced_request(t)
    dec = t.decomposition()["predict"]
    assert dec["count"] == 4
    assert dec["e2e"]["mean_ms"] == pytest.approx(5.0)
    assert dec["components"]["queue"]["mean_ms"] == pytest.approx(1.0)
    assert dec["components"]["compute"]["mean_ms"] == pytest.approx(3.0)
    assert dec["component_sum_mean_ms"] == pytest.approx(4.0)
    assert dec["unattributed_mean_ms"] == pytest.approx(1.0)
    # component names stay within the canonical vocabulary here
    assert set(dec["components"]) <= set(COMPONENTS)


def test_decomposition_counts_only_ok_roots():
    t = make_tracer()
    span = t.root("predict")
    span.add_component("queue", 0.001)
    span.end("timeout")
    assert t.decomposition() == {}


def test_span_outside_tracer_root_is_not_decomposed():
    """Child spans never feed the per-endpoint decomposition."""
    t = make_tracer()
    root = t.root("predict")
    child = root.child("engine.predict")
    child.add_component("compute", 0.001)
    child.end("ok")
    root.end("ok", e2e_s=0.002)
    dec = t.decomposition()
    assert set(dec) == {"predict"}
    assert dec["predict"]["count"] == 1
