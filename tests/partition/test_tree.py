"""Split-vertex trees and exchange-plan routing."""

import numpy as np
import pytest

from repro.partition import build_partitions, build_split_trees, libra_partition
from repro.partition.tree import bin_routes


@pytest.fixture
def setup(small_rmat):
    asn = libra_partition(small_rmat, 4, seed=0)
    parted = build_partitions(small_rmat, asn, 4)
    plan = build_split_trees(parted, seed=1)
    return parted, plan


class TestTrees:
    def test_one_tree_per_split_vertex(self, setup):
        parted, plan = setup
        assert len(plan.trees) == parted.split_vertices.size
        assert plan.num_trees == parted.split_vertices.size

    def test_tree_covers_all_clones(self, setup):
        parted, plan = setup
        for tree in plan.trees[:20]:
            clone_parts = set(np.flatnonzero(parted.membership[tree.global_id]))
            tree_parts = {tree.root_part} | set(tree.leaf_parts.tolist())
            assert tree_parts == clone_parts

    def test_root_not_among_leaves(self, setup):
        _, plan = setup
        for tree in plan.trees[:20]:
            assert tree.root_part not in tree.leaf_parts

    def test_locals_resolve_to_global(self, setup):
        parted, plan = setup
        for tree in plan.trees[:20]:
            root_part = parted.parts[tree.root_part]
            assert root_part.global_ids[tree.root_local] == tree.global_id
            for p, l in zip(tree.leaf_parts, tree.leaf_locals):
                assert parted.parts[int(p)].global_ids[int(l)] == tree.global_id

    def test_routes_count(self, setup):
        parted, plan = setup
        clones = parted.membership.sum(axis=1)
        expected = int(np.maximum(clones - 1, 0).sum())
        assert plan.num_routes == expected

    def test_deterministic_given_seed(self, small_rmat):
        asn = libra_partition(small_rmat, 4, seed=0)
        parted = build_partitions(small_rmat, asn, 4)
        a = build_split_trees(parted, seed=7)
        b = build_split_trees(parted, seed=7)
        assert np.array_equal(a.root_part, b.root_part)
        assert np.array_equal(a.leaf_local, b.leaf_local)

    def test_no_tree_objects_mode(self, small_rmat):
        asn = libra_partition(small_rmat, 4, seed=0)
        parted = build_partitions(small_rmat, asn, 4)
        plan = build_split_trees(parted, seed=0, build_tree_objects=False)
        assert plan.trees == []
        assert plan.num_trees == parted.split_vertices.size
        assert plan.num_routes > 0

    def test_empty_when_no_splits(self, line_graph):
        parted = build_partitions(line_graph, np.zeros(3, dtype=int), 1)
        plan = build_split_trees(parted)
        assert plan.num_routes == 0 and plan.num_trees == 0


class TestBinning:
    def test_bins_partition_routes(self, setup):
        _, plan = setup
        for r in (1, 2, 5):
            bins = bin_routes(plan, r)
            assert len(bins) == r
            assert sum(b.num_routes for b in bins) == plan.num_routes

    def test_tree_stays_in_one_bin(self, setup):
        _, plan = setup
        bins = bin_routes(plan, 3)
        seen = {}
        for i, b in enumerate(bins):
            for t in np.unique(b.tree_index):
                assert t not in seen, "tree split across bins"
                seen[int(t)] = i

    def test_invalid_bins(self, setup):
        _, plan = setup
        with pytest.raises(ValueError):
            bin_routes(plan, 0)

    def test_more_bins_than_trees(self, setup):
        _, plan = setup
        bins = bin_routes(plan, plan.num_trees + 5)
        assert sum(b.num_routes for b in bins) == plan.num_routes

    def test_routes_between(self, setup):
        _, plan = setup
        total = 0
        for p in range(4):
            for q in range(4):
                total += plan.routes_between(p, q).size
        assert total == plan.num_routes
