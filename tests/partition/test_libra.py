"""Libra vertex-cut partitioner."""

import numpy as np
import pytest

from repro.partition.libra import libra_partition, replication_factor_of_assignment
from repro.partition.baselines import random_edge_partition
from repro.graph.generators import rmat_graph, sbm_graph


class TestBasicContract:
    def test_every_edge_assigned_once(self, small_rmat):
        asn = libra_partition(small_rmat, 4)
        assert asn.shape == (small_rmat.num_edges,)
        assert asn.min() >= 0 and asn.max() < 4

    def test_single_partition(self, small_rmat):
        asn = libra_partition(small_rmat, 1)
        assert np.all(asn == 0)

    def test_deterministic(self, small_rmat):
        a = libra_partition(small_rmat, 4, seed=2)
        b = libra_partition(small_rmat, 4, seed=2)
        assert np.array_equal(a, b)

    def test_invalid_partitions(self, small_rmat):
        with pytest.raises(ValueError):
            libra_partition(small_rmat, 0)

    def test_empty_graph(self):
        from repro.graph.builders import from_edge_list

        g = from_edge_list([], num_vertices=4)
        assert libra_partition(g, 3).size == 0


class TestQuality:
    def test_edge_balance(self, small_rmat):
        """Libra keeps edge counts near-equal (paper Section 6.3)."""
        asn = libra_partition(small_rmat, 4)
        counts = np.bincount(asn, minlength=4)
        assert counts.max() <= 1.2 * counts.mean()

    def test_beats_random_on_replication(self):
        g = rmat_graph(scale=10, edge_factor=16.0, seed=0)
        for p in (4, 8):
            libra_rf = replication_factor_of_assignment(
                g, libra_partition(g, p), p
            )
            rand_rf = replication_factor_of_assignment(
                g, random_edge_partition(g, p), p
            )
            assert libra_rf < rand_rf

    def test_replication_grows_with_partitions(self):
        g = rmat_graph(scale=9, edge_factor=12.0, seed=1)
        rfs = [
            replication_factor_of_assignment(g, libra_partition(g, p), p)
            for p in (2, 4, 8)
        ]
        assert rfs[0] < rfs[1] < rfs[2]

    def test_clustered_graph_low_replication(self):
        """Proteins-like community structure -> near-clean cuts (Table 4)."""
        clustered = sbm_graph([128] * 8, p_in=0.15, p_out=0.0005, seed=0)
        dense = sbm_graph([1024], p_in=0.02, p_out=0.0, seed=0)
        p = 8
        rf_clustered = replication_factor_of_assignment(
            clustered, libra_partition(clustered, p), p
        )
        rf_dense = replication_factor_of_assignment(
            dense, libra_partition(dense, p), p
        )
        assert rf_clustered < rf_dense

    def test_replication_bounded_by_partitions(self, small_rmat):
        p = 4
        rf = replication_factor_of_assignment(
            small_rmat, libra_partition(small_rmat, p), p
        )
        assert 1.0 <= rf <= p
