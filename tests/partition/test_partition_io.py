"""Partitioning persistence round-trips."""

import numpy as np
import pytest

from repro.graph.io import save_graph
from repro.partition import build_partitions, libra_partition
from repro.partition.io import load_partitioning, save_partitioning


@pytest.fixture
def parted(small_rmat):
    return build_partitions(small_rmat, libra_partition(small_rmat, 3, seed=0), 3)


def test_round_trip_structure(tmp_path, parted):
    path = str(tmp_path / "p.npz")
    save_partitioning(path, parted)
    loaded = load_partitioning(path)
    assert loaded.num_partitions == parted.num_partitions
    assert np.array_equal(loaded.assignment, parted.assignment)
    assert np.array_equal(loaded.membership, parted.membership)
    for a, b in zip(loaded.parts, parted.parts):
        assert np.array_equal(a.global_ids, b.global_ids)
        assert np.array_equal(a.graph.indices, b.graph.indices)


def test_round_trip_preserves_replication(tmp_path, parted):
    path = str(tmp_path / "p.npz")
    save_partitioning(path, parted)
    assert load_partitioning(path).replication_factor == pytest.approx(
        parted.replication_factor
    )


def test_trainer_runs_from_loaded_partitioning(tmp_path, reddit_mini):
    from repro.core import DistributedTrainer, TrainConfig

    cfg = TrainConfig(
        num_layers=2, hidden_features=8, learning_rate=0.01, eval_every=0, seed=0
    )
    parted = build_partitions(
        reddit_mini.graph, libra_partition(reddit_mini.graph, 3, seed=0), 3
    )
    path = str(tmp_path / "r.npz")
    save_partitioning(path, parted)
    loaded = load_partitioning(path)
    fresh = DistributedTrainer(
        reddit_mini, 3, algorithm="cd-0", config=cfg, parted=parted
    ).fit(num_epochs=4)
    reloaded = DistributedTrainer(
        reddit_mini, 3, algorithm="cd-0", config=cfg, parted=loaded
    ).fit(num_epochs=4)
    assert fresh.loss_curve() == reloaded.loss_curve()


def test_plain_graph_rejected(tmp_path, small_rmat):
    path = str(tmp_path / "g.npz")
    save_graph(path, small_rmat)
    with pytest.raises(ValueError, match="partitioning"):
        load_partitioning(path)
