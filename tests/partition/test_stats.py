"""Partition statistics."""

import numpy as np
import pytest

from repro.partition import (
    build_partitions,
    libra_partition,
    partition_stats,
    random_edge_partition,
)
from repro.partition.stats import communication_volume


@pytest.fixture
def parted(small_rmat):
    return build_partitions(small_rmat, libra_partition(small_rmat, 4, seed=0), 4)


def test_stats_fields(parted):
    st = partition_stats(parted)
    assert st.num_partitions == 4
    assert st.replication_factor >= 1.0
    assert st.edge_balance >= 1.0
    assert 0.0 <= st.split_vertex_fraction <= 1.0
    assert 0.0 <= st.avg_split_fraction_per_partition <= 1.0
    assert st.min_edges <= st.max_edges


def test_row_format(parted):
    assert "rf=" in partition_stats(parted).row()


def test_libra_balance_near_perfect(parted):
    assert partition_stats(parted).edge_balance < 1.1


def test_communication_volume_counts_leaf_routes(parted):
    vol = communication_volume(parted, feature_dim=10, feature_bytes=4)
    clones = parted.membership.sum(axis=1)
    leaves = int(np.maximum(clones - 1, 0).sum())
    assert vol == 2 * leaves * 40


def test_volume_scales_with_dim(parted):
    assert communication_volume(parted, 20) == 2 * communication_volume(parted, 10)


def test_single_partition_no_volume(small_rmat):
    parted = build_partitions(
        small_rmat, np.zeros(small_rmat.num_edges, dtype=int), 1
    )
    assert communication_volume(parted, 8) == 0.0
    assert partition_stats(parted).replication_factor == 1.0
