"""Property-based partitioning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import coo_to_csr
from repro.partition import build_partitions, libra_partition
from repro.partition.baselines import hash_edge_partition, random_edge_partition


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    m = draw(st.integers(min_value=1, max_value=60))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return coo_to_csr(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_dst=n,
        num_src=n,
    )


@given(graphs(), st.integers(min_value=1, max_value=6), st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_libra_assignment_complete(g, p, seed):
    asn = libra_partition(g, p, seed=seed)
    assert asn.shape == (g.num_edges,)
    assert np.all((asn >= 0) & (asn < p))


@given(graphs(), st.integers(min_value=1, max_value=5), st.integers(0, 50))
@settings(max_examples=50, deadline=None)
def test_partition_edge_conservation(g, p, seed):
    asn = libra_partition(g, p, seed=seed)
    parted = build_partitions(g, asn, p)
    assert sum(pt.num_edges for pt in parted.parts) == g.num_edges
    # every edge's endpoints are present in its partition
    src, dst, eid = g.to_coo()
    for s, d, e in zip(src, dst, eid):
        part = parted.parts[int(asn[e])]
        assert part.contains(np.array([s]))[0]
        assert part.contains(np.array([d]))[0]


@given(graphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_replication_factor_bounds(g, p):
    asn = libra_partition(g, p, seed=0)
    parted = build_partitions(g, asn, p)
    rf = parted.replication_factor
    assert 1.0 - 1e-9 <= rf <= p + 1e-9


@given(graphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_vertex_map_is_partition_of_unified_space(g, p):
    asn = hash_edge_partition(g, p)
    parted = build_partitions(g, asn, p)
    total = parted.vertex_map[-1]
    # locate() must be the inverse of unified_id() over the whole space
    for uid in range(0, int(total), max(1, int(total) // 10)):
        part, local = parted.locate(uid)
        assert parted.unified_id(part, local) == uid


@given(graphs(), st.integers(min_value=2, max_value=5), st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_trees_cover_every_clone_exactly_once(g, p, seed):
    from repro.partition import build_split_trees

    asn = random_edge_partition(g, p, seed=seed)
    parted = build_partitions(g, asn, p)
    plan = build_split_trees(parted, seed=seed)
    clones = parted.membership.sum(axis=1)
    assert plan.num_routes == int(np.maximum(clones - 1, 0).sum())
    # each (tree, leaf_part) pair appears at most once
    pairs = list(zip(plan.tree_index.tolist(), plan.leaf_part.tolist()))
    assert len(pairs) == len(set(pairs))
