"""Partition data structures: local/global ids, vertex_map, membership."""

import numpy as np
import pytest

from repro.partition import build_partitions, libra_partition
from repro.partition.baselines import random_edge_partition


@pytest.fixture
def parted(small_rmat):
    asn = libra_partition(small_rmat, 4, seed=0)
    return build_partitions(small_rmat, asn, 4)


class TestBuild:
    def test_edges_conserved(self, small_rmat, parted):
        assert sum(p.num_edges for p in parted.parts) == small_rmat.num_edges

    def test_local_graphs_consistent(self, parted):
        for p in parted.parts:
            assert p.graph.num_vertices == p.num_vertices
            if p.num_edges:
                assert p.graph.indices.max() < p.num_vertices

    def test_local_edges_match_global(self, small_rmat, parted):
        """Every local edge maps back to a global edge of the right pair."""
        gsrc, gdst, geid = small_rmat.to_coo()
        by_eid = {int(e): (int(s), int(d)) for s, d, e in zip(gsrc, gdst, geid)}
        for p in parted.parts:
            lsrc, ldst, leid = p.graph.to_coo()
            for s, d, e in zip(lsrc, ldst, leid):
                assert by_eid[int(e)] == (
                    int(p.global_ids[s]),
                    int(p.global_ids[d]),
                )

    def test_membership_matches_parts(self, parted):
        for p in parted.parts:
            assert np.all(parted.membership[p.global_ids, p.part_id])

    def test_isolated_vertices_placed(self, small_rmat):
        asn = libra_partition(small_rmat, 3, seed=0)
        parted = build_partitions(small_rmat, asn, 3, include_isolated=True)
        assert np.all(parted.membership.any(axis=1))

    def test_isolated_exclusion(self, small_rmat):
        asn = libra_partition(small_rmat, 3, seed=0)
        parted = build_partitions(small_rmat, asn, 3, include_isolated=False)
        src, dst, _ = small_rmat.to_coo()
        touched = np.zeros(small_rmat.num_vertices, dtype=bool)
        touched[src] = True
        touched[dst] = True
        assert np.array_equal(parted.membership.any(axis=1), touched)

    def test_assignment_validation(self, small_rmat):
        bad = np.full(small_rmat.num_edges, 9)
        with pytest.raises(ValueError, match="out-of-range"):
            build_partitions(small_rmat, bad, 4)

    def test_wrong_length_rejected(self, small_rmat):
        with pytest.raises(ValueError, match="every edge"):
            build_partitions(small_rmat, np.zeros(3), 4)


class TestIds:
    def test_local_of_round_trip(self, parted):
        for p in parted.parts:
            locs = p.local_of(p.global_ids)
            assert np.array_equal(locs, np.arange(p.num_vertices))

    def test_local_of_missing_raises(self, parted):
        p = parted.parts[0]
        missing = np.setdiff1d(
            np.arange(parted.graph.num_vertices), p.global_ids
        )
        if missing.size:
            with pytest.raises(KeyError):
                p.local_of(missing[:1])

    def test_contains(self, parted):
        p = parted.parts[0]
        assert np.all(p.contains(p.global_ids))

    def test_vertex_map_offsets(self, parted):
        sizes = [p.num_vertices for p in parted.parts]
        assert parted.vertex_map.tolist() == [0] + list(
            np.cumsum(sizes)
        )

    def test_unified_id_round_trip(self, parted):
        for p in range(parted.num_partitions):
            n = parted.parts[p].num_vertices
            if n == 0:
                continue
            local = n - 1
            uid = parted.unified_id(p, local)
            assert parted.locate(uid) == (p, local)


class TestSplitVertices:
    def test_clones_consistent(self, parted):
        for gv in parted.split_vertices[:10]:
            clones = parted.clones_of(int(gv))
            assert len(clones) >= 2
            for part_id, local in clones:
                assert parted.parts[part_id].global_ids[local] == gv

    def test_replication_factor_formula(self, parted):
        clones = parted.membership.sum(axis=1)
        present = clones > 0
        assert parted.replication_factor == pytest.approx(
            clones[present].mean()
        )

    def test_random_partition_replicates_more(self, small_rmat, parted):
        rnd = build_partitions(
            small_rmat, random_edge_partition(small_rmat, 4, seed=0), 4
        )
        assert rnd.replication_factor >= parted.replication_factor
