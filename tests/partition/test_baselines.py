"""Baseline partitioners."""

import numpy as np
import pytest

from repro.partition.baselines import hash_edge_partition, random_edge_partition


def test_random_complete(small_rmat):
    asn = random_edge_partition(small_rmat, 4, seed=0)
    assert asn.shape == (small_rmat.num_edges,)
    assert set(np.unique(asn)) <= {0, 1, 2, 3}


def test_random_balanced(small_rmat):
    asn = random_edge_partition(small_rmat, 4, seed=0)
    counts = np.bincount(asn, minlength=4)
    assert counts.max() < 1.5 * counts.mean()


def test_random_deterministic(small_rmat):
    a = random_edge_partition(small_rmat, 4, seed=3)
    b = random_edge_partition(small_rmat, 4, seed=3)
    assert np.array_equal(a, b)


def test_hash_src_groups_out_edges(small_rmat):
    asn = hash_edge_partition(small_rmat, 4, by="src")
    src, dst, eid = small_rmat.to_coo()
    # all edges with the same source land in the same partition
    for s in np.unique(src)[:20]:
        parts = np.unique(asn[eid[src == s]])
        assert parts.size == 1


def test_hash_dst_groups_in_edges(small_rmat):
    asn = hash_edge_partition(small_rmat, 4, by="dst")
    src, dst, eid = small_rmat.to_coo()
    for d in np.unique(dst)[:20]:
        assert np.unique(asn[eid[dst == d]]).size == 1


def test_hash_invalid_by(small_rmat):
    with pytest.raises(ValueError):
        hash_edge_partition(small_rmat, 4, by="edge")


def test_invalid_partition_count(small_rmat):
    with pytest.raises(ValueError):
        random_edge_partition(small_rmat, 0)
    with pytest.raises(ValueError):
        hash_edge_partition(small_rmat, 0)
