"""Metrics and stopwatch."""

import time

import pytest

from repro.core.metrics import EpochStats, Stopwatch, TrainResult


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.time("a"):
            time.sleep(0.002)
        with sw.time("a"):
            time.sleep(0.002)
        assert sw.get("a") >= 0.004

    def test_phases_independent(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("y", 2.0)
        assert sw.get("x") == 1.0 and sw.get("y") == 2.0

    def test_missing_phase_zero(self):
        assert Stopwatch().get("nope") == 0.0

    def test_reset(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.reset()
        assert sw.get("a") == 0.0


class TestTrainResult:
    def _result(self, times):
        r = TrainResult()
        for i, t in enumerate(times):
            r.epochs.append(EpochStats(epoch=i, loss=1.0 / (i + 1), total_time_s=t))
        return r

    def test_avg_skips_warmup(self):
        r = self._result([10.0, 1.0, 1.0])
        assert r.avg_epoch_time_s == pytest.approx(1.0)

    def test_avg_single_epoch(self):
        r = self._result([2.0])
        assert r.avg_epoch_time_s == 2.0

    def test_avg_between_range(self):
        r = self._result([5.0, 1.0, 2.0, 3.0])
        assert r.avg_time_between(1, 3) == pytest.approx(1.5)

    def test_avg_between_empty_falls_back(self):
        r = self._result([5.0, 1.0])
        assert r.avg_time_between(10, 20) == r.avg_epoch_time_s

    def test_loss_curve(self):
        r = self._result([1.0, 1.0])
        assert r.loss_curve() == [1.0, 0.5]

    def test_empty(self):
        r = TrainResult()
        assert r.avg_epoch_time_s == 0.0
        assert r.loss_curve() == []
