"""DRPA exchanger: cd-0 exactness, cd-r staleness, binning."""

import numpy as np
import pytest

from repro.comm import World
from repro.core.drpa import BinRouting, DRPAExchanger, owned_mask
from repro.kernels import aggregate
from repro.partition import build_partitions, build_split_trees, libra_partition


@pytest.fixture
def setup(small_rmat):
    P = 3
    asn = libra_partition(small_rmat, P, seed=0)
    parted = build_partitions(small_rmat, asn, P)
    plan = build_split_trees(parted, seed=0, build_tree_objects=False)
    return small_rmat, parted, plan, P


def _local_partials(graph, parted, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((graph.num_vertices, dim))
    full = aggregate(graph, h, kernel="reordered")
    vals = [
        aggregate(p.graph, h[p.global_ids], kernel="reordered")
        for p in parted.parts
    ]
    return h, full, vals


class TestSynchronousRound:
    def test_cd0_recovers_full_aggregate(self, setup):
        graph, parted, plan, P = setup
        _, full, vals = _local_partials(graph, parted)
        world = World(P)
        ex = DRPAExchanger(parted, plan, world, delay=0, num_bins=1)
        ex.synchronous_round(vals, layer=0, epoch=0)
        for p in parted.parts:
            np.testing.assert_allclose(
                vals[p.part_id], full[p.global_ids], atol=1e-9
            )

    def test_clones_identical_after_sync(self, setup):
        graph, parted, plan, P = setup
        _, _, vals = _local_partials(graph, parted)
        world = World(P)
        DRPAExchanger(parted, plan, world).synchronous_round(vals, 0, 0)
        for gv in parted.split_vertices[:15]:
            rows = [vals[p][l] for p, l in parted.clones_of(int(gv))]
            for r in rows[1:]:
                np.testing.assert_allclose(r, rows[0], atol=1e-12)

    def test_requires_delay_zero(self, setup):
        _, parted, plan, P = setup
        ex = DRPAExchanger(parted, plan, World(P), delay=2, num_bins=2)
        with pytest.raises(RuntimeError, match="delay=0"):
            ex.synchronous_round([np.zeros((1, 1))] * P, 0, 0)

    def test_multiple_layers_independent(self, setup):
        graph, parted, plan, P = setup
        _, full, vals0 = _local_partials(graph, parted, seed=1)
        _, full2, vals1 = _local_partials(graph, parted, seed=2)
        world = World(P)
        ex = DRPAExchanger(parted, plan, world)
        # interleave sends of two layers; tags keep them apart
        for r in range(P):
            ex.send_up(r, vals0[r], layer=0, epoch=0)
            ex.send_up(r, vals1[r], layer=1, epoch=0)
        for r in range(P):
            ex.reduce_up(r, vals0[r], layer=0)
            ex.reduce_up(r, vals1[r], layer=1)
        for r in range(P):
            ex.send_down(r, vals0[r], layer=0, epoch=0)
            ex.send_down(r, vals1[r], layer=1, epoch=0)
        for r in range(P):
            ex.apply_down(r, vals0[r], layer=0)
            ex.apply_down(r, vals1[r], layer=1)
        for p in parted.parts:
            np.testing.assert_allclose(vals0[p.part_id], full[p.global_ids], atol=1e-9)
            np.testing.assert_allclose(vals1[p.part_id], full2[p.global_ids], atol=1e-9)


class TestDelayedRound:
    def test_no_delivery_before_r(self, setup):
        graph, parted, plan, P = setup
        world = World(P)
        r = 3
        ex = DRPAExchanger(parted, plan, world, delay=r, num_bins=r)
        _, _, vals = _local_partials(graph, parted)
        before = [v.copy() for v in vals]
        for epoch in range(r):
            ex.delayed_round(vals, layer=0, epoch=epoch)
            world.advance_epoch()
            if epoch < r - 1:
                for v, b in zip(vals, before):
                    np.testing.assert_array_equal(v, b)

    def test_full_sync_after_warmup_with_stationary_values(self, setup):
        """If partials never change, cd-r converges to the cd-0 answer
        after 2r epochs (all bins complete a round trip)."""
        graph, parted, plan, P = setup
        _, full, vals = _local_partials(graph, parted)
        pristine = [v.copy() for v in vals]
        world = World(P)
        r = 2
        ex = DRPAExchanger(parted, plan, world, delay=r, num_bins=r)
        for epoch in range(3 * r + 1):
            # re-send pristine partials every epoch (stationary input)
            sendable = [p.copy() for p in pristine]
            for rank in range(P):
                ex.send_up(rank, sendable[rank], layer=0, epoch=epoch)
            handled = [ex.reduce_up(rank, sendable[rank], layer=0) for rank in range(P)]
            for rank in range(P):
                if handled[rank]:
                    ex.send_down(rank, sendable[rank], layer=0, epoch=epoch)
            for rank in range(P):
                ex.apply_down(rank, vals[rank], layer=0)
            world.advance_epoch()
        # leaf clones hold the root-completed rows (sum of all partials);
        # roots in this formulation kept their staging buffers separate.
        leaf_checked = 0
        for i in range(min(plan.num_routes, 60)):
            p = int(plan.leaf_part[i])
            l = int(plan.leaf_local[i])
            gv = int(parted.parts[p].global_ids[l])
            np.testing.assert_allclose(vals[p][l], full[gv], atol=1e-9)
            leaf_checked += 1
        assert leaf_checked > 0

    def test_bin_rotation_covers_all_bins(self, setup):
        _, parted, plan, P = setup
        ex = DRPAExchanger(parted, plan, World(P), delay=4, num_bins=4)
        assert [ex.bin_for_epoch(e) for e in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_invalid_params(self, setup):
        _, parted, plan, P = setup
        with pytest.raises(ValueError):
            DRPAExchanger(parted, plan, World(P), delay=-1)
        with pytest.raises(ValueError):
            DRPAExchanger(parted, plan, World(P), num_bins=0)


class TestOwnership:
    def test_each_vertex_owned_exactly_once(self, setup):
        graph, parted, plan, P = setup
        owner_count = np.zeros(graph.num_vertices, dtype=int)
        for r in range(P):
            mask = owned_mask(parted, plan, r)
            owner_count[parted.parts[r].global_ids[mask]] += 1
        present = parted.membership.any(axis=1)
        assert np.all(owner_count[present] == 1)

    def test_owner_is_root(self, setup):
        _, parted, plan, P = setup
        masks = [owned_mask(parted, plan, r) for r in range(P)]
        for i in range(min(plan.num_routes, 50)):
            # leaves are never owners
            assert not masks[plan.leaf_part[i]][plan.leaf_local[i]]
            assert masks[plan.root_part[i]][plan.root_local[i]]


class TestBinRouting:
    def test_buckets_cover_routes(self, setup):
        _, parted, plan, P = setup
        routing = BinRouting.from_plan(plan)
        total = sum(v[0].size for v in routing.buckets.values())
        assert total == plan.num_routes

    def test_bucket_alignment(self, setup):
        _, parted, plan, P = setup
        routing = BinRouting.from_plan(plan)
        for (p, q), (leaf_rows, root_rows) in routing.buckets.items():
            assert leaf_rows.size == root_rows.size
            # rows translate to the same global vertex on both sides
            gl = parted.parts[p].global_ids[leaf_rows]
            gr = parted.parts[q].global_ids[root_rows]
            assert np.array_equal(gl, gr)

    def test_empty_plan(self):
        from repro.partition.tree import TreeExchangePlan

        empty = np.zeros(0, dtype=np.int64)
        plan = TreeExchangePlan(
            trees=[], leaf_part=empty, leaf_local=empty,
            root_part=empty, root_local=empty, tree_index=empty, num_trees=0,
        )
        assert BinRouting.from_plan(plan).buckets == {}
