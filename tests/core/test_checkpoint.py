"""Checkpoint save/load round-trips and resumption equivalence."""

import numpy as np
import pytest

from repro.core import Trainer, TrainConfig
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.nn import Adam, GraphSAGE, SGD

CFG = TrainConfig(
    num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
)


def test_model_round_trip(tmp_path):
    a = GraphSAGE(8, 16, 4, seed=1)
    b = GraphSAGE(8, 16, 4, seed=2)
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, a, epoch=7)
    epoch, extra = load_checkpoint(path, b)
    assert epoch == 7
    for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert np.array_equal(pa.data, pb.data), na


def test_extra_arrays(tmp_path):
    model = GraphSAGE(4, 8, 2, seed=0)
    path = str(tmp_path / "c.npz")
    save_checkpoint(path, model, extra={"loss_curve": np.array([1.0, 0.5])})
    _, extra = load_checkpoint(path, GraphSAGE(4, 8, 2, seed=9))
    assert np.array_equal(extra["loss_curve"], [1.0, 0.5])


def test_adam_state_round_trip(tmp_path, reddit_mini):
    t = Trainer(reddit_mini, CFG)
    for e in range(3):
        t.train_epoch(e)
    path = str(tmp_path / "adam.npz")
    save_checkpoint(path, t.model, t.optimizer, epoch=3)

    t2 = Trainer(reddit_mini, CFG)
    epoch, _ = load_checkpoint(path, t2.model, t2.optimizer)
    assert epoch == 3
    assert t2.optimizer._t == t.optimizer._t


def test_resume_equals_uninterrupted(tmp_path, reddit_mini):
    """Training 3+3 epochs with a checkpoint in between must equal
    training 6 straight epochs."""
    straight = Trainer(reddit_mini, CFG)
    losses_straight = [straight.train_epoch(e).loss for e in range(6)]

    first = Trainer(reddit_mini, CFG)
    for e in range(3):
        first.train_epoch(e)
    path = str(tmp_path / "mid.npz")
    save_checkpoint(path, first.model, first.optimizer, epoch=3)

    resumed = Trainer(reddit_mini, CFG)
    start, _ = load_checkpoint(path, resumed.model, resumed.optimizer)
    losses_resumed = [resumed.train_epoch(e).loss for e in range(start, 6)]
    np.testing.assert_allclose(
        losses_resumed, losses_straight[3:], rtol=1e-5, atol=1e-6
    )


def test_sgd_velocity_round_trip(tmp_path):
    model = GraphSAGE(4, 8, 2, seed=0)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    for p in model.parameters():
        p.grad = np.ones_like(p.data)
    opt.step()
    path = str(tmp_path / "sgd.npz")
    save_checkpoint(path, model, opt)

    model2 = GraphSAGE(4, 8, 2, seed=5)
    opt2 = SGD(model2.parameters(), lr=0.1, momentum=0.9)
    load_checkpoint(path, model2, opt2)
    for p1, p2 in zip(opt.params, opt2.params):
        np.testing.assert_array_equal(
            opt._velocity[id(p1)], opt2._velocity[id(p2)]
        )


@pytest.mark.parametrize("model_name", ["sage", "gcn"])
def test_resume_bitwise_identical(tmp_path, reddit_mini, model_name):
    """N epochs + checkpoint + resume N epochs == 2N straight epochs,
    bit-for-bit: parameters AND Adam moments/step counter."""
    n = 3
    cfg = TrainConfig(**{**vars(CFG), "model": model_name})
    straight = Trainer(reddit_mini, cfg)
    straight.fit(num_epochs=2 * n)

    first = Trainer(reddit_mini, cfg)
    first.fit(num_epochs=n)
    path = str(tmp_path / f"resume_{model_name}.npz")
    save_checkpoint(path, first.model, first.optimizer, epoch=n)

    resumed = Trainer(reddit_mini, cfg)
    start, _ = load_checkpoint(path, resumed.model, resumed.optimizer)
    assert start == n
    resumed.fit(num_epochs=2 * n, start_epoch=start)

    for (name, p_s), (_, p_r) in zip(
        straight.model.named_parameters(), resumed.model.named_parameters()
    ):
        assert np.array_equal(p_s.data, p_r.data), f"params diverge at {name}"
    assert straight.optimizer._t == resumed.optimizer._t
    for p_s, p_r in zip(straight.optimizer.params, resumed.optimizer.params):
        assert np.array_equal(
            straight.optimizer._m[id(p_s)], resumed.optimizer._m[id(p_r)]
        )
        assert np.array_equal(
            straight.optimizer._v[id(p_s)], resumed.optimizer._v[id(p_r)]
        )


def test_peek_checkpoint_and_meta_round_trip(tmp_path):
    from repro.core.checkpoint import config_from_meta, peek_checkpoint, training_meta

    cfg = TrainConfig(model="gcn", num_layers=2, hidden_features=16)
    model = GraphSAGE(4, 8, 2, seed=0)
    path = str(tmp_path / "meta.npz")
    save_checkpoint(path, model, epoch=11, extra=training_meta(cfg))
    epoch, extra = peek_checkpoint(path)
    assert epoch == 11
    rebuilt = config_from_meta(extra, TrainConfig())
    assert rebuilt.model == "gcn"
    assert rebuilt.num_layers == 2
    assert rebuilt.hidden_features == 16
    assert isinstance(rebuilt.num_layers, int)


def test_config_from_meta_tolerates_missing_keys():
    from repro.core.checkpoint import config_from_meta

    base = TrainConfig(model="sage", num_layers=3)
    rebuilt = config_from_meta({}, base)
    assert rebuilt.model == "sage" and rebuilt.num_layers == 3


def test_version_check(tmp_path):
    model = GraphSAGE(4, 8, 2, seed=0)
    path = str(tmp_path / "v.npz")
    save_checkpoint(path, model)
    # corrupt the version
    data = dict(np.load(path))
    data["format_version"] = np.asarray(99)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(path, model)
