"""Model factory and distributed GCN (beyond-GraphSAGE DRPA)."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, Trainer, TrainConfig
from repro.core.models import build_model, norm_from_degrees
from repro.nn.gcn import GCN
from repro.nn.sage import GraphSAGE


def _cfg(model):
    return TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01,
        eval_every=0, seed=0, model=model,
    )


class TestFactory:
    def test_builds_sage(self):
        m = build_model(_cfg("sage"), 8, 4)
        assert isinstance(m, GraphSAGE)

    def test_builds_gcn(self):
        m = build_model(_cfg("gcn"), 8, 4)
        assert isinstance(m, GCN)

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model(_cfg("gat"), 8, 4)

    def test_norms(self):
        deg = np.array([0, 3, 8])
        sage = norm_from_degrees("sage", deg).data.ravel()
        gcn = norm_from_degrees("gcn", deg).data.ravel()
        np.testing.assert_allclose(sage, [1.0, 0.25, 1 / 9])
        np.testing.assert_allclose(gcn, [1.0, 0.5, 1 / 3])

    def test_norm_unknown(self):
        with pytest.raises(ValueError):
            norm_from_degrees("gin", np.array([1]))


class TestDistributedGCN:
    def test_gcn_trains_single_socket(self, reddit_mini):
        res = Trainer(reddit_mini, _cfg("gcn")).fit(num_epochs=15)
        assert res.final_loss < res.loss_curve()[0]

    def test_gcn_cd0_matches_single_socket(self, reddit_mini):
        """The cd-0 exactness contract extends to GCN: the DRPA sync of
        pre-scaled partial aggregates is still the exact decomposition."""
        single = Trainer(reddit_mini, _cfg("gcn")).fit(num_epochs=12)
        dist = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0", config=_cfg("gcn")
        ).fit(num_epochs=12)
        np.testing.assert_allclose(
            dist.loss_curve(), single.loss_curve(), atol=3e-4
        )

    @pytest.mark.parametrize("algo", ["0c", "cd-3"])
    def test_gcn_other_algorithms(self, reddit_mini, algo):
        res = DistributedTrainer(
            reddit_mini, 3, algorithm=algo, config=_cfg("gcn")
        ).fit(num_epochs=10)
        assert res.final_loss < res.loss_curve()[0]

    def test_gcn_learns_distributed(self, reddit_mini):
        res = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0", config=_cfg("gcn")
        ).fit(num_epochs=40)
        assert res.final_test_acc > 3.0 / reddit_mini.num_classes
