"""CLI smoke tests (driven through main(), no subprocess)."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info", "--dataset", "reddit", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "reddit" in out and "density" in out


def test_partition(capsys):
    assert (
        main(
            [
                "partition",
                "--dataset",
                "reddit",
                "--scale",
                "0.05",
                "--partitions",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "replication factor" in out


def test_partition_baselines(capsys):
    for p in ("random", "hash"):
        assert (
            main(
                [
                    "partition",
                    "--dataset",
                    "reddit",
                    "--scale",
                    "0.05",
                    "--partitioner",
                    p,
                ]
            )
            == 0
        )


def test_train_single(capsys, tmp_path):
    ckpt = str(tmp_path / "m.npz")
    rc = main(
        [
            "train",
            "--dataset",
            "reddit",
            "--scale",
            "0.05",
            "--epochs",
            "3",
            "--checkpoint",
            ckpt,
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "final test accuracy" in out
    import os

    assert os.path.exists(ckpt)


def test_train_distributed(capsys):
    rc = main(
        [
            "train",
            "--dataset",
            "reddit",
            "--scale",
            "0.05",
            "--epochs",
            "3",
            "--partitions",
            "2",
            "--algorithm",
            "cd-2",
            "--compression",
            "bf16",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "replication factor" in out


def test_sample(capsys):
    rc = main(
        [
            "sample",
            "--dataset",
            "reddit",
            "--scale",
            "0.05",
            "--epochs",
            "2",
            "--batch-size",
            "64",
            "--fanouts",
            "5",
            "5",
        ]
    )
    assert rc == 0
    assert "sampled work" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
