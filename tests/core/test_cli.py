"""CLI smoke tests (driven through main(), no subprocess)."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info", "--dataset", "reddit", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "reddit" in out and "density" in out


def test_partition(capsys):
    assert (
        main(
            [
                "partition",
                "--dataset",
                "reddit",
                "--scale",
                "0.05",
                "--partitions",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "replication factor" in out


def test_partition_baselines(capsys):
    for p in ("random", "hash"):
        assert (
            main(
                [
                    "partition",
                    "--dataset",
                    "reddit",
                    "--scale",
                    "0.05",
                    "--partitioner",
                    p,
                ]
            )
            == 0
        )


def test_train_single(capsys, tmp_path):
    ckpt = str(tmp_path / "m.npz")
    rc = main(
        [
            "train",
            "--dataset",
            "reddit",
            "--scale",
            "0.05",
            "--epochs",
            "3",
            "--checkpoint",
            ckpt,
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "final test accuracy" in out
    import os

    assert os.path.exists(ckpt)


def test_train_distributed(capsys):
    rc = main(
        [
            "train",
            "--dataset",
            "reddit",
            "--scale",
            "0.05",
            "--epochs",
            "3",
            "--partitions",
            "2",
            "--algorithm",
            "cd-2",
            "--compression",
            "bf16",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "replication factor" in out


def test_sample(capsys):
    rc = main(
        [
            "sample",
            "--dataset",
            "reddit",
            "--scale",
            "0.05",
            "--epochs",
            "2",
            "--batch-size",
            "64",
            "--fanouts",
            "5",
            "5",
        ]
    )
    assert rc == 0
    assert "sampled work" in capsys.readouterr().out


def test_train_resume(capsys, tmp_path):
    ckpt = str(tmp_path / "r.npz")
    base = ["--dataset", "reddit", "--scale", "0.05"]
    assert main(["train", *base, "--epochs", "2", "--checkpoint", ckpt]) == 0
    capsys.readouterr()
    rc = main(["train", *base, "--epochs", "4", "--resume", ckpt])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resumed from epoch 2" in out
    assert "final test accuracy" in out


def test_train_resume_rejects_distributed(capsys, tmp_path):
    ckpt = str(tmp_path / "r.npz")
    base = ["--dataset", "reddit", "--scale", "0.05"]
    assert main(["train", *base, "--epochs", "2", "--checkpoint", ckpt]) == 0
    rc = main(
        ["train", *base, "--epochs", "4", "--resume", ckpt, "--partitions", "2"]
    )
    assert rc == 2
    assert "--resume" in capsys.readouterr().err


def test_predict_cli(capsys, tmp_path):
    ckpt = str(tmp_path / "p.npz")
    base = ["--dataset", "reddit", "--scale", "0.05"]
    assert main(["train", *base, "--epochs", "2", "--checkpoint", ckpt]) == 0
    capsys.readouterr()
    rc = main(
        ["predict", *base, "--checkpoint", ckpt, "--vertices", "0,5,9", "--k", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("vertex") == 3 and "top2" in out


def test_predict_cli_bad_vertices(capsys, tmp_path):
    ckpt = str(tmp_path / "b.npz")
    base = ["--dataset", "reddit", "--scale", "0.05"]
    assert main(["train", *base, "--epochs", "1", "--checkpoint", ckpt]) == 0
    rc = main(["predict", *base, "--checkpoint", ckpt, "--vertices", "zero"])
    assert rc == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_serve_parser_accepts_options():
    args = build_parser().parse_args(
        ["serve", "--checkpoint", "c.npz", "--port", "0", "--cache-size", "128",
         "--workers", "2", "--max-queue", "32", "--request-timeout", "5"]
    )
    assert args.command == "serve" and args.cache_size == 128
    assert args.workers == 2 and args.max_queue == 32
    assert args.request_timeout == 5.0


def test_loadgen_cli(capsys, tmp_path):
    ckpt = str(tmp_path / "lg.npz")
    base = ["--dataset", "reddit", "--scale", "0.05"]
    assert main(["train", *base, "--epochs", "2", "--checkpoint", ckpt]) == 0
    capsys.readouterr()
    rc = main(
        ["loadgen", *base, "--checkpoint", ckpt, "--rate", "50",
         "--duration", "0.5", "--arrival", "bursty", "--clients", "4",
         "--mix", "predict=0.8,topk=0.2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "offered" in out and "achieved" in out and "p99" in out
    assert "predict" in out and "topk" in out


def test_loadgen_cli_rejects_bad_mix(capsys, tmp_path):
    ckpt = str(tmp_path / "lgbad.npz")
    base = ["--dataset", "reddit", "--scale", "0.05"]
    rc = main(["loadgen", *base, "--checkpoint", ckpt, "--mix", "nonsense"])
    assert rc == 2
    assert "bad --mix" in capsys.readouterr().err


def test_loadgen_parser_requires_a_target():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["loadgen", "--rate", "10"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["loadgen", "--url", "http://x", "--checkpoint", "c.npz"]
        )


def test_ingest(capsys, tmp_path):
    state = str(tmp_path / "libra_state.npz")
    argv = [
        "ingest", "--dataset", "reddit", "--scale", "0.05",
        "--partitions", "3", "--stream-fraction", "0.3",
        "--chunk-size", "1000", "--state", state,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "merged view == from-scratch rebuild" in out
    assert "replication" in out and "state written" in out
    # resuming with the same seed picks up the assignment counter
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "resumed LibraState" in out
    assert "merged view == from-scratch rebuild" in out


def test_ingest_resume_rejects_mismatched_seed(capsys, tmp_path):
    state = str(tmp_path / "libra_state.npz")
    base = [
        "ingest", "--dataset", "reddit", "--scale", "0.05",
        "--stream-fraction", "0.3", "--state", state,
    ]
    assert main(base + ["--seed", "0"]) == 0
    capsys.readouterr()
    # a different seed shuffles a different arrival order: the saved
    # assignment counter would resume into the wrong sequence
    assert main(base + ["--seed", "1"]) == 2
    assert "--seed" in capsys.readouterr().err


def test_ingest_validates_arguments(capsys):
    assert main(["ingest", "--scale", "0.05", "--stream-fraction", "1.5"]) == 2
    assert "--stream-fraction" in capsys.readouterr().err
    assert main(["ingest", "--scale", "0.05", "--chunk-size", "0"]) == 2
    assert "--chunk-size" in capsys.readouterr().err
