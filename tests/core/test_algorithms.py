"""Algorithm specs."""

import pytest

from repro.core.algorithms import ALGORITHMS, get_algorithm


def test_0c():
    spec = get_algorithm("0c")
    assert not spec.communicate
    assert not spec.sync_gradients


def test_cd0():
    spec = get_algorithm("cd-0")
    assert spec.communicate and spec.delay == 0
    assert spec.sync_gradients
    assert spec.is_synchronous
    assert spec.num_bins == 1


def test_cdr_default_delay():
    spec = get_algorithm("cd-r", delay=5)
    assert spec.delay == 5
    assert spec.num_bins == 5
    assert not spec.sync_gradients
    assert spec.display_name() == "cd-5"


def test_explicit_delay_name():
    spec = get_algorithm("cd-7")
    assert spec.delay == 7


def test_cd_zero_via_name():
    assert get_algorithm("cd-0").name == "cd-0"
    assert get_algorithm("cd-r", delay=0).sync_gradients


def test_unknown():
    with pytest.raises(ValueError):
        get_algorithm("async-sgd")


def test_registry():
    assert set(ALGORITHMS) == {"0c", "cd-0", "cd-5"}


def test_case_insensitive():
    assert get_algorithm("CD-0").name == "cd-0"
    assert get_algorithm("0C").name == "0c"
