"""Single-socket and distributed trainers."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, Trainer, TrainConfig
from repro.core.config import paper_learning_rate
from repro.core.sync import allreduce_gradients, assert_replicas_in_sync
from repro.comm import World
from repro.nn import GraphSAGE


CFG = TrainConfig(
    num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
)


class TestConfig:
    def test_for_dataset_reddit(self):
        cfg = TrainConfig().for_dataset("reddit")
        assert cfg.num_layers == 2 and cfg.hidden_features == 16

    def test_for_dataset_other(self):
        cfg = TrainConfig().for_dataset("ogbn-products")
        assert cfg.num_layers == 3 and cfg.hidden_features == 256

    def test_paper_lr_exact(self):
        assert paper_learning_rate("reddit", 2) == 0.028

    def test_paper_lr_fallback(self):
        assert paper_learning_rate("reddit", 12) == 0.028  # nearest smaller
        assert paper_learning_rate("unknown", 4, default=0.42) == 0.42


class TestSingleSocket:
    def test_loss_decreases(self, reddit_mini):
        t = Trainer(reddit_mini, CFG)
        res = t.fit(num_epochs=20)
        curve = res.loss_curve()
        assert curve[-1] < curve[0] * 0.8

    def test_learns_better_than_chance(self, reddit_mini):
        t = Trainer(reddit_mini, CFG)
        res = t.fit(num_epochs=40)
        assert res.final_test_acc > 2.0 / reddit_mini.num_classes

    def test_epoch_stats_recorded(self, reddit_mini):
        res = Trainer(reddit_mini, CFG).fit(num_epochs=3)
        assert len(res.epochs) == 3
        for e in res.epochs:
            assert e.total_time_s > 0
            assert 0 <= e.ap_time_s <= e.total_time_s + 1e-6

    def test_eval_every(self, reddit_mini):
        cfg = TrainConfig(**{**vars(CFG), "eval_every": 2})
        res = Trainer(reddit_mini, cfg).fit(num_epochs=5)
        assert res.epochs[0].test_acc is not None
        assert res.epochs[1].test_acc is None
        assert res.epochs[2].test_acc is not None

    def test_num_threads_training_is_bit_identical(self, reddit_mini):
        """Every AP riding the parallel engine changes nothing numeric:
        losses and final parameters match the single-threaded run bit
        for bit."""
        base = Trainer(reddit_mini, CFG).fit(num_epochs=4)
        cfg = TrainConfig(**{**vars(CFG), "num_threads": 2})
        threaded_trainer = Trainer(reddit_mini, cfg)
        assert threaded_trainer.model.layers[0].num_threads == 2
        threaded = threaded_trainer.fit(num_epochs=4)
        assert base.loss_curve() == threaded.loss_curve()
        ref_params = Trainer(reddit_mini, CFG)
        ref_params.fit(num_epochs=4)
        for (name, p), (_, q) in zip(
            ref_params.model.named_parameters(),
            threaded_trainer.model.named_parameters(),
        ):
            assert np.array_equal(p.data, q.data), name

    def test_deterministic(self, reddit_mini):
        r1 = Trainer(reddit_mini, CFG).fit(num_epochs=5)
        r2 = Trainer(reddit_mini, CFG).fit(num_epochs=5)
        assert r1.loss_curve() == r2.loss_curve()

    def test_sgd_optimizer(self, reddit_mini):
        cfg = TrainConfig(**{**vars(CFG), "optimizer": "sgd", "learning_rate": 0.1})
        res = Trainer(reddit_mini, cfg).fit(num_epochs=10)
        assert res.final_loss < res.loss_curve()[0]

    def test_unknown_optimizer(self, reddit_mini):
        cfg = TrainConfig(**{**vars(CFG), "optimizer": "rmsprop"})
        with pytest.raises(ValueError):
            Trainer(reddit_mini, cfg)


class TestDistributed:
    @pytest.mark.parametrize("algo", ["0c", "cd-0", "cd-2"])
    def test_runs_and_learns(self, reddit_mini, algo):
        dt = DistributedTrainer(reddit_mini, 3, algorithm=algo, config=CFG)
        res = dt.fit(num_epochs=15)
        assert res.final_loss < res.loss_curve()[0]
        assert res.algorithm in (algo, "cd-2")

    def test_zero_c_no_training_comm(self, reddit_mini):
        dt = DistributedTrainer(reddit_mini, 3, algorithm="0c", config=CFG)
        dt.train_epoch(0)
        # only AllReduce traffic (parameter sync), no aggregate messages
        assert dt.world.counters.collective_calls.get("all_reduce", 0) > 0
        assert dt.world.counters.messages_sent == [0, 0, 0]

    def test_cd0_communicates_every_epoch(self, reddit_mini):
        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-0", config=CFG)
        before = dt.world.counters.snapshot()
        dt.train_epoch(0)
        delta = dt.world.counters.delta_since(before)
        assert sum(delta.messages_sent) > 0

    def test_cdr_sends_less_per_epoch_than_cd0(self, reddit_mini):
        cd0 = DistributedTrainer(reddit_mini, 3, algorithm="cd-0", config=CFG)
        cdr = DistributedTrainer(reddit_mini, 3, algorithm="cd-5", config=CFG)
        s0 = cd0.train_epoch(0).comm_bytes
        sr = cdr.train_epoch(0).comm_bytes
        assert sr < s0

    def test_replicas_stay_in_sync(self, reddit_mini):
        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-5", config=CFG)
        dt.fit(num_epochs=4)
        assert_replicas_in_sync([s.model for s in dt.ranks])

    def test_owned_loss_covers_all_train_vertices(self, reddit_mini):
        dt = DistributedTrainer(reddit_mini, 4, algorithm="0c", config=CFG)
        counted = sum(
            int((s.train_mask & s.owned).sum()) for s in dt.ranks
        )
        assert counted == int(reddit_mini.train_mask.sum())

    def test_partitioner_choices(self, reddit_mini):
        for name in ("libra", "random", "hash"):
            dt = DistributedTrainer(
                reddit_mini, 2, algorithm="0c", config=CFG, partitioner=name
            )
            dt.train_epoch(0)

    def test_unknown_partitioner(self, reddit_mini):
        with pytest.raises(ValueError):
            DistributedTrainer(
                reddit_mini, 2, algorithm="0c", config=CFG, partitioner="metis"
            )

    def test_result_metadata(self, reddit_mini):
        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-0", config=CFG)
        res = dt.fit(num_epochs=2)
        assert res.num_partitions == 3
        assert res.replication_factor > 1.0
        assert res.total_comm_bytes > 0


class TestGradientSync:
    def test_allreduce_sums_grads(self):
        world = World(2)
        models = [GraphSAGE(4, 4, 2, num_layers=1, seed=0) for _ in range(2)]
        for i, m in enumerate(models):
            for p in m.parameters():
                p.grad = np.full_like(p.data, float(i + 1))
        allreduce_gradients(world, models)
        for m in models:
            for p in m.parameters():
                assert np.all(p.grad == 3.0)

    def test_none_grads_are_zero(self):
        world = World(2)
        models = [GraphSAGE(4, 4, 2, num_layers=1, seed=0) for _ in range(2)]
        for p in models[0].parameters():
            p.grad = np.ones_like(p.data)
        allreduce_gradients(world, models)
        for p in models[1].parameters():
            assert np.all(p.grad == 1.0)

    def test_replica_divergence_detected(self):
        a = GraphSAGE(4, 4, 2, seed=0)
        b = GraphSAGE(4, 4, 2, seed=1)
        with pytest.raises(AssertionError, match="divergence"):
            assert_replicas_in_sync([a, b])
