"""Finite-difference gradient checks for every differentiable op."""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.nn import Tensor
from repro.nn import functional as F


def numeric_grad(fn, x, eps=1e-6):
    """Central finite differences of scalar fn w.r.t. array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        g[idx] = (fn(xp) - fn(xm)) / (2 * eps)
        it.iternext()
    return g


def check(op_builder, shape, seed=0, atol=1e-6):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = op_builder(t)
    out.backward()
    num = numeric_grad(lambda arr: float(op_builder(Tensor(arr)).data), x)
    np.testing.assert_allclose(t.grad, num, atol=atol)


def test_add_broadcast_bias():
    bias = np.array([0.5, -0.5, 1.0])
    check(lambda t: F.add(t, Tensor(bias)).sum(), (4, 3))


def test_add_grad_of_bias():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 3))
    b = rng.standard_normal(3)
    tb = Tensor(b.copy(), requires_grad=True)
    F.add(Tensor(x), tb).sum().backward()
    num = numeric_grad(
        lambda arr: float(F.add(Tensor(x), Tensor(arr)).sum().data), b
    )
    np.testing.assert_allclose(tb.grad, num, atol=1e-6)


def test_sub():
    check(lambda t: F.sub(t, Tensor(np.ones((3, 2)))).sum(), (3, 2))


def test_mul_broadcast_column():
    norm = np.random.default_rng(1).random((5, 1)) + 0.5
    check(lambda t: F.mul(t, Tensor(norm)).sum(), (5, 4))


def test_matmul_lhs():
    w = np.random.default_rng(2).standard_normal((3, 2))
    check(lambda t: F.matmul(t, Tensor(w)).sum(), (4, 3))


def test_matmul_rhs():
    x = np.random.default_rng(3).standard_normal((4, 3))
    check(lambda t: F.matmul(Tensor(x), t).sum(), (3, 2))


def test_relu():
    # keep values away from the kink
    rng = np.random.default_rng(4)
    x = rng.standard_normal((4, 4))
    x[np.abs(x) < 0.1] += 0.3
    t = Tensor(x.copy(), requires_grad=True)
    F.relu(t).sum().backward()
    num = numeric_grad(lambda a: float(F.relu(Tensor(a)).sum().data), x)
    np.testing.assert_allclose(t.grad, num, atol=1e-6)


def test_mean():
    check(lambda t: t.mean(), (6, 2))


def test_log_softmax():
    check(lambda t: F.log_softmax(t).sum(), (3, 5), atol=1e-5)


def test_pick():
    rows = np.array([0, 1, 2])
    cols = np.array([1, 0, 2])
    check(lambda t: F.pick(F.log_softmax(t), rows, cols).sum(), (3, 4), atol=1e-5)


def test_spmm():
    g = from_edge_list([(0, 1), (1, 2), (2, 0), (0, 2), (1, 0)], num_vertices=3)
    check(lambda t: F.relu(F.spmm(g, t)).sum(), (3, 4), atol=1e-5)


def test_spmm_chain_through_matmul():
    g = from_edge_list([(0, 1), (1, 0), (1, 2)], num_vertices=3)
    w = np.random.default_rng(5).standard_normal((4, 2))
    check(
        lambda t: F.spmm(g, F.matmul(t, Tensor(w))).sum(),
        (3, 4),
        atol=1e-5,
    )


def test_rows_add_identity_backward():
    rows = np.array([0, 2])
    vals = np.ones((2, 3))
    check(lambda t: F.rows_add(t, rows, vals).sum(), (4, 3))


def test_dropout_backward_matches_mask():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones((100, 4)), requires_grad=True)
    out = F.dropout(x, 0.5, rng, training=True)
    out.sum().backward()
    # grad equals the applied mask (0 or 1/(1-p))
    assert set(np.unique(x.grad)) <= {0.0, 2.0}


def test_dropout_eval_is_identity():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones((10, 2)), requires_grad=True)
    out = F.dropout(x, 0.9, rng, training=False)
    assert out is x


# -- attention autograd path (edge_scores -> edge_softmax -> weighted_spmm) ----
#
# Non-uniform in-degrees on purpose: vertex 1 has in-degree 4, vertex 4
# in-degree 1, and vertices 0 and 5 have **zero** in-edges (their softmax
# segment is empty and their aggregate row stays zero — both must still
# route gradients correctly).


def attention_graph():
    return from_edge_list(
        [(0, 1), (2, 1), (3, 1), (5, 1), (1, 2), (0, 2), (3, 4), (1, 3)],
        num_vertices=6,
    )


def test_edge_scores_grad_both_parents():
    g = attention_graph()
    rng = np.random.default_rng(7)
    s = rng.standard_normal((6, 1))
    d = rng.standard_normal((6, 1))
    coef = rng.standard_normal((g.num_edges, 1))

    def run(src_arr, dst_arr):
        out = F.edge_scores(g, Tensor(src_arr), Tensor(dst_arr))
        return float(F.mul(out, Tensor(coef)).sum().data)

    ts, td = Tensor(s.copy(), requires_grad=True), Tensor(d.copy(), requires_grad=True)
    F.mul(F.edge_scores(g, ts, td), Tensor(coef)).sum().backward()
    np.testing.assert_allclose(
        ts.grad, numeric_grad(lambda a: run(a, d), s), atol=1e-6
    )
    np.testing.assert_allclose(
        td.grad, numeric_grad(lambda a: run(s, a), d), atol=1e-6
    )


def test_edge_softmax_grad():
    g = attention_graph()
    rng = np.random.default_rng(8)
    coef = rng.standard_normal((g.num_edges, 1))
    check(
        lambda t: F.mul(F.edge_softmax(g, t), Tensor(coef)).sum(),
        (g.num_edges, 1),
        seed=8,
        atol=1e-5,
    )


@pytest.mark.parametrize("kernel", ["auto", "baseline"])
def test_weighted_spmm_grad_features(kernel):
    g = attention_graph()
    rng = np.random.default_rng(9)
    w = rng.random((g.num_edges, 1)) + 0.1
    check(
        lambda t: F.relu(F.weighted_spmm(g, t, Tensor(w), kernel=kernel)).sum(),
        (6, 3),
        seed=9,
        atol=1e-5,
    )


@pytest.mark.parametrize("kernel", ["auto", "baseline"])
def test_weighted_spmm_grad_weights(kernel):
    g = attention_graph()
    rng = np.random.default_rng(10)
    x = rng.standard_normal((6, 3))
    w = rng.random((g.num_edges, 1)) + 0.1
    tw = Tensor(w.copy(), requires_grad=True)
    F.weighted_spmm(g, Tensor(x), tw, kernel=kernel).sum().backward()
    num = numeric_grad(
        lambda arr: float(
            F.weighted_spmm(g, Tensor(x), Tensor(arr), kernel=kernel).sum().data
        ),
        w,
    )
    np.testing.assert_allclose(tw.grad, num, atol=1e-6)


@pytest.mark.parametrize("kernel", ["auto", "baseline"])
def test_attention_chain_grad(kernel):
    """Full GAT-style chain: scores -> softmax -> weighted aggregation."""
    g = attention_graph()
    rng = np.random.default_rng(11)
    s = rng.standard_normal((6, 1))
    d = rng.standard_normal((6, 1))

    def chain(t):
        att = F.edge_softmax(g, F.edge_scores(g, Tensor(s), Tensor(d)))
        return F.weighted_spmm(g, t, att, kernel=kernel).sum()

    check(chain, (6, 4), seed=11, atol=1e-5)


def test_edge_softmax_backward_honors_dtype():
    g = attention_graph()
    logits = Tensor(
        np.random.default_rng(3).standard_normal((g.num_edges, 1)).astype(np.float32),
        requires_grad=True,
    )
    F.edge_softmax(g, logits).sum().backward()
    assert logits.grad.dtype == np.float32


def test_edge_softmax_backward_caches_dst_map():
    g = attention_graph()
    for _ in range(2):
        t = Tensor(np.ones((g.num_edges, 1)), requires_grad=True)
        F.edge_softmax(g, t).sum().backward()
    from repro.nn.functional import _cached_dst_map

    assert getattr(g, "_csr_dst_map", None) is not None
    assert _cached_dst_map(g) is g._csr_dst_map
