"""Autograd tensor mechanics."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn import functional as F


class TestBasics:
    def test_wraps_array(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2

    def test_leaf_detection(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = F.add(a, a)
        assert a.is_leaf and not b.is_leaf

    def test_detach_cuts_tape(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = F.add(a, a).detach()
        c = F.mul(b, b)
        c.backward(np.ones(2))
        assert a.grad is None

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        F.mul(a, a).backward(np.ones(2))
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        a.sum().backward()
        assert np.array_equal(a.grad, [1.0, 1.0])

    def test_nonscalar_requires_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = F.mul(a, a)
        with pytest.raises(ValueError, match="scalar"):
            b.backward()

    def test_gradient_shape_checked(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = F.mul(a, a)
        with pytest.raises(ValueError, match="shape"):
            b.backward(np.ones(4))

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.ones(2), requires_grad=True)
        F.mul(a, Tensor(np.full(2, 3.0))).backward(np.ones(2))
        F.mul(a, Tensor(np.full(2, 4.0))).backward(np.ones(2))
        assert np.array_equal(a.grad, [7.0, 7.0])

    def test_diamond_graph(self):
        # y = (a + a) * a -> dy/da = 2a + (a + a) = 4a at a
        a = Tensor(np.array([3.0]), requires_grad=True)
        y = F.mul(F.add(a, a), a)
        y.backward(np.ones(1))
        assert a.grad[0] == pytest.approx(12.0)

    def test_shared_subexpression(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = F.mul(a, a)  # a^2
        y = F.add(b, b)  # 2a^2 -> dy/da = 4a = 8
        y.backward(np.ones(1))
        assert a.grad[0] == pytest.approx(8.0)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.ones(1), requires_grad=True)
        x = a
        for _ in range(3000):
            x = F.add(x, Tensor(np.zeros(1)))
        x.backward(np.ones(1))
        assert a.grad[0] == 1.0


class TestNoGrad:
    def test_suppresses_tape(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            b = F.mul(a, a)
        assert b.is_leaf

    def test_restores_on_exit(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            pass
        b = F.mul(a, a)
        assert not b.is_leaf

    def test_restores_on_exception(self):
        from repro.nn.tensor import grad_enabled

        try:
            with no_grad():
                raise RuntimeError
        except RuntimeError:
            pass
        assert grad_enabled()


class TestOperatorSugar:
    def test_arith_operators(self):
        a = Tensor(np.array([4.0]), requires_grad=True)
        y = (a + 1.0) * 2.0 - a
        assert y.data[0] == pytest.approx(6.0)
        y.backward(np.ones(1))
        assert a.grad[0] == pytest.approx(1.0)

    def test_matmul_operator(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.array_equal((a @ b).data, b.data)

    def test_neg(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (-a).backward(np.ones(1))
        assert a.grad[0] == -1.0
