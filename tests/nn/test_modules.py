"""Module system, layers, losses, optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    Linear,
    Module,
    Parameter,
    SGD,
    Tensor,
    accuracy,
    masked_cross_entropy,
)
from repro.nn import functional as F


class TestModule:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(2))
                self.sub = Linear(2, 3)

        m = M()
        names = [n for n, _ in m.named_parameters()]
        assert "w" in names
        assert "sub.weight" in names and "sub.bias" in names

    def test_zero_grad(self):
        lin = Linear(2, 2)
        F.matmul(Tensor(np.ones((1, 2))), lin.weight).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_train_eval_propagates(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5)

        m = M()
        m.eval()
        assert not m.drop.training
        m.train()
        assert m.drop.training

    def test_state_dict_round_trip(self):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        b = Linear(3, 2, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch(self):
        a = Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 2))})  # missing bias

    def test_num_parameters(self):
        lin = Linear(3, 2)
        assert lin.num_parameters() == 3 * 2 + 2


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(4, 3)
        out = lin(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=np.random.default_rng(7))
        b = Linear(4, 3, rng=np.random.default_rng(7))
        assert np.array_equal(a.weight.data, b.weight.data)


class TestLoss:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.eye(3) * 20.0)
        loss = masked_cross_entropy(logits, np.arange(3))
        assert float(loss.data) < 1e-6

    def test_mask_selects_rows(self):
        logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0], [-10.0, 0.0]]))
        labels = np.array([0, 1, 0])
        full = float(masked_cross_entropy(logits, labels).data)
        masked = float(
            masked_cross_entropy(logits, labels, np.array([True, True, False])).data
        )
        assert masked < full

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError, match="no vertices"):
            masked_cross_entropy(
                Tensor(np.zeros((2, 2))), np.zeros(2, dtype=int), np.zeros(2, bool)
            )

    def test_normalizer_scales(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 0])
        mean = float(masked_cross_entropy(logits, labels).data)
        normed = float(masked_cross_entropy(logits, labels, normalizer=8.0).data)
        assert normed == pytest.approx(mean / 2.0)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)
        assert accuracy(logits, labels, np.array([True, True, False])) == 1.0

    def test_accuracy_empty_mask(self):
        assert accuracy(np.zeros((2, 2)), np.zeros(2, int), np.zeros(2, bool)) == 0.0


class TestOptimizers:
    def _quadratic_step(self, opt_cls, **kw):
        p = Parameter(np.array([5.0]))
        opt = opt_cls([p], lr=0.1, **kw)
        for _ in range(200):
            opt.zero_grad()
            (Tensor(np.array([1.0])) * p * p).sum().backward()
            opt.step()
        return abs(float(p.data[0]))

    def test_sgd_converges(self):
        assert self._quadratic_step(SGD) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_step(SGD, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_step(Adam) < 1e-2

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.zeros(1)  # zero loss gradient -> pure decay step
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.step()
        assert float(p.data[0]) == pytest.approx(1.0 - 0.1 * 0.5)

    def test_missing_grad_treated_as_zero(self):
        p = Parameter(np.array([2.0]))
        Adam([p], lr=0.1).step()
        assert float(p.data[0]) == pytest.approx(2.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
