"""Property-based autograd checks: random op compositions vs finite
differences, and algebraic gradient identities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import coo_to_csr
from repro.nn import Tensor
from repro.nn import functional as F

from tests.nn.test_gradcheck import numeric_grad


@st.composite
def small_problem(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    d = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=12))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    seed = draw(st.integers(0, 999))
    g = coo_to_csr(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_dst=n,
        num_src=n,
    )
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    # keep relu inputs away from the kink for finite differences
    x[np.abs(x) < 0.05] += 0.2
    return g, x


@given(small_problem())
@settings(max_examples=25, deadline=None)
def test_two_layer_composition_gradcheck(problem):
    g, x = problem
    d = x.shape[1]
    rng = np.random.default_rng(1)
    w1 = rng.standard_normal((d, 3))
    w2 = rng.standard_normal((3, 2))
    norm = Tensor(1.0 / (g.in_degrees().astype(np.float64) + 1.0).reshape(-1, 1))

    def forward(arr):
        h = Tensor(arr)
        z1 = F.mul(F.spmm(g, F.matmul(h, Tensor(w1))), norm)
        h1 = F.relu(z1)
        z2 = F.spmm(g, F.matmul(h1, Tensor(w2)))
        return z2.sum()

    t = Tensor(x.copy(), requires_grad=True)
    h = t
    z1 = F.mul(F.spmm(g, F.matmul(h, Tensor(w1))), norm)
    h1 = F.relu(z1)
    F.spmm(g, F.matmul(h1, Tensor(w2))).sum().backward()
    num = numeric_grad(lambda a: float(forward(a).data), x, eps=1e-6)
    np.testing.assert_allclose(t.grad, num, atol=5e-5)


@given(small_problem())
@settings(max_examples=25, deadline=None)
def test_gradient_linearity(problem):
    """grad of (2 * loss) == 2 * grad of loss."""
    g, x = problem

    def grad_of(scale):
        t = Tensor(x.copy(), requires_grad=True)
        out = F.spmm(g, t).sum() * scale
        out.backward()
        return t.grad

    np.testing.assert_allclose(grad_of(2.0), 2.0 * grad_of(1.0), rtol=1e-10)


@given(small_problem())
@settings(max_examples=25, deadline=None)
def test_spmm_adjoint_identity(problem):
    """<A x, y> == <x, A^T y> — the defining identity the spmm backward
    relies on."""
    g, x = problem
    rng = np.random.default_rng(0)
    y = rng.standard_normal((g.num_vertices, x.shape[1]))
    from repro.kernels import aggregate

    ax = aggregate(g, x, kernel="reordered")
    aty = aggregate(g.reverse(), y, kernel="reordered")
    np.testing.assert_allclose(
        float((ax * y).sum()), float((x * aty).sum()), rtol=1e-9, atol=1e-9
    )


@given(small_problem(), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_log_softmax_rows_normalized(problem, seed):
    _, x = problem
    out = F.log_softmax(Tensor(x))
    sums = np.exp(out.data).sum(axis=1)
    np.testing.assert_allclose(sums, 1.0, rtol=1e-8)
