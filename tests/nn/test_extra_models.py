"""GCN and GIN models on the shared aggregation substrate."""

import numpy as np
import pytest

from repro.nn import Tensor, masked_cross_entropy, Adam, accuracy
from repro.nn.gcn import GCN, GCNConv, symmetric_norm
from repro.nn.gin import GIN, GINConv


class TestGCN:
    def test_forward_shape(self, small_rmat, small_features):
        model = GCN(8, 16, 5, num_layers=2)
        out = model(small_rmat, Tensor(small_features), symmetric_norm(small_rmat))
        assert out.shape == (small_rmat.num_vertices, 5)

    def test_symmetric_norm_values(self, line_graph):
        norm = symmetric_norm(line_graph)
        # in-degrees [0,1,1,1] -> 1/sqrt(d+1)
        np.testing.assert_allclose(
            norm.data.ravel(), [1.0, 2**-0.5, 2**-0.5, 2**-0.5], rtol=1e-6
        )

    def test_gradients_flow(self, small_rmat, small_features):
        model = GCN(8, 8, 3, num_layers=2)
        out = model(small_rmat, Tensor(small_features), symmetric_norm(small_rmat))
        labels = np.zeros(small_rmat.num_vertices, dtype=np.int64)
        masked_cross_entropy(out, labels).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_learns(self, reddit_mini):
        model = GCN(reddit_mini.feature_dim, 16, reddit_mini.num_classes, seed=0)
        norm = symmetric_norm(reddit_mini.graph)
        x = Tensor(reddit_mini.features)
        opt = Adam(model.parameters(), lr=0.01)
        first = None
        for _ in range(25):
            model.zero_grad()
            logits = model(reddit_mini.graph, x, norm)
            loss = masked_cross_entropy(
                logits, reddit_mini.labels, reddit_mini.train_mask
            )
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.7 * first

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            GCN(4, 8, 2, num_layers=0)


class TestGIN:
    def test_forward_shape(self, small_rmat, small_features):
        model = GIN(8, 16, 5, num_layers=2)
        out = model(small_rmat, Tensor(small_features))
        assert out.shape == (small_rmat.num_vertices, 5)

    def test_eps_is_learnable(self, small_rmat, small_features):
        layer = GINConv(8, 8)
        out = layer(small_rmat, Tensor(small_features))
        out.sum().backward()
        assert layer.eps.grad is not None
        assert layer.eps.grad.shape == (1,)

    def test_eps_changes_output(self, small_rmat, small_features):
        layer = GINConv(8, 8, activation=False)
        out1 = layer(small_rmat, Tensor(small_features)).data.copy()
        layer.eps.data = np.array([5.0], dtype=np.float32)
        out2 = layer(small_rmat, Tensor(small_features)).data
        assert not np.allclose(out1, out2)

    def test_learns(self, reddit_mini):
        model = GIN(reddit_mini.feature_dim, 16, reddit_mini.num_classes, seed=0)
        x = Tensor(reddit_mini.features)
        opt = Adam(model.parameters(), lr=0.005)
        first = None
        for _ in range(25):
            model.zero_grad()
            loss = masked_cross_entropy(
                model(reddit_mini.graph, x),
                reddit_mini.labels,
                reddit_mini.train_mask,
            )
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < first

    def test_parameter_count_includes_eps(self):
        model = GIN(4, 8, 2, num_layers=2)
        names = [n for n, _ in model.named_parameters()]
        assert sum("eps" in n for n in names) == 2
