"""GAT model and its differentiable attention ops."""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.nn import Adam, Tensor, masked_cross_entropy
from repro.nn import functional as F
from repro.nn.gat import GAT, GATConv

from tests.nn.test_gradcheck import numeric_grad


@pytest.fixture
def tiny():
    return from_edge_list(
        [(0, 1), (1, 2), (2, 0), (0, 2), (1, 0), (2, 1)], num_vertices=3
    )


class TestAttentionOps:
    def test_edge_scores_gradcheck(self, tiny):
        rng = np.random.default_rng(0)
        su = rng.standard_normal((3, 1))
        sv = rng.standard_normal((3, 1))

        def f_su(arr):
            return float(
                F.edge_scores(tiny, Tensor(arr), Tensor(sv)).sum().data
            )

        t = Tensor(su.copy(), requires_grad=True)
        F.edge_scores(tiny, t, Tensor(sv)).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(f_su, su), atol=1e-6)

    def test_edge_softmax_gradcheck(self, tiny):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((tiny.num_edges, 1))
        w = rng.standard_normal((tiny.num_edges, 1))  # fixed downstream mix

        def f(arr):
            s = F.edge_softmax(tiny, Tensor(arr))
            return float(F.mul(s, Tensor(w)).sum().data)

        t = Tensor(logits.copy(), requires_grad=True)
        F.mul(F.edge_softmax(tiny, t), Tensor(w)).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(f, logits), atol=1e-5)

    def test_weighted_spmm_feature_gradcheck(self, tiny):
        rng = np.random.default_rng(2)
        h = rng.standard_normal((3, 4))
        w = rng.standard_normal((tiny.num_edges, 1))

        def f(arr):
            return float(
                F.weighted_spmm(tiny, Tensor(arr), Tensor(w)).sum().data
            )

        t = Tensor(h.copy(), requires_grad=True)
        F.weighted_spmm(tiny, t, Tensor(w)).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(f, h), atol=1e-5)

    def test_weighted_spmm_weight_gradcheck(self, tiny):
        rng = np.random.default_rng(3)
        h = rng.standard_normal((3, 4))
        w = rng.standard_normal((tiny.num_edges, 1))

        def f(arr):
            return float(
                F.weighted_spmm(tiny, Tensor(h), Tensor(arr)).sum().data
            )

        t = Tensor(w.copy(), requires_grad=True)
        F.weighted_spmm(tiny, Tensor(h), t).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(f, w), atol=1e-5)

    def test_leaky_relu_gradcheck(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, 3))
        x[np.abs(x) < 0.1] += 0.3

        def f(arr):
            return float(F.leaky_relu(Tensor(arr), 0.2).sum().data)

        t = Tensor(x.copy(), requires_grad=True)
        F.leaky_relu(t, 0.2).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(f, x), atol=1e-6)

    def test_uniform_logits_give_mean_aggregation(self, tiny):
        """With equal attention, GAT aggregation = degree-normalized sum."""
        soft = F.edge_softmax(tiny, Tensor(np.zeros((tiny.num_edges, 1))))
        h = Tensor(np.eye(3))
        out = F.weighted_spmm(tiny, h, soft)
        deg = tiny.in_degrees()
        from repro.kernels import aggregate

        plain = aggregate(tiny, np.eye(3)) / deg.reshape(-1, 1)
        np.testing.assert_allclose(out.data, plain, rtol=1e-6)


class TestGATModel:
    def test_forward_shape(self, small_rmat, small_features):
        model = GAT(8, 16, 5, num_layers=2)
        out = model(small_rmat, Tensor(small_features))
        assert out.shape == (small_rmat.num_vertices, 5)

    def test_all_parameters_get_grads(self, small_rmat, small_features):
        model = GAT(8, 8, 3, num_layers=2)
        out = model(small_rmat, Tensor(small_features))
        labels = np.zeros(small_rmat.num_vertices, dtype=np.int64)
        masked_cross_entropy(out, labels).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_learns(self, reddit_mini):
        model = GAT(reddit_mini.feature_dim, 8, reddit_mini.num_classes, seed=0)
        x = Tensor(reddit_mini.features)
        opt = Adam(model.parameters(), lr=0.02)
        first = None
        for _ in range(35):
            model.zero_grad()
            loss = masked_cross_entropy(
                model(reddit_mini.graph, x),
                reddit_mini.labels,
                reddit_mini.train_mask,
            )
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.8 * first
