"""GraphSAGE and R-GCN models."""

import numpy as np
import pytest

from repro.graph.datasets import load_dataset
from repro.nn import GraphSAGE, RGCN, Tensor, masked_cross_entropy
from repro.nn.rgcn import relation_norms
from repro.nn.sage import SageConvGCN, gcn_norm_tensor


class TestSageConv:
    def test_aggregate_is_spmm(self, small_rmat, small_features):
        layer = SageConvGCN(8, 4)
        z = layer.aggregate(small_rmat, Tensor(small_features))
        expected = small_rmat.to_scipy() @ small_features
        np.testing.assert_allclose(z.data, expected, rtol=1e-4, atol=1e-5)

    def test_combine_gcn_postprocessing(self, line_graph):
        """combine = act(((z + h) * norm) @ W + b), paper Section 6.1."""
        layer = SageConvGCN(2, 2, activation=False)
        layer.linear.weight.data = np.eye(2, dtype=np.float32)
        layer.linear.bias.data = np.zeros(2, dtype=np.float32)
        h = Tensor(np.ones((4, 2), dtype=np.float32))
        z = Tensor(np.full((4, 2), 3.0, dtype=np.float32))
        norm = gcn_norm_tensor(line_graph)
        out = layer.combine(z, h, norm)
        expected = (3.0 + 1.0) * norm.data
        np.testing.assert_allclose(out.data, np.broadcast_to(expected, (4, 2)))

    def test_activation_flag(self, line_graph):
        h = Tensor(-np.ones((4, 3), dtype=np.float32))
        norm = gcn_norm_tensor(line_graph)
        with_act = SageConvGCN(3, 3, activation=True)(line_graph, h, norm)
        assert np.all(with_act.data >= 0)


class TestGraphSAGE:
    def test_output_shape(self, small_rmat, small_features):
        model = GraphSAGE(8, 16, 5, num_layers=3)
        out = model(small_rmat, Tensor(small_features), gcn_norm_tensor(small_rmat))
        assert out.shape == (small_rmat.num_vertices, 5)

    def test_single_layer(self, small_rmat, small_features):
        model = GraphSAGE(8, 16, 4, num_layers=1)
        out = model(small_rmat, Tensor(small_features), gcn_norm_tensor(small_rmat))
        assert out.shape == (small_rmat.num_vertices, 4)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            GraphSAGE(4, 8, 2, num_layers=0)

    def test_paper_configs(self):
        assert GraphSAGE.paper_config("reddit") == {
            "num_layers": 2,
            "hidden_features": 16,
        }
        assert GraphSAGE.paper_config("ogbn-products")["hidden_features"] == 256

    def test_deterministic_replicas(self, small_rmat, small_features):
        a = GraphSAGE(8, 4, 3, seed=5)
        b = GraphSAGE(8, 4, 3, seed=5)
        norm = gcn_norm_tensor(small_rmat)
        oa = a(small_rmat, Tensor(small_features), norm)
        ob = b(small_rmat, Tensor(small_features), norm)
        assert np.array_equal(oa.data, ob.data)

    def test_gradients_reach_all_layers(self, small_rmat, small_features):
        model = GraphSAGE(8, 4, 3, num_layers=2)
        out = model(
            small_rmat, Tensor(small_features), gcn_norm_tensor(small_rmat)
        )
        labels = np.zeros(small_rmat.num_vertices, dtype=np.int64)
        masked_cross_entropy(out, labels).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name
            assert np.any(p.grad != 0), name


class TestRGCN:
    def test_hetero_forward(self):
        ds = load_dataset("am", scale=0.05, seed=0)
        model = RGCN(
            ds.feature_dim, 8, ds.num_classes, sorted(ds.relations), num_layers=2
        )
        norms = relation_norms(ds.relations)
        out = model(ds.relations, Tensor(ds.features), norms)
        assert out.shape == (ds.num_vertices, ds.num_classes)

    def test_self_loop_only_when_no_edges(self):
        from repro.graph.builders import from_edge_list

        empty = {"r": from_edge_list([], num_vertices=3)}
        model = RGCN(2, 4, 2, ["r"], num_layers=1)
        norms = relation_norms(empty)
        out = model(empty, Tensor(np.ones((3, 2), dtype=np.float32)), norms)
        assert out.shape == (3, 2)

    def test_relations_learn(self):
        ds = load_dataset("am", scale=0.05, seed=0)
        model = RGCN(ds.feature_dim, 8, ds.num_classes, sorted(ds.relations))
        norms = relation_norms(ds.relations)
        out = model(ds.relations, Tensor(ds.features), norms)
        loss = masked_cross_entropy(out, ds.labels, ds.train_mask)
        loss.backward()
        rel_w = getattr(model.layers[0], f"w_{sorted(ds.relations)[0]}")
        assert rel_w.weight.grad is not None
