"""Failure-injection and degenerate-input coverage across the stack."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, Trainer, TrainConfig
from repro.core.algorithms import get_algorithm
from repro.graph.builders import from_edge_list
from repro.graph.datasets import Dataset
from repro.kernels import aggregate
from repro.partition import build_partitions, build_split_trees, libra_partition

CFG = TrainConfig(
    num_layers=2, hidden_features=8, learning_rate=0.01, eval_every=0, seed=0
)


def _dataset_from_graph(g, num_classes=3, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    n = g.num_vertices
    labels = rng.integers(0, num_classes, size=n)
    train = np.zeros(n, dtype=bool)
    train[: max(n // 2, 1)] = True
    val = np.zeros(n, dtype=bool)
    test = ~train
    return Dataset(
        name="synthetic",
        graph=g,
        features=rng.standard_normal((n, dim)).astype(np.float32),
        labels=labels,
        num_classes=num_classes,
        train_mask=train,
        val_mask=val,
        test_mask=test,
    )


class TestDegenerateGraphs:
    def test_aggregate_empty_graph(self):
        g = from_edge_list([], num_vertices=5)
        out = aggregate(g, np.ones((5, 3), dtype=np.float32), kernel="reordered")
        assert np.all(out == 0)

    def test_aggregate_single_vertex_self_loop(self):
        g = from_edge_list([(0, 0)], num_vertices=1)
        out = aggregate(g, np.array([[2.0]]), kernel="reordered")
        assert out[0, 0] == 2.0

    def test_train_on_graph_with_isolated_vertices(self):
        # half the vertices have no edges at all
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], num_vertices=8)
        ds = _dataset_from_graph(g)
        res = Trainer(ds, CFG).fit(num_epochs=3)
        assert np.isfinite(res.final_loss)

    def test_distributed_with_isolated_vertices(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], num_vertices=9)
        ds = _dataset_from_graph(g)
        dt = DistributedTrainer(ds, 3, algorithm="cd-0", config=CFG)
        res = dt.fit(num_epochs=3)
        assert np.isfinite(res.final_loss)
        # every train vertex still counted exactly once
        counted = sum(int((s.train_mask & s.owned).sum()) for s in dt.ranks)
        assert counted == int(ds.train_mask.sum())

    def test_more_partitions_than_useful(self):
        """P close to |V|: many partitions get almost nothing."""
        g = from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        ds = _dataset_from_graph(g)
        dt = DistributedTrainer(ds, 4, algorithm="cd-0", config=CFG)
        res = dt.fit(num_epochs=2)
        assert np.isfinite(res.final_loss)

    def test_disconnected_components_partition_cleanly(self):
        # two disjoint triangles -> Libra should produce zero split vertices at P=2
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        g = from_edge_list(edges, num_vertices=6)
        parted = build_partitions(g, libra_partition(g, 2, seed=0), 2)
        assert parted.replication_factor == pytest.approx(1.0)
        plan = build_split_trees(parted)
        assert plan.num_routes == 0

    def test_no_split_vertices_still_trains(self):
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        g = from_edge_list(edges, num_vertices=6)
        ds = _dataset_from_graph(g)
        for algo in ("cd-0", "cd-2", "0c"):
            dt = DistributedTrainer(ds, 2, algorithm=algo, config=CFG)
            res = dt.fit(num_epochs=3)
            assert np.isfinite(res.final_loss)


class TestDegenerateConfigs:
    def test_single_partition_distributed(self, reddit_mini):
        """P=1 distributed must equal the single-socket trainer."""
        single = Trainer(reddit_mini, CFG).fit(num_epochs=5)
        dist = DistributedTrainer(
            reddit_mini, 1, algorithm="cd-0", config=CFG
        ).fit(num_epochs=5)
        np.testing.assert_allclose(
            dist.loss_curve(), single.loss_curve(), atol=1e-5
        )

    def test_delay_exceeding_epochs(self, reddit_mini):
        """cd-r with r larger than the training run: no exchange ever
        completes, which must degrade gracefully to 0c-like behaviour."""
        cfg = TrainConfig(**{**vars(CFG), "delay": 50})
        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-50", config=cfg)
        res = dt.fit(num_epochs=5)
        assert np.isfinite(res.final_loss)

    def test_delay_one(self, reddit_mini):
        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-1", config=CFG)
        res = dt.fit(num_epochs=6)
        assert res.final_loss < res.loss_curve()[0]

    def test_one_layer_distributed(self, reddit_mini):
        cfg = TrainConfig(**{**vars(CFG), "num_layers": 1})
        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-0", config=cfg)
        res = dt.fit(num_epochs=3)
        assert np.isfinite(res.final_loss)

    def test_algorithm_spec_object(self, reddit_mini):
        spec = get_algorithm("cd-3")
        dt = DistributedTrainer(reddit_mini, 2, algorithm=spec, config=CFG)
        assert dt.spec.delay == 3

    def test_precomputed_partitioning_reused(self, reddit_mini):
        asn = libra_partition(reddit_mini.graph, 3, seed=0)
        parted = build_partitions(reddit_mini.graph, asn, 3)
        dt1 = DistributedTrainer(
            reddit_mini, 3, algorithm="0c", config=CFG, parted=parted
        )
        dt2 = DistributedTrainer(
            reddit_mini, 3, algorithm="0c", config=CFG, parted=parted
        )
        r1 = dt1.fit(num_epochs=3)
        r2 = dt2.fit(num_epochs=3)
        assert r1.loss_curve() == r2.loss_curve()
