"""The reproduction's central integration contracts.

1. cd-0 distributed training is *mathematically identical* to
   single-socket training (paper: "it is expected to produce the same
   accuracy as the single socket algorithm").
2. The algorithm family ordering holds: per-epoch communication volume
   0c = 0 < cd-r < cd-0 (training-phase messages).
3. All three algorithms converge to useful accuracy (Table 5's "within
   1%" claim, relaxed for stand-in scale).
"""

import numpy as np
import pytest

from repro.core import DistributedTrainer, Trainer, TrainConfig

CFG = TrainConfig(
    num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
)


@pytest.fixture(scope="module")
def single_result(request):
    ds = request.getfixturevalue("reddit_mini")
    return Trainer(ds, CFG).fit(num_epochs=25)


class TestCd0Equivalence:
    @pytest.mark.parametrize("num_partitions", [2, 4])
    def test_loss_trajectory_matches_single_socket(
        self, reddit_mini, single_result, num_partitions
    ):
        dist = DistributedTrainer(
            reddit_mini, num_partitions, algorithm="cd-0", config=CFG
        ).fit(num_epochs=25)
        single_losses = single_result.loss_curve()
        dist_losses = dist.loss_curve()
        np.testing.assert_allclose(dist_losses, single_losses, atol=2e-4)

    def test_accuracy_matches_single_socket(self, reddit_mini, single_result):
        dist = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0", config=CFG
        ).fit(num_epochs=25)
        assert abs(dist.final_test_acc - single_result.final_test_acc) < 0.02

    def test_forward_aggregates_exact(self, reddit_mini):
        """Every clone's synced aggregate equals the full-graph value."""
        from repro.kernels import aggregate

        dt = DistributedTrainer(reddit_mini, 3, algorithm="cd-0", config=CFG)
        out = dt._forward(epoch=0, record=True)
        h = reddit_mini.features
        full = aggregate(reddit_mini.graph, h, kernel="reordered")
        z_leaf = out["records"][0]["z_leaf"]
        for state in dt.ranks:
            gids = dt.parted.parts[state.rank].global_ids
            np.testing.assert_allclose(
                z_leaf[state.rank].data, full[gids], rtol=1e-4, atol=1e-4
            )


class TestAutoDispatchRegression:
    """`auto` now rides the vectorized engine — its numerics must still
    match the Alg.-1 baseline kernel on real dataset features."""

    def test_auto_matches_baseline_numerics(self, reddit_mini):
        from repro.kernels import aggregate

        h = reddit_mini.features
        auto = aggregate(reddit_mini.graph, h, kernel="auto")
        base = aggregate(reddit_mini.graph, h, kernel="baseline")
        # float32 features: different (but equally valid) summation orders
        np.testing.assert_allclose(auto, base, rtol=1e-2, atol=1e-4)

    def test_auto_matches_baseline_full_operator_table(self, reddit_mini):
        from repro.kernels import BINARY_OPS, REDUCE_OPS, aggregate

        g = reddit_mini.graph
        rng = np.random.default_rng(0)
        f_v = rng.standard_normal((g.num_src, 4)) + 2.0
        f_e = rng.standard_normal((g.num_edges, 4)) + 2.0
        for binary_op in BINARY_OPS:
            for reduce_op in REDUCE_OPS:
                auto = aggregate(g, f_v, f_e, binary_op, reduce_op, kernel="auto")
                base = aggregate(g, f_v, f_e, binary_op, reduce_op, kernel="baseline")
                np.testing.assert_allclose(
                    auto, base, rtol=1e-6, atol=1e-6,
                    err_msg=f"auto != baseline for {binary_op}/{reduce_op}",
                )


class TestAlgorithmOrdering:
    def test_comm_volume_ordering(self, reddit_mini):
        vols = {}
        for algo in ("0c", "cd-0", "cd-5"):
            dt = DistributedTrainer(reddit_mini, 4, algorithm=algo, config=CFG)
            stats = [dt.train_epoch(e) for e in range(6)]
            # skip pipeline fill for cd-5
            vols[algo] = np.mean([s.comm_bytes for s in stats[5:]])
        assert vols["0c"] < vols["cd-5"] < vols["cd-0"]

    def test_all_algorithms_converge(self, reddit_mini):
        accs = {}
        for algo in ("0c", "cd-0", "cd-3"):
            res = DistributedTrainer(
                reddit_mini, 3, algorithm=algo, config=CFG
            ).fit(num_epochs=40)
            accs[algo] = res.final_test_acc
        chance = 1.0 / reddit_mini.num_classes
        for algo, acc in accs.items():
            assert acc > 3 * chance, f"{algo} failed to learn: {acc}"
        # cd-0 should be at least as good as 0c given identical budgets
        assert accs["cd-0"] >= accs["0c"] - 0.05

    def test_cdr_inflight_staleness_bounded(self, reddit_mini):
        """No message stays undelivered longer than its delay allows."""
        r = 3
        dt = DistributedTrainer(reddit_mini, 3, algorithm=f"cd-{r}", config=CFG)
        for e in range(8):
            dt.train_epoch(e)
            for box in dt.world.queue._boxes:
                for msg in box:
                    assert msg.deliver_epoch - msg.post_epoch == r
                    assert msg.deliver_epoch >= dt.world.epoch
