"""Cross-backend equivalence: sim (lockstep) vs shm (multi-process).

The shared-memory backend runs the *same* per-rank computation as the
lockstep simulator, so for the same partitioned graph, seed and config
the two must agree on everything observable:

- per-epoch global losses,
- final model parameters and final-epoch gradients,
- per-epoch and total communication byte counters (bit-for-bit — the shm
  backend records the identical accounting),
- evaluation accuracies.

Checked for GCN and GraphSAGE on a 4-partition Libra split under both
synchronous (cd-0, DRPA delay 0) and delayed (cd-2, delay 2) exchange,
plus the no-communication roofline (0c).
"""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainConfig
from repro.graph.datasets import load_dataset

NUM_PARTITIONS = 4
NUM_EPOCHS = 6  # > 2 * delay, so cd-2 completes full round trips


@pytest.fixture(scope="module")
def ds():
    return load_dataset("reddit", scale=0.05, seed=1)


def _config(model):
    return TrainConfig(
        num_layers=2,
        hidden_features=16,
        learning_rate=0.01,
        eval_every=2,
        seed=0,
        model=model,
    )


def _fit(ds, model, algorithm, backend):
    trainer = DistributedTrainer(
        ds,
        NUM_PARTITIONS,
        algorithm=algorithm,
        config=_config(model),
        partitioner="libra",
        backend=backend,
    )
    result = trainer.fit(num_epochs=NUM_EPOCHS)
    return trainer, result


@pytest.mark.parametrize("model", ["gcn", "sage"])
@pytest.mark.parametrize("algorithm", ["cd-0", "cd-2", "0c"])
def test_backends_agree(ds, model, algorithm):
    sim_tr, sim = _fit(ds, model, algorithm, "sim")
    shm_tr, shm = _fit(ds, model, algorithm, "shm")

    # per-epoch losses (the issue's atol; in practice they are bit-equal)
    np.testing.assert_allclose(
        [e.loss for e in shm.epochs],
        [e.loss for e in sim.epochs],
        atol=1e-6,
        err_msg="per-epoch losses diverge across backends",
    )

    # final parameters on every rank replica
    sim_state = sim_tr.ranks[0].model.state_dict()
    shm_state = shm_tr.ranks[0].model.state_dict()
    assert sim_state.keys() == shm_state.keys()
    for name in sim_state:
        np.testing.assert_allclose(
            shm_state[name], sim_state[name], atol=1e-6, err_msg=name
        )

    # final-epoch gradients (post-AllReduce, identical on all replicas)
    for ps, ph in zip(
        sim_tr.ranks[0].model.parameters(), shm_tr.ranks[0].model.parameters()
    ):
        assert (ps.grad is None) == (ph.grad is None)
        if ps.grad is not None:
            np.testing.assert_allclose(ph.grad, ps.grad, atol=1e-6)

    # communication accounting: per-epoch and total, bit-for-bit
    assert [e.comm_bytes for e in shm.epochs] == [e.comm_bytes for e in sim.epochs]
    assert shm.total_comm_bytes == sim.total_comm_bytes
    assert shm.peak_inflight_bytes == sim.peak_inflight_bytes
    sim_c, shm_c = sim_tr.world.counters, shm_tr.world.counters
    assert shm_c.bytes_sent == sim_c.bytes_sent
    assert shm_c.bytes_received == sim_c.bytes_received
    assert shm_c.messages_sent == sim_c.messages_sent
    assert shm_c.collective_calls == sim_c.collective_calls

    # accuracies (eval epochs and final)
    assert shm.final_test_acc == sim.final_test_acc
    assert shm.best_val_acc == sim.best_val_acc
    for es, eh in zip(sim.epochs, shm.epochs):
        assert (es.val_acc is None) == (eh.val_acc is None)
        if es.val_acc is not None:
            assert eh.val_acc == es.val_acc
            assert eh.test_acc == es.test_acc

    # structural metadata
    assert shm.algorithm == sim.algorithm
    assert shm.num_partitions == sim.num_partitions
    assert shm.replication_factor == sim.replication_factor


def test_shm_backend_guards():
    """Config validation + the lockstep-only train_epoch guard."""
    ds_small = load_dataset("reddit", scale=0.05, seed=1)
    with pytest.raises(KeyError, match="unknown execution backend"):
        DistributedTrainer(ds_small, 2, config=_config("gcn"), backend="mpi")
    trainer = DistributedTrainer(
        ds_small, 2, config=_config("gcn"), backend="shm"
    )
    with pytest.raises(RuntimeError, match="lockstep"):
        trainer.train_epoch(0)


def test_backend_from_config():
    """TrainConfig.backend is honored when no explicit backend is given."""
    ds_small = load_dataset("reddit", scale=0.05, seed=1)
    cfg = _config("gcn")
    cfg.backend = "shm"
    trainer = DistributedTrainer(ds_small, 2, config=cfg)
    assert trainer.backend == "shm"
