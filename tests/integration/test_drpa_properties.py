"""Property-based DRPA invariants over random graphs and partitionings."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import World
from repro.core.drpa import DRPAExchanger, owned_mask
from repro.graph.builders import coo_to_csr
from repro.kernels import aggregate
from repro.partition import build_partitions, build_split_trees
from repro.partition.baselines import random_edge_partition


@st.composite
def partitioned_problem(draw):
    n = draw(st.integers(min_value=3, max_value=20))
    m = draw(st.integers(min_value=2, max_value=50))
    p = draw(st.integers(min_value=2, max_value=4))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    seed = draw(st.integers(0, 500))
    g = coo_to_csr(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_dst=n,
        num_src=n,
    )
    parted = build_partitions(g, random_edge_partition(g, p, seed=seed), p)
    return g, parted, seed


@given(partitioned_problem())
@settings(max_examples=30, deadline=None)
def test_cd0_sync_equals_full_aggregate(problem):
    """For ANY graph and ANY edge partitioning, the synchronous DRPA round
    reconstructs the full-graph aggregate at every clone."""
    g, parted, seed = problem
    plan = build_split_trees(parted, seed=seed, build_tree_objects=False)
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((g.num_vertices, 2))
    full = aggregate(g, h, kernel="reordered")
    world = World(parted.num_partitions)
    ex = DRPAExchanger(parted, plan, world, delay=0, num_bins=1)
    vals = [
        aggregate(part.graph, h[part.global_ids], kernel="reordered")
        for part in parted.parts
    ]
    ex.synchronous_round(vals, layer=0, epoch=0)
    for part in parted.parts:
        np.testing.assert_allclose(
            vals[part.part_id], full[part.global_ids], atol=1e-9
        )


@given(partitioned_problem())
@settings(max_examples=30, deadline=None)
def test_ownership_is_a_partition(problem):
    g, parted, seed = problem
    plan = build_split_trees(parted, seed=seed, build_tree_objects=False)
    count = np.zeros(g.num_vertices, dtype=int)
    for r in range(parted.num_partitions):
        mask = owned_mask(parted, plan, r)
        count[parted.parts[r].global_ids[mask]] += 1
    present = parted.membership.any(axis=1)
    assert np.all(count[present] == 1)
    assert np.all(count[~present] == 0)


@given(partitioned_problem(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_gradient_tree_sum(problem, dim):
    """The gradient round (up-reduce + down-scatter) leaves every clone
    holding the SUM of all clones' original rows."""
    g, parted, seed = problem
    plan = build_split_trees(parted, seed=seed, build_tree_objects=False)
    world = World(parted.num_partitions)
    ex = DRPAExchanger(parted, plan, world, delay=0, num_bins=1, tag_prefix="grad")
    rng = np.random.default_rng(seed + 1)
    vals = [
        rng.standard_normal((part.num_vertices, dim)) for part in parted.parts
    ]
    # expected: per global vertex, sum of all clone rows
    expected = np.zeros((g.num_vertices, dim))
    for part in parted.parts:
        np.add.at(expected, part.global_ids, vals[part.part_id])
    ex.synchronous_round(vals, layer=0, epoch=0)
    for part in parted.parts:
        np.testing.assert_allclose(
            vals[part.part_id], expected[part.global_ids], atol=1e-9
        )
