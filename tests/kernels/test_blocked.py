"""Cache-blocking machinery (Alg. 2)."""

import numpy as np
import pytest

from repro.kernels.blocked import (
    BlockedGraph,
    aggregate_blocked,
    block_bounds,
    build_blocks,
)


class TestBlockBounds:
    def test_even_split(self):
        assert block_bounds(8, 4).tolist() == [0, 2, 4, 6, 8]

    def test_ceil_division(self):
        # 10 sources, 4 blocks -> block size 3, last block short
        assert block_bounds(10, 4).tolist() == [0, 3, 6, 9, 10]

    def test_single_block(self):
        assert block_bounds(5, 1).tolist() == [0, 5]

    def test_more_blocks_than_sources(self):
        b = block_bounds(3, 8)
        assert b[-1] == 3
        assert np.all(np.diff(b) >= 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_bounds(5, 0)


class TestBuildBlocks:
    def test_edges_partitioned(self, small_rmat):
        blocks = build_blocks(small_rmat, 4)
        assert len(blocks) == 4
        assert sum(b.num_edges for b in blocks) == small_rmat.num_edges

    def test_sources_in_range(self, small_rmat):
        blocks = build_blocks(small_rmat, 4)
        bounds = block_bounds(small_rmat.num_src, 4)
        for i, b in enumerate(blocks):
            if b.num_edges:
                assert b.indices.min() >= bounds[i]
                assert b.indices.max() < bounds[i + 1]

    def test_single_block_is_original(self, small_rmat):
        blocks = build_blocks(small_rmat, 1)
        assert blocks[0] is small_rmat

    def test_destination_set_preserved(self, small_rmat):
        for b in build_blocks(small_rmat, 3):
            assert b.num_vertices == small_rmat.num_vertices

    def test_edge_ids_global(self, small_rmat):
        blocks = build_blocks(small_rmat, 4)
        all_eids = np.concatenate([b.edge_ids for b in blocks])
        assert sorted(all_eids.tolist()) == sorted(
            small_rmat.edge_ids.tolist()
        )


class TestBlockedGraph:
    def test_build_and_reuse(self, small_rmat, small_features):
        bg = BlockedGraph.build(small_rmat, 4)
        out1 = aggregate_blocked(bg, small_features)
        out2 = aggregate_blocked(small_rmat, small_features, num_blocks=4)
        np.testing.assert_allclose(out1, out2, rtol=1e-6)

    def test_block_size(self, small_rmat):
        bg = BlockedGraph.build(small_rmat, 4)
        assert bg.block_size == -(-small_rmat.num_src // 4)

    def test_accumulation_into_out(self, small_rmat, small_features):
        """Chaining two graphs into one output accumulates under sum."""
        from repro.kernels.operators import get_reduce_op, init_output

        out = init_output(
            small_rmat.num_vertices, 8, get_reduce_op("sum"), np.float32
        )
        aggregate_blocked(small_rmat, small_features, num_blocks=2, out=out)
        once = out.copy()
        aggregate_blocked(small_rmat, small_features, num_blocks=2, out=out)
        np.testing.assert_allclose(out, 2 * once, rtol=1e-5)
