"""All kernel variants must agree with the dense reference across the
full operator table — the core correctness contract of the AP.
"""

import numpy as np
import pytest

from repro.kernels.baseline import aggregate_baseline, aggregate_dense_reference
from repro.kernels.blocked import aggregate_blocked
from repro.kernels.operators import finalize_output, get_reduce_op, init_output
from repro.kernels.reordered import aggregate_reordered
from repro.kernels.vectorized import aggregate_vectorized

BINARY = ["add", "sub", "mul", "div", "copylhs", "copyrhs"]
REDUCE = ["sum", "max", "min", "mean"]


def _features(graph, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    f_v = rng.standard_normal((graph.num_src, dim)) + 2.0  # avoid div-by-0
    f_e = rng.standard_normal((graph.num_edges, dim)) + 2.0
    return f_v, f_e


@pytest.mark.parametrize("binary_op", BINARY)
@pytest.mark.parametrize("reduce_op", REDUCE)
def test_baseline_matches_reference(small_rmat, binary_op, reduce_op):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_baseline(small_rmat, f_v, f_e, binary_op, reduce_op)
    np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-10)


@pytest.mark.parametrize("binary_op", BINARY)
@pytest.mark.parametrize("reduce_op", REDUCE)
def test_reordered_matches_reference(small_rmat, binary_op, reduce_op):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_reordered(small_rmat, f_v, f_e, binary_op, reduce_op)
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("binary_op", ["copylhs", "mul"])
@pytest.mark.parametrize("reduce_op", REDUCE)
@pytest.mark.parametrize("num_blocks", [1, 2, 3, 7, 16])
def test_blocked_matches_reference(small_rmat, binary_op, reduce_op, num_blocks):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_blocked(
        small_rmat, f_v, f_e, binary_op, reduce_op, num_blocks=num_blocks
    )
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("binary_op", BINARY)
@pytest.mark.parametrize("reduce_op", REDUCE)
def test_vectorized_matches_reference(small_rmat, binary_op, reduce_op):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_vectorized(small_rmat, f_v, f_e, binary_op, reduce_op)
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("binary_op", BINARY)
@pytest.mark.parametrize("reduce_op", REDUCE)
def test_vectorized_chunked_matches_reference(small_rmat, binary_op, reduce_op):
    """Bucketed engine passes (the reordered iteration shape) agree too."""
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_vectorized(
        small_rmat, f_v, f_e, binary_op, reduce_op, row_chunk=13
    )
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("reduce_op", REDUCE)
def test_empty_rows_get_zero(reduce_op, line_graph):
    """Vertices with no in-edges must produce 0, not the reducer identity."""
    f_v, _ = _features(line_graph, dim=3)
    for fn in (aggregate_reordered, aggregate_vectorized):
        out = fn(line_graph, f_v, None, "copylhs", reduce_op)
        assert np.array_equal(out[0], np.zeros(3))  # vertex 0 has no in-edges


@pytest.mark.parametrize("reduce_op", REDUCE)
@pytest.mark.parametrize("num_edges", [0, 3])
def test_single_vertex_graph(reduce_op, num_edges):
    """A 1-vertex graph (with self-loops or no edges at all) is valid input."""
    from repro.graph.builders import coo_to_csr

    src = np.zeros(num_edges, dtype=np.int64)
    g = coo_to_csr(src, src, num_dst=1, num_src=1)
    f_v = np.array([[3.0, -1.0]])
    f_e = np.arange(2 * num_edges, dtype=np.float64).reshape(num_edges, 2)
    ref = aggregate_dense_reference(g, f_v, f_e, "add", reduce_op)
    out = aggregate_vectorized(g, f_v, f_e, "add", reduce_op)
    np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)
    if num_edges == 0:
        assert np.array_equal(out, np.zeros((1, 2)))  # identity cleared


@pytest.mark.parametrize("reduce_op", ["max", "min"])
def test_vectorized_identity_handling(line_graph, reduce_op):
    """±inf identities never leak: empty rows finalize to exactly 0."""
    f_v, _ = _features(line_graph, dim=2)
    out = aggregate_vectorized(line_graph, f_v, None, "copylhs", reduce_op)
    assert np.all(np.isfinite(out))
    assert np.array_equal(out[0], np.zeros(2))


@pytest.mark.parametrize("fn", [aggregate_baseline, aggregate_vectorized])
@pytest.mark.parametrize("reduce_op", ["max", "min"])
def test_nan_inf_messages_survive_finalization(line_graph, fn, reduce_op):
    """Regression: finalization used nan_to_num, which replaced NaN with
    0 and clobbered legitimate ±inf from real messages.  On the chain
    0 -> 1 -> 2 -> 3 only the empty row 0 may be zeroed."""
    f_v = np.ones((4, 2))
    f_v[0, 0] = np.nan     # message into vertex 1
    f_v[1, 1] = np.inf     # message into vertex 2
    f_v[2, 0] = -np.inf    # message into vertex 3
    out = fn(line_graph, f_v, None, "copylhs", reduce_op)
    assert np.array_equal(out[0], np.zeros(2))  # no in-edges -> DGL-style 0
    assert np.isnan(out[1, 0]) and out[1, 1] == 1.0
    assert np.isposinf(out[2, 1]) and out[2, 0] == 1.0
    assert np.isneginf(out[3, 0]) and out[3, 1] == 1.0


@pytest.mark.parametrize("reduce_op", REDUCE)
def test_vectorized_out_accumulation_contract(small_rmat, reduce_op):
    """Chaining passes into `out` + one finalize == the one-shot result."""
    f_v, f_e = _features(small_rmat)
    rop = get_reduce_op(reduce_op)
    expected = aggregate_vectorized(small_rmat, f_v, f_e, "mul", reduce_op)
    out = init_output(small_rmat.num_vertices, f_v.shape[1], rop, f_v.dtype)
    # split the source range in two and chain the partial passes
    mid = small_rmat.num_src // 2
    for lo, hi in ((0, mid), (mid, small_rmat.num_src)):
        block = small_rmat.source_block(lo, hi)
        aggregate_vectorized(block, f_v, f_e, "mul", reduce_op, out=out)
    counts = small_rmat.in_degrees() if rop.needs_counts else None
    finalize_output(out, rop, counts=counts)
    np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


def test_spmm_equals_scipy(small_rmat):
    f_v, _ = _features(small_rmat, dim=8)
    out = aggregate_reordered(small_rmat, f_v, None, "copylhs", "sum")
    expected = small_rmat.to_scipy() @ f_v
    np.testing.assert_allclose(out, expected, rtol=1e-10)


def test_chunked_general_path(small_rmat):
    """Tiny chunk size exercises the bounded-intermediate path."""
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, "mul", "max")
    out = aggregate_reordered(
        small_rmat, f_v, f_e, "mul", "max", chunk_rows=7
    )
    np.testing.assert_allclose(out, ref, rtol=1e-9)


def test_multigraph_edges_counted(tiny_graph):
    """Parallel edges contribute once each under sum."""
    import numpy as np
    from repro.graph.builders import coo_to_csr

    g = coo_to_csr(
        np.array([0, 0, 0]), np.array([1, 1, 1]), num_dst=2, num_src=2
    )
    f_v = np.array([[2.0], [0.0]])
    out = aggregate_reordered(g, f_v, None, "copylhs", "sum")
    assert out[1, 0] == 6.0
