"""All kernel variants must agree with the dense reference across the
full operator table — the core correctness contract of the AP.
"""

import numpy as np
import pytest

from repro.kernels.baseline import aggregate_baseline, aggregate_dense_reference
from repro.kernels.blocked import aggregate_blocked
from repro.kernels.reordered import aggregate_reordered

BINARY = ["add", "sub", "mul", "div", "copylhs", "copyrhs"]
REDUCE = ["sum", "max", "min"]


def _features(graph, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    f_v = rng.standard_normal((graph.num_src, dim)) + 2.0  # avoid div-by-0
    f_e = rng.standard_normal((graph.num_edges, dim)) + 2.0
    return f_v, f_e


@pytest.mark.parametrize("binary_op", BINARY)
@pytest.mark.parametrize("reduce_op", REDUCE)
def test_baseline_matches_reference(small_rmat, binary_op, reduce_op):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_baseline(small_rmat, f_v, f_e, binary_op, reduce_op)
    np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-10)


@pytest.mark.parametrize("binary_op", BINARY)
@pytest.mark.parametrize("reduce_op", REDUCE)
def test_reordered_matches_reference(small_rmat, binary_op, reduce_op):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_reordered(small_rmat, f_v, f_e, binary_op, reduce_op)
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("binary_op", ["copylhs", "mul"])
@pytest.mark.parametrize("reduce_op", REDUCE)
@pytest.mark.parametrize("num_blocks", [1, 2, 3, 7, 16])
def test_blocked_matches_reference(small_rmat, binary_op, reduce_op, num_blocks):
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, binary_op, reduce_op)
    out = aggregate_blocked(
        small_rmat, f_v, f_e, binary_op, reduce_op, num_blocks=num_blocks
    )
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("reduce_op", REDUCE)
def test_empty_rows_get_zero(reduce_op, line_graph):
    """Vertices with no in-edges must produce 0, not the reducer identity."""
    f_v, _ = _features(line_graph, dim=3)
    out = aggregate_reordered(line_graph, f_v, None, "copylhs", reduce_op)
    assert np.array_equal(out[0], np.zeros(3))  # vertex 0 has no in-edges


def test_spmm_equals_scipy(small_rmat):
    f_v, _ = _features(small_rmat, dim=8)
    out = aggregate_reordered(small_rmat, f_v, None, "copylhs", "sum")
    expected = small_rmat.to_scipy() @ f_v
    np.testing.assert_allclose(out, expected, rtol=1e-10)


def test_chunked_general_path(small_rmat):
    """Tiny chunk size exercises the bounded-intermediate path."""
    f_v, f_e = _features(small_rmat)
    ref = aggregate_dense_reference(small_rmat, f_v, f_e, "mul", "max")
    out = aggregate_reordered(
        small_rmat, f_v, f_e, "mul", "max", chunk_rows=7
    )
    np.testing.assert_allclose(out, ref, rtol=1e-9)


def test_multigraph_edges_counted(tiny_graph):
    """Parallel edges contribute once each under sum."""
    import numpy as np
    from repro.graph.builders import coo_to_csr

    g = coo_to_csr(
        np.array([0, 0, 0]), np.array([1, 1, 1]), num_dst=2, num_src=2
    )
    f_v = np.array([[2.0], [0.0]])
    out = aggregate_reordered(g, f_v, None, "copylhs", "sum")
    assert out[1, 0] == 6.0
