"""Property-based kernel tests: blocked/reordered equal the baseline for
random graphs, operators, and block counts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import coo_to_csr
from repro.kernels.baseline import aggregate_dense_reference
from repro.kernels.blocked import aggregate_blocked
from repro.kernels.reordered import aggregate_reordered


@st.composite
def graph_and_features(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=0, max_value=60))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dim = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(0, 1000))
    g = coo_to_csr(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_dst=n,
        num_src=n,
    )
    rng = np.random.default_rng(seed)
    f_v = rng.standard_normal((n, dim)) + 2.0
    f_e = rng.standard_normal((max(m, 1), dim))[: g.num_edges] + 2.0
    return g, f_v, f_e


@given(
    graph_and_features(),
    st.sampled_from(["add", "mul", "copylhs", "copyrhs"]),
    st.sampled_from(["sum", "max", "min"]),
)
@settings(max_examples=60, deadline=None)
def test_reordered_equals_reference(data, bop, rop):
    g, f_v, f_e = data
    ref = aggregate_dense_reference(g, f_v, f_e, bop, rop)
    out = aggregate_reordered(g, f_v, f_e, bop, rop, chunk_rows=3)
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)


@given(
    graph_and_features(),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["sum", "max"]),
)
@settings(max_examples=60, deadline=None)
def test_blocked_invariant_to_num_blocks(data, nb, rop):
    g, f_v, f_e = data
    one = aggregate_blocked(g, f_v, f_e, "copylhs", rop, num_blocks=1)
    many = aggregate_blocked(g, f_v, f_e, "copylhs", rop, num_blocks=nb)
    np.testing.assert_allclose(many, one, rtol=1e-9, atol=1e-9)


@given(graph_and_features())
@settings(max_examples=40, deadline=None)
def test_sum_linearity(data):
    """AP(a*x) == a*AP(x) for the sum reducer (linearity of SpMM)."""
    g, f_v, _ = data
    out1 = aggregate_reordered(g, 3.0 * f_v, None, "copylhs", "sum")
    out2 = 3.0 * aggregate_reordered(g, f_v, None, "copylhs", "sum")
    np.testing.assert_allclose(out1, out2, rtol=1e-9, atol=1e-9)


@given(graph_and_features())
@settings(max_examples=40, deadline=None)
def test_max_idempotent_under_duplication(data):
    """Aggregating twice into the same output is a no-op for max."""
    g, f_v, _ = data
    from repro.kernels.operators import get_reduce_op, init_output

    rop = get_reduce_op("max")
    out = init_output(g.num_vertices, f_v.shape[1], rop, f_v.dtype)
    aggregate_reordered(g, f_v, None, "copylhs", rop, out=out)
    once = out.copy()
    aggregate_reordered(g, f_v, None, "copylhs", rop, out=out)
    np.testing.assert_array_equal(out, once)
