"""OpenMP scheduling simulator."""

import numpy as np
import pytest

from repro.graph.generators import rmat_graph, sbm_graph
from repro.kernels.scheduling import (
    per_destination_work,
    scheduling_gain,
    simulate_schedule,
)


class TestSimulate:
    def test_uniform_work_balances(self):
        work = np.ones(1000)
        res = simulate_schedule(work, 10, policy="static")
        assert res.imbalance == pytest.approx(1.0, abs=0.01)

    def test_single_thread(self):
        work = np.random.default_rng(0).random(100)
        res = simulate_schedule(work, 1, policy="dynamic")
        assert res.makespan == pytest.approx(work.sum())

    def test_dynamic_beats_static_on_skew(self):
        # all the work in one contiguous range -> static assigns it to one thread
        work = np.zeros(1000)
        work[:100] = 100.0
        st = simulate_schedule(work, 10, policy="static")
        dy = simulate_schedule(work, 10, policy="dynamic", chunk=10)
        assert dy.makespan < st.makespan

    def test_makespan_bounds(self):
        rng = np.random.default_rng(1)
        work = rng.random(500) * 10
        for policy in ("static", "dynamic"):
            res = simulate_schedule(work, 8, policy=policy)
            assert res.makespan >= res.ideal - 1e-9
            assert res.makespan <= work.sum() + 1e-9

    def test_efficiency_inverse_of_imbalance(self):
        work = np.ones(64)
        res = simulate_schedule(work, 4, policy="dynamic")
        assert res.efficiency == pytest.approx(1.0 / res.imbalance)

    def test_empty_work(self):
        res = simulate_schedule(np.zeros(0), 4)
        assert res.makespan == 0.0

    def test_static_more_threads_than_items(self):
        """Regression: the equal-count split has duplicate split points
        when num_threads > work.size; the makespan must still be the
        heaviest single item and idle threads contribute zero."""
        work = np.array([5.0, 3.0])
        res = simulate_schedule(work, 8, policy="static")
        assert res.makespan == 5.0
        assert res.ideal == pytest.approx(work.sum() / 8)

    def test_static_single_item(self):
        res = simulate_schedule(np.array([2.0]), 4, policy="static")
        assert res.makespan == 2.0

    def test_dynamic_more_threads_than_chunks(self):
        res = simulate_schedule(np.array([4.0, 1.0]), 8, policy="dynamic", chunk=1)
        assert res.makespan == 4.0

    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="policy"):
            simulate_schedule(np.ones(4), 2, policy="guided")

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            simulate_schedule(np.ones(4), 0)


class TestGraphLevel:
    def test_per_destination_work(self, tiny_graph):
        w = per_destination_work(tiny_graph, feature_dim=3)
        assert w[1] == 3 * 3  # in-degree 3

    def test_powerlaw_gains_more_than_uniform(self):
        skewed = rmat_graph(scale=11, edge_factor=8.0, a=0.7, seed=0)
        uniform = sbm_graph([1024], p_in=0.008, p_out=0.0, seed=0)
        g_skew = scheduling_gain(skewed, num_threads=28)
        g_uni = scheduling_gain(uniform, num_threads=28)
        assert g_skew > g_uni
        assert g_uni == pytest.approx(1.0, abs=0.25)

    def test_gain_at_least_one(self, small_rmat):
        # dynamic never loses to static in the list-scheduling model
        assert scheduling_gain(small_rmat, num_threads=8) >= 0.99
