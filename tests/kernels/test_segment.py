"""Segment reduction, including the empty-segment fix."""

import numpy as np
import pytest

from repro.kernels.operators import get_reduce_op, init_output
from repro.kernels.segment import segment_reduce


def _run(values, indptr, op="sum"):
    rop = get_reduce_op(op)
    out = init_output(len(indptr) - 1, values.shape[1], rop, values.dtype)
    segment_reduce(values, np.asarray(indptr), rop, out)
    return out


def test_simple_sum():
    vals = np.array([[1.0], [2.0], [3.0]])
    out = _run(vals, [0, 2, 3])
    assert out.ravel().tolist() == [3.0, 3.0]


def test_empty_segment_between():
    vals = np.array([[1.0], [2.0], [4.0]])
    out = _run(vals, [0, 2, 2, 3])  # middle segment empty
    assert out.ravel().tolist() == [3.0, 0.0, 4.0]


def test_leading_and_trailing_empty():
    vals = np.array([[5.0]])
    out = _run(vals, [0, 0, 1, 1])
    assert out.ravel().tolist() == [0.0, 5.0, 0.0]


def test_all_empty():
    vals = np.zeros((0, 2))
    out = _run(vals, [0, 0, 0])
    assert np.all(out == 0)


def test_max_with_empties():
    vals = np.array([[1.0], [9.0], [2.0]])
    rop = get_reduce_op("max")
    out = init_output(3, 1, rop, np.float64)
    segment_reduce(vals, np.array([0, 2, 2, 3]), rop, out)
    assert out[0, 0] == 9.0
    assert np.isneginf(out[1, 0])  # untouched identity (finalize clears later)
    assert out[2, 0] == 2.0


def test_accumulates_into_out():
    vals = np.array([[1.0], [1.0]])
    rop = get_reduce_op("sum")
    out = np.array([[10.0]])
    segment_reduce(vals, np.array([0, 2]), rop, out)
    assert out[0, 0] == 12.0


def test_matches_loop_reference():
    rng = np.random.default_rng(0)
    vals = rng.standard_normal((50, 4))
    cuts = np.sort(rng.integers(0, 50, size=9))
    indptr = np.concatenate([[0], cuts, [50]])
    rop = get_reduce_op("sum")
    out = init_output(len(indptr) - 1, 4, rop, np.float64)
    segment_reduce(vals, indptr, rop, out)
    for i in range(len(indptr) - 1):
        expected = vals[indptr[i] : indptr[i + 1]].sum(axis=0)
        np.testing.assert_allclose(out[i], expected, atol=1e-12)
