"""SDDMM kernel and edge softmax."""

import numpy as np
import pytest

from repro.kernels.sddmm import edge_softmax, edge_softmax_vectorized, sddmm


@pytest.fixture
def feats(small_rmat):
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((small_rmat.num_src, 6)),
        rng.standard_normal((small_rmat.num_vertices, 6)),
    )


class TestSddmm:
    def test_dot_matches_loop(self, small_rmat, feats):
        f_src, f_dst = feats
        out = sddmm(small_rmat, f_src, f_dst, op="dot")
        src, dst, eid = small_rmat.to_coo()
        for i in range(0, src.size, 37):
            expected = float(f_src[src[i]] @ f_dst[dst[i]])
            assert out[eid[i], 0] == pytest.approx(expected)

    @pytest.mark.parametrize("op", ["add", "sub", "mul"])
    def test_elementwise_ops(self, small_rmat, feats, op):
        f_src, f_dst = feats
        out = sddmm(small_rmat, f_src, f_dst, op=op)
        assert out.shape == (small_rmat.num_edges, 6)
        src, dst, eid = small_rmat.to_coo()
        fn = {"add": np.add, "sub": np.subtract, "mul": np.multiply}[op]
        np.testing.assert_allclose(
            out[eid[0]], fn(f_src[src[0]], f_dst[dst[0]]), rtol=1e-12
        )

    def test_dot_chunked_is_byte_identical(self, small_rmat, feats):
        """The chunked dot (bounded scratch) must match one full pass
        bit for bit, for chunk sizes straddling the edge count."""
        f_src, f_dst = feats
        full = sddmm(small_rmat, f_src, f_dst, op="dot", chunk_edges=None)
        for chunk in (1, 7, 1024, small_rmat.num_edges, 10 * small_rmat.num_edges):
            chunked = sddmm(small_rmat, f_src, f_dst, op="dot", chunk_edges=chunk)
            np.testing.assert_array_equal(chunked, full)

    def test_dot_zero_edge_graph(self):
        from repro.graph.builders import from_edge_list

        g = from_edge_list([], num_vertices=3)
        f = np.ones((3, 4))
        for chunk in (None, 16):
            assert sddmm(g, f, op="dot", chunk_edges=chunk).shape == (0, 1)

    def test_dot_chunked_float32_dtype(self, small_rmat, feats):
        f_src, f_dst = feats
        out = sddmm(
            small_rmat,
            f_src.astype(np.float32),
            f_dst.astype(np.float32),
            op="dot",
            chunk_edges=11,
        )
        assert out.dtype == np.float32

    def test_default_dst_is_src(self, small_rmat, feats):
        f_src, _ = feats
        a = sddmm(small_rmat, f_src, None, op="dot")
        b = sddmm(small_rmat, f_src, f_src, op="dot")
        np.testing.assert_array_equal(a, b)

    def test_unknown_op(self, small_rmat, feats):
        with pytest.raises(ValueError):
            sddmm(small_rmat, feats[0], op="max")

    def test_edge_id_order(self, tiny_graph):
        f = np.arange(5, dtype=np.float64).reshape(-1, 1)
        out = sddmm(tiny_graph, f, f, op="add")
        src, dst, eid = tiny_graph.to_coo()
        for s, d, e in zip(src, dst, eid):
            assert out[e, 0] == f[s, 0] + f[d, 0]


class TestEdgeSoftmax:
    def test_sums_to_one_per_destination(self, small_rmat):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((small_rmat.num_edges, 1))
        soft = edge_softmax(small_rmat, logits)
        for v in range(0, small_rmat.num_vertices, 17):
            rows = small_rmat.edge_ids_of(v)
            if rows.size:
                assert soft[rows, 0].sum() == pytest.approx(1.0)

    def test_vectorized_matches_loop(self, small_rmat):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((small_rmat.num_edges, 1))
        a = edge_softmax(small_rmat, logits)
        b = edge_softmax_vectorized(small_rmat, logits)
        np.testing.assert_allclose(a, b, rtol=1e-6, atol=1e-9)

    def test_shift_invariance(self, small_rmat):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((small_rmat.num_edges, 1))
        a = edge_softmax_vectorized(small_rmat, logits)
        b = edge_softmax_vectorized(small_rmat, logits + 100.0)
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_bad_shape(self, small_rmat):
        with pytest.raises(ValueError):
            edge_softmax(small_rmat, np.zeros(small_rmat.num_edges))
