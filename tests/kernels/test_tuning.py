"""Block-count auto-tuner."""

import numpy as np
import pytest

from repro.graph.generators import rmat_graph, sbm_graph
from repro.kernels.tuning import choose_num_blocks


def test_returns_candidate():
    g = rmat_graph(scale=9, edge_factor=16.0, seed=0)
    nb = choose_num_blocks(g, feature_dim=32, cache_vectors=64)
    assert nb in (1, 2, 4, 8, 16, 32, 64)


def test_huge_cache_prefers_one_block():
    g = rmat_graph(scale=8, edge_factor=8.0, seed=0)
    nb = choose_num_blocks(g, feature_dim=8, cache_vectors=10**9)
    assert nb == 1


def test_tiny_cache_prefers_blocking_on_dense_graph():
    # dense graph with reuse potential: small cache should trigger blocking
    g = sbm_graph([256], p_in=0.3, p_out=0.0, seed=0)
    nb = choose_num_blocks(g, feature_dim=16, cache_vectors=16)
    assert nb > 1


def test_respects_candidates():
    g = rmat_graph(scale=7, edge_factor=4.0, seed=0)
    nb = choose_num_blocks(
        g, feature_dim=8, cache_vectors=32, candidates=(1, 4)
    )
    assert nb in (1, 4)


def test_candidates_beyond_sources_skipped():
    g = sbm_graph([8], p_in=0.5, p_out=0.0, seed=0)
    nb = choose_num_blocks(
        g, feature_dim=2, cache_vectors=2, candidates=(1, 64)
    )
    assert nb == 1
