"""Thread-pool execution engine: bit-identity with the vectorized
engine across the full operator table, thread counts, and chunking
policies — the core contract that lets ``kernel="parallel"`` replace the
single-threaded engine anywhere without changing a single bit.
"""

import numpy as np
import pytest

from repro.graph.builders import coo_to_csr, from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph
from repro.kernels import aggregate
from repro.kernels.operators import finalize_output, get_reduce_op, init_output
from repro.kernels.parallel import (
    aggregate_parallel,
    plan_row_chunks,
    resolve_num_threads,
)
from repro.kernels.vectorized import aggregate_vectorized

BINARY = ["add", "sub", "mul", "div", "copylhs", "copyrhs"]
REDUCE = ["sum", "max", "min", "mean"]
SCHEDULES = ["static", "dynamic", "balanced"]


@pytest.fixture
def skewed_graph() -> CSRGraph:
    """Power-law graph small enough for the full operator sweep."""
    return rmat_graph(scale=6, edge_factor=8.0, seed=5)


def _features(graph, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    f_v = rng.standard_normal((graph.num_src, dim)) + 2.0  # avoid div-by-0
    f_e = rng.standard_normal((graph.num_edges, dim)) + 2.0
    return f_v, f_e


class TestBitIdentity:
    @pytest.mark.parametrize("binary_op", BINARY)
    @pytest.mark.parametrize("reduce_op", REDUCE)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_all_op_pairs(self, skewed_graph, binary_op, reduce_op, schedule):
        f_v, f_e = _features(skewed_graph)
        ref = aggregate_vectorized(skewed_graph, f_v, f_e, binary_op, reduce_op)
        out = aggregate_parallel(
            skewed_graph, f_v, f_e, binary_op, reduce_op,
            num_threads=4, schedule=schedule,
        )
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize(
        "binary_op,reduce_op", [("copylhs", "sum"), ("mul", "max")]
    )
    def test_thread_counts(
        self, small_rmat, num_threads, schedule, binary_op, reduce_op
    ):
        f_v, f_e = _features(small_rmat)
        ref = aggregate_vectorized(small_rmat, f_v, f_e, binary_op, reduce_op)
        out = aggregate_parallel(
            small_rmat, f_v, f_e, binary_op, reduce_op,
            num_threads=num_threads, schedule=schedule,
        )
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("reduce_op", REDUCE)
    def test_empty_rows(self, line_graph, reduce_op):
        """Vertices with no in-edges finalize to 0 on every policy."""
        f_v, _ = _features(line_graph, dim=3)
        ref = aggregate_vectorized(line_graph, f_v, None, "copylhs", reduce_op)
        for schedule in SCHEDULES:
            out = aggregate_parallel(
                line_graph, f_v, None, "copylhs", reduce_op,
                num_threads=4, schedule=schedule,
            )
            assert np.array_equal(out, ref)
            assert np.array_equal(out[0], np.zeros(3))  # vertex 0: no in-edges

    @pytest.mark.parametrize("reduce_op", REDUCE)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_zero_vertex_graph(self, reduce_op, schedule):
        g = CSRGraph(indptr=np.array([0]), indices=np.array([], dtype=np.int64))
        out = aggregate_parallel(
            g, np.zeros((0, 3)), None, "copylhs", reduce_op,
            num_threads=4, schedule=schedule,
        )
        assert out.shape == (0, 3)

    def test_single_vertex_graph(self):
        g = coo_to_csr(
            np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64),
            num_dst=1, num_src=1,
        )
        f_v = np.array([[3.0, -1.0]])
        f_e = np.arange(6, dtype=np.float64).reshape(3, 2)
        ref = aggregate_vectorized(g, f_v, f_e, "add", "max")
        out = aggregate_parallel(g, f_v, f_e, "add", "max", num_threads=8)
        assert np.array_equal(out, ref)

    def test_more_threads_than_rows(self, tiny_graph):
        f_v, f_e = _features(tiny_graph)
        ref = aggregate_vectorized(tiny_graph, f_v, f_e, "mul", "sum")
        for schedule in SCHEDULES:
            out = aggregate_parallel(
                tiny_graph, f_v, f_e, "mul", "sum",
                num_threads=16, schedule=schedule,
            )
            assert np.array_equal(out, ref)

    def test_determinism_across_runs(self, small_rmat):
        """Repeated parallel runs are bit-for-bit reproducible (disjoint
        rows: no cross-thread accumulation order to vary)."""
        f_v, f_e = _features(small_rmat)
        runs = [
            aggregate_parallel(
                small_rmat, f_v, f_e, "add", "sum",
                num_threads=4, schedule="dynamic", chunk_rows=7,
            )
            for _ in range(5)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0], other)

    def test_noncontiguous_edge_ids(self):
        """The edge-feature gather path (permuted edge ids) agrees too."""
        rng = np.random.default_rng(3)
        src = rng.integers(0, 32, size=200)
        dst = rng.integers(0, 32, size=200)
        eids = rng.permutation(200)
        g = coo_to_csr(src, dst, num_dst=32, num_src=32, edge_ids=eids)
        f_v, f_e = _features(g)
        for binary_op, reduce_op in [("copyrhs", "sum"), ("mul", "min")]:
            ref = aggregate_vectorized(g, f_v, f_e, binary_op, reduce_op)
            out = aggregate_parallel(
                g, f_v, f_e, binary_op, reduce_op, num_threads=3
            )
            assert np.array_equal(out, ref)


class TestOutContract:
    @pytest.mark.parametrize("reduce_op", REDUCE)
    def test_accumulate_without_finalize(self, small_rmat, reduce_op):
        """Chained partial passes into `out` + one finalize == one-shot."""
        f_v, f_e = _features(small_rmat)
        rop = get_reduce_op(reduce_op)
        expected = aggregate_parallel(
            small_rmat, f_v, f_e, "mul", reduce_op, num_threads=4
        )
        out = init_output(small_rmat.num_vertices, f_v.shape[1], rop, f_v.dtype)
        mid = small_rmat.num_src // 2
        for lo, hi in ((0, mid), (mid, small_rmat.num_src)):
            block = small_rmat.source_block(lo, hi)
            aggregate_parallel(
                block, f_v, f_e, "mul", reduce_op, out=out, num_threads=4
            )
        counts = small_rmat.in_degrees()
        finalize_output(out, rop, counts=counts)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


class TestPlanning:
    def test_chunks_cover_rows_disjointly(self, small_rmat):
        n = small_rmat.num_vertices
        for schedule in SCHEDULES:
            chunks = plan_row_chunks(small_rmat, 4, schedule)
            assert chunks[0][0] == 0 and chunks[-1][1] == n
            for (_, hi), (lo, _) in zip(chunks[:-1], chunks[1:]):
                assert hi == lo  # contiguous, disjoint
            assert all(hi > lo for lo, hi in chunks)

    def test_static_gives_num_threads_ranges(self, small_rmat):
        assert len(plan_row_chunks(small_rmat, 4, "static")) == 4

    def test_dynamic_queue_depth(self, small_rmat):
        chunks = plan_row_chunks(small_rmat, 4, "dynamic")
        assert len(chunks) > 4  # more chunks than threads: a real queue
        sizes = {hi - lo for lo, hi in chunks[:-1]}
        assert len(sizes) == 1  # fixed-size apart from the tail

    def test_dynamic_respects_chunk_rows(self, small_rmat):
        chunks = plan_row_chunks(small_rmat, 2, "dynamic", chunk_rows=10)
        assert all(hi - lo <= 10 for lo, hi in chunks)

    def test_balanced_equalizes_edge_work(self):
        """One hub row: balanced isolates it, static would lump rows."""
        edges = [(u, 0) for u in range(1, 64)]  # vertex 0: in-degree 63
        edges += [(0, v) for v in range(1, 64)]  # everyone else: 1
        g = from_edge_list(edges, num_vertices=64)
        chunks = plan_row_chunks(g, 4, "balanced")
        degrees = g.in_degrees()
        loads = [degrees[lo:hi].sum() for lo, hi in chunks]
        # the hub chunk carries the hub only; the rest split the light rows
        assert max(loads) < degrees.sum()  # static with 4 threads: 63+15=78
        assert chunks[0] == (0, 1)

    def test_balanced_no_edges_falls_back(self):
        g = CSRGraph(
            indptr=np.zeros(9, dtype=np.int64),
            indices=np.array([], dtype=np.int64),
            num_src=8,
        )
        chunks = plan_row_chunks(g, 4, "balanced")
        assert chunks[0][0] == 0 and chunks[-1][1] == 8

    def test_plan_cached_on_graph(self, small_rmat):
        """The chunk plan (an O(V) computation) is built once per
        (threads, schedule, chunk_rows) and reused across calls."""
        f_v, _ = _features(small_rmat)
        aggregate_parallel(small_rmat, f_v, None, num_threads=4, schedule="balanced")
        plans = small_rmat._parallel_plans
        key = (4, "balanced", None)
        first = plans[key]
        aggregate_parallel(small_rmat, f_v, None, num_threads=4, schedule="balanced")
        assert small_rmat._parallel_plans[key] is first
        # schedule=None resolves through choose_schedule and caches too
        aggregate_parallel(small_rmat, f_v, None, num_threads=4)
        assert (4, None, None) in plans

    def test_unknown_schedule(self, tiny_graph):
        with pytest.raises(ValueError, match="schedule"):
            plan_row_chunks(tiny_graph, 2, "guided")
        with pytest.raises(ValueError, match="schedule"):
            aggregate_parallel(
                tiny_graph, np.ones((5, 2)), None, num_threads=2,
                schedule="guided",
            )

    def test_invalid_threads(self, tiny_graph):
        with pytest.raises(ValueError, match="num_threads"):
            plan_row_chunks(tiny_graph, 0, "static")
        with pytest.raises(ValueError, match="num_threads"):
            aggregate_parallel(tiny_graph, np.ones((5, 2)), None, num_threads=0)


class TestThreadResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "2")
        assert resolve_num_threads(4) == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert resolve_num_threads(None) == 3

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "lots")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            resolve_num_threads(None)

    def test_default_is_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert resolve_num_threads(None) >= 1


class TestScheduleChoice:
    def test_skewed_graph_prefers_balanced(self):
        from repro.kernels.tuning import choose_schedule

        edges = [(u, 0) for u in range(1, 512)]
        edges += [(0, v) for v in range(1, 512)]
        hub = from_edge_list(edges, num_vertices=512)
        assert choose_schedule(hub, 8) == "balanced"

    def test_uniform_graph_prefers_static(self):
        from repro.graph.generators import sbm_graph
        from repro.kernels.tuning import choose_schedule

        uniform = sbm_graph([512], p_in=0.05, p_out=0.0, seed=0)
        assert choose_schedule(uniform, 4) == "static"
        assert choose_schedule(uniform, 1) == "static"
