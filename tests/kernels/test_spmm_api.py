"""Public aggregate() dispatch and instrumentation."""

import numpy as np
import pytest

from repro.kernels import aggregate
from repro.kernels.blocked import BlockedGraph
from repro.kernels.instrumentation import AP_TIMER
from repro.kernels.spmm import AggregationSpec, KERNELS


class TestDispatch:
    def test_all_kernels_registered(self):
        assert set(KERNELS) == {
            "baseline",
            "vectorized",
            "reordered",
            "blocked",
            "reference",
        }

    @pytest.mark.parametrize("kernel", ["baseline", "vectorized", "reordered", "blocked"])
    def test_kernels_agree(self, small_rmat, small_features, kernel):
        out = aggregate(small_rmat, small_features, kernel=kernel, num_blocks=2)
        ref = aggregate(small_rmat, small_features, kernel="reference")
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_auto_small_graph_uses_vectorized(self, small_rmat, small_features):
        out = aggregate(small_rmat, small_features, kernel="auto")
        ref = aggregate(small_rmat, small_features, kernel="vectorized")
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_validate_kernel(self):
        from repro.kernels import validate_kernel

        assert validate_kernel("auto") == "auto"
        assert validate_kernel("vectorized") == "vectorized"
        with pytest.raises(KeyError, match="unknown kernel"):
            validate_kernel("cuda")

    def test_unknown_kernel(self, small_rmat, small_features):
        with pytest.raises(KeyError, match="unknown kernel"):
            aggregate(small_rmat, small_features, kernel="cuda")

    def test_blockedgraph_input(self, small_rmat, small_features):
        bg = BlockedGraph.build(small_rmat, 4)
        out = aggregate(bg, small_features)
        ref = aggregate(small_rmat, small_features, kernel="reordered")
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_explicit_num_blocks_forces_blocked(self, small_rmat, small_features):
        out = aggregate(small_rmat, small_features, num_blocks=8)
        ref = aggregate(small_rmat, small_features, kernel="reference")
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_requires_some_features(self, small_rmat):
        with pytest.raises(ValueError):
            aggregate(small_rmat, None, None)


class TestInstrumentation:
    def test_timer_accumulates(self, small_rmat, small_features):
        AP_TIMER.reset()
        aggregate(small_rmat, small_features, kernel="reordered")
        assert AP_TIMER.calls == 1
        assert AP_TIMER.elapsed_s > 0
        aggregate(small_rmat, small_features, kernel="reordered")
        assert AP_TIMER.calls == 2

    def test_reset(self, small_rmat, small_features):
        aggregate(small_rmat, small_features, kernel="reordered")
        AP_TIMER.reset()
        assert AP_TIMER.calls == 0
        assert AP_TIMER.elapsed_s == 0.0


def test_aggregation_spec_defaults():
    spec = AggregationSpec()
    assert spec.binary_op == "copylhs"
    assert spec.reduce_op == "sum"
    assert spec.kernel == "auto"
