"""Public aggregate() dispatch and instrumentation."""

import numpy as np
import pytest

from repro.kernels import aggregate
from repro.kernels.blocked import BlockedGraph
from repro.kernels.instrumentation import AP_TIMER
from repro.kernels.spmm import AggregationSpec, KERNELS


class TestDispatch:
    def test_all_kernels_registered(self):
        assert set(KERNELS) == {
            "baseline",
            "vectorized",
            "parallel",
            "reordered",
            "blocked",
            "reference",
        }

    @pytest.mark.parametrize(
        "kernel", ["baseline", "vectorized", "parallel", "reordered", "blocked"]
    )
    def test_kernels_agree(self, small_rmat, small_features, kernel):
        out = aggregate(small_rmat, small_features, kernel=kernel, num_blocks=2)
        ref = aggregate(small_rmat, small_features, kernel="reference")
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_auto_small_graph_uses_vectorized(self, small_rmat, small_features):
        out = aggregate(small_rmat, small_features, kernel="auto")
        ref = aggregate(small_rmat, small_features, kernel="vectorized")
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_auto_with_threads_is_bit_identical(self, small_rmat, small_features):
        """auto + num_threads > 1 dispatches the parallel engine, whose
        output is bit-identical to the single-threaded one."""
        out = aggregate(small_rmat, small_features, kernel="auto", num_threads=4)
        ref = aggregate(small_rmat, small_features, kernel="vectorized")
        assert np.array_equal(out, ref)

    def test_auto_env_threads_dispatches_parallel(
        self, small_rmat, small_features, monkeypatch
    ):
        """REPRO_NUM_THREADS makes auto pick the parallel engine."""
        from repro.kernels.spmm import _auto_select

        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        kernel, _ = _auto_select(small_rmat, small_features, None, None)
        assert kernel == "parallel"
        out = aggregate(small_rmat, small_features, kernel="auto")
        ref = aggregate(small_rmat, small_features, kernel="vectorized")
        assert np.array_equal(out, ref)
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        kernel, _ = _auto_select(small_rmat, small_features, None, None)
        assert kernel == "vectorized"

    def test_validate_kernel(self):
        from repro.kernels import validate_kernel

        assert validate_kernel("auto") == "auto"
        assert validate_kernel("vectorized") == "vectorized"
        with pytest.raises(KeyError, match="unknown kernel"):
            validate_kernel("cuda")

    def test_unknown_kernel(self, small_rmat, small_features):
        with pytest.raises(KeyError, match="unknown kernel"):
            aggregate(small_rmat, small_features, kernel="cuda")

    def test_unknown_schedule_fails_on_any_kernel(self, small_rmat, small_features):
        """A typo'd policy must fail fast even when the resolved kernel
        is single-threaded and would never consult it."""
        with pytest.raises(ValueError, match="schedule"):
            aggregate(small_rmat, small_features, kernel="vectorized",
                      schedule="blanced")
        with pytest.raises(ValueError, match="schedule"):
            aggregate(small_rmat, small_features, kernel="auto",
                      schedule="guided")

    def test_invalid_num_threads_fails_on_any_kernel(
        self, small_rmat, small_features
    ):
        with pytest.raises(ValueError, match="num_threads"):
            aggregate(small_rmat, small_features, kernel="vectorized",
                      num_threads=0)

    def test_blockedgraph_input(self, small_rmat, small_features):
        bg = BlockedGraph.build(small_rmat, 4)
        out = aggregate(bg, small_features)
        ref = aggregate(small_rmat, small_features, kernel="reordered")
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_explicit_num_blocks_forces_blocked(self, small_rmat, small_features):
        out = aggregate(small_rmat, small_features, num_blocks=8)
        ref = aggregate(small_rmat, small_features, kernel="reference")
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_requires_some_features(self, small_rmat):
        with pytest.raises(ValueError):
            aggregate(small_rmat, None, None)


class TestInstrumentation:
    def test_timer_accumulates(self, small_rmat, small_features):
        AP_TIMER.reset()
        aggregate(small_rmat, small_features, kernel="reordered")
        assert AP_TIMER.calls == 1
        assert AP_TIMER.elapsed_s > 0
        aggregate(small_rmat, small_features, kernel="reordered")
        assert AP_TIMER.calls == 2

    def test_reset(self, small_rmat, small_features):
        aggregate(small_rmat, small_features, kernel="reordered")
        AP_TIMER.reset()
        assert AP_TIMER.calls == 0
        assert AP_TIMER.elapsed_s == 0.0


def test_aggregation_spec_defaults():
    spec = AggregationSpec()
    assert spec.binary_op == "copylhs"
    assert spec.reduce_op == "sum"
    assert spec.kernel == "auto"
