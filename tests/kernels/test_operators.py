"""Operator algebra of Table 1."""

import numpy as np
import pytest

from repro.kernels.operators import (
    BINARY_OPS,
    REDUCE_OPS,
    finalize_output,
    get_binary_op,
    get_reduce_op,
    init_output,
)


class TestBinaryOps:
    def test_table1_complete(self):
        assert set(BINARY_OPS) == {"add", "sub", "mul", "div", "copylhs", "copyrhs"}

    @pytest.mark.parametrize("name", ["add", "sub", "mul", "div"])
    def test_binary_matches_numpy(self, name):
        op = get_binary_op(name)
        a = np.array([4.0, 6.0])
        b = np.array([2.0, 3.0])
        expected = {"add": a + b, "sub": a - b, "mul": a * b, "div": a / b}[name]
        assert np.allclose(op(a, b), expected)

    def test_copylhs(self):
        op = get_binary_op("copylhs")
        a = np.array([1.0, 2.0])
        assert np.array_equal(op(a, None), a)
        assert op.uses_lhs and not op.uses_rhs

    def test_copyrhs(self):
        op = get_binary_op("copyrhs")
        b = np.array([3.0])
        assert np.array_equal(op(None, b), b)
        assert op.uses_rhs and not op.uses_lhs

    def test_binary_needs_both(self):
        with pytest.raises(ValueError, match="both"):
            get_binary_op("add")(np.zeros(2), None)

    def test_copy_needs_its_side(self):
        with pytest.raises(ValueError):
            get_binary_op("copylhs")(None, np.zeros(2))

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            get_binary_op("pow")

    def test_passthrough(self):
        op = get_binary_op("add")
        assert get_binary_op(op) is op


class TestReduceOps:
    def test_table1_complete(self):
        assert set(REDUCE_OPS) == {"sum", "max", "min", "mean"}

    @pytest.mark.parametrize(
        "name,identity",
        [("sum", 0.0), ("max", -np.inf), ("min", np.inf), ("mean", 0.0)],
    )
    def test_identities(self, name, identity):
        assert get_reduce_op(name).identity == identity

    def test_mean_accumulates_like_sum(self):
        rop = get_reduce_op("mean")
        assert rop.ufunc is np.add
        assert rop.needs_counts
        assert not get_reduce_op("sum").needs_counts

    def test_combine(self):
        rop = get_reduce_op("max")
        assert np.array_equal(
            rop.combine(np.array([1.0, 5.0]), np.array([3.0, 2.0])),
            np.array([3.0, 5.0]),
        )

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_reduce_op("prod")


class TestOutputHelpers:
    def test_init_output_identity_fill(self):
        out = init_output(3, 2, get_reduce_op("max"), np.float32)
        assert np.all(np.isneginf(out))

    def test_finalize_clears_inf(self):
        rop = get_reduce_op("min")
        out = init_output(2, 2, rop, np.float64)
        out[0] = [1.0, 2.0]
        finalize_output(out, rop)
        assert np.array_equal(out[1], [0.0, 0.0])

    @pytest.mark.parametrize("name", ["max", "min"])
    def test_finalize_with_counts_zeroes_only_empty_rows(self, name):
        """Only zero-count rows get the DGL-style 0; NaN and ±inf coming
        from real messages must survive finalization."""
        rop = get_reduce_op(name)
        out = init_output(4, 2, rop, np.float64)
        out[0] = [np.nan, 7.0]        # NaN message reduced into a real row
        out[1] = [np.inf, -np.inf]    # legitimate infinities
        out[2] = [3.0, rop.identity]  # real row that landed on the identity
        # row 3 untouched: still the identity, count 0
        finalize_output(out, rop, counts=np.array([2, 1, 1, 0]))
        assert np.isnan(out[0, 0]) and out[0, 1] == 7.0
        assert np.isposinf(out[1, 0]) and np.isneginf(out[1, 1])
        assert out[2, 0] == 3.0 and out[2, 1] == rop.identity
        assert np.array_equal(out[3], [0.0, 0.0])

    def test_finalize_without_counts_preserves_nan(self):
        """The counts-less fallback only rewrites exact identity entries —
        NaN and opposite-sign inf propagate (the old nan_to_num clobbered
        both to 0)."""
        rop = get_reduce_op("max")
        out = init_output(2, 2, rop, np.float64)
        out[0] = [np.nan, np.inf]
        finalize_output(out, rop)
        assert np.isnan(out[0, 0]) and np.isposinf(out[0, 1])
        assert np.array_equal(out[1], [0.0, 0.0])

    def test_finalize_noop_for_sum(self):
        rop = get_reduce_op("sum")
        out = init_output(2, 2, rop, np.float64)
        finalize_output(out, rop)
        assert np.all(out == 0.0)

    def test_finalize_mean_divides_by_counts(self):
        rop = get_reduce_op("mean")
        out = np.array([[6.0, 4.0], [0.0, 0.0], [3.0, 3.0]])
        finalize_output(out, rop, counts=np.array([2, 0, 3]))
        np.testing.assert_allclose(out, [[3.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_finalize_mean_requires_counts(self):
        rop = get_reduce_op("mean")
        with pytest.raises(ValueError, match="counts"):
            finalize_output(np.zeros((2, 2)), rop)

    def test_finalize_mean_rejects_integer_output(self):
        rop = get_reduce_op("mean")
        with pytest.raises(ValueError, match="floating"):
            finalize_output(np.zeros((2, 2), dtype=np.int64), rop, counts=[1, 2])
