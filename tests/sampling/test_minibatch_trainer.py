"""Mini-batch trainer: learning, gradient flow, work accounting."""

import numpy as np
import pytest

from repro.core import TrainConfig, Trainer
from repro.sampling import MiniBatchTrainer

CFG = TrainConfig(
    num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
)


@pytest.fixture
def trainer(reddit_mini):
    return MiniBatchTrainer(reddit_mini, fanouts=(6, 6), batch_size=64, config=CFG)


class TestTraining:
    def test_loss_decreases(self, trainer):
        res = trainer.fit(num_epochs=5)
        assert res.epochs[-1].loss < res.epochs[0].loss

    def test_learns(self, reddit_mini, trainer):
        res = trainer.fit(num_epochs=10)
        assert res.final_test_acc > 2.0 / reddit_mini.num_classes

    def test_work_accumulates(self, trainer):
        trainer.fit(num_epochs=1)
        assert trainer.total_work_ops > 0

    def test_gradients_flow_to_all_layers(self, trainer, reddit_mini):
        seeds = np.flatnonzero(reddit_mini.train_mask)[:32]
        trainer.model.zero_grad()
        batch = trainer.sampler.sample(seeds)
        logits = trainer.forward_batch(batch)
        from repro.nn import masked_cross_entropy

        loss = masked_cross_entropy(logits, reddit_mini.labels[batch.seeds])
        loss.backward()
        for name, p in trainer.model.named_parameters():
            assert p.grad is not None, name
            assert np.any(p.grad != 0), name

    def test_batch_forward_shape(self, trainer, reddit_mini):
        seeds = np.arange(16)
        batch = trainer.sampler.sample(seeds)
        logits = trainer.forward_batch(batch)
        assert logits.shape == (batch.seeds.size, reddit_mini.num_classes)

    def test_fanout_layer_mismatch(self, reddit_mini):
        with pytest.raises(ValueError, match="fanout"):
            MiniBatchTrainer(reddit_mini, fanouts=(5,), config=CFG)

    def test_comparable_accuracy_to_fullbatch(self, reddit_mini):
        """Sampled training approaches the full-batch result (the paper's
        accuracy-vs-work tradeoff of Tables 7-9)."""
        full = Trainer(reddit_mini, CFG).fit(num_epochs=12)
        mini = MiniBatchTrainer(
            reddit_mini, fanouts=(8, 8), batch_size=64, config=CFG
        ).fit(num_epochs=12)
        assert mini.final_test_acc > full.final_test_acc - 0.25

    def test_minibatch_does_less_work_per_epoch(self, reddit_mini, trainer):
        """Table 7/8 contract, measured: sampled work per epoch is far
        below full-batch aggregation work."""
        trainer.fit(num_epochs=1)
        sampled_ops = trainer.total_work_ops
        dims = [reddit_mini.feature_dim, CFG.hidden_features]
        full_ops = sum(reddit_mini.num_edges * d for d in dims)
        # sampled training touches a fraction of the edges each epoch
        assert sampled_ops < full_ops
