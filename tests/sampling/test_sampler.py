"""Neighbour sampler and message-flow blocks."""

import numpy as np
import pytest

from repro.sampling import NeighborSampler


@pytest.fixture
def sampler(small_rmat):
    return NeighborSampler(small_rmat, fanouts=(4, 3), seed=0)


class TestSampling:
    def test_block_count_matches_fanouts(self, sampler):
        batch = sampler.sample(np.array([0, 1, 2]))
        assert len(batch.blocks) == 2

    def test_innermost_block_dst_is_seeds(self, sampler):
        seeds = np.array([5, 1, 9])
        batch = sampler.sample(seeds)
        assert np.array_equal(batch.blocks[-1].dst_global, np.unique(seeds))

    def test_frontier_chains(self, sampler):
        batch = sampler.sample(np.array([0, 1, 2, 3]))
        inner, outer = batch.blocks[1], batch.blocks[0]
        assert np.array_equal(outer.dst_global, inner.src_global)

    def test_self_rows_lead_src_frontier(self, sampler):
        batch = sampler.sample(np.array([0, 1, 2]))
        for block in batch.blocks:
            assert np.array_equal(
                block.src_global[: block.num_dst], block.dst_global
            )

    def test_fanout_bound(self, small_rmat):
        s = NeighborSampler(small_rmat, fanouts=(3,), seed=0)
        batch = s.sample(np.arange(20))
        assert np.all(batch.blocks[0].graph.in_degrees() <= 3)

    def test_sampled_edges_exist_in_graph(self, sampler, small_rmat):
        batch = sampler.sample(np.array([0, 1, 2]))
        dense = small_rmat.to_dense() > 0
        for block in batch.blocks:
            lsrc, ldst, _ = block.graph.to_coo()
            gs = block.src_global[lsrc]
            gd = block.dst_global[ldst]
            assert np.all(dense[gd, gs])

    def test_deterministic(self, small_rmat):
        a = NeighborSampler(small_rmat, (4, 4), seed=3).sample(np.arange(5))
        b = NeighborSampler(small_rmat, (4, 4), seed=3).sample(np.arange(5))
        for ba, bb in zip(a.blocks, b.blocks):
            assert np.array_equal(ba.graph.indices, bb.graph.indices)

    def test_duplicate_seeds_deduped(self, sampler):
        batch = sampler.sample(np.array([1, 1, 1, 2]))
        assert batch.seeds.tolist() == [1, 2]

    def test_empty_seeds_rejected(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample(np.array([], dtype=np.int64))

    def test_invalid_fanouts(self, small_rmat):
        with pytest.raises(ValueError):
            NeighborSampler(small_rmat, fanouts=())
        with pytest.raises(ValueError):
            NeighborSampler(small_rmat, fanouts=(0,))

    def test_isolated_seed_yields_empty_rows(self, line_graph):
        s = NeighborSampler(line_graph, fanouts=(2,), seed=0)
        batch = s.sample(np.array([0]))  # vertex 0 has no in-edges
        assert batch.blocks[0].num_sampled_edges == 0

    def test_work_ops_accounting(self, sampler):
        batch = sampler.sample(np.arange(8))
        dims = [6, 4]
        expected = (
            batch.blocks[0].num_sampled_edges * 6
            + batch.blocks[1].num_sampled_edges * 4
        )
        assert batch.work_ops(dims) == expected

    def test_work_ops_dim_mismatch(self, sampler):
        batch = sampler.sample(np.arange(4))
        with pytest.raises(ValueError):
            batch.work_ops([1])

    def test_norm_shape(self, sampler):
        batch = sampler.sample(np.arange(4))
        block = batch.blocks[-1]
        assert block.norm().shape == (block.num_dst, 1)
