"""Distributed mini-batch (Dist-DGL stand-in)."""

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.core.sync import assert_replicas_in_sync
from repro.sampling.dist_minibatch import DistMiniBatchTrainer

CFG = TrainConfig(
    num_layers=2, hidden_features=16, learning_rate=0.01, eval_every=0, seed=0
)


@pytest.fixture
def trainer(reddit_mini):
    return DistMiniBatchTrainer(
        reddit_mini, num_ranks=3, fanouts=(5, 5), batch_size=48, config=CFG
    )


def test_shards_cover_train_set(reddit_mini, trainer):
    total = sum(s.size for s in trainer.shards)
    assert total == int(reddit_mini.train_mask.sum())
    combined = np.sort(np.concatenate(trainer.shards))
    assert np.array_equal(combined, np.flatnonzero(reddit_mini.train_mask))


def test_loss_decreases(trainer):
    res = trainer.fit(num_epochs=4)
    assert res.epochs[-1].loss < res.epochs[0].loss


def test_replicas_stay_synced(trainer):
    trainer.fit(num_epochs=2)
    assert_replicas_in_sync(trainer.models)


def test_remote_feature_fetches_counted(trainer):
    stats = trainer.train_epoch(0)
    # hash ownership means ~2/3 of frontier features are remote at 3 ranks
    assert stats.comm_bytes > 0


def test_feature_fetch_owner_accounting(reddit_mini, trainer):
    before = trainer.world.counters.snapshot()
    verts = np.arange(30)
    trainer._fetch_features(0, verts)
    delta = trainer.world.counters.delta_since(before)
    remote = int((trainer.owner[verts] != 0).sum())
    assert sum(delta.bytes_received) == remote * reddit_mini.feature_dim * 4


def test_learns(reddit_mini, trainer):
    res = trainer.fit(num_epochs=8)
    assert res.final_test_acc > 2.0 / reddit_mini.num_classes


def test_fanout_mismatch(reddit_mini):
    with pytest.raises(ValueError):
        DistMiniBatchTrainer(reddit_mini, 2, fanouts=(5,), config=CFG)
