"""Dataset stand-ins: registry, structural regimes, trainability hooks."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASET_REGISTRY,
    PAPER_DATASET_STATS,
    load_dataset,
)
from repro.graph.utils import density


ALL_NAMES = sorted(DATASET_REGISTRY)


class TestRegistry:
    def test_five_datasets(self):
        assert set(ALL_NAMES) == {
            "am",
            "reddit",
            "ogbn-products",
            "ogbn-papers",
            "proteins",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("citeseer")

    def test_paper_stats_table2(self):
        assert PAPER_DATASET_STATS["reddit"].num_vertices == 232_965
        assert PAPER_DATASET_STATS["ogbn-papers"].num_edges == 1_615_685_872
        assert PAPER_DATASET_STATS["proteins"].num_classes == 256


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryDataset:
    def test_loads_and_is_consistent(self, name):
        ds = load_dataset(name, scale=0.05, seed=0)
        n = ds.num_vertices
        assert ds.features.shape[0] == n
        assert ds.labels.shape == (n,)
        assert ds.train_mask.shape == (n,)
        assert ds.labels.max() < ds.num_classes

    def test_masks_partition_vertices(self, name):
        ds = load_dataset(name, scale=0.05, seed=0)
        overlap = (
            ds.train_mask.astype(int)
            + ds.val_mask.astype(int)
            + ds.test_mask.astype(int)
        )
        assert np.all(overlap == 1)

    def test_deterministic(self, name):
        a = load_dataset(name, scale=0.05, seed=3)
        b = load_dataset(name, scale=0.05, seed=3)
        assert a.num_edges == b.num_edges
        assert np.array_equal(a.features, b.features)

    def test_scale_grows_graph(self, name):
        small = load_dataset(name, scale=0.05, seed=0)
        large = load_dataset(name, scale=0.12, seed=0)
        assert large.num_vertices > small.num_vertices


class TestStructuralRegimes:
    def test_reddit_denser_than_products(self):
        reddit = load_dataset("reddit", scale=0.1, seed=0)
        products = load_dataset("ogbn-products", scale=0.1, seed=0)
        assert density(reddit.graph) > 2 * density(products.graph)

    def test_proteins_clustered(self):
        ds = load_dataset("proteins", scale=0.1, seed=0)
        src, dst, _ = ds.graph.to_coo()
        same = ds.labels[src] == ds.labels[dst]
        assert same.mean() > 0.5

    def test_am_has_relations(self):
        ds = load_dataset("am", scale=0.1, seed=0)
        assert len(ds.relations) == 5
        for g in ds.relations.values():
            assert g.num_vertices == ds.num_vertices

    def test_am_union_covers_relations(self):
        ds = load_dataset("am", scale=0.1, seed=0)
        rel_edges = sum(g.num_edges for g in ds.relations.values())
        assert ds.num_edges <= rel_edges  # union dedupes overlaps

    def test_summary_string(self):
        ds = load_dataset("reddit", scale=0.05, seed=0)
        s = ds.summary()
        assert "reddit" in s and "|V|=" in s
