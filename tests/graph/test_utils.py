"""Graph utilities."""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.utils import (
    average_degree,
    degree_histogram,
    density,
    gcn_normalization,
    in_degrees,
    induced_subgraph,
    out_degrees,
    split_train_val_test,
    to_bidirected,
)


class TestDegrees:
    def test_in_out_degrees(self, tiny_graph):
        assert int(in_degrees(tiny_graph).sum()) == tiny_graph.num_edges
        assert int(out_degrees(tiny_graph).sum()) == tiny_graph.num_edges

    def test_out_degree_values(self, line_graph):
        assert out_degrees(line_graph).tolist() == [1, 1, 1, 0]

    def test_average_degree(self, line_graph):
        assert average_degree(line_graph) == pytest.approx(3 / 4)

    def test_density(self, line_graph):
        assert density(line_graph) == pytest.approx(3 / 16)


class TestBidirection:
    def test_symmetric_result(self, small_rmat):
        bi = to_bidirected(small_rmat)
        dense = bi.to_dense()
        assert np.array_equal((dense > 0), (dense.T > 0))

    def test_edge_count_at_most_double(self, small_rmat):
        bi = to_bidirected(small_rmat)
        assert small_rmat.num_edges <= bi.num_edges <= 2 * small_rmat.num_edges


class TestInducedSubgraph:
    def test_line_sub(self, line_graph):
        sub, remap = induced_subgraph(line_graph, np.array([1, 2]))
        assert sub.num_vertices == 2
        assert sub.num_edges == 1  # only 1 -> 2 survives
        assert remap[1] == 0 and remap[2] == 1 and remap[0] == -1

    def test_full_set_is_identity(self, tiny_graph):
        sub, _ = induced_subgraph(tiny_graph, np.arange(tiny_graph.num_vertices))
        assert sub.num_edges == tiny_graph.num_edges


class TestSplits:
    def test_fractions(self):
        train, val, test = split_train_val_test(1000, 0.6, 0.2, seed=0)
        assert abs(train.sum() - 600) <= 1
        assert abs(val.sum() - 200) <= 1
        assert train.sum() + val.sum() + test.sum() == 1000

    def test_disjoint(self):
        train, val, test = split_train_val_test(100, seed=1)
        assert not np.any(train & val)
        assert not np.any(train & test)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            split_train_val_test(10, 0.8, 0.5)

    def test_deterministic(self):
        a = split_train_val_test(50, seed=4)[0]
        b = split_train_val_test(50, seed=4)[0]
        assert np.array_equal(a, b)


class TestMisc:
    def test_gcn_normalization(self, line_graph):
        norm = gcn_normalization(line_graph)
        # in-degrees are [0,1,1,1] -> 1/(d+1)
        assert np.allclose(norm, [1.0, 0.5, 0.5, 0.5])

    def test_degree_histogram_counts(self, small_rmat):
        counts, edges = degree_histogram(small_rmat)
        assert counts.sum() <= small_rmat.num_vertices
        assert len(edges) == len(counts) + 1
