"""CSRGraph structural invariants and conversions."""

import numpy as np
import pytest

from repro.graph.builders import coo_to_csr, from_edge_list
from repro.graph.csr import CSRGraph, validate_graph


class TestConstruction:
    def test_basic_shape(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 7
        assert tiny_graph.is_square

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0, 1]))

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 0]))

    def test_indptr_tail_matches_edges(self):
        with pytest.raises(ValueError, match="num_edges"):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0, 0]))

    def test_edge_ids_alignment(self):
        with pytest.raises(ValueError, match="edge_ids"):
            CSRGraph(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                edge_ids=np.array([0, 1]),
            )

    def test_indices_bounded_by_num_src(self):
        with pytest.raises(ValueError, match="num_src"):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5]), num_src=3)

    def test_default_edge_ids(self, tiny_graph):
        assert tiny_graph.edge_ids.size == tiny_graph.num_edges

    def test_arrays_readonly(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.indices[0] = 99

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0


class TestAccessors:
    def test_neighbors(self, tiny_graph):
        # vertex 1 pulls from sources 0, 2, 3
        assert sorted(tiny_graph.neighbors(1).tolist()) == [0, 2, 3]

    def test_in_degree(self, tiny_graph):
        assert tiny_graph.in_degree(1) == 3
        assert tiny_graph.in_degree(4) == 0

    def test_in_degrees_sums_to_edges(self, small_rmat):
        assert int(small_rmat.in_degrees().sum()) == small_rmat.num_edges

    def test_iter_rows_covers_all_edges(self, tiny_graph):
        total = sum(len(nbrs) for _, nbrs, _ in tiny_graph.iter_rows())
        assert total == tiny_graph.num_edges

    def test_edge_ids_of_matches_neighbors(self, tiny_graph):
        for v in range(tiny_graph.num_vertices):
            assert tiny_graph.edge_ids_of(v).size == tiny_graph.neighbors(v).size


class TestConversions:
    def test_coo_round_trip(self, small_rmat):
        src, dst, eid = small_rmat.to_coo()
        g2 = coo_to_csr(
            src, dst, num_dst=small_rmat.num_vertices, num_src=small_rmat.num_src
        )
        assert np.array_equal(g2.indptr, small_rmat.indptr)
        assert np.array_equal(
            np.sort(g2.indices), np.sort(small_rmat.indices)
        )

    def test_to_dense_counts(self, tiny_graph):
        dense = tiny_graph.to_dense()
        assert dense.sum() == tiny_graph.num_edges
        assert dense[1, 0] == 1  # edge 0 -> 1

    def test_to_scipy_matches_dense(self, small_rmat):
        dense = small_rmat.to_dense()
        sp = small_rmat.to_scipy().toarray()
        assert np.array_equal(dense, sp)

    def test_reverse_transposes(self, small_rmat):
        rev = small_rmat.reverse()
        assert np.array_equal(rev.to_dense(), small_rmat.to_dense().T)

    def test_reverse_involution(self, tiny_graph):
        assert np.array_equal(
            tiny_graph.reverse().reverse().to_dense(), tiny_graph.to_dense()
        )

    def test_reverse_preserves_edge_ids(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert sorted(rev.edge_ids.tolist()) == sorted(
            tiny_graph.edge_ids.tolist()
        )


class TestSourceBlock:
    def test_partition_of_edges(self, small_rmat):
        n = small_rmat.num_src
        half = n // 2
        b0 = small_rmat.source_block(0, half)
        b1 = small_rmat.source_block(half, n)
        assert b0.num_edges + b1.num_edges == small_rmat.num_edges

    def test_block_edges_have_sources_in_range(self, small_rmat):
        b = small_rmat.source_block(10, 50)
        if b.num_edges:
            assert b.indices.min() >= 10
            assert b.indices.max() < 50

    def test_blocks_sum_to_full_dense(self, tiny_graph):
        n = tiny_graph.num_src
        total = np.zeros((tiny_graph.num_vertices, n))
        for lo in range(0, n, 2):
            total += tiny_graph.source_block(lo, min(lo + 2, n)).to_dense()
        assert np.array_equal(total, tiny_graph.to_dense())


def test_validate_graph_passes(small_rmat):
    validate_graph(small_rmat)
