"""COO -> CSR builders."""

import numpy as np
import pytest

from repro.graph.builders import (
    coo_to_csr,
    dedupe_edges,
    from_edge_list,
    remove_self_loops,
)


class TestCooToCsr:
    def test_row_grouping(self):
        g = coo_to_csr(np.array([0, 1, 2]), np.array([1, 1, 0]), num_dst=3, num_src=3)
        assert g.in_degree(1) == 2
        assert g.in_degree(0) == 1
        assert g.in_degree(2) == 0

    def test_stable_edge_order_within_row(self):
        # edges to dst=0 from sources 5, 3, 4 in that input order
        g = coo_to_csr(
            np.array([5, 3, 4]), np.array([0, 0, 0]), num_dst=1, num_src=6
        )
        assert g.neighbors(0).tolist() == [5, 3, 4]
        assert g.edge_ids_of(0).tolist() == [0, 1, 2]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            coo_to_csr(np.array([0]), np.array([0, 1]))

    def test_out_of_range_dst(self):
        with pytest.raises(ValueError, match="out of range"):
            coo_to_csr(np.array([0]), np.array([5]), num_dst=2, num_src=2)

    def test_out_of_range_src(self):
        with pytest.raises(ValueError, match="out of range"):
            coo_to_csr(np.array([5]), np.array([0]), num_dst=2, num_src=2)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            coo_to_csr(np.array([-1]), np.array([0]), num_dst=2, num_src=2)

    def test_custom_edge_ids_carried(self):
        g = coo_to_csr(
            np.array([1, 0]),
            np.array([0, 0]),
            num_dst=1,
            num_src=2,
            edge_ids=np.array([42, 7]),
        )
        assert sorted(g.edge_ids.tolist()) == [7, 42]

    def test_rectangular(self):
        g = coo_to_csr(np.array([9]), np.array([0]), num_dst=2, num_src=10)
        assert g.num_vertices == 2
        assert g.num_src == 10
        assert not g.is_square


class TestFromEdgeList:
    def test_empty(self):
        g = from_edge_list([], num_vertices=3)
        assert g.num_vertices == 3 and g.num_edges == 0

    def test_infers_num_vertices(self):
        g = from_edge_list([(0, 4)])
        assert g.num_vertices == 5

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="pairs"):
            from_edge_list([(0, 1, 2)])  # type: ignore[list-item]


class TestEdgeCleanup:
    def test_dedupe_preserves_first(self):
        src = np.array([0, 1, 0, 2])
        dst = np.array([1, 2, 1, 0])
        s, d = dedupe_edges(src, dst)
        assert len(s) == 3
        assert (0, 1) in set(zip(s.tolist(), d.tolist()))

    def test_dedupe_empty(self):
        s, d = dedupe_edges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert s.size == 0

    def test_remove_self_loops(self):
        s, d = remove_self_loops(np.array([0, 1, 2]), np.array([0, 2, 2]))
        assert s.tolist() == [1]
        assert d.tolist() == [2]
