"""Graph persistence round-trips."""

import numpy as np
import pytest

from repro.graph.io import load_graph, save_graph


def test_round_trip(tmp_path, small_rmat):
    path = str(tmp_path / "g.npz")
    save_graph(path, small_rmat)
    g2, extras = load_graph(path)
    assert np.array_equal(g2.indptr, small_rmat.indptr)
    assert np.array_equal(g2.indices, small_rmat.indices)
    assert np.array_equal(g2.edge_ids, small_rmat.edge_ids)
    assert g2.num_src == small_rmat.num_src
    assert extras == {}


def test_extras_round_trip(tmp_path, tiny_graph):
    feats = np.random.default_rng(0).random((5, 3)).astype(np.float32)
    labels = np.arange(5)
    path = str(tmp_path / "g")
    save_graph(path + ".npz", tiny_graph, features=feats, labels=labels)
    g2, extras = load_graph(path)  # extension optional on load
    assert np.array_equal(extras["features"], feats)
    assert np.array_equal(extras["labels"], labels)


def test_reserved_name_rejected(tmp_path, tiny_graph):
    with pytest.raises(ValueError, match="reserved"):
        save_graph(str(tmp_path / "g.npz"), tiny_graph, indptr=np.zeros(1))


def test_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_graph(str(tmp_path / "nope.npz"))
