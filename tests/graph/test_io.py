"""Graph persistence round-trips."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import load_graph, save_graph


def test_round_trip(tmp_path, small_rmat):
    path = str(tmp_path / "g.npz")
    save_graph(path, small_rmat)
    g2, extras = load_graph(path)
    assert np.array_equal(g2.indptr, small_rmat.indptr)
    assert np.array_equal(g2.indices, small_rmat.indices)
    assert np.array_equal(g2.edge_ids, small_rmat.edge_ids)
    assert g2.num_src == small_rmat.num_src
    assert extras == {}


def test_extras_round_trip(tmp_path, tiny_graph):
    feats = np.random.default_rng(0).random((5, 3)).astype(np.float32)
    labels = np.arange(5)
    path = str(tmp_path / "g")
    save_graph(path + ".npz", tiny_graph, features=feats, labels=labels)
    g2, extras = load_graph(path)  # extension optional on load
    assert np.array_equal(extras["features"], feats)
    assert np.array_equal(extras["labels"], labels)


def test_extra_dtypes_survive_round_trip(tmp_path, tiny_graph):
    """bool masks, float32 features, etc. must come back dtype-exact —
    a bool mask silently widening to int8 breaks mask indexing."""
    extras = {
        "train_mask": np.array([True, False, True, False, True]),
        "features": np.random.default_rng(0).random((5, 3)).astype(np.float32),
        "weights": np.linspace(0, 1, 5, dtype=np.float64),
        "codes": np.arange(5, dtype=np.int32),
    }
    path = str(tmp_path / "g.npz")
    save_graph(path, tiny_graph, **extras)
    _, loaded = load_graph(path)
    for key, arr in extras.items():
        assert loaded[key].dtype == arr.dtype, key
        assert np.array_equal(loaded[key], arr), key


def test_save_validates_before_writing(tmp_path, tiny_graph):
    """A structurally-corrupt graph must fail at save time, before any
    bytes land on disk — not at the next load."""
    corrupt = object.__new__(CSRGraph)
    object.__setattr__(corrupt, "indptr", np.array([0, 2, 5]))
    object.__setattr__(corrupt, "indices", np.array([0, 1]))  # indptr[-1] != 2
    object.__setattr__(corrupt, "edge_ids", np.array([0, 1]))
    object.__setattr__(corrupt, "num_src", 2)
    path = tmp_path / "corrupt.npz"
    with pytest.raises(ValueError, match="indptr"):
        save_graph(str(path), corrupt)
    assert not path.exists()


def test_reserved_name_rejected(tmp_path, tiny_graph):
    with pytest.raises(ValueError, match="reserved"):
        save_graph(str(tmp_path / "g.npz"), tiny_graph, indptr=np.zeros(1))


def test_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_graph(str(tmp_path / "nope.npz"))
