"""Graph generators: determinism, sizes, structural regimes."""

import numpy as np
import pytest

from repro.graph.generators import (
    community_features,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    random_features,
    rmat_graph,
    sbm_graph,
    sbm_labels,
)
from repro.graph.utils import powerlaw_exponent_estimate


class TestRmat:
    def test_vertex_count(self):
        g = rmat_graph(scale=7, edge_factor=4.0, seed=0)
        assert g.num_vertices == 128

    def test_deterministic(self):
        a = rmat_graph(scale=7, edge_factor=4.0, seed=5)
        b = rmat_graph(scale=7, edge_factor=4.0, seed=5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_seed_changes_graph(self):
        a = rmat_graph(scale=7, edge_factor=4.0, seed=1)
        b = rmat_graph(scale=7, edge_factor=4.0, seed=2)
        assert not (
            a.num_edges == b.num_edges and np.array_equal(a.indices, b.indices)
        )

    def test_no_self_loops_by_default(self):
        g = rmat_graph(scale=6, edge_factor=8.0, seed=0)
        src, dst, _ = g.to_coo()
        assert not np.any(src == dst)

    def test_dedupe(self):
        g = rmat_graph(scale=5, edge_factor=16.0, seed=0, dedupe=True)
        src, dst, _ = g.to_coo()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == g.num_edges

    def test_skew_produces_heavy_tail(self):
        g = rmat_graph(scale=10, edge_factor=12.0, a=0.65, seed=0)
        deg = g.in_degrees()
        # hubs: max degree far above the mean
        assert deg.max() > 8 * deg.mean()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(scale=0, edge_factor=1.0)

    def test_invalid_quadrants(self):
        with pytest.raises(ValueError):
            rmat_graph(scale=4, edge_factor=1.0, a=0.7, b=0.3, c=0.3)


class TestSbm:
    def test_intra_density_dominates(self):
        sizes = [60, 60]
        g = sbm_graph(sizes, p_in=0.2, p_out=0.005, seed=0)
        src, dst, _ = g.to_coo()
        same = (src < 60) == (dst < 60)
        assert same.mean() > 0.8

    def test_expected_edge_count(self):
        sizes = [100, 100]
        p = 0.05
        g = sbm_graph(sizes, p_in=p, p_out=p, seed=0)
        expected = p * (200 * 200)
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_zero_probability(self):
        g = sbm_graph([10, 10], p_in=0.0, p_out=0.0, seed=0)
        assert g.num_edges == 0

    def test_undirected_mode_symmetric(self):
        g = sbm_graph([30, 30], p_in=0.2, p_out=0.02, seed=0, directed=False)
        dense = g.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_labels_align(self):
        labels = sbm_labels([3, 4, 5])
        assert labels.tolist() == [0] * 3 + [1] * 4 + [2] * 5

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            sbm_graph([10], p_in=1.5, p_out=0.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            sbm_graph([0, 10], p_in=0.1, p_out=0.1)


class TestPreferentialAttachment:
    def test_size(self):
        g = preferential_attachment_graph(200, m=3, seed=0)
        assert g.num_vertices == 200
        assert g.num_edges > 0

    def test_symmetric(self):
        g = preferential_attachment_graph(100, m=2, seed=0)
        dense = g.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_heavy_tail(self):
        g = preferential_attachment_graph(500, m=2, seed=0)
        deg = g.in_degrees()
        assert deg.max() > 5 * deg.mean()

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(5, m=5)


class TestPowerlawCluster:
    def test_size_and_determinism(self):
        a = powerlaw_cluster_graph(400, num_blocks=8, avg_degree=10.0, seed=1)
        b = powerlaw_cluster_graph(400, num_blocks=8, avg_degree=10.0, seed=1)
        assert a.num_vertices == 400
        assert np.array_equal(a.indices, b.indices)

    def test_intra_fraction_bounds(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(100, 4, 5.0, intra_fraction=1.5)

    def test_clustered_edges(self):
        g = powerlaw_cluster_graph(
            512, num_blocks=8, avg_degree=12.0, intra_fraction=0.95, seed=0
        )
        src, dst, _ = g.to_coo()
        block = 512 // 8
        same = (src // block) == (dst // block)
        assert same.mean() > 0.6


class TestFeatures:
    def test_random_features_shape_dtype(self):
        f = random_features(10, 4, seed=0)
        assert f.shape == (10, 4)
        assert f.dtype == np.float32

    def test_community_features_signal(self):
        labels = np.repeat(np.arange(4), 50)
        f = community_features(labels, 16, signal=3.0, noise=0.5, seed=0)
        # same-class rows much closer than cross-class rows
        c0 = f[labels == 0].mean(axis=0)
        c1 = f[labels == 1].mean(axis=0)
        spread0 = np.linalg.norm(f[labels == 0] - c0, axis=1).mean()
        assert np.linalg.norm(c0 - c1) > spread0

    def test_community_features_deterministic(self):
        labels = np.repeat(np.arange(3), 10)
        a = community_features(labels, 8, seed=2)
        b = community_features(labels, 8, seed=2)
        assert np.array_equal(a, b)
