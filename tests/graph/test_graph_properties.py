"""Property-based tests (hypothesis) on graph data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import coo_to_csr, dedupe_edges
from repro.graph.utils import to_bidirected


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_coo_round_trip_preserves_multiset(data):
    n, src, dst = data
    g = coo_to_csr(src, dst, num_dst=n, num_src=n)
    s2, d2, _ = g.to_coo()
    assert sorted(zip(s2.tolist(), d2.tolist())) == sorted(
        zip(src.tolist(), dst.tolist())
    )


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_indptr_invariants(data):
    n, src, dst = data
    g = coo_to_csr(src, dst, num_dst=n, num_src=n)
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.num_edges
    assert np.all(np.diff(g.indptr) >= 0)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_reverse_is_involution(data):
    n, src, dst = data
    g = coo_to_csr(src, dst, num_dst=n, num_src=n)
    assert np.array_equal(g.reverse().reverse().to_dense(), g.to_dense())


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_dedupe_idempotent(data):
    _, src, dst = data
    s1, d1 = dedupe_edges(src, dst)
    s2, d2 = dedupe_edges(s1, d1)
    assert np.array_equal(s1, s2) and np.array_equal(d1, d2)


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_bidirected_symmetric(data):
    n, src, dst = data
    g = coo_to_csr(src, dst, num_dst=n, num_src=n)
    bi = to_bidirected(g)
    dense = bi.to_dense() > 0
    assert np.array_equal(dense, dense.T)


@given(edge_lists(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_source_blocks_partition_edges(data, nb):
    n, src, dst = data
    g = coo_to_csr(src, dst, num_dst=n, num_src=n)
    from repro.kernels.blocked import build_blocks

    blocks = build_blocks(g, nb)
    assert sum(b.num_edges for b in blocks) == g.num_edges
    total = sum(b.to_dense() for b in blocks)
    assert np.array_equal(total, g.to_dense())
