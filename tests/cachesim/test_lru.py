"""Exact LRU cache simulator."""

import numpy as np
import pytest

from repro.cachesim.lru import LRUFeatureCache, simulate_lru_reuse
from repro.graph.generators import sbm_graph


class TestLRUFeatureCache:
    def test_cold_misses(self):
        c = LRUFeatureCache(4)
        for k in range(4):
            assert not c.access(k)
        assert c.misses == 4 and c.hits == 0

    def test_hit_on_resident(self):
        c = LRUFeatureCache(4)
        c.access(1)
        assert c.access(1)
        assert c.hits == 1

    def test_lru_eviction_order(self):
        c = LRUFeatureCache(2)
        c.access(0)
        c.access(1)
        c.access(0)  # refresh 0 -> 1 becomes LRU
        c.access(2)  # evicts 1
        assert c.access(0)  # still resident
        assert not c.access(1)  # evicted

    def test_capacity_one(self):
        c = LRUFeatureCache(1)
        c.access(0)
        c.access(1)
        assert not c.access(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUFeatureCache(0)

    def test_access_many(self):
        c = LRUFeatureCache(10)
        misses = c.access_many(np.array([1, 2, 1, 3, 2]))
        assert misses == 3
        assert c.accesses == 5

    def test_reset(self):
        c = LRUFeatureCache(2)
        c.access(0)
        c.reset()
        assert c.accesses == 0
        assert not c.access(0) and c.misses == 1


class TestSimulateReuse:
    def test_infinite_cache_gives_ideal_fv_reuse(self, small_rmat):
        res = simulate_lru_reuse(
            small_rmat, 1, cache_vectors=10**6, include_outputs=False
        )
        # every f_V row fetched once -> fv_reuse == edges / distinct sources
        distinct = np.unique(small_rmat.indices).size
        assert res.misses == distinct
        assert res.fv_reuse == pytest.approx(small_rmat.num_edges / distinct)

    def test_tiny_cache_no_reuse(self, small_rmat):
        res = simulate_lru_reuse(small_rmat, 1, cache_vectors=1)
        assert res.reuse < 1.5

    def test_blocking_improves_reuse_under_pressure(self):
        # dense graph whose working set exceeds the cache
        g = sbm_graph([512], p_in=0.25, p_out=0.0, seed=0)
        cache = 64
        flat = simulate_lru_reuse(g, 1, cache)
        blocked = simulate_lru_reuse(g, 8, cache)
        assert blocked.reuse > flat.reuse

    def test_reuse_falls_at_excessive_blocking(self):
        """The f_O pass cost eventually dominates (paper Table 3 falloff)."""
        g = sbm_graph([512], p_in=0.25, p_out=0.0, seed=0)
        cache = 64
        results = {nb: simulate_lru_reuse(g, nb, cache).reuse for nb in (1, 8, 128)}
        assert results[8] > results[1]
        assert results[128] < results[8]

    def test_fo_reads_grow_with_blocks(self, small_rmat):
        few = simulate_lru_reuse(small_rmat, 1, 32)
        many = simulate_lru_reuse(small_rmat, 16, 32)
        assert many.fo_reads > few.fo_reads

    def test_accesses_equal_edges(self, small_rmat):
        for nb in (1, 4):
            res = simulate_lru_reuse(small_rmat, nb, 32)
            assert res.accesses == small_rmat.num_edges

    def test_outputs_pollute_cache(self, small_rmat):
        with_out = simulate_lru_reuse(small_rmat, 2, 32, include_outputs=True)
        without = simulate_lru_reuse(small_rmat, 2, 32, include_outputs=False)
        assert with_out.misses >= without.misses

    def test_miss_rate(self, small_rmat):
        res = simulate_lru_reuse(small_rmat, 2, 32)
        assert 0.0 < res.miss_rate <= 1.0
