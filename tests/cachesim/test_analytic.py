"""Analytic cache model vs exact LRU."""

import numpy as np
import pytest

from repro.cachesim.analytic import (
    analytic_misses,
    analytic_reuse,
    block_access_profiles,
    cache_vectors_for,
)
from repro.cachesim.lru import simulate_lru_reuse
from repro.graph.generators import rmat_graph, sbm_graph


class TestProfiles:
    def test_edges_partitioned(self, small_rmat):
        profiles = block_access_profiles(small_rmat, 4)
        assert sum(p.num_edges for p in profiles) == small_rmat.num_edges

    def test_distinct_sources_bounded(self, small_rmat):
        for p in block_access_profiles(small_rmat, 4):
            assert p.distinct_sources <= p.num_edges or p.num_edges == 0

    def test_single_block(self, small_rmat):
        (p,) = block_access_profiles(small_rmat, 1)
        assert p.num_edges == small_rmat.num_edges
        assert p.distinct_sources == np.unique(small_rmat.indices).size


class TestMisses:
    def test_big_cache_cold_only(self, small_rmat):
        profiles = block_access_profiles(small_rmat, 1)
        misses = analytic_misses(profiles, 10**6)
        assert misses == np.unique(small_rmat.indices).size

    def test_small_cache_adds_thrash(self, small_rmat):
        profiles = block_access_profiles(small_rmat, 1)
        big = analytic_misses(profiles, 10**6)
        small = analytic_misses(profiles, 4)
        assert small > big

    def test_misses_bounded_by_accesses(self, small_rmat):
        profiles = block_access_profiles(small_rmat, 2)
        misses = analytic_misses(profiles, 8)
        assert misses <= small_rmat.num_edges + 1e-9


class TestAgainstLRU:
    @pytest.mark.parametrize("nb", [1, 4, 16])
    def test_tracks_lru_within_factor(self, nb):
        g = sbm_graph([400], p_in=0.15, p_out=0.0, seed=0)
        cache = 50
        lru = simulate_lru_reuse(g, nb, cache).reuse
        model = analytic_reuse(g, nb, cache)
        assert model == pytest.approx(lru, rel=0.6)

    def test_monotone_trend_matches(self):
        """The model must rank blocked above unblocked when LRU does."""
        g = sbm_graph([400], p_in=0.2, p_out=0.0, seed=1)
        cache = 40
        lru_gain = (
            simulate_lru_reuse(g, 8, cache).reuse
            / simulate_lru_reuse(g, 1, cache).reuse
        )
        model_gain = analytic_reuse(g, 8, cache) / analytic_reuse(g, 1, cache)
        assert (lru_gain > 1.0) == (model_gain > 1.0)


class TestCacheSizing:
    def test_literal_capacity(self):
        cv = cache_vectors_for(1000, feature_dim=100, llc_bytes=40_000)
        assert cv == 40_000 // 400

    def test_pressure_scaling(self):
        # paper-pressure scaling: ratio of f_V to cache preserved
        cv = cache_vectors_for(
            1000, feature_dim=100, llc_bytes=1_000_000, paper_fv_bytes=10_000_000
        )
        # fv=400KB at 10x pressure -> effective cache 40KB -> 100 vectors
        assert cv == 100

    def test_minimum_one(self):
        assert cache_vectors_for(10, 10_000, llc_bytes=1) == 1
