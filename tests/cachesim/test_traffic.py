"""Memory-traffic accounting."""

import pytest

from repro.cachesim.traffic import ap_traffic, traffic_for_kernel
from repro.graph.generators import sbm_graph


@pytest.fixture
def dense_graph():
    return sbm_graph([300], p_in=0.2, p_out=0.0, seed=0)


class TestApTraffic:
    def test_cold_cache_reads_every_edge(self, dense_graph):
        t = ap_traffic(dense_graph, feature_dim=10, cache_vectors=None)
        # f_V gather bytes = E * d * 4
        assert t.fv_misses == dense_graph.num_edges

    def test_warm_cache_reads_less(self, dense_graph):
        cold = ap_traffic(dense_graph, 10, cache_vectors=None)
        warm = ap_traffic(dense_graph, 10, cache_vectors=10**6)
        assert warm.bytes_read < cold.bytes_read

    def test_more_blocks_more_fo_traffic(self, dense_graph):
        one = ap_traffic(dense_graph, 10, num_blocks=1, cache_vectors=10**6)
        many = ap_traffic(dense_graph, 10, num_blocks=8, cache_vectors=10**6)
        assert many.bytes_written >= one.bytes_written

    def test_total_is_sum(self, dense_graph):
        t = ap_traffic(dense_graph, 10, cache_vectors=50)
        assert t.total == t.bytes_read + t.bytes_written

    def test_copyrhs_streams_edges(self, dense_graph):
        lhs = ap_traffic(dense_graph, 10, cache_vectors=50, binary_op="copylhs")
        rhs = ap_traffic(dense_graph, 10, cache_vectors=50, binary_op="copyrhs")
        # copyrhs doesn't gather f_V but streams f_E
        assert rhs.fv_misses == lhs.fv_misses  # misses computed, not charged
        assert rhs.bytes_read != lhs.bytes_read


class TestVariants:
    def test_sweet_spot_exists(self, dense_graph):
        """Total IO should be non-monotone in nB under pressure (Fig. 3)."""
        cache = 30
        totals = {
            nb: ap_traffic(dense_graph, 10, num_blocks=nb, cache_vectors=cache).total
            for nb in (1, 4, 16, 64)
        }
        best = min(totals, key=totals.get)
        assert best not in (64,)  # too many blocks pays f_O passes

    def test_baseline_equals_dynamic(self, dense_graph):
        a = traffic_for_kernel(dense_graph, 10, "baseline", 30)
        b = traffic_for_kernel(dense_graph, 10, "dynamic", 30)
        assert a.total == b.total

    def test_blocked_equals_reordered(self, dense_graph):
        a = traffic_for_kernel(dense_graph, 10, "blocked", 30, num_blocks=8)
        b = traffic_for_kernel(dense_graph, 10, "reordered", 30, num_blocks=8)
        assert a.total == b.total

    def test_blocking_reduces_io_under_pressure(self, dense_graph):
        base = traffic_for_kernel(dense_graph, 10, "baseline", 30)
        blk = traffic_for_kernel(dense_graph, 10, "blocked", 30, num_blocks=8)
        assert blk.total < base.total

    def test_unknown_variant(self, dense_graph):
        with pytest.raises(ValueError, match="unknown variant"):
            traffic_for_kernel(dense_graph, 10, "gpu", 30)
