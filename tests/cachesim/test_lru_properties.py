"""Counter-conservation audit for LRUFeatureCache.

Property-based mirror of the ResultCache accounting contract: under any
interleaving of ``access`` and ``access_many``,

- ``lookups == hits + misses`` (every lookup lands in exactly one bucket),
- ``occupancy == misses - evictions`` (every miss inserts, every
  eviction removes, nothing else moves a key),
- ``occupancy <= capacity`` at every instant.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.lru import LRUFeatureCache

keys = st.integers(min_value=0, max_value=19)
ops = st.lists(
    st.one_of(
        keys,  # single access
        st.lists(keys, min_size=0, max_size=12),  # batched access_many
    ),
    min_size=0,
    max_size=60,
)


def _check_invariants(cache: LRUFeatureCache) -> None:
    assert cache.lookups == cache.hits + cache.misses
    assert cache.occupancy == cache.misses - cache.evictions
    assert 0 <= cache.occupancy <= cache.capacity
    assert cache.accesses == cache.lookups


@settings(max_examples=200, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), trace=ops)
def test_conservation_under_interleaved_access(capacity, trace):
    cache = LRUFeatureCache(capacity)
    for op in trace:
        if isinstance(op, list):
            added = cache.access_many(np.array(op, dtype=np.int64))
            assert added >= 0
        else:
            cache.access(op)
        _check_invariants(cache)


@settings(max_examples=50, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), trace=ops)
def test_reset_clears_every_counter_and_slot(capacity, trace):
    cache = LRUFeatureCache(capacity)
    for op in trace:
        if isinstance(op, list):
            cache.access_many(np.array(op, dtype=np.int64))
        else:
            cache.access(op)
    cache.reset()
    assert (cache.lookups, cache.hits, cache.misses, cache.evictions) == (
        0, 0, 0, 0
    )
    assert cache.occupancy == 0
    # post-reset behavior is indistinguishable from a fresh cache
    assert cache.access(0) is False
    _check_invariants(cache)


def test_eviction_order_is_least_recently_used():
    cache = LRUFeatureCache(2)
    cache.access(1)
    cache.access(2)
    cache.access(1)  # refresh 1 -> 2 is now LRU
    cache.access(3)  # evicts 2
    assert cache.access(1) and cache.access(3)
    assert not cache.access(2)
    assert cache.evictions == 2  # 2 evicted, then 1 evicted re-adding 2
