"""``repro check`` CLI: output formats, exit codes, baseline workflow."""

import json
import textwrap

import pytest

from repro.cli import main

CLEAN = """
    import threading

    class C:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self.count += 1
"""

DIRTY = """
    import threading

    class C:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self):
            self.count += 1

        def run(self, task):
            try:
                task()
            except Exception:
                pass
"""


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A tiny repo-shaped tree as the CLI's working directory."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(textwrap.dedent(CLEAN))
    (pkg / "dirty.py").write_text(textwrap.dedent(DIRTY))
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_file_exits_zero(tree, capsys):
    assert main(["check", "src/pkg/clean.py"]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_violations_exit_nonzero_with_rendered_lines(tree, capsys):
    assert main(["check", "src"]) == 1
    out = capsys.readouterr().out
    assert "src/pkg/dirty.py" in out
    assert "REP101" in out and "REP104" in out
    assert "2 violation(s)" in out


def test_json_output_schema(tree, capsys):
    assert main(["check", "--json", "src"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["count"] == 2
    assert data["by_code"] == {"REP101": 1, "REP104": 1}
    v = data["violations"][0]
    assert set(v) == {"code", "path", "line", "scope", "message", "fingerprint"}


def test_rules_filter(tree, capsys):
    assert main(["check", "--rules", "REP104", "src"]) == 1
    data_out = capsys.readouterr().out
    assert "REP104" in data_out and "REP101" not in data_out


def test_unknown_rule_code_exits_two(tree, capsys):
    assert main(["check", "--rules", "REP999", "src"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_list_rules(tree, capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REP101", "REP102", "REP103", "REP104"):
        assert code in out


def test_baseline_roundtrip(tree, capsys):
    # Write the current findings as a baseline...
    assert main(["check", "--baseline", "lint.json", "--write-baseline", "src"]) == 0
    capsys.readouterr()
    # ...then a re-run is green, reporting the suppressions.
    assert main(["check", "--baseline", "lint.json", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s), 2 suppressed by baseline" in out


def test_new_violation_escapes_baseline(tree, capsys):
    assert main(["check", "--baseline", "lint.json", "--write-baseline", "src"]) == 0
    dirty = tree / "src" / "pkg" / "dirty.py"
    dirty.write_text(
        dirty.read_text()
        + "\n\ndef late(task):\n    try:\n        task()\n    except Exception:\n        pass\n"
    )
    capsys.readouterr()
    assert main(["check", "--baseline", "lint.json", "src"]) == 1
    out = capsys.readouterr().out
    assert "1 violation(s), 2 suppressed by baseline" in out
    assert "late" in out


def test_write_baseline_requires_baseline_path(tree, capsys):
    assert main(["check", "--write-baseline", "src"]) == 2
    assert "--write-baseline requires" in capsys.readouterr().err


def test_missing_baseline_file_is_not_an_error(tree, capsys):
    # A configured-but-absent baseline means "no suppressions yet".
    assert main(["check", "--baseline", "absent.json", "src"]) == 1
    assert "suppressed" not in capsys.readouterr().out
