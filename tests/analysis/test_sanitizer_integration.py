"""Sanitizer over the real serving/feature-store stack.

These tests force the sanitizer on (private recorder), build the actual
production objects — tiered feature store with a hot-set cache, bounded
serving frontend, result cache — drive them from thread herds, and then
assert the lock-order graph is (a) non-trivial (the instrumentation is
really wired in) and (b) free of cycles and held-lock blocking calls
(the hierarchy the code claims is the one it executes).

The CI job runs the full concurrency/drain suites under
``REPRO_SANITIZE=1`` and gates on the exit report; the subprocess test
here pins the same contract from inside the tier-1 suite.
"""

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.analysis import sanitizers
from repro.analysis.sanitizers import scoped_recorder, set_force
from repro.featurestore import FeatureStore
from repro.serving import ResultCache
from repro.serving.frontend import ServingFrontend, ServingUnavailable

JOIN_TIMEOUT_S = 30.0


@pytest.fixture
def forced(monkeypatch):
    """Sanitizer forced on with a private recorder; probes restored."""
    set_force(True)
    try:
        with scoped_recorder() as rec:
            yield rec
    finally:
        set_force(None)
        sanitizers.uninstall_probes()


def join_all(threads):
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT_S)
        assert not t.is_alive(), "thread outlived the deadline: deadlock?"


def edge_pairs(rec):
    return {(e["before"], e["after"]) for e in rec.edges()}


def test_feature_store_stack_is_cycle_free(forced, tmp_path):
    rng = np.random.default_rng(0)
    features = rng.standard_normal((256, 8)).astype(np.float32)
    store = FeatureStore.create(
        str(tmp_path / "feat"), features, hot_fraction=0.25, policy="lru"
    )

    def reader(seed):
        local = np.random.default_rng(seed)
        for _ in range(50):
            ids = local.integers(0, 256, size=16)
            rows = store.gather(ids)
            np.testing.assert_allclose(np.asarray(rows), features[ids], rtol=1e-6)
            store.stats()

    threads = [threading.Thread(target=reader, args=(s,)) for s in range(4)]
    for t in threads:
        t.start()
    join_all(threads)

    # gather-through-the-cache calls _cold_fetch while holding the
    # hot-set lock: that nesting must appear in the order graph...
    assert ("featurestore.hotset", "featurestore.store.stats") in edge_pairs(forced)
    # ...and nothing anywhere in the stack may close a cycle or block.
    assert forced.findings() == {"cycles": [], "blocking": []}


def test_frontend_stack_is_cycle_free(forced):
    cache = ResultCache(capacity=32)
    frontend = ServingFrontend(
        service=None, num_workers=3, max_queue=32,
        default_timeout_s=10.0, drain_timeout_s=10.0,
    )

    def lookup(key):
        def compute():
            return np.arange(4, dtype=np.float32) + key

        hit = cache.get(key)
        if hit is not None:
            return hit
        value = compute()
        cache.put(key, value)
        return value

    errors = []

    def client(seed):
        for i in range(40):
            try:
                frontend.call("predict", lambda k=(seed * 40 + i) % 8: lookup(k))
            except ServingUnavailable:
                pass  # shed during the drain window: expected
            except Exception as exc:  # pragma: no cover - debugging aid
                errors.append(exc)

    def drainer():
        for _ in range(3):
            with frontend.drained():
                frontend.metrics_snapshot()

    threads = [threading.Thread(target=client, args=(s,)) for s in range(4)]
    threads.append(threading.Thread(target=drainer))
    for t in threads:
        t.start()
    join_all(threads)
    frontend.close()

    assert not errors
    # The drain serializer holds its lock while quiescing the frontend.
    assert ("serving.frontend.drain", "serving.frontend") in edge_pairs(forced)
    assert forced.findings() == {"cycles": [], "blocking": []}


def test_concurrency_suite_clean_under_sanitizer(tmp_path):
    """Re-run the serving concurrency suite with ``REPRO_SANITIZE=1`` and
    assert the exit report records real instrumentation and no findings."""
    report = tmp_path / "sanitize-report.json"
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    env["REPRO_SANITIZE"] = "1"
    env["REPRO_SANITIZE_REPORT"] = str(report)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-x", "tests/serving/test_concurrency.py"],
        cwd=root, env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = json.loads(report.read_text())
    assert data["enabled"] is True
    assert data["num_edges"] > 0
    assert data["cycles"] == []
    assert data["blocking"] == []
