"""Good/bad fixture pairs for every ``repro check`` lint rule.

Each rule gets at least one fixture that must lint clean and one that
must produce the documented violation — the pairs pin both halves of
the contract (no false positives on annotated code, no false negatives
on the bug the rule exists to catch).
"""

import textwrap

from repro.analysis import check_source
from repro.analysis.rules import RULES_BY_CODE


def lint(source, rules=None):
    picked = None
    if rules is not None:
        picked = [RULES_BY_CODE[code]() for code in rules]
    return check_source("src/repro/fake/module.py", textwrap.dedent(source), picked)


def codes(violations):
    return sorted(v.code for v in violations)


# -- REP101: guarded-by discipline -------------------------------------------


GUARDED_GOOD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock
            self._idle = threading.Condition(self._lock)  # alias-of: _lock

        def bump(self):
            with self._lock:
                self.count += 1

        def bump_via_alias(self):
            with self._idle:
                self.count += 1

        def _bump_locked(self):  # requires-lock: _lock
            self.count += 1

        def peek(self):
            return self.count  # racy-ok: monitoring gauge, staleness fine
"""


GUARDED_BAD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self):
            self.count += 1

        def read(self):
            return self.count
"""


def test_guarded_by_clean_fixture():
    assert lint(GUARDED_GOOD, rules=["REP101"]) == []


def test_guarded_by_flags_unlocked_access():
    violations = lint(GUARDED_BAD, rules=["REP101"])
    assert codes(violations) == ["REP101", "REP101"]
    assert {v.scope for v in violations} == {"Counter.bump", "Counter.read"}
    assert all("without holding self._lock" in v.message for v in violations)


def test_guarded_by_marker_does_not_bleed_to_next_line():
    # The trailing marker on `count` must not annotate `other` below it.
    source = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock
                self.other = 0

            def touch(self):
                self.other += 1
    """
    assert lint(source, rules=["REP101"]) == []


def test_guarded_by_prose_after_lock_name_is_ignored():
    source = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.depth = 0  # guarded-by: _lock — queued work items

            def bump(self):
                with self._lock:
                    self.depth += 1
    """
    assert lint(source, rules=["REP101"]) == []


def test_guarded_by_nested_function_does_not_inherit_lock():
    source = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def schedule(self):
                with self._lock:
                    def later():
                        self.count += 1
                    return later
    """
    violations = lint(source, rules=["REP101"])
    assert codes(violations) == ["REP101"]


def test_init_is_exempt():
    # __init__ publishes the object; its writes happen-before any reader.
    source = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock
                self.count = 1
    """
    assert lint(source, rules=["REP101"]) == []


# -- REP102: no blocking calls under a lock ----------------------------------


BLOCKING_BAD = """
    import threading
    import time
    from urllib.request import urlopen

    class Poller:
        def __init__(self):
            self._lock = threading.Lock()

        def poll(self, thread, queue, future):
            with self._lock:
                time.sleep(0.5)
                urlopen("http://example.com")
                thread.join()
                queue.get()
                future.result()
"""


BLOCKING_GOOD = """
    import threading
    import time

    class Poller:
        def __init__(self):
            self._lock = threading.Lock()
            self._cond = threading.Condition(self._lock)

        def poll(self, thread, queue):
            time.sleep(0.5)
            thread.join()
            with self._lock:
                queue.get(timeout=1.0)
            with self._cond:
                self._cond.wait(timeout=1.0)

        def parts(self, items):
            with self._lock:
                return ",".join(str(i) for i in items)
"""


def test_blocking_under_lock_flags_each_call():
    violations = lint(BLOCKING_BAD, rules=["REP102"])
    assert codes(violations) == ["REP102"] * 5
    joined = " ".join(v.message for v in violations)
    for needle in ("time.sleep", "urlopen", "join()", "get()", "result()"):
        assert needle in joined
    assert all("while holding" in v.message for v in violations)


def test_blocking_outside_lock_is_clean():
    # sleep/join outside the lock, get() with a timeout, wait() on the
    # held condition itself, and str.join (one argument) are all fine.
    assert lint(BLOCKING_GOOD, rules=["REP102"]) == []


# -- REP103: read-only hand-out contract -------------------------------------


def test_registered_handout_without_freeze_is_flagged():
    source = """
        import numpy as np

        class ResultCache:
            def _frozen_copy(self, rows):
                return np.array(rows)
    """
    violations = check_source(
        "src/repro/serving/cache.py", textwrap.dedent(source),
        [RULES_BY_CODE["REP103"]()],
    )
    assert codes(violations) == ["REP103"]
    assert "without a freeze" in violations[0].message


def test_registered_handout_with_freeze_is_clean():
    source = """
        import numpy as np

        class ResultCache:
            def _frozen_copy(self, rows):
                out = np.array(rows)
                out.setflags(write=False)
                return out
    """
    violations = check_source(
        "src/repro/serving/cache.py", textwrap.dedent(source),
        [RULES_BY_CODE["REP103"]()],
    )
    assert violations == []


def test_missing_registered_handout_is_registry_drift():
    violations = check_source(
        "src/repro/serving/cache.py", "class ResultCache:\n    pass\n",
        [RULES_BY_CODE["REP103"]()],
    )
    assert codes(violations) == ["REP103"]
    assert "not found" in violations[0].message


def test_thaw_and_frozen_attr_stores_are_flagged():
    source = """
        def patch(graph, rows):
            rows.setflags(write=True)
            graph.indices[0] = 7
            graph.indptr[1:] += 1
    """
    violations = lint(source, rules=["REP103"])
    assert codes(violations) == ["REP103"] * 3
    joined = " ".join(v.message for v in violations)
    assert "setflags(write=True)" in joined
    assert ".indices" in joined and ".indptr" in joined


def test_rebinding_frozen_attr_name_is_fine():
    # Rebinding the attribute (fresh array) is the sanctioned update
    # path; only element stores through it are flagged.
    source = """
        def rebuild(graph, new_indices):
            graph.indices = new_indices
    """
    assert lint(source, rules=["REP103"]) == []


# -- REP104: classified broad excepts ----------------------------------------


def test_unclassified_broad_except_is_flagged():
    source = """
        def run(task):
            try:
                task()
            except Exception:
                pass
    """
    violations = lint(source, rules=["REP104"])
    assert codes(violations) == ["REP104"]


def test_bare_except_is_flagged():
    source = """
        def run(task):
            try:
                task()
            except:
                pass
    """
    assert codes(lint(source, rules=["REP104"])) == ["REP104"]


def test_audit_marker_classifies_broad_except():
    source = """
        def run(task):
            try:
                task()
            # audit[broad-except]: counted in the error bucket and logged
            except Exception:
                pass
    """
    assert lint(source, rules=["REP104"]) == []


def test_reraising_broad_except_is_clean():
    source = """
        def run(task):
            try:
                task()
            except Exception:
                cleanup()
                raise
    """
    assert lint(source, rules=["REP104"]) == []


def test_narrow_except_is_clean():
    source = """
        def run(task):
            try:
                task()
            except ValueError:
                pass
    """
    assert lint(source, rules=["REP104"]) == []


# -- engine-level behavior ----------------------------------------------------


def test_syntax_error_reports_rep000():
    violations = check_source("src/repro/broken.py", "def f(:\n")
    assert codes(violations) == ["REP000"]
    assert "syntax error" in violations[0].message


def test_fingerprint_is_stable_across_line_shifts():
    before = lint(GUARDED_BAD, rules=["REP101"])
    after = lint("\n\n\n" + textwrap.dedent(GUARDED_BAD), rules=["REP101"])
    assert {v.fingerprint for v in before} == {v.fingerprint for v in after}
    assert [v.line for v in before] != [v.line for v in after]


def test_src_tree_is_clean(request):
    """The repo's own source must pass its own linter with no baseline."""
    from repro.analysis import check_paths

    root = str(request.config.rootpath)
    assert [v.render() for v in check_paths(["src"], root=root)] == []
