"""Unit tests for the runtime lock-order sanitizer.

Every test uses a private :class:`LockOrderRecorder` (either passed to
``make_lock(recorder=...)`` or installed via ``scoped_recorder``) so the
process-global recorder — live when the whole suite runs under
``REPRO_SANITIZE=1`` — never sees these deliberately bad orderings.
"""

import threading
import time

import pytest

from repro.analysis.sanitizers import (
    LockOrderRecorder,
    SanitizedLock,
    current_recorder,
    install_probes,
    make_condition,
    make_lock,
    scoped_recorder,
    uninstall_probes,
)


@pytest.fixture
def rec():
    return LockOrderRecorder()


def sanitized(name, rec):
    lock = make_lock(name, recorder=rec, force=True)
    assert isinstance(lock, SanitizedLock)
    return lock


# -- factories ---------------------------------------------------------------


def test_factories_return_plain_primitives_when_off():
    lock = make_lock("x", force=False)
    cond = make_condition("x", force=False)
    assert not isinstance(lock, SanitizedLock)
    with lock:
        pass
    with cond:
        cond.notify_all()


def test_factories_return_instrumented_primitives_when_forced(rec):
    lock = sanitized("a", rec)
    with lock:
        assert rec.held() == ("a",)
    assert rec.held() == ()


# -- held stacks and edges ---------------------------------------------------


def test_nested_acquisition_records_an_edge(rec):
    a, b = sanitized("a", rec), sanitized("b", rec)
    with a:
        with b:
            assert rec.held() == ("a", "b")
    edges = rec.edges()
    assert len(edges) == 1
    assert (edges[0]["before"], edges[0]["after"]) == ("a", "b")
    assert edges[0]["count"] == 1
    assert "test_sanitizer.py" in edges[0]["site"]
    assert rec.cycles() == []


def test_same_name_reacquisition_is_not_an_edge(rec):
    # Two instances of one class share a lock name; holding both must
    # not self-report a -> a.
    first = sanitized("cache", rec)
    second = sanitized("cache", rec)
    with first:
        with second:
            pass
    assert rec.edges() == []


def test_release_order_independence(rec):
    a, b = sanitized("a", rec), sanitized("b", rec)
    a.acquire()
    b.acquire()
    a.release()  # out-of-order release: pop the right entry, not the top
    assert rec.held() == ("b",)
    b.release()
    assert rec.held() == ()


def test_ab_ba_cycle_is_reported(rec):
    a, b = sanitized("a", rec), sanitized("b", rec)
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert rec.cycles() == [["a", "b"]]
    assert rec.findings()["cycles"] == [["a", "b"]]


def test_three_lock_cycle_is_reported(rec):
    a, b, c = (sanitized(n, rec) for n in "abc")
    for outer, inner in ((a, b), (b, c), (c, a)):
        with outer:
            with inner:
                pass
    assert rec.cycles() == [["a", "b", "c"]]


def test_consistent_hierarchy_has_no_cycles(rec):
    a, b, c = (sanitized(n, rec) for n in "abc")
    with a:
        with b:
            with c:
                pass
    with a:
        with c:
            pass
    assert len(rec.edges()) == 3
    assert rec.cycles() == []


def test_cross_thread_edges_combine_into_a_cycle(rec):
    # Thread 1 takes a then b; thread 2 takes b then a — sequentially,
    # so the run cannot deadlock, yet the order graph still convicts.
    a, b = sanitized("a", rec), sanitized("b", rec)

    def t1():
        with a:
            with b:
                pass

    def t2():
        with b:
            with a:
                pass

    for fn in (t1, t2):
        thread = threading.Thread(target=fn)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive()
    assert rec.cycles() == [["a", "b"]]


def test_trylock_failure_records_nothing(rec):
    a = sanitized("a", rec)
    b = sanitized("a2", rec)
    a._lock.acquire()  # simulate another holder without recording
    try:
        with b:
            assert a.acquire(blocking=False) is False
        assert rec.edges() == []
    finally:
        a._lock.release()


# -- condition variables -----------------------------------------------------


def test_condition_over_sanitized_lock_records(rec):
    cond = make_condition("gate", recorder=rec, force=True)
    assert isinstance(cond, threading.Condition)
    with cond:
        assert rec.held() == ("gate",)
        cond.notify_all()
    assert rec.held() == ()


def test_condition_wait_releases_and_reacquires(rec):
    cond = make_condition("gate", recorder=rec, force=True)
    observed = []

    def waiter():
        with cond:
            cond.wait(timeout=10)
            observed.append(rec.held())

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    with cond:
        cond.notify_all()
    thread.join(timeout=10)
    assert not thread.is_alive()
    # After wait() returns the waiter holds the lock again.
    assert observed == [("gate",)]
    assert rec.cycles() == []


# -- blocking probes ---------------------------------------------------------


def test_sleep_under_lock_is_flagged():
    with scoped_recorder() as rec:
        lock = make_lock("slow", recorder=rec, force=True)
        install_probes()
        try:
            with lock:
                time.sleep(0.001)
        finally:
            uninstall_probes()
        blocking = rec.blocking_calls()
        assert len(blocking) == 1
        assert blocking[0]["held"] == ["slow"]
        assert "time.sleep" in blocking[0]["call"]
        assert rec.findings()["blocking"] == blocking


def test_sleep_without_lock_is_not_flagged():
    with scoped_recorder() as rec:
        install_probes()
        try:
            time.sleep(0.001)
        finally:
            uninstall_probes()
        assert rec.blocking_calls() == []


# -- recorder plumbing -------------------------------------------------------


def test_scoped_recorder_swaps_and_restores():
    outer = current_recorder()
    with scoped_recorder() as inner:
        assert current_recorder() is inner
        assert inner is not outer
    assert current_recorder() is outer


def test_clear_resets_findings(rec):
    a, b = sanitized("a", rec), sanitized("b", rec)
    with a:
        with b:
            pass
    assert rec.edges()
    rec.clear()
    assert rec.edges() == []
    assert rec.cycles() == []


def test_snapshot_is_json_safe(rec):
    import json

    a, b = sanitized("a", rec), sanitized("b", rec)
    with a:
        with b:
            pass
    snap = rec.snapshot()
    assert snap["num_edges"] == 1
    json.dumps(snap)  # must not raise
