"""DynamicGraph: merged view correctness, compaction bit-identity,
tombstone semantics, auto-compaction."""

import numpy as np
import pytest

from repro.dyngraph import DynamicGraph
from repro.graph.builders import coo_to_csr, from_edge_list
from repro.graph.csr import INDEX_DTYPE

EDGES = [(0, 1), (2, 1), (3, 1), (0, 3), (1, 0), (3, 0), (1, 2)]


def rebuild(dyn: DynamicGraph):
    """From-scratch CSR over the surviving edge sequence — the ground
    truth ``csr()``/``compact()`` must equal bit-for-bit."""
    src, dst, eid = dyn.live_edges()
    n = dyn.num_vertices
    return coo_to_csr(src, dst, num_dst=n, num_src=n, edge_ids=eid)


def assert_csr_equal(a, b):
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.edge_ids, b.edge_ids)
    assert a.num_src == b.num_src


# -- construction -----------------------------------------------------------------


def test_requires_square_base():
    rect = coo_to_csr([0, 1], [0, 1], num_dst=2, num_src=5)
    with pytest.raises(ValueError, match="square"):
        DynamicGraph(rect)


def test_fixed_vertex_set(tiny_graph):
    dyn = DynamicGraph(tiny_graph)
    with pytest.raises(ValueError, match=r"\[0, 5\)"):
        dyn.add_edge(0, 5)
    with pytest.raises(ValueError, match=r"\[0, 5\)"):
        dyn.add_edge(-1, 0)


def test_empty_base():
    g = from_edge_list([], num_vertices=3)
    dyn = DynamicGraph(g)
    assert dyn.num_edges == 0
    dyn.add_edges([0, 1], [1, 2])
    assert dyn.num_edges == 2
    assert dyn.neighbors(1).tolist() == [0]
    assert_csr_equal(dyn.csr(), from_edge_list([(0, 1), (1, 2)], num_vertices=3))


# -- compaction bit-identity -------------------------------------------------------


def test_compact_add_only_equals_from_scratch():
    """Growing a prefix graph edge-by-edge compacts to exactly the graph
    built from the full edge list in one go."""
    for cut in (1, 3, 5):
        full = from_edge_list(EDGES, num_vertices=5)
        dyn = DynamicGraph(
            from_edge_list(EDGES[:cut], num_vertices=5), compact_threshold=None
        )
        for u, v in EDGES[cut:]:
            dyn.add_edge(u, v)
        assert_csr_equal(dyn.csr(), full)
        assert_csr_equal(dyn.compact(), full)


def test_compact_with_removals_equals_from_scratch(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    dyn.add_edges([4, 4, 2], [0, 1, 4])
    dyn.remove_edge(0, 1)   # base edge
    dyn.remove_edge(4, 1)   # delta edge
    compacted = dyn.compact()
    assert_csr_equal(compacted, rebuild(dyn))
    assert dyn.num_edges == tiny_graph.num_edges + 3 - 2
    # the new base serves the same merged view
    assert_csr_equal(dyn.csr(), compacted)


def test_edge_ids_stable_across_compactions(tiny_graph):
    """An edge keeps its id through mutation and compaction; removed ids
    are never reused (feature rows / assignments stay valid)."""
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    e1 = dyn.add_edge(4, 0)
    removed = dyn.remove_edge(1, 0)
    dyn.compact()
    e2 = dyn.add_edge(4, 1)
    assert e2 > e1  # monotone: no reuse of removed ids
    assert int(removed[0]) not in dyn.csr().edge_ids.tolist()
    assert e1 in dyn.csr().edge_ids.tolist()
    assert_csr_equal(dyn.csr(), rebuild(dyn))


def test_randomized_mutation_sequence_matches_rebuild(small_rmat):
    """Property-style: an arbitrary interleaving of adds/removes keeps
    the merged view bit-equal to the from-scratch rebuild."""
    rng = np.random.default_rng(0)
    n = small_rmat.num_vertices
    dyn = DynamicGraph(small_rmat, compact_threshold=None)
    for step in range(30):
        if rng.random() < 0.6:
            k = int(rng.integers(1, 8))
            dyn.add_edges(rng.integers(0, n, k), rng.integers(0, n, k))
        else:
            # remove an existing live edge, found via the merged view
            v = int(rng.integers(0, n))
            nbrs = dyn.neighbors(v)
            if nbrs.size:
                dyn.remove_edges([int(nbrs[rng.integers(nbrs.size)])], [v])
        if step % 10 == 9:
            assert_csr_equal(dyn.csr(), rebuild(dyn))
    ref = rebuild(dyn)
    assert_csr_equal(dyn.csr(), ref)
    assert_csr_equal(dyn.compact(), ref)


# -- merged read view --------------------------------------------------------------


def test_merged_view_matches_csr(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    dyn.add_edges([4, 0], [1, 2])
    dyn.remove_edge(2, 1)
    merged = dyn.csr()
    assert np.array_equal(dyn.in_degrees(), merged.in_degrees())
    for v in range(dyn.num_vertices):
        assert dyn.in_degree(v) == merged.in_degree(v)
        assert dyn.neighbors(v).tolist() == merged.neighbors(v).tolist()
        assert dyn.edge_ids_of(v).tolist() == merged.edge_ids_of(v).tolist()


def test_has_edge(tiny_graph):
    dyn = DynamicGraph(tiny_graph)
    assert dyn.has_edge(0, 1)
    assert not dyn.has_edge(1, 4)
    dyn.add_edge(1, 4)
    assert dyn.has_edge(1, 4)
    dyn.remove_edge(0, 1)
    assert not dyn.has_edge(0, 1)


# -- tombstone semantics -----------------------------------------------------------


def test_remove_all_parallel_edges(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    dyn.add_edges([0, 0], [1, 1])  # two more copies of 0 -> 1
    removed = dyn.remove_edge(0, 1)
    assert removed.size == 3  # base copy + both delta copies
    assert not dyn.has_edge(0, 1)
    assert_csr_equal(dyn.csr(), rebuild(dyn))


def test_strict_remove_raises_and_leaves_graph_untouched(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    before = dyn.csr()
    with pytest.raises(ValueError, match="no live edge"):
        # first pair exists, second does not: nothing may be applied
        dyn.remove_edges([0, 4], [1, 4])
    assert dyn.has_edge(0, 1)
    assert dyn.num_removed == 0
    assert_csr_equal(dyn.csr(), before)
    # non-strict skips the missing pair and applies the rest
    removed = dyn.remove_edges([0, 4], [1, 4], strict=False)
    assert removed.size == 1 and not dyn.has_edge(0, 1)


def test_double_remove_is_strict_error(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    with pytest.raises(ValueError, match="no live edge"):
        dyn.remove_edges([0, 0], [1, 1])  # only one live 0 -> 1 exists


# -- accounting / auto-compaction --------------------------------------------------


def test_counters_and_delta_fraction(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    assert dyn.delta_fraction == 0.0
    dyn.add_edges([4, 4], [0, 1])
    dyn.remove_edge(0, 3)
    st = dyn.stats()
    assert st["num_added"] == 2 and st["num_removed"] == 1
    assert st["num_delta_edges"] == 2 and st["num_tombstones"] == 1
    assert st["num_edges"] == tiny_graph.num_edges + 1
    assert dyn.delta_fraction == pytest.approx(3 / tiny_graph.num_edges)
    dyn.compact()
    assert dyn.delta_fraction == 0.0 and dyn.num_tombstones == 0


def test_auto_compaction_triggers_at_threshold(small_rmat):
    dyn = DynamicGraph(small_rmat, compact_threshold=0.05)
    budget = int(small_rmat.num_edges * 0.05) + 2
    rng = np.random.default_rng(1)
    n = small_rmat.num_vertices
    dyn.add_edges(rng.integers(0, n, budget), rng.integers(0, n, budget))
    assert dyn.num_compactions >= 1
    assert dyn.num_delta_edges == 0  # folded into the new base
    assert dyn.num_edges == small_rmat.num_edges + budget
    assert_csr_equal(dyn.csr(), rebuild(dyn))


def test_csr_cached_until_mutation(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    dyn.add_edge(4, 0)
    first = dyn.csr()
    assert dyn.csr() is first  # cached
    dyn.add_edge(4, 1)
    assert dyn.csr() is not first  # invalidated


def test_pristine_csr_is_base(tiny_graph):
    assert DynamicGraph(tiny_graph).csr() is tiny_graph


def test_live_edges_dtype_and_order(tiny_graph):
    dyn = DynamicGraph(tiny_graph, compact_threshold=None)
    dyn.add_edge(4, 4)
    src, dst, eid = dyn.live_edges()
    assert src.dtype == dst.dtype == eid.dtype == INDEX_DTYPE
    # base storage order first, then arrival order
    assert dst[-1] == 4 and src[-1] == 4
    assert eid[-1] == tiny_graph.num_edges
