"""Streaming Libra: bit-equality with batch replay, resumability, drift."""

import numpy as np
import pytest

from repro.dyngraph import LibraState, streaming_libra_partition
from repro.graph.generators import rmat_graph, sbm_graph
from repro.partition.libra import libra_partition, replication_factor_of_assignment


# -- streaming == batch equivalence ------------------------------------------------


@pytest.mark.parametrize("num_partitions", [2, 4, 8])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_streaming_equals_batch_replay(small_rmat, num_partitions, seed):
    """One edge at a time through LibraState == one libra_partition call
    (assignments, loads, replication factor), across seeds and partition
    counts."""
    batch = libra_partition(
        small_rmat, num_partitions, seed=seed, shuffle_edges=False
    )
    state = LibraState(small_rmat.num_vertices, num_partitions, seed=seed)
    streamed = state.assign_graph(small_rmat)
    assert np.array_equal(streamed, batch)
    assert np.array_equal(state.load, np.bincount(batch, minlength=num_partitions))
    assert state.replication_factor == pytest.approx(
        replication_factor_of_assignment(small_rmat, batch, num_partitions)
    )


def test_edge_by_edge_equals_chunked(small_rmat):
    """Chunk boundaries are invisible: any split of the stream produces
    the same assignments (each decision depends only on prior state)."""
    src, dst, _ = small_rmat.to_coo()
    one = LibraState(small_rmat.num_vertices, 4, seed=0)
    per_edge = np.concatenate(
        [one.assign([u], [v]) for u, v in zip(src[:300], dst[:300])]
    )
    chunked = LibraState(small_rmat.num_vertices, 4, seed=0)
    parts = np.concatenate([
        chunked.assign(src[:113], dst[:113]),
        chunked.assign(src[113:300], dst[113:300]),
    ])
    assert np.array_equal(per_edge, parts)
    assert np.array_equal(one.member, chunked.member)


def test_convenience_wrapper_sets_baseline(small_rmat):
    assignment, state = streaming_libra_partition(small_rmat, 4, seed=1)
    assert np.array_equal(
        assignment, libra_partition(small_rmat, 4, seed=1, shuffle_edges=False)
    )
    assert state.baseline_rf == pytest.approx(state.replication_factor)
    assert state.num_assigned == small_rmat.num_edges


# -- resumability -----------------------------------------------------------------


def test_save_load_resume_equals_uninterrupted(tmp_path, small_rmat):
    """Kill/restart mid-stream via save()/load() is invisible to the
    final assignment, loads, and membership."""
    src, dst, eid = small_rmat.to_coo()
    m = src.size
    cut = m // 3

    first = LibraState(small_rmat.num_vertices, 4, seed=2)
    a1 = first.assign(src[:cut], dst[:cut])
    first.set_baseline()
    path = str(tmp_path / "libra_state.npz")
    first.save(path)

    resumed = LibraState.load(path)
    assert resumed.num_assigned == cut
    assert resumed.baseline_rf == first.baseline_rf
    a2 = resumed.assign(src[cut:], dst[cut:])

    assignment = np.zeros(m, dtype=np.int64)
    assignment[eid] = np.concatenate([a1, a2])
    assert np.array_equal(
        assignment, libra_partition(small_rmat, 4, seed=2, shuffle_edges=False)
    )
    uninterrupted = LibraState(small_rmat.num_vertices, 4, seed=2)
    uninterrupted.assign_graph(small_rmat)
    assert np.array_equal(resumed.member, uninterrupted.member)
    assert np.array_equal(resumed.load, uninterrupted.load)


def test_load_accepts_extensionless_path(tmp_path):
    state = LibraState(8, 2, seed=0)
    state.assign([0, 1], [1, 2])
    path = str(tmp_path / "st")
    state.save(path + ".npz")
    again = LibraState.load(path)
    assert again.num_assigned == 2


# -- quality / drift ---------------------------------------------------------------


def test_drift_trigger_on_cross_cluster_traffic():
    """Baseline on a cleanly-clustered graph, then stream only
    cross-cluster edges: replication must climb and trip the trigger."""
    g = sbm_graph([60, 60, 60, 60], p_in=0.3, p_out=0.0, seed=0)
    _, state = streaming_libra_partition(g, 4, seed=0)
    assert not state.should_repartition(0.05)
    rng = np.random.default_rng(0)
    # heavy cross-cluster stream: endpoints from different blocks
    u = rng.integers(0, 60, 3000)
    v = rng.integers(60, 240, 3000)
    state.assign(u, v)
    assert state.drift() > 0.05
    assert state.should_repartition(0.05)


def test_drift_zero_without_baseline():
    state = LibraState(10, 2, seed=0)
    state.assign([0, 1], [1, 2])
    assert state.drift() == 0.0
    assert not state.should_repartition()
    with pytest.raises(ValueError):
        state.should_repartition(-0.1)


def test_single_partition_stream(small_rmat):
    state = LibraState(small_rmat.num_vertices, 1, seed=0)
    asn = state.assign_graph(small_rmat)
    assert np.all(asn == 0)
    assert state.load[0] == small_rmat.num_edges
    assert state.replication_factor == 1.0  # every present vertex once


def test_endpoint_validation():
    state = LibraState(4, 2, seed=0)
    with pytest.raises(ValueError, match=r"\[0, 4\)"):
        state.assign([0], [4])
    with pytest.raises(ValueError, match=r"\[0, 4\)"):
        state.assign([-1], [0])
    with pytest.raises(ValueError):
        LibraState(4, 0)


def test_beats_replayed_quality_claim():
    """Streaming equals batch — so it inherits Libra's quality edge over
    random assignment (sanity anchor, mirrors the batch test)."""
    g = rmat_graph(scale=9, edge_factor=8.0, seed=0)
    from repro.partition.baselines import random_edge_partition

    _, state = streaming_libra_partition(g, 4, seed=0)
    rand_rf = replication_factor_of_assignment(
        g, random_edge_partition(g, 4, seed=0), 4
    )
    assert state.replication_factor < rand_rf
