"""Topology-aware serving refresh: update_edges exactness vs a full
precompute on the compacted graph, policy routing, HTTP endpoint."""

import dataclasses
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.dyngraph.serving_updates import EdgeUpdateStats, as_edge_pairs
from repro.serving import (
    IncrementalRefresher,
    InferenceEngine,
    PredictionServer,
    PredictionService,
    ResultCache,
)


def _mutations(ds, num_add=4, num_remove=3, seed=0):
    """A few random additions plus removals of real edges."""
    rng = np.random.default_rng(seed)
    n = ds.num_vertices
    add = [
        (int(rng.integers(n)), int(rng.integers(n))) for _ in range(num_add)
    ]
    src, dst, _ = ds.graph.to_coo()
    idx = rng.choice(src.size, size=num_remove, replace=False)
    # a graph edge may have parallel copies; dedupe the pairs so strict
    # removal never targets the same pair twice
    remove = list({(int(src[i]), int(dst[i])) for i in idx})
    return add, remove


def _truth_engine(ds, trainer, cfg, engine):
    """Fresh engine over the engine's *compacted* graph — the ground
    truth every refresh mode must match exactly."""
    ds2 = dataclasses.replace(ds, graph=engine.dynamic.csr())
    truth = InferenceEngine(ds2, trainer.model, cfg)
    truth.features[:] = engine.features
    return truth.precompute()


def assert_tables_equal(engine, truth):
    assert np.array_equal(engine.logits, truth.logits)
    for got, want in zip(engine.layer_inputs, truth.layer_inputs):
        assert np.array_equal(got, want)


# -- pair parsing -----------------------------------------------------------------


def test_as_edge_pairs_contract():
    src, dst = as_edge_pairs([(0, 1), (2, 3)], "add")
    assert src.tolist() == [0, 2] and dst.tolist() == [1, 3]
    for empty in (None, []):
        src, dst = as_edge_pairs(empty, "add")
        assert src.size == 0 and dst.size == 0
    with pytest.raises(ValueError, match="pairs"):
        as_edge_pairs([0, 1, 2], "add")
    with pytest.raises(ValueError, match="pairs"):
        as_edge_pairs([[0, 1, 2]], "add")


# -- exactness: incremental == full precompute on the compacted graph --------------


def test_incremental_add_matches_compacted_precompute(dyn_trained, dyn_engine):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    add, _ = _mutations(ds)
    stats = ref.update_edges(add=add)
    assert stats.mode == "incremental"
    assert stats.num_added == len(add) and stats.num_removed == 0
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_incremental_remove_matches_compacted_precompute(dyn_trained, dyn_engine):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    _, remove = _mutations(ds, seed=1)
    stats = ref.update_edges(remove=remove)
    assert stats.mode == "incremental"
    assert dyn_engine.graph.num_edges < ds.graph.num_edges
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_incremental_mixed_update_matches_compacted_precompute(
    dyn_trained, dyn_engine
):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    add, remove = _mutations(ds, seed=2)
    stats = ref.update_edges(add=add, remove=remove)
    assert stats.mode == "incremental"
    assert stats.num_seeds <= 2 * (len(add) + len(remove))
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_sequential_updates_reuse_dynamic_shadow(dyn_trained, dyn_engine):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    ref.update_edges(add=[(0, 1)])
    dyn = dyn_engine.dynamic
    assert dyn is not None
    ref.update_edges(add=[(1, 2)], remove=[(0, 1)])
    assert dyn_engine.dynamic is dyn  # one shadow graph for the lifetime
    assert ref.num_topology_updates == 2
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_update_through_auto_compaction_stays_exact(dyn_trained, dyn_engine):
    """A batch large enough to trip auto-compaction mid-update must land
    on exactly the same tables."""
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    rng = np.random.default_rng(3)
    n = ds.num_vertices
    budget = int(ds.graph.num_edges * 0.3)  # > default 0.25 threshold
    add = list(zip(rng.integers(0, n, budget).tolist(),
                   rng.integers(0, n, budget).tolist()))
    stats = ref.update_edges(add=add)
    assert stats.compacted
    assert dyn_engine.dynamic.num_delta_edges == 0
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_full_fallback_matches_compacted_precompute(dyn_trained, dyn_engine):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=0.0)
    add, remove = _mutations(ds, seed=4)
    stats = ref.update_edges(add=add, remove=remove)
    assert stats.mode == "full" and ref.num_full == 1
    assert stats.rows_recomputed == dyn_engine.num_vertices * dyn_engine.num_layers
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_norm_tracks_new_degrees(dyn_trained, dyn_engine):
    """Degree normalizers are topology state and must follow the update."""
    from repro.core.models import norm_from_degrees

    ds, _, _ = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    ref.update_edges(add=[(0, 1), (2, 1)])
    want = norm_from_degrees(
        dyn_engine.model_kind, dyn_engine.graph.in_degrees()
    )
    assert np.array_equal(dyn_engine.norm.data, want.data)


def test_update_edges_bumps_version_and_stats(dyn_trained, dyn_engine):
    v0 = dyn_engine.version
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    stats = ref.update_edges(add=[(3, 4)])
    assert isinstance(stats, EdgeUpdateStats)
    assert dyn_engine.version > v0
    assert stats.num_edges == dyn_engine.graph.num_edges
    assert len(stats.affected_per_layer) == dyn_engine.num_layers
    assert ref.stats()["topology_updates"] == 1
    # stats payload is JSON-serializable (the HTTP response body)
    json.dumps(stats.to_json())


def test_failed_update_is_atomic(dyn_trained, dyn_engine):
    """A batch that fails validation (bad add range, missing removal)
    must leave the shadow graph untouched — half-applied removals would
    be published by the *next* update without seeding their endpoints,
    silently breaking the incremental == compacted-precompute contract."""
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    src0, dst0, _ = ds.graph.to_coo()
    live_pair = (int(src0[0]), int(dst0[0]))
    into_0 = set(ds.graph.neighbors(0).tolist())
    absent_pair = next(
        (u, 0) for u in range(ds.num_vertices) if u not in into_0
    )
    bad_batches = [
        # removals valid, add out of range
        {"add": [(0, ds.num_vertices + 5)], "remove": [live_pair]},
        # adds valid, removal of a non-existent edge
        {"add": [(0, 1)], "remove": [absent_pair]},
    ]
    for batch in bad_batches:
        with pytest.raises(ValueError):
            ref.update_edges(add=batch["add"], remove=batch["remove"])
        dyn = dyn_engine.dynamic
        assert dyn is None or (dyn.num_removed == 0 and dyn.num_added == 0)
    # a subsequent valid incremental update still matches ground truth
    stats = ref.update_edges(add=[(0, 1)])
    assert stats.mode == "incremental"
    assert_tables_equal(dyn_engine, _truth_engine(ds, trainer, cfg, dyn_engine))


def test_empty_update_rejected(dyn_engine):
    ref = IncrementalRefresher(dyn_engine)
    with pytest.raises(ValueError, match="at least one edge"):
        ref.update_edges()
    with pytest.raises(ValueError, match="at least one edge"):
        ref.update_edges(add=[], remove=[])


# -- deferred mode -----------------------------------------------------------------


def test_deferred_topology_update_serves_fresh_rows(dyn_trained, dyn_engine):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=0.0, deferred=True)
    add, remove = _mutations(ds, seed=5)
    stats = ref.update_edges(add=add, remove=remove)
    assert stats.mode == "deferred"
    assert ref.stale.size == stats.affected_per_layer[-1]

    truth = _truth_engine(ds, trainer, cfg, dyn_engine)
    seeds = np.unique(
        np.asarray(add + remove, dtype=np.int64).ravel()
    )
    probe = np.concatenate([seeds[:4], [int(ref.stale[0])]])
    # the on-demand path samples the *new* topology at full fan-out
    assert np.array_equal(ref.predict(probe), truth.logits[probe])

    ref.resolve()
    assert ref.stale.size == 0
    assert_tables_equal(dyn_engine, truth)


def test_feature_update_after_deferred_topology_stays_deferred(
    dyn_trained, dyn_engine
):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=0.0, deferred=True)
    assert ref.update_edges(add=[(0, 1)]).mode == "deferred"
    ref.full_threshold = 1.0
    rng = np.random.default_rng(6)
    ids = np.array([2, 7])
    rows = rng.standard_normal((2, ds.feature_dim)).astype(np.float32)
    assert ref.update_features(ids, rows).mode == "deferred"
    truth = _truth_engine(ds, trainer, cfg, dyn_engine)
    probe = np.array([0, 1, 2, 7])
    assert np.array_equal(ref.predict(probe), truth.logits[probe])


# -- service composition -----------------------------------------------------------


def test_service_update_without_refresher_full_precompute(
    dyn_trained, dyn_engine
):
    ds, trainer, cfg = dyn_trained
    with PredictionService(dyn_engine, cache=ResultCache(32)) as svc:
        ids = np.array([0, 1, 2])
        before = svc.predict_logits(ids)  # fills the cache
        add, remove = _mutations(ds, seed=7)
        stats = svc.update_edges(add=add, remove=remove)
        assert stats.mode == "full"
        truth = _truth_engine(ds, trainer, cfg, dyn_engine)
        after = svc.predict_logits(ids)  # stale cache rows must be dropped
        assert np.array_equal(after, truth.logits[ids])
        assert not np.array_equal(after, before)


def test_service_update_routes_through_refresher(dyn_trained, dyn_engine):
    ds, trainer, cfg = dyn_trained
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    with PredictionService(dyn_engine, refresher=ref) as svc:
        stats = svc.update_edges(add=[(1, 3)])
        assert stats.mode == "incremental"
        assert ref.num_topology_updates == 1
        truth = _truth_engine(ds, trainer, cfg, dyn_engine)
        ids = np.array([1, 3, 5])
        assert np.array_equal(svc.predict_logits(ids), truth.logits[ids])


# -- HTTP endpoint -----------------------------------------------------------------


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.load(resp)


@pytest.fixture
def live_update_server(dyn_engine):
    ref = IncrementalRefresher(dyn_engine, full_threshold=1.0)
    svc = PredictionService(dyn_engine, cache=ResultCache(64), refresher=ref)
    server = PredictionServer(svc, port=0).start_background()
    host, port = server.address
    yield dyn_engine, f"http://{host}:{port}"
    server.shutdown()


def test_http_update_edges(live_update_server):
    engine, base = live_update_server
    before = np.array(engine.logits, copy=True)
    status, resp = _post(
        f"{base}/update_edges", {"add": [[0, 1], [2, 1]], "remove": []}
    )
    assert status == 200
    assert resp["status"] == "ok" and resp["mode"] == "incremental"
    assert resp["num_added"] == 2 and resp["num_removed"] == 0
    assert resp["num_edges"] == engine.graph.num_edges
    assert not np.array_equal(engine.logits, before)
    # served predictions reflect the mutated topology
    status, pred = _post(f"{base}/predict", {"vertices": [1]})
    assert status == 200
    assert pred["labels"] == [int(np.argmax(engine.logits[1]))]
    # and the engine stats now expose the dynamic shadow
    with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
        stats = json.load(resp)
    assert stats["engine"]["dynamic"]["num_added"] == 2
    assert stats["refresher"]["topology_updates"] == 1


def test_http_update_edges_validation(live_update_server):
    engine, base = live_update_server
    cases = [
        {},  # nothing to do
        {"add": [[0]]},  # not a pair
        {"add": [[0, 1, 2]]},  # not a pair
        {"add": "0,1"},  # not a list
        {"add": [[0, 1.5]]},  # non-integer endpoint
        {"add": [[0, engine.num_vertices]]},  # out of range
        {"remove": [[0, 1], [0, 1], [0, 1], [0, 1], [0, 1], [0, 1]]},  # over-remove
        {"edges": [[0, 1]]},  # unknown key
    ]
    for body in cases:
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base}/update_edges", body)
        assert err.value.code == 400, body
        assert "error" in json.load(err.value)
