"""Dyngraph fixtures: a briefly-trained engine to mutate topology under."""

from __future__ import annotations

import pytest

from repro.core import TrainConfig, Trainer
from repro.serving import InferenceEngine


@pytest.fixture(scope="session", params=["sage", "gcn"])
def dyn_trained(request, reddit_mini):
    """(dataset, trainer, cfg) after 3 epochs, per servable architecture."""
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=0,
        model=request.param,
    )
    trainer = Trainer(reddit_mini, cfg)
    trainer.fit(3)
    return reddit_mini, trainer, cfg


@pytest.fixture
def dyn_engine(dyn_trained):
    """Fresh engine per test (update_edges mutates graph and tables)."""
    ds, trainer, cfg = dyn_trained
    return InferenceEngine(ds, trainer.model, cfg).precompute()
