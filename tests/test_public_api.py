"""Public API stability: the documented entry points import and work."""

import numpy as np
import pytest


def test_top_level_imports():
    import repro

    assert repro.__version__
    assert callable(repro.load_dataset)
    assert callable(repro.aggregate)
    assert callable(repro.libra_partition)


def test_readme_quickstart_flow():
    """The README's quickstart snippet, verbatim in miniature."""
    from repro import load_dataset
    from repro.core import DistributedTrainer, Trainer, TrainConfig

    ds = load_dataset("ogbn-products", scale=0.04)
    cfg = TrainConfig(learning_rate=0.01, eval_every=0).for_dataset(ds.name)
    cfg.num_layers, cfg.hidden_features = 2, 8  # CI-sized
    result = Trainer(ds, cfg).fit(num_epochs=3)
    assert result.final_test_acc is not None

    dist = DistributedTrainer(ds, 2, algorithm="cd-5", config=cfg).fit(3)
    assert dist.final_test_acc is not None
    assert dist.total_comm_bytes >= 0


def test_all_subpackages_import():
    import repro.analysis
    import repro.cachesim
    import repro.comm
    import repro.core
    import repro.dyngraph
    import repro.featurestore
    import repro.graph
    import repro.kernels
    import repro.nn
    import repro.partition
    import repro.perf
    import repro.sampling
    import repro.serving

    for pkg in (
        repro.analysis,
        repro.graph,
        repro.dyngraph,
        repro.featurestore,
        repro.kernels,
        repro.cachesim,
        repro.partition,
        repro.comm,
        repro.nn,
        repro.core,
        repro.perf,
        repro.sampling,
        repro.serving,
    ):
        assert pkg.__doc__, f"{pkg.__name__} missing package docstring"
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg.__name__}.{name} missing"


def test_core_exports_checkpointing():
    """Satellite of PR 3: checkpoint helpers are part of the core API."""
    from repro.core import load_checkpoint, peek_checkpoint, save_checkpoint
    from repro.nn import GraphSAGE

    assert callable(save_checkpoint) and callable(load_checkpoint)
    import tempfile, os

    model = GraphSAGE(4, 8, 2, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "api.npz")
        save_checkpoint(path, model, epoch=5)
        assert peek_checkpoint(path)[0] == 5
        epoch, _ = load_checkpoint(path, GraphSAGE(4, 8, 2, seed=1))
        assert epoch == 5


def test_serving_public_surface():
    from repro.serving import EdgeUpdateStats, InferenceEngine, PredictionService

    assert callable(InferenceEngine.from_checkpoint)
    assert hasattr(PredictionService, "predict")
    assert hasattr(PredictionService, "update_edges")
    assert hasattr(PredictionService, "update_features")
    assert hasattr(EdgeUpdateStats, "to_json")


def test_serving_frontend_public_surface():
    """Satellite of PR 6: the traffic-hardening layer's documented names."""
    from repro.serving import (
        RequestRejected,
        RequestTimeout,
        ServiceDraining,
        ServingFrontend,
        ServingMetrics,
        ServingUnavailable,
        build_schedule,
        bursty_arrivals,
        poisson_arrivals,
        run_open_loop,
    )

    for exc in (RequestRejected, RequestTimeout, ServiceDraining):
        assert issubclass(exc, ServingUnavailable)
        assert exc.status in (429, 503)
    assert hasattr(ServingFrontend, "call") and hasattr(ServingFrontend, "drained")
    assert hasattr(ServingMetrics, "snapshot")
    for fn in (poisson_arrivals, bursty_arrivals, build_schedule, run_open_loop):
        assert callable(fn)


def test_dyngraph_public_surface():
    """Satellite of PR 5: the streaming subsystem's documented names."""
    import numpy as np

    from repro.dyngraph import DynamicGraph, LibraState, streaming_libra_partition
    # re-exported where users look for them
    from repro.graph import DynamicGraph as FromGraph
    from repro.partition import LibraState as FromPartition

    assert FromGraph is DynamicGraph and FromPartition is LibraState
    from repro.graph import from_edge_list

    dyn = DynamicGraph(from_edge_list([(0, 1), (1, 2)], num_vertices=3))
    dyn.add_edge(2, 0)
    assert dyn.num_edges == 3
    state = LibraState(3, 2, seed=0)
    assert state.assign([0, 1], [1, 2]).shape == (2,)
    assert callable(streaming_libra_partition)
    assert np.array_equal(dyn.csr().in_degrees(), dyn.in_degrees())


def test_featurestore_public_surface():
    """Satellite of PR 7: the feature-store subsystem's documented names."""
    import tempfile

    from repro.featurestore import (
        FeatureLayoutError,
        FeatureStore,
        HotSetCache,
        PolicyDecision,
        choose_policy,
        open_feature_layout,
        predict_lru_hit_rate,
        predict_static_hit_rate,
        write_feature_layout,
    )
    # layout persistence re-exported next to save_graph/load_graph
    from repro.graph import load_feature_layout, save_feature_layout

    assert issubclass(FeatureLayoutError, ValueError)
    for fn in (
        choose_policy, predict_static_hit_rate, predict_lru_hit_rate,
        write_feature_layout, open_feature_layout,
        save_feature_layout, load_feature_layout,
    ):
        assert callable(fn)
    assert hasattr(HotSetCache, "gather") and hasattr(PolicyDecision, "to_json")

    X = np.arange(12, dtype=np.float32).reshape(6, 2)
    assert FeatureStore.resident(X).matrix() is X
    with tempfile.TemporaryDirectory() as tmp:
        save_feature_layout(tmp, X)
        loaded, manifest = load_feature_layout(tmp)
        np.testing.assert_array_equal(np.asarray(loaded), X)
        assert manifest["shape"] == (6, 2)
        store = FeatureStore.open(tmp, degrees=np.arange(6.0))
        np.testing.assert_array_equal(store.gather([5, 0]), X[[5, 0]])


def test_nn_exports_all_models():
    from repro import nn

    for model in ("GraphSAGE", "RGCN", "GCN", "GIN", "GAT"):
        assert hasattr(nn, model)


def test_dataclasses_reprs():
    """Key result objects stringify without error (logging paths)."""
    from repro import load_dataset
    from repro.partition import build_partitions, libra_partition, partition_stats

    ds = load_dataset("reddit", scale=0.04)
    parted = build_partitions(ds.graph, libra_partition(ds.graph, 2), 2)
    assert "rf=" in partition_stats(parted).row()
    assert "CSRGraph" in repr(ds.graph)
