"""Shared fixtures: small deterministic graphs and datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat_graph, sbm_graph


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """5 vertices, 7 edges, one high-degree destination, one isolated."""
    return from_edge_list(
        [(0, 1), (2, 1), (3, 1), (0, 3), (1, 0), (3, 0), (1, 2)],
        num_vertices=5,
    )


@pytest.fixture
def line_graph() -> CSRGraph:
    """0 -> 1 -> 2 -> 3 directed chain."""
    return from_edge_list([(0, 1), (1, 2), (2, 3)], num_vertices=4)


@pytest.fixture
def small_rmat() -> CSRGraph:
    return rmat_graph(scale=8, edge_factor=8.0, seed=3)


@pytest.fixture
def small_sbm() -> CSRGraph:
    return sbm_graph([50, 50, 50], p_in=0.2, p_out=0.01, seed=7)


@pytest.fixture
def small_features(small_rmat) -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.standard_normal((small_rmat.num_src, 8)).astype(np.float32)


@pytest.fixture(scope="session")
def reddit_mini():
    """Small Reddit stand-in shared across tests (session-cached)."""
    return load_dataset("reddit", scale=0.08, seed=1)


@pytest.fixture(scope="session")
def products_mini():
    return load_dataset("ogbn-products", scale=0.05, seed=1)
