"""Byte-counter conservation across both execution backends.

Every point-to-point byte a rank sends is a byte some rank receives, and
collectives record matched (sent, received) volumes — so at any quiescent
point ``sum(bytes_sent) == sum(bytes_received)`` must hold, *including*
while delayed DRPA messages are still spanning epochs in flight (the
counters record at post time, on both backends).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm import ShmWorld, World
from repro.core import DistributedTrainer, TrainConfig
from repro.graph.datasets import load_dataset

#: (src, dst, words, delay) drawn over a 3-rank world, 3 epochs
message_scripts = st.lists(
    st.tuples(
        st.integers(0, 2),  # epoch posted
        st.integers(0, 2),  # src
        st.integers(0, 2),  # dst
        st.integers(1, 64),  # float32 words
        st.integers(0, 4),  # delay (may span past the last epoch)
    ),
    min_size=0,
    max_size=40,
)


def _assert_conserved(counters):
    assert sum(counters.bytes_sent) == sum(counters.bytes_received)


@given(script=message_scripts)
@settings(max_examples=25, deadline=None)
def test_sim_counters_conserved(script):
    world = World(3)
    comms = world.communicators()
    for epoch in range(3):
        for e, src, dst, words, delay in script:
            if e == epoch:
                comms[src].isend(
                    dst, np.zeros(words, dtype=np.float32), delay=delay
                )
        # drain some mailboxes mid-flight: draining must not disturb the
        # posted-time accounting
        comms[epoch % 3].recv_ready()
        world.advance_epoch()
        _assert_conserved(world.counters)
    _assert_conserved(world.counters)


@given(script=message_scripts)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_shm_counters_conserved(script):
    def worker(comm):
        for epoch in range(3):
            for e, src, dst, words, delay in script:
                if e == epoch and src == comm.rank:
                    comm.isend(
                        dst, np.zeros(words, dtype=np.float32), delay=delay
                    )
            comm.barrier()
            if comm.rank == epoch % 3:
                comm.recv_ready()
            comm.advance_epoch()
            comm.barrier()
        return None

    world = ShmWorld(3, timeout=30.0)
    world.run(worker)
    _assert_conserved(world.counters)


@pytest.mark.parametrize("backend", ["sim", "shm"])
def test_trainer_counters_conserved_with_delayed_drpa(backend):
    """cd-2 keeps aggregates in flight across epoch boundaries; the
    conservation law must hold on the live counters regardless."""
    ds = load_dataset("reddit", scale=0.05, seed=1)
    cfg = TrainConfig(
        num_layers=2, hidden_features=16, learning_rate=0.01,
        eval_every=0, seed=0,
    )
    trainer = DistributedTrainer(
        ds, 3, algorithm="cd-2", config=cfg, backend=backend
    )
    result = trainer.fit(num_epochs=5)
    counters = trainer.world.counters
    _assert_conserved(counters)
    assert result.peak_inflight_bytes > 0, "cd-2 must have messages in flight"
    assert counters.total_bytes > 0
