"""The multi-process shared-memory backend.

Covers the ``Communicator`` surface parity with the simulator (p2p with
epoch-delayed delivery, deterministic drain order, collectives and their
byte accounting), the shared-memory payload transport, and the failure
model (deadlocks fail fast, worker exceptions propagate).
"""

import numpy as np
import pytest

from repro.comm import (
    BACKENDS,
    ShmWorld,
    World,
    all_reduce,
    all_to_all,
    create_world,
    validate_backend,
)
from repro.comm.shm import SHM_PAYLOAD_THRESHOLD, ShmWorldView

TIMEOUT = 30.0


# -- registry -----------------------------------------------------------------


def test_backend_registry():
    assert set(BACKENDS) == {"sim", "shm"}
    assert validate_backend("sim") == "sim"
    with pytest.raises(KeyError, match="unknown execution backend"):
        validate_backend("mpi")
    assert isinstance(create_world("sim", 2), World)
    assert isinstance(create_world("shm", 2, timeout=TIMEOUT), ShmWorld)


def test_world_validation():
    with pytest.raises(ValueError):
        ShmWorld(0)
    with pytest.raises(ValueError):
        ShmWorld(2, timeout=0)
    with pytest.raises(ValueError):
        ShmWorld(2, timeout=TIMEOUT).communicator(5)


# -- point-to-point ------------------------------------------------------------


@pytest.mark.parametrize("num_ranks", [2, 4])
def test_p2p_roundtrip_with_delay(num_ranks):
    def worker(comm):
        peer = (comm.rank + 1) % comm.size
        comm.isend(peer, np.full((3,), comm.rank, dtype=np.float32), tag="t", delay=1)
        comm.barrier()
        early = len(comm.recv_ready(tag="t"))
        pending = comm.pending_count(tag="t")
        comm.advance_epoch()
        msgs = comm.recv_ready(tag="t")
        return {
            "early": early,
            "pending": pending,
            "srcs": [m.src for m in msgs],
            "vals": [float(m.payload[0]) for m in msgs],
            "epochs": [(m.post_epoch, m.deliver_epoch) for m in msgs],
        }

    world = ShmWorld(num_ranks, timeout=TIMEOUT)
    results = world.run(worker)
    for rank, res in enumerate(results):
        src = (rank - 1) % num_ranks
        assert res["early"] == 0, "delay=1 message must be invisible at epoch 0"
        assert res["pending"] == 1
        assert res["srcs"] == [src]
        assert res["vals"] == [float(src)]
        assert res["epochs"] == [(0, 1)]
    assert world.in_flight_bytes() == 0


def test_tag_filtering_keeps_unmatched_messages():
    def worker(comm):
        peer = (comm.rank + 1) % comm.size
        comm.isend(peer, np.zeros(1), tag="a")
        comm.isend(peer, np.ones(1), tag="b")
        comm.barrier()
        got_a = [m.tag for m in comm.recv_ready(tag="a")]
        got_b = [m.tag for m in comm.recv_ready(tag="b")]
        leftover = comm.recv_ready()
        return got_a, got_b, len(leftover)

    for got_a, got_b, leftover in ShmWorld(2, timeout=TIMEOUT).run(worker):
        assert got_a == ["a"] and got_b == ["b"] and leftover == 0


def test_recv_order_matches_lockstep_fifo():
    """Ripe messages drain ordered by (post_epoch, src, send order), the
    order the lockstep simulator's FIFO mailboxes produce — regardless
    of multi-process arrival order."""

    def worker(comm):
        if comm.rank == 0:
            comm.barrier()
            comm.advance_epoch()
            comm.barrier()
            comm.advance_epoch()
            comm.barrier()
            msgs = comm.recv_ready(tag="m")
            return [(m.post_epoch, m.src, float(m.payload[0])) for m in msgs]
        # each sender posts two messages per epoch, for two epochs
        for epoch in range(2):
            for k in range(2):
                comm.isend(0, np.full((1,), 10 * epoch + k), tag="m")
            comm.barrier()
            comm.advance_epoch()
        comm.barrier()
        return None

    results = ShmWorld(3, timeout=TIMEOUT).run(worker)
    expected = [
        (epoch, src, float(10 * epoch + k))
        for epoch in range(2)
        for src in (1, 2)
        for k in range(2)
    ]
    assert results[0] == expected


def test_large_payload_rides_shared_memory():
    shape = (SHM_PAYLOAD_THRESHOLD // 4, 2)  # well above the threshold

    def worker(comm):
        rng = np.random.default_rng(comm.rank)
        data = rng.standard_normal(shape).astype(np.float32)
        comm.isend(1 - comm.rank, data, tag="big")
        comm.barrier()
        (msg,) = comm.recv_ready(tag="big")
        expected = np.random.default_rng(msg.src).standard_normal(shape).astype(
            np.float32
        )
        return bool(np.array_equal(msg.payload, expected))

    assert ShmWorld(2, timeout=TIMEOUT).run(worker) == [True, True]


def test_payload_snapshot_at_post_time():
    """Mutating the send buffer after isend must not corrupt the wire."""

    def worker(comm):
        buf = np.full((4,), float(comm.rank))
        comm.isend(1 - comm.rank, buf, tag="s")
        buf[:] = -1.0
        comm.barrier()
        (msg,) = comm.recv_ready(tag="s")
        return float(msg.payload[0])

    assert ShmWorld(2, timeout=TIMEOUT).run(worker) == [1.0, 0.0]


# -- collectives ---------------------------------------------------------------


@pytest.mark.parametrize("num_ranks", [2, 4])
@pytest.mark.parametrize("op", ["sum", "mean", "max", "min"])
def test_allreduce_matches_sim(num_ranks, op):
    rng = np.random.default_rng(0)
    inputs = [rng.standard_normal((5, 3)).astype(np.float32) for _ in range(num_ranks)]

    def worker(comm):
        return comm.all_reduce(inputs[comm.rank], op=op)

    shm_world = ShmWorld(num_ranks, timeout=TIMEOUT)
    shm_out = shm_world.run(worker)
    sim_world = World(num_ranks)
    sim_out = all_reduce(sim_world, inputs, op=op)
    for a, b in zip(shm_out, sim_out):
        np.testing.assert_array_equal(a, b)  # bit-identical reduction
    shm_c, sim_c = shm_world.counters, sim_world.counters
    assert shm_c.bytes_sent == sim_c.bytes_sent
    assert shm_c.bytes_received == sim_c.bytes_received
    assert shm_c.collective_calls == sim_c.collective_calls


@pytest.mark.parametrize("num_ranks", [2, 4])
def test_alltoallv_matches_sim(num_ranks):
    rng = np.random.default_rng(1)
    send = [
        [rng.standard_normal((i + j + 1,)) for j in range(num_ranks)]
        for i in range(num_ranks)
    ]

    def worker(comm):
        return comm.all_to_allv(send[comm.rank])

    shm_world = ShmWorld(num_ranks, timeout=TIMEOUT)
    shm_out = shm_world.run(worker)
    sim_world = World(num_ranks)
    sim_out = all_to_all(sim_world, send)
    for rank in range(num_ranks):
        for src in range(num_ranks):
            np.testing.assert_array_equal(shm_out[rank][src], sim_out[rank][src])
    shm_c, sim_c = shm_world.counters, sim_world.counters
    assert shm_c.bytes_sent == sim_c.bytes_sent
    assert shm_c.bytes_received == sim_c.bytes_received
    assert shm_c.collective_calls == sim_c.collective_calls


def test_broadcast():
    payload = np.arange(6, dtype=np.float64).reshape(2, 3)

    def worker(comm):
        return comm.broadcast(payload if comm.rank == 1 else None, root=1)

    world = ShmWorld(3, timeout=TIMEOUT)
    for out in world.run(worker):
        np.testing.assert_array_equal(out, payload)
    c = world.counters
    assert c.bytes_sent[1] == payload.nbytes * 2
    assert c.bytes_received == [payload.nbytes, 0, payload.nbytes]
    assert c.collective_calls == {"broadcast": 1}


def test_interleaved_collectives_and_p2p():
    """Back-to-back collectives of different kinds must not cross-talk
    even when ranks race ahead (the sequence-number rendezvous)."""

    def worker(comm):
        out = []
        for i in range(5):
            comm.isend(1 - comm.rank, np.full((2,), float(i)), tag=("p", i))
            total = comm.all_reduce(np.full((2,), float(comm.rank + i)))
            recv = comm.all_to_allv(
                [np.full((1,), float(10 * comm.rank + q)) for q in range(comm.size)]
            )
            out.append((float(total[0]), [float(r[0]) for r in recv]))
        comm.barrier()
        got = [len(comm.recv_ready(tag=("p", i))) for i in range(5)]
        return out, got

    results = ShmWorld(2, timeout=TIMEOUT).run(worker)
    for rank, (out, got) in enumerate(results):
        for i, (total, recv) in enumerate(out):
            assert total == float((0 + i) + (1 + i))
            assert recv == [float(10 * q + rank) for q in range(2)]
        assert got == [1] * 5


# -- world view (DRPA integration) --------------------------------------------


def test_world_view_guards_foreign_ranks():
    def worker(comm):
        view = ShmWorldView(comm)
        comms = view.communicators()
        own_ok = comms[comm.rank] is comm
        try:
            comms[1 - comm.rank].isend(0, np.zeros(1))
            foreign_raises = False
        except RuntimeError:
            foreign_raises = True
        return own_ok, foreign_raises, view.num_ranks, view.epoch

    assert ShmWorld(2, timeout=TIMEOUT).run(worker) == [
        (True, True, 2, 0),
        (True, True, 2, 0),
    ]


# -- failure model -------------------------------------------------------------


def test_worker_exception_propagates():
    def worker(comm):
        if comm.rank == 1:
            raise ValueError("boom in worker")
        return comm.rank

    with pytest.raises(RuntimeError, match="boom in worker"):
        ShmWorld(2, timeout=TIMEOUT).run(worker)


def test_timeout_bounds_waits_not_total_runtime():
    """The world timeout caps individual blocking waits, not the whole
    run: a healthy fit longer than the timeout must complete."""
    import time

    def worker(comm):
        for _ in range(4):
            comm.barrier()
            time.sleep(0.4)
        return comm.rank

    assert ShmWorld(2, timeout=1.0).run(worker) == [0, 1]


def test_hard_killed_worker_detected():
    """A worker that dies without reporting (SIGKILL/OOM) fails the run
    with a diagnosis instead of hanging the parent."""
    import os
    import signal

    def worker(comm):
        if comm.rank == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        comm.barrier()
        return comm.rank

    with pytest.raises(RuntimeError, match="died without reporting"):
        ShmWorld(2, timeout=3.0).run(worker)


def test_barrier_deadlock_fails_fast():
    """A rank skipping a barrier must fail the run within the timeout
    instead of hanging the suite (the CI contract for shm jobs)."""

    def worker(comm):
        if comm.rank == 0:
            comm.barrier()  # rank 1 never arrives
        return comm.rank

    with pytest.raises(RuntimeError):
        ShmWorld(2, timeout=2.0).run(worker)


# -- counter parity on a scripted exchange -------------------------------------


def _exchange_script(num_ranks):
    """A deterministic mixed script: p2p at several delays + collectives."""
    rng = np.random.default_rng(42)
    sends = []
    for epoch in range(3):
        for src in range(num_ranks):
            for dst in range(num_ranks):
                if src == dst:
                    continue
                size = int(rng.integers(1, 50))
                delay = int(rng.integers(0, 3))
                sends.append((epoch, src, dst, size, delay))
    return sends


@pytest.mark.parametrize("num_ranks", [2, 4])
def test_scripted_exchange_counters_match_sim(num_ranks):
    sends = _exchange_script(num_ranks)

    def worker(comm):
        for epoch in range(3):
            for e, src, dst, size, delay in sends:
                if e == epoch and src == comm.rank:
                    comm.isend(dst, np.zeros(size, dtype=np.float32), delay=delay)
            comm.all_reduce(np.ones((4, 2), dtype=np.float32))
            comm.barrier()
            comm.recv_ready()
            comm.advance_epoch()
        return None

    shm_world = ShmWorld(num_ranks, timeout=TIMEOUT)
    shm_world.run(worker)

    sim_world = World(num_ranks)
    comms = sim_world.communicators()
    for epoch in range(3):
        for e, src, dst, size, delay in sends:
            if e == epoch:
                comms[src].isend(dst, np.zeros(size, dtype=np.float32), delay=delay)
        all_reduce(sim_world, [np.ones((4, 2), dtype=np.float32)] * num_ranks)
        for rank in range(num_ranks):
            comms[rank].recv_ready()
        sim_world.advance_epoch()

    shm_c, sim_c = shm_world.counters, sim_world.counters
    assert shm_c.bytes_sent == sim_c.bytes_sent
    assert shm_c.bytes_received == sim_c.bytes_received
    assert shm_c.messages_sent == sim_c.messages_sent
    assert shm_c.collective_calls == sim_c.collective_calls
