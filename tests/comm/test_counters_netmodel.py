"""Byte counters and the network cost model."""

import numpy as np
import pytest

from repro.comm import CommCounters, HDR_200G, NetworkModel, World
from repro.comm.netmodel import ETH_10G


class TestCounters:
    def test_snapshot_delta(self):
        w = World(2)
        before = w.counters.snapshot()
        w.communicator(0).isend(1, np.zeros(25, dtype=np.float64))
        delta = w.counters.delta_since(before)
        assert delta.bytes_sent[0] == 200
        assert delta.bytes_sent[1] == 0

    def test_total_and_max(self):
        c = CommCounters(2)
        c.record_p2p(0, 1, 100)
        c.record_p2p(1, 0, 50)
        assert c.total_bytes == 150
        assert c.max_rank_bytes == max(100 + 50, 50 + 100)

    def test_collective_accounting(self):
        c = CommCounters(2)
        c.record_collective("all_reduce", [(10, 10), (10, 10)])
        assert c.collective_calls["all_reduce"] == 1
        assert c.bytes_sent == [10, 10]

    def test_reset(self):
        c = CommCounters(2)
        c.record_p2p(0, 1, 5)
        c.reset()
        assert c.total_bytes == 0


class TestNetworkModel:
    def test_p2p_time_monotone_in_bytes(self):
        assert HDR_200G.p2p_time(1e9) > HDR_200G.p2p_time(1e6)

    def test_latency_floor(self):
        assert HDR_200G.p2p_time(0) == HDR_200G.latency_s

    def test_hdr_faster_than_eth(self):
        nbytes = 1e8
        assert HDR_200G.p2p_time(nbytes) < ETH_10G.p2p_time(nbytes)

    def test_epoch_comm_time_zero_single_rank(self):
        c = CommCounters(1)
        assert HDR_200G.epoch_comm_time(c) == 0.0

    def test_epoch_comm_time_uses_busiest_rank(self):
        c = CommCounters(2)
        c.record_p2p(0, 1, 10**9)
        t = HDR_200G.epoch_comm_time(c)
        expected_bw = HDR_200G.bandwidth_Bps * HDR_200G.collective_efficiency
        assert t >= 10**9 / expected_bw  # at least the busy link's volume

    def test_collective_efficiency_derates(self):
        full = NetworkModel("x", 0.0, 1e9, collective_efficiency=1.0)
        half = NetworkModel("x", 0.0, 1e9, collective_efficiency=0.5)
        assert half.collective_time(1e6) == 2 * full.collective_time(1e6)
