"""Collective operations."""

import numpy as np
import pytest

from repro.comm import World, all_gather, all_reduce, all_to_all, broadcast
from repro.comm.collectives import barrier


class TestAllReduce:
    def test_sum(self):
        w = World(3)
        arrays = [np.full(4, float(r)) for r in range(3)]
        out = all_reduce(w, arrays, op="sum")
        for o in out:
            assert np.array_equal(o, np.full(4, 3.0))

    @pytest.mark.parametrize("op,expected", [("mean", 1.0), ("max", 2.0), ("min", 0.0)])
    def test_other_ops(self, op, expected):
        w = World(3)
        arrays = [np.full(2, float(r)) for r in range(3)]
        out = all_reduce(w, arrays, op=op)
        assert np.all(out[0] == expected)

    def test_output_independent_copies(self):
        w = World(2)
        out = all_reduce(w, [np.zeros(2), np.zeros(2)])
        out[0][0] = 99
        assert out[1][0] == 0

    def test_shape_mismatch(self):
        w = World(2)
        with pytest.raises(ValueError, match="identical shapes"):
            all_reduce(w, [np.zeros(2), np.zeros(3)])

    def test_wrong_rank_count(self):
        w = World(3)
        with pytest.raises(ValueError, match="per rank"):
            all_reduce(w, [np.zeros(1)] * 2)

    def test_unknown_op(self):
        w = World(2)
        with pytest.raises(ValueError):
            all_reduce(w, [np.zeros(1)] * 2, op="median")

    def test_ring_byte_accounting(self):
        w = World(4)
        all_reduce(w, [np.zeros(100, dtype=np.float32)] * 4)
        expected = int(2 * 3 / 4 * 400)
        assert w.counters.bytes_sent[0] == expected

    def test_single_rank_free(self):
        w = World(1)
        all_reduce(w, [np.ones(5)])
        assert w.counters.total_bytes == 0


class TestAllToAll:
    def test_transpose_semantics(self):
        w = World(3)
        send = [
            [np.array([i * 10 + j]) for j in range(3)] for i in range(3)
        ]
        recv = all_to_all(w, send)
        for j in range(3):
            for i in range(3):
                assert recv[j][i][0] == i * 10 + j

    def test_variable_sizes(self):
        w = World(2)
        send = [
            [np.zeros(0), np.ones(5)],
            [np.ones(3), np.zeros(0)],
        ]
        recv = all_to_all(w, send)
        assert recv[1][0].size == 5
        assert recv[0][1].size == 3

    def test_bad_matrix(self):
        w = World(2)
        with pytest.raises(ValueError, match="PxP"):
            all_to_all(w, [[np.zeros(1)], [np.zeros(1)]])


class TestOthers:
    def test_all_gather(self):
        w = World(3)
        out = all_gather(w, [np.array([r]) for r in range(3)])
        for r in range(3):
            assert [int(a[0]) for a in out[r]] == [0, 1, 2]

    def test_broadcast(self):
        w = World(4)
        out = broadcast(w, np.arange(3), root=1)
        assert all(np.array_equal(o, np.arange(3)) for o in out)
        assert w.counters.bytes_sent[1] > 0
        assert w.counters.bytes_sent[0] == 0

    def test_barrier_records(self):
        w = World(2)
        barrier(w)
        assert w.counters.collective_calls["barrier"] == 1
