"""Low-precision payload codec and its DRPA integration."""

import numpy as np
import pytest

from repro.comm.compression import PayloadCodec
from repro.core import DistributedTrainer, TrainConfig


class TestCodec:
    def test_none_is_identity(self):
        c = PayloadCodec("none")
        x = np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32)
        assert np.array_equal(c.decode(c.encode(x)), x)
        assert c.ratio == 4.0

    @pytest.mark.parametrize("mode", ["fp16", "bf16"])
    def test_halves_wire_size(self, mode):
        c = PayloadCodec(mode)
        x = np.ones((8, 4), dtype=np.float32)
        assert c.encode(x).nbytes == x.nbytes // 2
        assert c.ratio == 2.0

    def test_fp16_roundtrip_accuracy(self):
        c = PayloadCodec("fp16")
        x = np.random.default_rng(1).standard_normal((64, 8)).astype(np.float32)
        assert c.roundtrip_error(x) < 1e-2

    def test_bf16_roundtrip_accuracy(self):
        c = PayloadCodec("bf16")
        x = np.random.default_rng(2).standard_normal((64, 8)).astype(np.float32)
        assert c.roundtrip_error(x) < 2e-2

    def test_bf16_preserves_float32_range(self):
        c = PayloadCodec("bf16")
        x = np.array([1e30, -1e-30, 1e38], dtype=np.float32)
        back = c.decode(c.encode(x))
        assert np.all(np.isfinite(back))
        assert np.allclose(back, x, rtol=0.01)

    def test_fp16_range_clips(self):
        # fp16 overflows above ~65504 — documents the tradeoff vs bf16
        c = PayloadCodec("fp16")
        back = c.decode(c.encode(np.array([1e6], dtype=np.float32)))
        assert np.isinf(back[0])

    def test_exact_values_survive(self):
        for mode in ("fp16", "bf16"):
            c = PayloadCodec(mode)
            x = np.array([0.0, 1.0, -2.0, 0.5], dtype=np.float32)
            assert np.array_equal(c.decode(c.encode(x)), x)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            PayloadCodec("int8")


class TestCompressedTraining:
    CFG = dict(num_layers=2, hidden_features=16, learning_rate=0.01,
               eval_every=0, seed=0)

    def test_comm_volume_halved(self, reddit_mini):
        plain = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0",
            config=TrainConfig(**self.CFG),
        )
        comp = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0",
            config=TrainConfig(**self.CFG, compression="bf16"),
        )
        b_plain = plain.train_epoch(0).comm_bytes
        b_comp = comp.train_epoch(0).comm_bytes
        # aggregate payloads halve; gradient sync and AllReduce stay fp32
        assert b_comp < b_plain

    @pytest.mark.parametrize("mode", ["fp16", "bf16"])
    def test_training_converges_compressed(self, reddit_mini, mode):
        cfg = TrainConfig(**self.CFG, compression=mode)
        res = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-5", config=cfg
        ).fit(num_epochs=20)
        assert res.final_loss < res.loss_curve()[0]

    def test_compressed_cd0_close_to_exact(self, reddit_mini):
        exact = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0", config=TrainConfig(**self.CFG)
        ).fit(num_epochs=10)
        comp = DistributedTrainer(
            reddit_mini, 3, algorithm="cd-0",
            config=TrainConfig(**self.CFG, compression="bf16"),
        ).fit(num_epochs=10)
        np.testing.assert_allclose(
            comp.loss_curve(), exact.loss_curve(), rtol=0.05, atol=0.02
        )
