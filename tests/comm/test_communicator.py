"""World / Communicator semantics."""

import numpy as np
import pytest

from repro.comm import World


class TestWorld:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_epoch_clock(self):
        w = World(2)
        assert w.epoch == 0
        assert w.advance_epoch() == 1
        assert w.epoch == 1
        w.reset_epoch()
        assert w.epoch == 0

    def test_communicator_handles(self):
        w = World(3)
        comms = w.communicators()
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)

    def test_rank_bounds(self):
        w = World(2)
        with pytest.raises(ValueError):
            w.communicator(2)


class TestPointToPoint:
    def test_send_recv_same_epoch(self):
        w = World(2)
        w.communicator(0).isend(1, np.arange(4), tag="x", delay=0)
        msgs = w.communicator(1).recv_ready(tag="x")
        assert len(msgs) == 1
        assert np.array_equal(msgs[0].payload, np.arange(4))

    def test_delayed_until_epoch(self):
        w = World(2)
        w.communicator(0).isend(1, np.ones(2), tag="d", delay=2)
        assert w.communicator(1).recv_ready(tag="d") == []
        w.advance_epoch()
        assert w.communicator(1).recv_ready(tag="d") == []
        w.advance_epoch()
        assert len(w.communicator(1).recv_ready(tag="d")) == 1

    def test_tag_filtering(self):
        w = World(2)
        c0 = w.communicator(0)
        c0.isend(1, np.zeros(1), tag="a")
        c0.isend(1, np.zeros(1), tag="b")
        got_a = w.communicator(1).recv_ready(tag="a")
        assert len(got_a) == 1 and got_a[0].tag == "a"
        assert len(w.communicator(1).recv_ready(tag="b")) == 1

    def test_drain_removes(self):
        w = World(2)
        w.communicator(0).isend(1, np.zeros(1), tag="x")
        assert len(w.communicator(1).recv_ready(tag="x")) == 1
        assert w.communicator(1).recv_ready(tag="x") == []

    def test_pending_count(self):
        w = World(2)
        w.communicator(0).isend(1, np.zeros(1), tag="x", delay=3)
        assert w.communicator(1).pending_count(tag="x") == 1

    def test_bytes_counted(self):
        w = World(2)
        payload = np.zeros(10, dtype=np.float32)
        w.communicator(0).isend(1, payload)
        assert w.counters.bytes_sent[0] == 40
        assert w.counters.bytes_received[1] == 40

    def test_self_send_free(self):
        w = World(2)
        w.communicator(0).isend(0, np.zeros(10))
        assert w.counters.bytes_sent[0] == 0
        assert len(w.communicator(0).recv_ready()) == 1

    def test_fifo_order(self):
        w = World(2)
        for i in range(3):
            w.communicator(0).isend(1, np.array([i]))
        msgs = w.communicator(1).recv_ready()
        assert [int(m.payload[0]) for m in msgs] == [0, 1, 2]
