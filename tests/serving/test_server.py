"""PredictionService composition and the HTTP endpoint."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    IncrementalRefresher,
    PredictionServer,
    PredictionService,
    ResultCache,
)


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.load(resp)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.load(resp)


# -- service composition ----------------------------------------------------------


def test_service_matches_engine(engine):
    ids = np.array([4, 9, 4, 0])
    with PredictionService(engine) as svc:
        assert np.array_equal(svc.predict_logits(ids), engine.logits[ids])
        assert np.array_equal(svc.predict(ids), np.argmax(engine.logits[ids], axis=1))


def test_service_cache_and_batcher_preserve_results(engine):
    ids = np.array([7, 3, 7, 11])
    with PredictionService(
        engine, cache=ResultCache(8), batch=True, max_batch=16, max_wait_ms=0.5
    ) as svc:
        first = svc.predict_logits(ids)
        second = svc.predict_logits(ids)  # fully cached now
        assert np.array_equal(first, engine.logits[ids])
        assert np.array_equal(second, first)
        assert svc.cache.hits >= 4
        topk_classes, _ = svc.topk(ids, k=2)
        assert topk_classes.shape == (4, 2)
    stats = svc.stats()
    assert stats["requests"] == 3
    assert stats["cache"]["hits"] == svc.cache.hits
    assert stats["batcher"]["requests"] >= 1


def test_service_routes_through_refresher(trained, engine):
    ds, _, _ = trained
    ref = IncrementalRefresher(engine, full_threshold=0.0, deferred=True)
    rng = np.random.default_rng(5)
    ids = np.array([2, 8])
    ref.update_features(ids, rng.standard_normal((2, ds.feature_dim)).astype(np.float32))
    with PredictionService(engine, refresher=ref) as svc:
        got = svc.predict_logits(ids)
    # served rows reflect the update even though the tables are stale
    assert not np.array_equal(got, engine.logits[ids])
    assert svc.stats()["refresher"]["stale_vertices"] > 0


def test_cache_invalidated_by_refresh(trained, engine):
    """A refresher table rewrite must not leave stale rows in the
    service's result cache."""
    ds, _, _ = trained
    ref = IncrementalRefresher(engine, full_threshold=1.0)
    with PredictionService(engine, cache=ResultCache(64), refresher=ref) as svc:
        ids = np.array([0, 1])
        before = svc.predict_logits(ids)  # fills the cache
        rng = np.random.default_rng(11)
        upd = np.array([0])
        ref.update_features(
            upd, rng.standard_normal((1, ds.feature_dim)).astype(np.float32)
        )
        after = svc.predict_logits(ids)
        assert np.array_equal(after, engine.logits[ids])
        assert not np.array_equal(after[0], before[0])


def test_empty_request_with_cache(trained, engine):
    ds, _, _ = trained
    with PredictionService(engine, cache=ResultCache(8)) as svc:
        rows = svc.predict_logits([])
        assert rows.shape == (0, ds.num_classes)
        assert svc.predict([]).shape == (0,)


# -- HTTP endpoint ----------------------------------------------------------------


@pytest.fixture
def live_server(engine):
    svc = PredictionService(engine, cache=ResultCache(64))
    server = PredictionServer(svc, port=0).start_background()
    host, port = server.address
    yield engine, f"http://{host}:{port}"
    server.shutdown()


def test_http_predict(live_server):
    engine, base = live_server
    status, resp = _post(f"{base}/predict", {"vertices": [0, 7, 9], "k": 2})
    assert status == 200
    assert resp["vertices"] == [0, 7, 9]
    assert resp["labels"] == np.argmax(engine.logits[[0, 7, 9]], axis=1).tolist()
    assert len(resp["topk"]) == 3 and len(resp["topk"][0]) == 2
    top = resp["topk"][0][0]
    assert top["class"] == resp["labels"][0]
    assert top["score"] == pytest.approx(float(engine.logits[0].max()))


def test_http_stats_and_health(live_server):
    _, base = live_server
    _post(f"{base}/predict", {"vertices": [1, 2]})
    status, stats = _get(f"{base}/stats")
    assert status == 200
    assert stats["requests"] >= 1 and stats["cache"]["capacity"] == 64
    status, health = _get(f"{base}/healthz")
    assert status == 200 and health == {"status": "ok"}


def test_http_error_handling(live_server):
    engine, base = live_server
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/predict", {"wrong_key": [1]})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/predict", {"vertices": [engine.num_vertices + 5]})
    assert err.value.code == 400
    assert "vertex ids" in json.load(err.value)["error"]
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(f"{base}/nope")
    assert err.value.code == 404


def _post_raw(url, body: bytes):
    req = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.load(resp)


def test_http_malformed_bodies_return_400_json(live_server):
    """Every malformed body shape answers 400 with a JSON error body —
    never a 500 traceback."""
    _, base = live_server
    raw_cases = [
        b"{not json",              # invalid JSON
        b"[1, 2]",                 # valid JSON, not an object
        b'"vertices"',             # valid JSON, not an object
    ]
    for body in raw_cases:
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(f"{base}/predict", body)
        assert err.value.code == 400, body
        assert "error" in json.load(err.value), body
    payload_cases = [
        {"vertices": [1.5]},            # float id would truncate silently
        {"vertices": ["7"]},            # string id
        {"vertices": [True]},           # bool is not a vertex id
        {"vertices": 3},                # not a list
        {"vertices": [[1, 2]]},         # nested list
        {"vertices": [0], "k": "two"},  # non-integer k
        {"vertices": [0], "k": [2]},    # list k (used to be a 500)
        {"vertices": [0], "k": 0},      # k < 1
        {"vertices": [0, -1]},          # negative id
        {"vertices": [10 ** 30]},       # overflows the index dtype
    ]
    for payload in payload_cases:
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base}/predict", payload)
        assert err.value.code == 400, payload
        assert "error" in json.load(err.value), payload


def test_http_valid_requests_still_pass_strict_validation(live_server):
    engine, base = live_server
    status, resp = _post(f"{base}/predict", {"vertices": []})
    assert status == 200 and resp["labels"] == []
    status, resp = _post(f"{base}/predict", {"vertices": [0], "k": 1})
    assert status == 200 and len(resp["topk"][0]) == 1


def test_http_metrics_endpoint(live_server):
    _, base = live_server
    _post(f"{base}/predict", {"vertices": [1, 2]})
    _post(f"{base}/predict", {"vertices": [3], "k": 2})  # metered as topk
    status, snap = _get(f"{base}/metrics")
    assert status == 200
    assert snap["endpoints"]["predict"]["ok"] >= 1
    assert snap["endpoints"]["topk"]["ok"] >= 1
    assert snap["endpoints"]["predict"]["p50_ms"] > 0
    totals = snap["totals"]
    assert totals["requests"] == sum(
        v for k, v in totals.items() if k != "requests"
    )
    # live gauges ride along
    assert snap["draining"] is False
    assert snap["queue_depth"] >= 0 and snap["in_flight"] >= 0
    assert 0.0 <= snap["cache_hit_rate"] <= 1.0


def test_http_update_features(live_server):
    engine, base = live_server
    before = _post(f"{base}/predict", {"vertices": [0]})[1]["labels"]
    rng = np.random.default_rng(21)
    rows = rng.standard_normal(
        (1, engine.features.shape[1])
    ).astype(np.float32)
    status, resp = _post(
        f"{base}/update_features",
        {"vertices": [0], "features": rows.tolist()},
    )
    assert status == 200
    assert resp["status"] == "ok" and resp["mode"] in ("incremental", "full")
    assert resp["num_updated"] == 1
    # the served row now reflects the new features (table was refreshed)
    after = _post(f"{base}/predict", {"vertices": [0]})[1]["labels"]
    assert after == np.argmax(engine.logits[[0]], axis=1).tolist()
    assert np.array_equal(engine.features[0], rows[0])
    assert before is not None  # label may or may not move; the row must
