"""Serving fixtures: a briefly-trained model + checkpoint per architecture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig, Trainer, save_checkpoint
from repro.core.checkpoint import training_meta
from repro.serving import InferenceEngine


def make_cfg(model: str) -> TrainConfig:
    return TrainConfig(
        num_layers=2, hidden_features=16, eval_every=0, seed=0, model=model
    )


@pytest.fixture(scope="session", params=["sage", "gcn"])
def trained(request, reddit_mini):
    """(dataset, trainer, cfg) after 3 epochs, per architecture."""
    cfg = make_cfg(request.param)
    trainer = Trainer(reddit_mini, cfg)
    trainer.fit(3)
    return reddit_mini, trainer, cfg


@pytest.fixture
def checkpoint_path(tmp_path, trained):
    ds, trainer, cfg = trained
    path = str(tmp_path / "serving.npz")
    save_checkpoint(
        path, trainer.model, trainer.optimizer, epoch=3, extra=training_meta(cfg)
    )
    return path


@pytest.fixture
def engine(trained):
    """Fresh engine per test (refresh tests mutate its tables)."""
    ds, trainer, cfg = trained
    return InferenceEngine(ds, trainer.model, cfg).precompute()
