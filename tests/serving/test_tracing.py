"""End-to-end tracing through the serving stack.

The contracts pinned here (the ISSUE's acceptance list):

- exactly **one root span per admitted request**, even when the
  micro-batcher coalesces concurrent same-vertex lookups into one
  engine call;
- for ok requests the latency **components are non-overlapping**:
  their sum never exceeds the measured end-to-end latency;
- shed requests (queue-full rejections, deadline timeouts) still
  **close their root spans** with the matching outcome;
- ``GET /trace`` serves schema-valid Chrome trace JSON and
  ``GET /metrics?format=prom`` agrees with the JSON ``GET /metrics``
  counter-for-counter.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.registry import parse_prometheus
from repro.obs.trace import COMPONENTS, Tracer, validate_chrome_trace
from repro.serving import PredictionServer, RequestRejected, RequestTimeout
from repro.serving.metrics import OUTCOMES

from harness import (
    blocking_lookup,
    join_all,
    make_frontend,
    make_service,
    seeded_run,
    slow_lookup,
)


def make_tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("sample_rate", 1.0)
    kwargs.setdefault("capacity", 4096)
    return Tracer(**kwargs)


def roots(tracer):
    return [s for s in tracer.export() if s["parent_id"] is None]


@pytest.fixture
def traced(engine):
    tracer = make_tracer()
    svc = make_service(engine)
    fe = make_frontend(svc, tracer=tracer)
    yield svc, fe, tracer
    fe.close()
    svc.close()


# -- one root per admitted request ------------------------------------------------


def test_one_root_span_per_request_under_coalescing(traced):
    """16 concurrent same-vertex lookups: the batcher dedups them into
    very few engine calls, but every request keeps its own root span."""
    svc, fe, tracer = traced
    ids = np.array([3, 1, 4, 1])
    n = 16
    start = threading.Barrier(n)

    def one(_):
        start.wait(timeout=30.0)
        fe.call("predict", lambda: svc.predict_logits(ids))

    threads = [
        threading.Thread(target=one, args=(i,), name=f"req-{i}", daemon=True)
        for i in range(n)
    ]
    for t in threads:
        t.start()
    join_all(threads)

    rs = roots(tracer)
    assert len(rs) == n
    assert all(r["outcome"] == "ok" and r["name"] == "predict" for r in rs)
    # n distinct traces, not one shared by the coalesced batch
    assert len({r["trace_id"] for r in rs}) == n
    # and the dedup actually happened (the point of coalescing)
    bstats = svc.batcher.stats()
    assert bstats["vertices_computed"] < bstats["vertices_submitted"]


def test_seeded_run_traces_every_admitted_request(trained, traced):
    """Open-loop mixed traffic: root spans == finished requests, with
    matching per-outcome counts (conservation against ServingMetrics)."""
    ds, _, _ = trained
    svc, fe, tracer = traced
    _, report = seeded_run(
        fe, seed=11, rate=300.0, duration_s=1.0,
        mix={"predict": 0.7, "topk": 0.2, "update_edges": 0.1},
        feature_dim=ds.feature_dim,
    )
    snap = fe.metrics_snapshot()
    rs = roots(tracer)
    assert len(rs) == report.offered == snap["totals"]["requests"]
    by_outcome = {}
    for r in rs:
        by_outcome[r["outcome"]] = by_outcome.get(r["outcome"], 0) + 1
    for outcome in OUTCOMES:
        assert by_outcome.get(outcome, 0) == snap["totals"][outcome], outcome


# -- component conservation -------------------------------------------------------


def test_component_sum_within_e2e_for_ok_requests(traced):
    svc, fe, tracer = traced
    rng = np.random.default_rng(3)
    for _ in range(40):
        ids = rng.integers(0, svc.engine.num_vertices, size=8)
        fe.call("predict", lambda: svc.predict_logits(ids))
    rs = [r for r in roots(tracer) if r["outcome"] == "ok"]
    assert len(rs) == 40
    for r in rs:
        comp_ms = sum(r["components_ms"].values())
        # components are defined non-overlapping; tiny tolerance for
        # float accumulation across clock reads
        assert comp_ms <= r["dur_us"] / 1e3 + 0.5, r["components_ms"]
        assert set(r["components_ms"]) <= set(COMPONENTS)
    dec = tracer.decomposition()["predict"]
    assert dec["count"] == 40
    assert dec["component_sum_mean_ms"] <= dec["e2e"]["mean_ms"] + 0.5
    assert dec["unattributed_mean_ms"] >= 0.0


def test_update_spans_record_drain_and_close_ok(trained, traced):
    ds, _, _ = trained
    svc, fe, tracer = traced
    fe.update_edges(add=[(0, 1)])
    rng = np.random.default_rng(7)
    fe.update_features(
        np.array([2]), rng.standard_normal((1, ds.feature_dim)).astype(np.float32)
    )
    rs = roots(tracer)
    assert [r["name"] for r in rs] == ["update_edges", "update_features"]
    for r in rs:
        assert r["outcome"] == "ok"
        assert "drain" in r["components_ms"]


# -- shed requests still close their spans ----------------------------------------


def test_rejected_requests_close_spans_with_outcome(engine):
    tracer = make_tracer()
    svc = make_service(engine, batch=False)
    release = threading.Event()
    started = threading.Event()
    svc.wrap_lookup(blocking_lookup(release, started))
    fe = make_frontend(svc, num_workers=1, max_queue=1, tracer=tracer)
    try:
        blocked = threading.Thread(
            target=lambda: fe.call("predict", lambda: svc.predict_logits([0])),
            daemon=True,
        )
        blocked.start()
        assert started.wait(timeout=10.0)
        # fills the queue behind the parked worker (blocks until release)
        queued = threading.Thread(
            target=lambda: fe.call("predict", lambda: svc.predict_logits([1])),
            daemon=True,
        )
        queued.start()
        deadline = time.monotonic() + 10.0
        while fe.queue_depth < 1:
            assert time.monotonic() < deadline, "queue never filled"
            time.sleep(0.005)

        with pytest.raises(RequestRejected):
            fe.call("predict", lambda: svc.predict_logits([2]))
        rejected = [
            r for r in roots(tracer) if r["outcome"] == "rejected_queue_full"
        ]
        assert len(rejected) == 1
        # a shed request has no execution components
        assert rejected[0]["components_ms"] == {}
    finally:
        release.set()
        join_all([blocked, queued])
        fe.close()
        svc.close()
    # the blocked + queued requests eventually closed ok, exactly once each
    assert sorted(r["outcome"] for r in roots(tracer)) == [
        "ok", "ok", "rejected_queue_full",
    ]


def test_timed_out_requests_close_spans_once(engine):
    tracer = make_tracer()
    svc = make_service(engine, batch=False)
    svc.wrap_lookup(slow_lookup(0.4))
    fe = make_frontend(svc, tracer=tracer)
    try:
        with pytest.raises(RequestTimeout):
            fe.call(
                "predict", lambda: svc.predict_logits([0]), timeout_s=0.05
            )
    finally:
        fe.close()  # joins the worker, which finishes in the background
        svc.close()
    rs = roots(tracer)
    assert len(rs) == 1
    # the caller's timeout close won; the worker's late component
    # writes after end() were ignored
    assert rs[0]["outcome"] == "timeout"
    assert tracer.decomposition() == {}  # only ok roots decompose


# -- HTTP surface -----------------------------------------------------------------


def _get_raw(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8")


def test_server_trace_and_prometheus_endpoints(engine):
    tracer = make_tracer()
    svc = make_service(engine)
    fe = make_frontend(svc, tracer=tracer)
    server = PredictionServer(svc, port=0, frontend=fe).start_background()
    try:
        host, port = server.address
        base = f"http://{host}:{port}"
        for _ in range(3):
            status, _ = _get_raw(f"{base}/healthz")
            assert status == 200
            req = urllib.request.Request(
                f"{base}/predict",
                data=json.dumps({"vertices": [0, 1], "k": 2}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=10) as resp:
                assert resp.status == 200

        # /trace is schema-valid Chrome trace JSON with our spans in it
        status, body = _get_raw(f"{base}/trace")
        assert status == 200
        payload = json.loads(body)
        assert validate_chrome_trace(payload) >= 3
        names = {ev["name"] for ev in payload["traceEvents"]}
        assert "topk" in names  # k-requests meter as the topk endpoint

        # /metrics stays JSON and bit-compatible with the snapshot shape
        status, body = _get_raw(f"{base}/metrics")
        assert status == 200
        snap = json.loads(body)
        assert snap["endpoints"]["topk"]["ok"] == 3

        # ?format=prom serves the registry; unknown formats answer 400
        status, text = _get_raw(f"{base}/metrics?format=prom")
        assert status == 200
        parsed = parse_prometheus(text)
        for endpoint, ep in snap["endpoints"].items():
            for outcome in OUTCOMES:
                key = (("endpoint", endpoint), ("outcome", outcome))
                assert parsed["repro_requests_total"][key] == float(
                    ep[outcome]
                ), (endpoint, outcome)
        assert parsed["repro_drains_total"][()] == snap["num_drains"]
        assert parsed["repro_queue_capacity"][()] == snap["max_queue"]
        # trace collector conservation: sampled + skipped == seen
        st = tracer.stats()
        spans = parsed["repro_trace_spans_total"]
        assert (
            spans[(("result", "sampled"),)] + spans[(("result", "skipped"),)]
            == st["seen"]
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            _get_raw(f"{base}/metrics?format=xml")
        assert err.value.code == 400
    finally:
        server.shutdown()
