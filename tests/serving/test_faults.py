"""Fault injection: every failure is a structured JSON answer.

Injected engine exceptions, deadline misses, queue-full shedding, and
malformed bodies — the server must answer 400/429/500/503 (with
``Retry-After`` where retrying helps) and keep serving afterwards;
never a traceback page, never a wedged worker.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import PredictionServer, ServingFrontend

from harness import (
    JOIN_TIMEOUT_S,
    blocking_lookup,
    flaky_lookup,
    join_all,
    make_service,
    slow_lookup,
)


def _post(url, payload, timeout=JOIN_TIMEOUT_S):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def _get(url):
    with urllib.request.urlopen(url, timeout=JOIN_TIMEOUT_S) as resp:
        return resp.status, json.load(resp)


@pytest.fixture
def faulty_server(engine):
    """A live server with small limits and an injectable service; tests
    receive (service, frontend, base_url)."""
    svc = make_service(engine)
    fe = ServingFrontend(svc, num_workers=1, max_queue=1,
                         default_timeout_s=10.0, drain_timeout_s=10.0)
    server = PredictionServer(svc, port=0, frontend=fe).start_background()
    host, port = server.address
    yield svc, fe, f"http://{host}:{port}"
    server.shutdown()


def test_injected_engine_failure_is_a_json_500(faulty_server):
    svc, _, base = faulty_server
    svc.wrap_lookup(flaky_lookup("injected engine failure", every=2))
    # 1st call succeeds, 2nd hits the injected failure, 3rd recovers —
    # the worker survives the exception
    status, _ = _post(f"{base}/predict", {"vertices": [0]})
    assert status == 200
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/predict", {"vertices": [1]})
    assert err.value.code == 500
    body = json.load(err.value)
    assert "injected engine failure" in body["error"]
    assert "Traceback" not in body["error"]
    status, resp = _post(f"{base}/predict", {"vertices": [2]})
    assert status == 200 and len(resp["labels"]) == 1
    snap = _get(f"{base}/metrics")[1]
    assert snap["endpoints"]["predict"]["error"] == 1
    assert snap["endpoints"]["predict"]["ok"] == 2


def test_slow_handler_hits_deadline_then_recovers(faulty_server):
    svc, fe, base = faulty_server
    fe.timeouts["predict"] = 0.2
    svc.wrap_lookup(slow_lookup(1.0))
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/predict", {"vertices": [3]})
    assert err.value.code == 503
    assert int(err.value.headers["Retry-After"]) >= 1
    body = json.load(err.value)
    assert "timed out" in body["error"]
    # the worker finishes the abandoned call in the background and is
    # then free again: a relaxed-deadline request succeeds
    fe.timeouts["predict"] = 10.0
    status, _ = _post(f"{base}/predict", {"vertices": [4]})
    assert status == 200
    assert _get(f"{base}/metrics")[1]["endpoints"]["predict"]["timeout"] == 1


def test_queue_full_answers_429_with_retry_after(faulty_server):
    svc, fe, base = faulty_server
    release = threading.Event()
    started = threading.Event()
    svc.wrap_lookup(blocking_lookup(release, started))
    results = []

    def fire(vid):
        results.append(_post(f"{base}/predict", {"vertices": [vid]})[0])

    # request 1 occupies the single worker (parked in the engine),
    # request 2 fills the one-slot queue, request 3 must shed
    t1 = threading.Thread(target=fire, args=(0,), daemon=True)
    t1.start()
    assert started.wait(JOIN_TIMEOUT_S)
    t2 = threading.Thread(target=fire, args=(1,), daemon=True)
    t2.start()
    deadline = threading.Event()
    for _ in range(1000):
        if fe.queue_depth >= 1:
            deadline.set()
            break
        threading.Event().wait(0.005)
    assert deadline.is_set(), "second request never queued"

    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/predict", {"vertices": [2]})
    assert err.value.code == 429
    assert int(err.value.headers["Retry-After"]) >= 1
    assert "queue full" in json.load(err.value)["error"]

    release.set()
    join_all([t1, t2])
    assert results == [200, 200]  # both admitted requests completed
    snap = _get(f"{base}/metrics")[1]["endpoints"]["predict"]
    assert snap["rejected_queue_full"] == 1 and snap["ok"] == 2


def test_malformed_update_bodies_return_400_json(faulty_server):
    _, _, base = faulty_server
    cases = [
        ("/update_edges", {"add": [[0]]}),            # not a pair
        ("/update_edges", {"add": [[0.5, 1]]}),       # float endpoint
        ("/update_edges", {"add": "0,1"}),            # not a list
        ("/update_edges", {"typo": [[0, 1]]}),        # unknown key
        ("/update_edges", {}),                        # nothing to do
        ("/update_features", {"vertices": [0]}),                      # missing rows
        ("/update_features", {"vertices": [0], "features": [[1], [2]]}),  # misaligned
        ("/update_features", {"vertices": [0], "features": "x"}),     # not rows
        ("/update_features", {"vertices": [0], "features": [[float("nan")]]}),
        ("/update_features", {"vertices": [0], "features": [[1.0]], "k": 3}),
    ]
    for path, payload in cases:
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base}{path}", payload)
        assert err.value.code == 400, (path, payload)
        body = json.load(err.value)
        assert "error" in body and "Traceback" not in body["error"], (path, payload)


def test_update_failure_does_not_wedge_serving(faulty_server):
    """A 400 update (drain + rejected payload) reopens admission."""
    svc, fe, base = faulty_server
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/update_edges", {"add": [[0, "x"]]})
    assert err.value.code == 400
    assert not fe.draining
    status, health = _get(f"{base}/healthz")
    assert status == 200 and health == {"status": "ok"}
    status, _ = _post(f"{base}/predict", {"vertices": [0]})
    assert status == 200


def test_feature_update_wrong_width_is_400(faulty_server, trained):
    ds, _, _ = trained
    _, _, base = faulty_server
    wrong = [[1.0] * (ds.feature_dim + 1)]
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/update_features", {"vertices": [0], "features": wrong})
    assert err.value.code == 400
    assert "error" in json.load(err.value)
