"""Concurrency stress: readers hammering a service under live updates.

The contract pinned here is the serving tier's memory model:

- **no torn reads** — every served response equals the corresponding
  rows of exactly one full-precompute table version (pre- or post-
  update), never a mix (the refresher rewrites tables in place, so
  without the reader-writer gate this genuinely fails);
- **no deadlocks** — reader herds + updater threads always join
  (enforced by the harness's deadline joins);
- **counter conservation** — the result cache's ``hits + misses ==
  lookups`` invariant holds at every observable instant under
  contention, not just at rest.
"""

import threading
import time

import numpy as np
import pytest

from repro.serving import ResultCache
from repro.serving.frontend import ServingUnavailable

from harness import (
    JOIN_TIMEOUT_S,
    SnapshotChecker,
    hammer,
    join_all,
    make_frontend,
    make_service,
)

NUM_READERS = 4
READS_PER_THREAD = 25


@pytest.fixture
def serving(engine):
    svc = make_service(engine)
    fe = make_frontend(svc)
    yield svc, fe
    fe.close()
    svc.close()


def _collecting_reader(svc, fe, responses, responses_lock):
    """Reader body: predict a seeded batch, collect (ids, rows) for
    post-hoc snapshot validation.  Shed requests (the updater is
    draining) back off and retry like a well-behaved client — without
    the backoff every read would burn out inside the first drain window
    and the stress would observe nothing."""

    def read(idx: int) -> None:
        rng = np.random.default_rng(1000 + idx + len(responses))
        ids = rng.integers(0, svc.engine.num_vertices, size=6)
        deadline = time.monotonic() + JOIN_TIMEOUT_S
        while True:
            try:
                rows = fe.call("predict", lambda: svc.predict_logits(ids))
                break
            except ServingUnavailable as exc:
                assert time.monotonic() < deadline, "reader starved out"
                time.sleep(max(exc.retry_after_s, 0.002))
        with responses_lock:
            responses.append((ids, np.array(rows, copy=True)))

    return read


def _run_stress(svc, fe, engine, apply_update, num_updates):
    """Readers hammer while a writer applies ``num_updates`` updates;
    returns (responses, checker) for post-hoc torn-read validation."""
    checker = SnapshotChecker()
    checker.register(engine.logits)  # version 0
    responses, responses_lock = [], threading.Lock()
    writer_err = []

    def writer() -> None:
        try:
            for k in range(num_updates):
                apply_update(k)
                # the update has fully landed (drain + write-gate), so
                # this copy is a clean new table version
                checker.register(engine.logits)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            writer_err.append(exc)

    w = threading.Thread(target=writer, name="stress-writer", daemon=True)
    w.start()
    hammer(
        _collecting_reader(svc, fe, responses, responses_lock),
        num_threads=NUM_READERS,
        iterations=READS_PER_THREAD,
    )
    join_all([w])
    if writer_err:
        raise writer_err[0]
    assert checker.num_snapshots == num_updates + 1
    return responses, checker


def test_no_torn_reads_under_feature_updates(trained, serving):
    ds, _, _ = trained
    svc, fe = serving
    engine = svc.engine
    rng = np.random.default_rng(42)
    updates = [
        (
            rng.choice(engine.num_vertices, size=3, replace=False),
            rng.standard_normal((3, ds.feature_dim)).astype(np.float32),
        )
        for _ in range(4)
    ]

    responses, checker = _run_stress(
        svc, fe, engine,
        lambda k: fe.update_features(*updates[k]),
        num_updates=len(updates),
    )
    assert responses, "stress run served nothing"
    for ids, rows in responses:
        checker.assert_consistent(ids, rows)


def test_no_torn_reads_under_edge_updates(serving):
    svc, fe = serving
    engine = svc.engine
    rng = np.random.default_rng(43)
    batches = [
        rng.integers(0, engine.num_vertices, size=(4, 2)) for _ in range(4)
    ]

    responses, checker = _run_stress(
        svc, fe, engine,
        lambda k: fe.update_edges(add=batches[k]),
        num_updates=len(batches),
    )
    assert responses, "stress run served nothing"
    for ids, rows in responses:
        checker.assert_consistent(ids, rows)


def test_cache_conservation_under_stress(serving):
    """hits + misses == lookups at EVERY sampled instant while readers
    and an updater race the cache (all three counters move inside one
    critical section — a sampler catching them mid-update is the bug)."""
    svc, fe = serving
    engine = svc.engine
    stop = threading.Event()
    violations = []

    def sampler() -> None:
        while not stop.is_set():
            stats = svc.cache.stats()
            if stats["hits"] + stats["misses"] != stats["lookups"]:
                violations.append(stats)
                return

    s = threading.Thread(target=sampler, name="cache-sampler", daemon=True)
    s.start()
    try:
        rng = np.random.default_rng(7)
        upd = rng.integers(0, engine.num_vertices, size=(2, 2))
        responses, _ = _run_stress(
            svc, fe, engine, lambda k: fe.update_edges(add=upd), num_updates=1
        )
    finally:
        stop.set()
        join_all([s])
    assert not violations, f"conservation violated: {violations[0]}"
    stats = svc.cache.stats()
    assert stats["lookups"] == stats["hits"] + stats["misses"]
    assert stats["lookups"] > 0


def test_raw_cache_conservation_under_contention():
    """The invariant on the bare ResultCache, no serving stack around
    it: hammering get/get_many/put/reset from many threads never lets a
    sampler observe hits + misses != lookups."""
    cache = ResultCache(32)
    stop = threading.Event()
    violations = []

    def sampler() -> None:
        # only stats() gives one consistent snapshot; comparing the raw
        # attributes here would race between the two reads
        while not stop.is_set():
            stats = cache.stats()
            if stats["hits"] + stats["misses"] != stats["lookups"]:
                violations.append(stats)
                return

    s = threading.Thread(target=sampler, name="raw-sampler", daemon=True)
    s.start()

    def body(idx: int) -> None:
        rng = np.random.default_rng(idx)
        keys = rng.integers(0, 64, size=8)
        cache.get(int(keys[0]))
        cache.put(int(keys[0]), np.ones(4, dtype=np.float32))
        found, missing = cache.get_many(keys)
        if missing.size:
            cache.put_many(missing, np.ones((missing.size, 4), dtype=np.float32))
        if idx == 0 and rng.random() < 0.05:
            cache.reset()

    try:
        hammer(body, num_threads=8, iterations=50)
    finally:
        stop.set()
        join_all([s])
    assert not violations, f"conservation violated: {violations[0]}"
    # quiescent now: the raw attributes must agree too
    assert cache.accesses == cache.lookups


def test_concurrent_updates_serialize(serving):
    """Multiple updater threads racing each other: every update lands
    (drains serialize on the frontend), none deadlocks, and the final
    table equals a fresh full precompute of the final state."""
    svc, fe = serving
    engine = svc.engine
    rng = np.random.default_rng(9)
    edges = [rng.integers(0, engine.num_vertices, size=(2, 2)) for _ in range(6)]
    errors = []

    def updater(idx: int) -> None:
        try:
            fe.update_edges(add=edges[idx])
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=updater, args=(i,), name=f"upd-{i}", daemon=True)
        for i in range(len(edges))
    ]
    for t in threads:
        t.start()
    join_all(threads, timeout_s=JOIN_TIMEOUT_S)
    assert not errors, errors
    assert fe.metrics_snapshot()["endpoints"]["update_edges"]["ok"] == len(edges)
    # the incremental path's contract: identical to a from-scratch
    # precompute of the final topology
    before = np.array(engine.logits, copy=True)
    engine.precompute()
    assert np.array_equal(before, engine.logits)
