"""Graceful drain: updates quiesce in-flight work, then serving resumes.

Pinned here: an update arriving while micro-batched requests are in
flight (1) lets the in-flight work complete, (2) sheds new requests
with 503 while quiescing, (3) flips ``/healthz`` for the window, and
(4) afterwards serves tables bit-identical to a fresh full precompute.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import PredictionServer, ServiceDraining, full_graph_forward

from harness import (
    JOIN_TIMEOUT_S,
    blocking_lookup,
    join_all,
    make_frontend,
    make_service,
)


def _wait_until(predicate, what: str, timeout_s: float = JOIN_TIMEOUT_S):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.002)


@pytest.fixture
def serving(engine):
    svc = make_service(engine)
    fe = make_frontend(svc)
    yield svc, fe
    fe.close()
    svc.close()


def test_drain_waits_for_in_flight_micro_batches(serving):
    svc, fe = serving
    engine = svc.engine
    release = threading.Event()
    started = threading.Event()
    svc.wrap_lookup(blocking_lookup(release, started))

    in_flight_result = []
    reader = threading.Thread(
        target=lambda: in_flight_result.append(
            fe.call("predict", lambda: svc.predict_logits(np.array([0, 1])))
        ),
        name="in-flight-reader",
        daemon=True,
    )
    reader.start()
    assert started.wait(JOIN_TIMEOUT_S)  # parked inside the engine call

    update_done = []
    updater = threading.Thread(
        target=lambda: update_done.append(fe.update_edges(add=[(0, 1)])),
        name="updater",
        daemon=True,
    )
    updater.start()
    _wait_until(lambda: fe.draining, "drain to start")

    # while quiescing: new requests shed, the update has NOT run yet
    # (the in-flight batch still holds the pool)
    with pytest.raises(ServiceDraining):
        fe.call("predict", lambda: svc.predict_logits(np.array([2])))
    assert fe.healthz() == {"status": "draining"}
    assert not update_done

    release.set()  # in-flight batch completes -> drain proceeds
    join_all([reader, updater])
    assert in_flight_result and in_flight_result[0].shape[0] == 2
    assert update_done and update_done[0].num_added == 1
    assert not fe.draining
    assert fe.healthz() == {"status": "ok"}
    # the shed request succeeds on retry
    rows = fe.call("predict", lambda: svc.predict_logits(np.array([2])))
    assert rows.shape[0] == 1


def test_post_drain_serving_is_bit_identical_to_fresh_precompute(serving):
    svc, fe = serving
    engine = svc.engine
    rng = np.random.default_rng(3)
    fe.update_edges(add=rng.integers(0, engine.num_vertices, size=(5, 2)))
    fe.update_features(
        np.array([1, 4]),
        rng.standard_normal((2, engine.features.shape[1])).astype(np.float32),
    )
    # ground truth: a from-scratch forward over the post-update state
    fresh = full_graph_forward(engine.model, engine.graph, engine.features,
                               engine.norm)
    ids = np.arange(engine.num_vertices)
    served = fe.call("predict", lambda: svc.predict_logits(ids))
    assert np.array_equal(served, fresh)
    assert np.array_equal(engine.logits, fresh)


def test_healthz_flips_over_http(engine):
    svc = make_service(engine)
    fe = make_frontend(svc)
    server = PredictionServer(svc, port=0, frontend=fe).start_background()
    host, port = server.address
    base = f"http://{host}:{port}"
    try:
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as resp:
            assert resp.status == 200
            assert json.load(resp) == {"status": "ok"}

        release = threading.Event()
        started = threading.Event()
        svc.wrap_lookup(blocking_lookup(release, started))
        reader = threading.Thread(
            target=lambda: fe.call(
                "predict", lambda: svc.predict_logits(np.array([0]))
            ),
            daemon=True,
        )
        reader.start()
        assert started.wait(JOIN_TIMEOUT_S)
        updater = threading.Thread(
            target=lambda: fe.update_edges(add=[(0, 1)]), daemon=True
        )
        updater.start()
        _wait_until(lambda: fe.draining, "drain to start")

        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/healthz", timeout=10)
        assert err.value.code == 503
        assert json.load(err.value) == {"status": "draining"}
        assert int(err.value.headers["Retry-After"]) >= 1

        release.set()
        join_all([reader, updater])
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as resp:
            assert json.load(resp) == {"status": "ok"}
    finally:
        release.set()
        server.shutdown()


def test_drain_counts_are_metered(serving):
    svc, fe = serving
    engine = svc.engine
    for k in range(3):
        fe.update_edges(add=[(k, k + 1)])
    snap = fe.metrics_snapshot()
    assert snap["num_drains"] == 3
    assert snap["endpoints"]["update_edges"]["ok"] == 3
    assert snap["draining"] is False
