"""ResultCache: LRU semantics and measured hit/miss counters."""

import numpy as np
import pytest

from repro.serving import ResultCache


def _row(v: float) -> np.ndarray:
    return np.full(4, v, dtype=np.float32)


def test_capacity_validation():
    with pytest.raises(ValueError):
        ResultCache(0)


def test_hit_miss_counters():
    c = ResultCache(4)
    assert c.get(1) is None
    c.put(1, _row(1.0))
    assert np.array_equal(c.get(1), _row(1.0))
    assert (c.hits, c.misses, c.accesses) == (1, 1, 2)
    assert c.hit_rate == 0.5


def test_lru_eviction_order():
    c = ResultCache(2)
    c.put(1, _row(1)); c.put(2, _row(2))
    c.get(1)            # 2 is now least-recently used
    c.put(3, _row(3))   # evicts 2
    assert c.get(2) is None
    assert c.get(1) is not None and c.get(3) is not None
    assert len(c) == 2


def test_put_refreshes_recency():
    c = ResultCache(2)
    c.put(1, _row(1)); c.put(2, _row(2))
    c.put(1, _row(10))  # re-put moves 1 to MRU
    c.put(3, _row(3))   # evicts 2, not 1
    assert c.get(2) is None
    assert np.array_equal(c.get(1), _row(10))


def test_get_many_put_many_roundtrip():
    c = ResultCache(8)
    found, missing = c.get_many(np.array([1, 2, 3, 2]))
    assert found == {} and missing.tolist() == [1, 2, 3]  # deduped
    assert c.misses == 4  # duplicates count one access each
    c.put_many(missing, np.stack([_row(v) for v in missing]))
    found, missing = c.get_many(np.array([1, 2, 9]))
    assert missing.tolist() == [9]
    assert set(found) == {1, 2}
    assert np.array_equal(found[2], _row(2))


def test_put_many_alignment_check():
    with pytest.raises(ValueError, match="align"):
        ResultCache(4).put_many(np.array([1, 2]), np.zeros((3, 4)))


class TestMutationSafety:
    """The cache must never alias caller memory in either direction."""

    def test_put_copies_caller_row(self):
        c = ResultCache(4)
        row = _row(1.0)
        c.put(1, row)
        row[:] = 99.0  # caller reuses its buffer after insert
        assert np.array_equal(c.get(1), _row(1.0))

    def test_put_many_copies_batch_rows(self):
        c = ResultCache(8)
        batch = np.stack([_row(1), _row(2), _row(3)])
        c.put_many(np.array([1, 2, 3]), batch)
        batch[:] = -1.0  # e.g. the batcher recycling its gather buffer
        found, missing = c.get_many(np.array([1, 2, 3]))
        assert missing.size == 0
        for v in (1, 2, 3):
            assert np.array_equal(found[v], _row(v))

    def test_stored_rows_do_not_pin_the_batch_matrix(self):
        """Row *views* of a batch matrix would keep the whole matrix
        alive; the stored copies must own their memory."""
        c = ResultCache(8)
        batch = np.stack([_row(1), _row(2)])
        c.put_many(np.array([1, 2]), batch)
        assert c.get(1).base is None

    def test_returned_rows_are_read_only(self):
        c = ResultCache(4)
        c.put(1, _row(1.0))
        got = c.get(1)
        with pytest.raises(ValueError):
            got[0] = 42.0
        found, _ = c.get_many(np.array([1]))
        with pytest.raises(ValueError):
            found[1][0] = 42.0
        # and the attempted writes changed nothing
        assert np.array_equal(c.get(1), _row(1.0))


def test_reset_and_stats():
    c = ResultCache(4)
    c.put(1, _row(1)); c.get(1); c.get(2)
    s = c.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["size"] == 1
    c.reset()
    assert c.accesses == 0 and len(c) == 0 and c.hit_rate == 0.0


def test_lookup_counter_conservation():
    """``hits + misses == lookups`` after every access pattern —
    singleton gets, vectorized gets (with duplicates), and reset."""
    c = ResultCache(4)
    assert c.stats()["lookups"] == 0
    c.get(1)                                     # miss
    c.put(1, _row(1))
    c.get(1)                                     # hit
    c.get_many(np.array([1, 1, 2, 3]))           # 2 hits + 2 misses
    s = c.stats()
    assert s["lookups"] == 6
    assert s["hits"] + s["misses"] == s["lookups"]
    assert s["hits"] == 3 and s["misses"] == 3
    c.reset()
    assert c.stats()["lookups"] == 0
