"""The load harness itself: seeded arrivals, schedules, virtual replay.

The stress/fault suites trust the harness to be deterministic and to
model open-loop traffic correctly — this file pins those properties.
"""

import numpy as np
import pytest

from repro.serving.frontend import RequestRejected, RequestTimeout, ServiceDraining
from repro.serving.loadgen import (
    DEFAULT_MIX,
    LoadReport,
    RequestRecord,
    ScheduledRequest,
    VirtualClock,
    build_schedule,
    bursty_arrivals,
    classify_exception,
    poisson_arrivals,
    run_open_loop,
    zipf_vertices,
)

from harness import virtual_schedule


# -- arrival processes ------------------------------------------------------------


@pytest.mark.parametrize("gen", [poisson_arrivals, bursty_arrivals])
def test_arrivals_seeded_and_bounded(gen):
    a = gen(200.0, 2.0, np.random.default_rng(7))
    b = gen(200.0, 2.0, np.random.default_rng(7))
    assert np.array_equal(a, b)  # same seed, same schedule — exactly
    assert (a >= 0).all() and (a < 2.0).all()
    assert np.array_equal(np.sort(a), a)
    # open-loop rate: the realized count concentrates around rate*duration
    assert 250 <= a.size <= 550


def test_poisson_interarrivals_are_memoryless():
    a = poisson_arrivals(500.0, 20.0, np.random.default_rng(0))
    gaps = np.diff(a)
    # exponential(1/rate): mean 2 ms, CV == 1 (±10% at n ≈ 10k)
    assert gaps.mean() == pytest.approx(1 / 500.0, rel=0.1)
    assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.1)


def test_bursty_matches_offered_rate_but_is_burstier():
    rng = np.random.default_rng(3)
    rate, dur = 400.0, 30.0
    burst = bursty_arrivals(rate, dur, rng, burst_factor=6.0)
    # same long-run offered load as a Poisson process...
    assert burst.size == pytest.approx(rate * dur, rel=0.15)
    # ...but over-dispersed: windowed counts spread wider than Poisson
    # (index of dispersion > 1; == 1 for Poisson)
    counts, _ = np.histogram(burst, bins=np.arange(0.0, dur + 0.25, 0.25))
    dispersion = counts.var() / counts.mean()
    assert dispersion > 1.5


def test_bursty_rejects_bad_factor():
    with pytest.raises(ValueError, match="burst_factor"):
        bursty_arrivals(10.0, 1.0, np.random.default_rng(0), burst_factor=0.5)


def test_empty_horizons():
    assert poisson_arrivals(0.0, 1.0, np.random.default_rng(0)).size == 0
    assert bursty_arrivals(50.0, 0.0, np.random.default_rng(0)).size == 0


# -- schedules --------------------------------------------------------------------


def test_schedule_is_reproducible():
    a = virtual_schedule(seed=11, feature_dim=4,
                         mix={**DEFAULT_MIX, "update_features": 0.1})
    b = virtual_schedule(seed=11, feature_dim=4,
                         mix={**DEFAULT_MIX, "update_features": 0.1})
    assert len(a) == len(b) > 0
    for ra, rb in zip(a, b):
        assert ra.t == rb.t and ra.endpoint == rb.endpoint
        assert np.array_equal(ra.vertices, rb.vertices)
        if ra.edges is not None:
            assert np.array_equal(ra.edges, rb.edges)
        if ra.rows is not None:
            assert np.array_equal(ra.rows, rb.rows)


def test_schedule_covers_the_mix_and_payloads_are_valid():
    n = 64
    sched = virtual_schedule(seed=2, rate=500.0, duration_s=2.0, num_vertices=n,
                             feature_dim=8,
                             mix={"predict": 0.4, "topk": 0.3,
                                  "update_edges": 0.2, "update_features": 0.1})
    seen = {r.endpoint for r in sched}
    assert seen == {"predict", "topk", "update_edges", "update_features"}
    for r in sched:
        assert (r.vertices >= 0).all() and (r.vertices < n).all()
        if r.endpoint == "topk":
            assert r.k >= 1
        if r.endpoint == "update_edges":
            assert r.edges.shape[1] == 2
            assert (r.edges >= 0).all() and (r.edges < n).all()
        if r.endpoint == "update_features":
            assert r.rows.shape == (r.vertices.size, 8)


def test_schedule_validation():
    rng = np.random.default_rng(0)
    times = [0.0, 0.5]
    with pytest.raises(ValueError, match="unknown endpoints"):
        build_schedule(times, 10, rng, mix={"nope": 1.0})
    with pytest.raises(ValueError, match="feature_dim"):
        build_schedule(times, 10, rng, mix={"update_features": 1.0})
    with pytest.raises(ValueError, match="at least one"):
        build_schedule(times, 10, rng, mix={})
    with pytest.raises(ValueError, match="non-negative"):
        build_schedule(times, 10, rng, mix={"predict": -1.0})


def test_zipf_vertices_skew_and_range():
    draws = zipf_vertices(np.random.default_rng(0), 1000, 20000, skew=1.2)
    assert (draws >= 0).all() and (draws < 1000).all()
    # skewed: the hottest vertex dominates a uniform draw's 1/n share
    _, counts = np.unique(draws, return_counts=True)
    assert counts.max() > 50 * (20000 / 1000 / 20)


# -- virtual-clock replay ---------------------------------------------------------


def test_virtual_clock_replay_is_deterministic():
    """Synchronous replay on a virtual clock: no real time passes, and
    every recorded latency is an exact function of the schedule."""
    service_time = 0.010
    clock = VirtualClock()

    def target(req):
        clock.advance(service_time)

    sched = virtual_schedule(seed=5, rate=100.0, duration_s=1.0)
    report = run_open_loop(target, sched, clock=clock, synchronous=True)
    assert report.offered == len(sched)
    assert report.count("ok") == len(sched)
    lat = report.latencies("ok")
    # back-to-back arrivals queue behind the fixed service time, so
    # latency is schedule-determined: replaying gives identical numbers
    report2 = run_open_loop(
        lambda req: clock2.advance(service_time),
        virtual_schedule(seed=5, rate=100.0, duration_s=1.0),
        clock=(clock2 := VirtualClock()),
        synchronous=True,
    )
    assert np.array_equal(lat, report2.latencies("ok"))
    assert (lat >= service_time - 1e-12).all()


def test_virtual_clock_open_loop_counts_queueing_delay():
    """A slow target on a virtual clock accumulates open-loop backlog:
    later requests see the sum of earlier service times (coordinated
    omission would hide exactly this)."""
    clock = VirtualClock()
    service_time = 0.050  # 20 req/s capacity
    sched = [
        ScheduledRequest(t=i * 0.01, endpoint="predict", vertices=np.array([0]))
        for i in range(10)  # offered at 100 req/s
    ]
    report = run_open_loop(
        lambda req: clock.advance(service_time), sched, clock=clock,
        synchronous=True,
    )
    lat = np.sort(report.latencies("ok"))
    assert lat[-1] > 5 * lat[0]  # backlog grows across the run
    assert lat[-1] == pytest.approx(10 * service_time - 9 * 0.01, abs=1e-9)


def test_clock_basics():
    c = VirtualClock(start=5.0)
    assert c.time() == 5.0
    c.sleep(1.5)
    c.advance(-1.0)  # negative advances are ignored, time is monotone
    assert c.time() == 6.5


# -- outcome classification -------------------------------------------------------


def test_classify_exception_buckets():
    assert classify_exception(RequestRejected("q")) == "rejected_queue_full"
    assert classify_exception(ServiceDraining("d")) == "rejected_draining"
    assert classify_exception(RequestTimeout("t")) == "timeout"
    assert classify_exception(ValueError("bad ids")) == "bad_request"
    assert classify_exception(OverflowError("big")) == "bad_request"
    assert classify_exception(RuntimeError("boom")) == "error"


def test_run_open_loop_never_raises():
    def target(req):
        raise RuntimeError("always down")

    sched = virtual_schedule(seed=1, rate=50.0, duration_s=0.5)
    clock = VirtualClock()
    report = run_open_loop(target, sched, clock=clock, synchronous=True)
    assert report.count("error") == report.offered == len(sched)
    s = report.summary()
    # no served request -> no latency quantiles at all (omitted, not 0.0:
    # a fabricated zero would read as "infinitely fast" to dashboards)
    assert s["ok"] == 0
    assert "p50_ms" not in s and "p99_ms" not in s


def test_report_summary_conservation():
    records = [
        RequestRecord("predict", 0.0, 0.01, 0.01, "ok"),
        RequestRecord("predict", 0.1, 0.0, 0.0, "rejected_queue_full"),
        RequestRecord("topk", 0.2, 0.0, 0.0, "timeout"),
    ]
    s = LoadReport(records=records, horizon_s=0.2, elapsed_s=0.3).summary()
    assert s["offered"] == 3
    assert (
        s["ok"] + s["rejected"] + s["timeouts"] + s["errors"] + s["bad_request"]
        == s["offered"]
    )
    per = s["per_endpoint"]
    assert per["predict"]["requests"] == 2 and per["topk"]["timeout"] == 1
