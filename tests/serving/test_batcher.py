"""MicroBatcher: correctness under concurrency, coalescing, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.serving import MicroBatcher

TABLE = np.arange(100, dtype=np.float32).reshape(50, 2)


def lookup(ids: np.ndarray) -> np.ndarray:
    return TABLE[ids]


def test_single_request_round_trip():
    with MicroBatcher(lookup, max_wait_ms=0.0) as b:
        out = b.predict([3, 1, 3])
        assert np.array_equal(out, TABLE[[3, 1, 3]])


def test_concurrent_submits_all_correct():
    results = {}

    def client(c):
        ids = np.array([c, (c + 7) % 50, c])
        results[c] = (ids, b.predict(ids))

    with MicroBatcher(lookup, max_batch=16, max_wait_ms=5.0) as b:
        threads = [threading.Thread(target=client, args=(c,)) for c in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for ids, rows in results.values():
        assert np.array_equal(rows, TABLE[ids])
    stats = b.stats()
    assert stats["requests"] == 10
    assert stats["vertices_submitted"] == 30


def test_coalescing_and_dedupe():
    """Requests queued while a batch is in flight coalesce into one call."""
    gate = threading.Event()
    calls = []

    def gated(ids):
        calls.append(np.array(ids))
        gate.wait(timeout=5.0)
        return lookup(ids)

    b = MicroBatcher(gated, max_batch=100, max_wait_ms=0.0)
    first = b.submit([0])
    while not calls:  # worker now blocked inside compute
        time.sleep(0.001)
    followers = [b.submit([5, 6]), b.submit([6, 7]), b.submit([7, 5])]
    gate.set()
    assert np.array_equal(first.result(5.0), TABLE[[0]])
    for fut, ids in zip(followers, ([5, 6], [6, 7], [7, 5])):
        assert np.array_equal(fut.result(5.0), TABLE[ids])
    stats = b.stats()
    assert stats["batches"] == 2            # 1 solo + 1 coalesced
    assert stats["vertices_computed"] == 4  # {0} + {5,6,7} deduped
    assert stats["coalesced_vertices"] == 3
    assert len(calls) == 2 and sorted(calls[1].tolist()) == [5, 6, 7]
    b.close()


def test_compute_exception_propagates():
    def boom(ids):
        raise RuntimeError("backend down")

    with MicroBatcher(boom, max_wait_ms=0.0) as b:
        fut = b.submit([1])
        with pytest.raises(RuntimeError, match="backend down"):
            fut.result(timeout=5.0)


def test_submit_after_close_raises():
    b = MicroBatcher(lookup)
    b.close()
    b.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        b.submit([0])


def test_parameter_validation():
    with pytest.raises(ValueError):
        MicroBatcher(lookup, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(lookup, max_wait_ms=-1.0)
