"""InferenceEngine: precompute bit-identity, lookups, checkpoint rebuild."""

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.nn import GAT
from repro.nn.tensor import Tensor, no_grad
from repro.serving import InferenceEngine, full_graph_forward
from repro.serving.engine import model_kind


def _direct_logits(trained):
    ds, trainer, cfg = trained
    trainer.model.eval()
    with no_grad():
        logits = trainer.model(ds.graph, Tensor(ds.features), trainer.norm)
    trainer.model.train()
    return logits.data


def test_predict_bit_identical_to_direct_forward(trained, engine):
    ds, _, _ = trained
    direct = _direct_logits(trained)
    ids = np.array([0, 3, 17, ds.num_vertices - 1])
    assert np.array_equal(engine.predict(ids), direct[ids])
    # and the full table
    assert np.array_equal(engine.logits, direct)


def test_full_graph_forward_matches_model_call(trained):
    ds, trainer, _ = trained
    assert np.array_equal(
        full_graph_forward(trainer.model, ds.graph, ds.features),
        _direct_logits(trained),
    )


def test_capture_inputs_layout(trained, engine):
    ds, _, cfg = trained
    assert len(engine.layer_inputs) == cfg.num_layers
    # layer 0 input IS the engine's feature matrix (refresh writes there)
    assert engine.layer_inputs[0] is engine.features
    assert engine.layer_inputs[1].shape == (ds.num_vertices, cfg.hidden_features)
    assert engine.logits.shape == (ds.num_vertices, ds.num_classes)


def test_from_checkpoint_rebuilds_architecture(trained, checkpoint_path):
    ds, trainer, cfg = trained
    eng = InferenceEngine.from_checkpoint(checkpoint_path, ds)
    assert eng.model_kind == cfg.model
    assert eng.checkpoint_epoch == 3
    eng.precompute()
    assert np.array_equal(eng.logits, _direct_logits(trained))


def test_threaded_precompute_bit_identical(trained, checkpoint_path):
    """num_threads routes the layer-wise precompute pass through the
    parallel engine without changing a bit of the tables."""
    ds, _, _ = trained
    eng = InferenceEngine.from_checkpoint(checkpoint_path, ds, num_threads=2)
    assert all(layer.num_threads == 2 for layer in eng.model.layers)
    eng.precompute()
    assert np.array_equal(eng.logits, _direct_logits(trained))
    assert eng.stats()["num_threads"] == 2


def test_from_checkpoint_config_override(trained, checkpoint_path):
    """An explicit config is still overlaid by the checkpoint's meta,
    so the model shape always matches the stored weights."""
    ds, _, cfg = trained
    base = TrainConfig(num_layers=3, hidden_features=64, model="sage")
    eng = InferenceEngine.from_checkpoint(checkpoint_path, ds, config=base)
    assert eng.model.num_parameters() > 0
    assert eng.config.num_layers == cfg.num_layers
    assert eng.config.hidden_features == cfg.hidden_features


def test_predict_labels_and_topk(engine):
    ids = np.arange(10)
    rows = engine.predict(ids)
    assert np.array_equal(engine.predict_labels(ids), np.argmax(rows, axis=1))
    classes, scores = engine.topk(ids, k=3)
    assert classes.shape == scores.shape == (10, 3)
    # descending scores, first column is the argmax
    assert np.all(np.diff(scores, axis=1) <= 0)
    assert np.array_equal(classes[:, 0], np.argmax(rows, axis=1))
    # exact rows: top-3 == argsort head
    for row, crow in zip(rows, classes):
        expected = np.argsort(-row, kind="stable")[:3]
        assert set(crow) == set(expected)


def test_topk_k_clamped_to_num_classes(engine):
    classes, _ = engine.topk([0], k=10_000)
    assert classes.shape[1] == engine.dataset.num_classes


def test_vertex_id_validation(engine):
    with pytest.raises(ValueError, match="vertex ids"):
        engine.predict([engine.num_vertices])
    with pytest.raises(ValueError, match="vertex ids"):
        engine.predict([-1])


def test_lazy_precompute(trained):
    ds, trainer, cfg = trained
    eng = InferenceEngine(ds, trainer.model, cfg)
    assert eng.logits is None and not eng.stats()["ready"]
    eng.predict([0])  # ensure_ready triggers the pass
    assert eng.num_precomputes == 1 and eng.stats()["ready"]


def test_unsupported_model_rejected(reddit_mini):
    gat = GAT(reddit_mini.feature_dim, 8, reddit_mini.num_classes)
    with pytest.raises(TypeError, match="serving supports"):
        model_kind(gat)


def test_engine_owns_feature_copy(trained, engine):
    ds, _, _ = trained
    engine.features[0, 0] += 1.0
    assert ds.features[0, 0] != engine.features[0, 0]
