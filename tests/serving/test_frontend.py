"""ServingFrontend unit tests: admission, shedding, deadlines, lifecycle.

These run against a stub service — the pool's behaviour is independent
of what executes on it (the engine-backed paths are covered by the
concurrency / fault / drain suites).
"""

import threading
import time

import pytest

from repro.serving import (
    ReadWriteGate,
    RequestRejected,
    RequestTimeout,
    ServiceDraining,
    ServingFrontend,
)

from harness import JOIN_TIMEOUT_S, join_all


class StubService:
    """Just enough surface for the frontend (no engine underneath)."""

    cache = None

    def __init__(self):
        self.updates = []

    def update_edges(self, add=None, remove=None):
        self.updates.append(("edges", add, remove))
        return "edges-ok"

    def update_features(self, vertex_ids, new_rows):
        self.updates.append(("features", vertex_ids, new_rows))
        return "features-ok"


@pytest.fixture
def frontend():
    fe = ServingFrontend(StubService(), num_workers=2, max_queue=4,
                         default_timeout_s=5.0, drain_timeout_s=5.0)
    yield fe
    fe.close()


def test_call_runs_on_the_pool_and_returns(frontend):
    worker_names = []
    result = frontend.call(
        "predict",
        lambda: worker_names.append(threading.current_thread().name) or 42,
    )
    assert result == 42
    assert worker_names and worker_names[0].startswith("repro-serve-worker")
    snap = frontend.metrics_snapshot()
    assert snap["endpoints"]["predict"]["ok"] == 1
    assert snap["totals"]["requests"] == 1


def test_exceptions_propagate_with_outcome(frontend):
    with pytest.raises(ValueError, match="bad ids"):
        frontend.call("predict", lambda: (_ for _ in ()).throw(ValueError("bad ids")))
    with pytest.raises(RuntimeError, match="boom"):
        frontend.call("predict", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    ep = frontend.metrics_snapshot()["endpoints"]["predict"]
    assert ep["bad_request"] == 1 and ep["error"] == 1 and ep["ok"] == 0
    # the pool survives failures: the next request still executes
    assert frontend.call("predict", lambda: "alive") == "alive"


def test_queue_full_rejects_with_429():
    fe = ServingFrontend(StubService(), num_workers=1, max_queue=1,
                         default_timeout_s=5.0)
    release = threading.Event()
    running = threading.Event()
    results = []

    def occupy():
        results.append(fe.call("predict", lambda: (
            running.set(), release.wait(JOIN_TIMEOUT_S))[1]))

    t1 = threading.Thread(target=occupy, daemon=True)
    t1.start()
    assert running.wait(JOIN_TIMEOUT_S)  # worker busy, depth 0

    t2 = threading.Thread(
        target=lambda: results.append(fe.call("predict", lambda: True)),
        daemon=True,
    )
    t2.start()
    # wait for t2's request to be admitted (depth 1 == max_queue)
    deadline = time.monotonic() + JOIN_TIMEOUT_S
    while fe.queue_depth < 1:
        assert time.monotonic() < deadline, "request never queued"
        time.sleep(0.001)

    with pytest.raises(RequestRejected) as err:
        fe.call("predict", lambda: True)
    assert err.value.status == 429
    assert err.value.retry_after_s > 0
    assert fe.metrics_snapshot()["endpoints"]["predict"]["rejected_queue_full"] == 1

    release.set()
    join_all([t1, t2])
    assert results == [True, True]  # both admitted requests completed
    fe.close()


def test_timeout_cancels_queued_work():
    """A request that misses its deadline answers 503; if it was still
    queued it is cancelled and its body never executes."""
    fe = ServingFrontend(StubService(), num_workers=1, max_queue=4,
                         default_timeout_s=5.0)
    release = threading.Event()
    running = threading.Event()
    executed = []

    t1 = threading.Thread(
        target=lambda: fe.call("predict", lambda: (
            running.set(), release.wait(JOIN_TIMEOUT_S))),
        daemon=True,
    )
    t1.start()
    assert running.wait(JOIN_TIMEOUT_S)

    with pytest.raises(RequestTimeout) as err:
        fe.call("predict", lambda: executed.append(1), timeout_s=0.05)
    assert err.value.status == 503
    release.set()
    join_all([t1])
    # give the worker a beat to drain the queue, then check the
    # cancelled body never ran
    deadline = time.monotonic() + JOIN_TIMEOUT_S
    while fe.queue_depth or fe.in_flight:
        assert time.monotonic() < deadline
        time.sleep(0.001)
    assert executed == []
    assert fe.metrics_snapshot()["endpoints"]["predict"]["timeout"] == 1
    fe.close()


def test_per_endpoint_timeouts(frontend):
    frontend.timeouts["topk"] = 0.125
    assert frontend.timeout_for("topk") == 0.125
    assert frontend.timeout_for("predict") == 5.0


def test_drained_context_sheds_and_reopens(frontend):
    assert frontend.healthz() == {"status": "ok"}
    with frontend.drained():
        assert frontend.draining
        assert frontend.healthz() == {"status": "draining"}
        with pytest.raises(ServiceDraining) as err:
            frontend.call("predict", lambda: 1)
        assert err.value.status == 503
    assert not frontend.draining
    assert frontend.call("predict", lambda: 2) == 2
    snap = frontend.metrics_snapshot()
    assert snap["num_drains"] == 1
    assert snap["endpoints"]["predict"]["rejected_draining"] == 1


def test_updates_delegate_to_service(frontend):
    assert frontend.update_edges(add=[(0, 1)]) == "edges-ok"
    assert frontend.update_features([0], [[1.0]]) == "features-ok"
    assert [u[0] for u in frontend.service.updates] == ["edges", "features"]
    snap = frontend.metrics_snapshot()
    assert snap["num_drains"] == 2
    assert snap["endpoints"]["update_edges"]["ok"] == 1
    assert snap["endpoints"]["update_features"]["ok"] == 1


def test_update_failure_records_and_reopens(frontend):
    def bad_update(add=None, remove=None):
        raise ValueError("malformed pairs")

    frontend.service.update_edges = bad_update
    with pytest.raises(ValueError, match="malformed pairs"):
        frontend.update_edges(add=[("x", "y")])
    assert not frontend.draining  # admission reopened despite the failure
    assert frontend.metrics_snapshot()["endpoints"]["update_edges"]["bad_request"] == 1
    assert frontend.call("predict", lambda: "served") == "served"


def test_drain_timeout_fails_instead_of_wedging():
    fe = ServingFrontend(StubService(), num_workers=1, max_queue=4,
                         default_timeout_s=30.0, drain_timeout_s=0.1)
    release = threading.Event()
    running = threading.Event()
    t = threading.Thread(
        target=lambda: fe.call("predict", lambda: (
            running.set(), release.wait(JOIN_TIMEOUT_S))),
        daemon=True,
    )
    t.start()
    assert running.wait(JOIN_TIMEOUT_S)
    with pytest.raises(Exception) as err:
        fe.update_edges(add=[(0, 1)])
    assert isinstance(err.value, TimeoutError)
    assert not fe.draining  # a stuck request must not brick the server
    release.set()
    join_all([t])
    assert fe.call("predict", lambda: "recovered") == "recovered"
    fe.close()


def test_close_rejects_new_and_fails_queued():
    fe = ServingFrontend(StubService(), num_workers=1, max_queue=4)
    assert fe.call("predict", lambda: 1) == 1
    fe.close()
    fe.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        fe.call("predict", lambda: 1)


def test_constructor_validation():
    with pytest.raises(ValueError, match="num_workers"):
        ServingFrontend(StubService(), num_workers=0)
    with pytest.raises(ValueError, match="max_queue"):
        ServingFrontend(StubService(), max_queue=0)
    with pytest.raises(ValueError, match="default_timeout_s"):
        ServingFrontend(StubService(), default_timeout_s=0.0)


# -- the reader-writer gate -------------------------------------------------------


def test_gate_readers_share_writers_exclude():
    gate = ReadWriteGate()
    in_read = threading.Event()
    release_read = threading.Event()
    write_done = threading.Event()

    def reader():
        with gate.read():
            in_read.set()
            release_read.wait(JOIN_TIMEOUT_S)

    def writer():
        with gate.write():
            write_done.set()

    r = threading.Thread(target=reader, daemon=True)
    r.start()
    assert in_read.wait(JOIN_TIMEOUT_S)
    assert gate.active_readers == 1

    w = threading.Thread(target=writer, daemon=True)
    w.start()
    time.sleep(0.05)
    assert not write_done.is_set()  # writer blocked behind the reader

    # writer-preference: a NEW reader queues behind the waiting writer
    late = threading.Event()

    def late_reader():
        with gate.read():
            late.set()

    lr = threading.Thread(target=late_reader, daemon=True)
    lr.start()
    time.sleep(0.05)
    assert not late.is_set()

    release_read.set()
    join_all([r, w, lr])
    assert write_done.is_set() and late.is_set()
    assert gate.active_readers == 0 and not gate.writer_active


# -- exception classification through the worker pool -------------------------


def test_cancellation_exceptions_propagate_uncounted(frontend):
    """The pool's broad handlers are classified, not absorbent: a
    ``BaseException``-derived cancellation raised by the request body
    must reach the caller intact (the worker's ``except BaseException``
    only re-routes it through the future; ``call``'s ``except
    Exception`` error bucket must not see it)."""
    from asyncio import CancelledError  # BaseException-derived since 3.8

    def cancelled():
        raise CancelledError("torn down mid-request")

    with pytest.raises(CancelledError, match="torn down mid-request"):
        frontend.call("predict", cancelled)

    class Teardown(BaseException):
        pass

    with pytest.raises(Teardown):
        frontend.call("predict", lambda: (_ for _ in ()).throw(Teardown()))

    # Neither cancellation landed in the error bucket, and the pool is
    # still alive — a plain request afterwards succeeds.
    assert frontend.call("predict", lambda: "ok") == "ok"
    snap = frontend.metrics_snapshot()
    assert snap["endpoints"]["predict"].get("error", 0) == 0
    assert snap["endpoints"]["predict"]["ok"] == 1


def test_plain_errors_are_counted_then_reraised(frontend):
    class Boom(RuntimeError):
        pass

    with pytest.raises(Boom):
        frontend.call("predict", lambda: (_ for _ in ()).throw(Boom()))
    snap = frontend.metrics_snapshot()
    assert snap["endpoints"]["predict"]["error"] == 1
