"""Reusable stress/fault fixture layer over the serving load generator.

The open-loop machinery in :mod:`repro.serving.loadgen` is the product
path (``repro loadgen``, ``benchmarks/bench_serving.py``); this module
is the test-suite face of the same code: seeded schedules, deterministic
virtual-clock replays, fault-injection wrappers for the engine lookup,
and thread-herd helpers with deadlock-safe joins.  The concurrency,
fault, drain, and metrics suites all build on it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

import numpy as np

from repro.serving import (
    IncrementalRefresher,
    PredictionService,
    ResultCache,
    ServingFrontend,
)
from repro.serving.loadgen import (
    ARRIVALS,
    FrontendTarget,
    VirtualClock,
    build_schedule,
    run_open_loop,
)

#: joins that outlive this are deadlocks, not slowness — fail, don't hang.
JOIN_TIMEOUT_S = 30.0


# -- service / frontend construction ----------------------------------------------


def make_service(
    engine,
    cache_size: int = 128,
    batch: bool = True,
    refresher: bool = True,
    full_threshold: float = 0.25,
) -> PredictionService:
    """The full production composition (cache + batcher + refresher)."""
    return PredictionService(
        engine,
        cache=ResultCache(cache_size) if cache_size > 0 else None,
        batch=batch,
        max_batch=64,
        max_wait_ms=0.5,
        refresher=(
            IncrementalRefresher(engine, full_threshold=full_threshold)
            if refresher
            else None
        ),
    )


def make_frontend(service, **kwargs) -> ServingFrontend:
    kwargs.setdefault("num_workers", 4)
    kwargs.setdefault("max_queue", 64)
    kwargs.setdefault("default_timeout_s", 10.0)
    kwargs.setdefault("drain_timeout_s", 10.0)
    return ServingFrontend(service, **kwargs)


def seeded_run(
    frontend,
    seed: int = 0,
    rate: float = 200.0,
    duration_s: float = 1.0,
    arrival: str = "poisson",
    mix=None,
    num_clients: int = 8,
    feature_dim: Optional[int] = None,
    synchronous: bool = False,
    clock=None,
):
    """One seeded open-loop run against an in-process frontend."""
    rng = np.random.default_rng(seed)
    arrivals = ARRIVALS[arrival](rate, duration_s, rng)
    schedule = build_schedule(
        arrivals,
        frontend.service.engine.num_vertices,
        rng,
        mix=mix,
        feature_dim=feature_dim,
    )
    report = run_open_loop(
        FrontendTarget(frontend),
        schedule,
        num_clients=num_clients,
        clock=clock,
        synchronous=synchronous,
    )
    return schedule, report


def virtual_schedule(seed: int = 0, rate: float = 100.0, duration_s: float = 2.0,
                     arrival: str = "poisson", num_vertices: int = 64, **kwargs):
    """A seeded schedule with no engine behind it (pure-loadgen tests)."""
    rng = np.random.default_rng(seed)
    arrivals = ARRIVALS[arrival](rate, duration_s, rng)
    return build_schedule(arrivals, num_vertices, rng, **kwargs)


# -- fault-injection lookup wrappers ----------------------------------------------
#
# Each is a ``wrapper(old_lookup) -> new_lookup`` for
# ``PredictionService.wrap_lookup`` — the supported seam into the
# engine-call layer (it covers both the direct path and the
# micro-batcher's compute function).


def slow_lookup(delay_s: float):
    """Every engine call takes at least ``delay_s`` (timeout tests)."""

    def wrapper(old):
        def lookup(ids):
            time.sleep(delay_s)
            return old(ids)

        return lookup

    return wrapper


def flaky_lookup(message: str = "injected engine failure", every: int = 1):
    """Raise ``RuntimeError`` on every ``every``-th engine call."""

    def wrapper(old):
        calls = [0]
        lock = threading.Lock()

        def lookup(ids):
            with lock:
                calls[0] += 1
                fail = calls[0] % every == 0
            if fail:
                raise RuntimeError(message)
            return old(ids)

        return lookup

    return wrapper


def blocking_lookup(release: threading.Event, started: Optional[threading.Event] = None):
    """Engine calls park on ``release`` (queue-full / drain-window tests);
    ``started`` fires once a call is actually in flight."""

    def wrapper(old):
        def lookup(ids):
            if started is not None:
                started.set()
            if not release.wait(timeout=JOIN_TIMEOUT_S):
                raise TimeoutError("blocking_lookup never released")
            return old(ids)

        return lookup

    return wrapper


# -- thread herds -----------------------------------------------------------------


def join_all(threads: List[threading.Thread], timeout_s: float = JOIN_TIMEOUT_S):
    """Join with a deadline; a survivor means a deadlock — assert, never
    hang the suite (threads are daemons, so the run still exits)."""
    deadline = time.monotonic() + timeout_s
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"threads deadlocked: {alive}"


def hammer(fn: Callable[[int], None], num_threads: int, iterations: int):
    """Run ``fn(thread_index)`` ``iterations`` times on each of
    ``num_threads`` concurrent threads; re-raise the first failure."""
    errors: List[BaseException] = []
    errors_lock = threading.Lock()
    start = threading.Barrier(num_threads)

    def body(idx: int) -> None:
        try:
            start.wait(timeout=JOIN_TIMEOUT_S)
            for _ in range(iterations):
                fn(idx)
        except BaseException as exc:  # noqa: BLE001 — surfaced via join_all
            with errors_lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(i,), name=f"hammer-{i}", daemon=True)
        for i in range(num_threads)
    ]
    for t in threads:
        t.start()
    join_all(threads)
    if errors:
        raise errors[0]


# -- torn-read checking -----------------------------------------------------------


class SnapshotChecker:
    """Registers full-precompute snapshots; classifies served rows.

    The no-torn-reads contract: every response must equal the
    corresponding rows of exactly ONE registered snapshot — a row mix of
    pre- and post-update tables matches none of them.
    """

    def __init__(self):
        self._snapshots: List[np.ndarray] = []
        self._lock = threading.Lock()

    def register(self, logits: np.ndarray) -> None:
        with self._lock:
            self._snapshots.append(np.array(logits, copy=True))

    @property
    def num_snapshots(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def matches(self, ids: np.ndarray, rows: np.ndarray) -> bool:
        """True iff ``rows`` equals ``snapshot[ids]`` for some snapshot."""
        with self._lock:
            snapshots = list(self._snapshots)
        return any(np.array_equal(rows, snap[ids]) for snap in snapshots)

    def assert_consistent(self, ids: np.ndarray, rows: np.ndarray) -> None:
        assert self.matches(ids, rows), (
            f"torn read: rows for {ids.tolist()} match none of "
            f"{len(self._snapshots)} registered table versions"
        )
