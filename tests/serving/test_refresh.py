"""Incremental refresh: affected sets, exactness vs full recompute,
threshold fallback, deferred on-demand serving."""

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.serving import (
    IncrementalRefresher,
    InferenceEngine,
    OnDemandInference,
    affected_sets,
)
from repro.serving.refresh import out_neighbors, row_subgraph


def _updated_copy_engine(trained, ids, rows):
    """Fresh engine over the same model with features updated up front —
    the ground truth a refresh must match exactly."""
    ds, trainer, cfg = trained
    eng = InferenceEngine(ds, trainer.model, cfg)
    eng.features[ids] = rows
    return eng.precompute()


def _rand_update(ds, n=3, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.choice(ds.num_vertices, size=n, replace=False)
    rows = rng.standard_normal((n, ds.feature_dim)).astype(np.float32)
    return ids, rows


# -- structure helpers -----------------------------------------------------------


def test_affected_sets_on_chain():
    # 0 -> 1 -> 2 -> 3: changing 0 reaches one extra hop per layer
    g = from_edge_list([(0, 1), (1, 2), (2, 3)], num_vertices=4)
    affected = affected_sets(g, np.array([0]), num_layers=2)
    assert affected[0].tolist() == [0, 1]
    assert affected[1].tolist() == [0, 1, 2]


def test_out_neighbors_matches_reverse_edges():
    g = from_edge_list([(0, 1), (0, 2), (3, 0), (2, 1)], num_vertices=4)
    assert out_neighbors(g, np.array([0])).tolist() == [1, 2]
    assert out_neighbors(g, np.array([3])).tolist() == [0]
    assert out_neighbors(g, np.array([1])).tolist() == []


def test_row_subgraph_preserves_rows(tiny_graph):
    rows = np.array([1, 3])
    sub = row_subgraph(tiny_graph, rows)
    assert sub.num_vertices == 2
    assert sub.num_src == tiny_graph.num_src
    for local, v in enumerate(rows):
        assert sub.neighbors(local).tolist() == tiny_graph.neighbors(v).tolist()
        assert sub.edge_ids_of(local).tolist() == tiny_graph.edge_ids_of(v).tolist()


# -- exactness -------------------------------------------------------------------


def test_incremental_refresh_matches_full_recompute(trained, engine):
    ds, _, _ = trained
    ids, rows = _rand_update(ds)
    stats = IncrementalRefresher(engine, full_threshold=1.0).update_features(
        ids, rows
    )
    assert stats.mode == "incremental"
    truth = _updated_copy_engine(trained, ids, rows)
    assert np.array_equal(engine.logits, truth.logits)
    for got, want in zip(engine.layer_inputs, truth.layer_inputs):
        assert np.array_equal(got, want)


def test_full_fallback_above_threshold(trained, engine):
    ds, _, _ = trained
    ids, rows = _rand_update(ds, seed=1)
    ref = IncrementalRefresher(engine, full_threshold=0.0)
    stats = ref.update_features(ids, rows)
    assert stats.mode == "full" and ref.num_full == 1
    truth = _updated_copy_engine(trained, ids, rows)
    assert np.array_equal(engine.logits, truth.logits)


def test_refresh_stats_accounting(trained, engine):
    ds, _, _ = trained
    ids, rows = _rand_update(ds, seed=2)
    stats = IncrementalRefresher(engine, full_threshold=1.0).update_features(
        ids, rows
    )
    assert stats.num_updated == ids.size
    assert len(stats.affected_per_layer) == engine.num_layers
    # affected sets grow monotonically and bound the recompute
    assert list(stats.affected_per_layer) == sorted(stats.affected_per_layer)
    assert stats.rows_recomputed == sum(stats.affected_per_layer)
    assert 0 < stats.affected_fraction <= 1.0


def test_duplicate_ids_in_batch_dedupe_last_wins(trained, engine):
    """Repeated vertex ids within one batch collapse to one write (the
    last row, matching NumPy fancy-assignment) and one refresh."""
    ds, _, _ = trained
    rng = np.random.default_rng(4)
    rows = rng.standard_normal((3, ds.feature_dim)).astype(np.float32)
    ids = np.array([5, 9, 5])  # 5 appears twice; rows[2] must win
    stats = IncrementalRefresher(engine, full_threshold=1.0).update_features(
        ids, rows
    )
    assert stats.num_updated == 2  # distinct vertices only
    assert np.array_equal(engine.features[5], rows[2])
    assert np.array_equal(engine.features[9], rows[1])
    truth = _updated_copy_engine(trained, np.array([5, 9]), rows[[2, 1]])
    assert np.array_equal(engine.logits, truth.logits)


def test_deferred_update_of_already_stale_vertex(trained, engine):
    """Updating a vertex that is already stale must not grow the stale
    set with duplicates, and the stale-aware path serves the newest
    feature rows."""
    ds, _, _ = trained
    ref = IncrementalRefresher(engine, full_threshold=0.0, deferred=True)
    rng = np.random.default_rng(9)
    ids = np.array([3, 6])
    rows_a = rng.standard_normal((2, ds.feature_dim)).astype(np.float32)
    ref.update_features(ids, rows_a)
    stale_after_first = np.array(ref.stale, copy=True)
    assert np.isin(ids, stale_after_first).all()

    rows_b = rng.standard_normal((2, ds.feature_dim)).astype(np.float32)
    stats = ref.update_features(ids, rows_b)
    assert stats.mode == "deferred"
    # still sorted-unique: re-updating stale vertices adds no duplicates
    assert np.array_equal(ref.stale, np.unique(ref.stale))
    assert np.array_equal(ref.stale, stale_after_first)

    truth = _updated_copy_engine(trained, ids, rows_b)  # latest rows win
    probe = np.concatenate([ids, [int(ref.stale[-1])]])
    assert np.array_equal(ref.predict(probe), truth.logits[probe])
    ref.resolve()
    assert np.array_equal(engine.logits, truth.logits)


def test_update_shape_validation(engine):
    with pytest.raises(ValueError, match="new_rows shape"):
        IncrementalRefresher(engine).update_features(
            [0, 1], np.zeros((3, engine.features.shape[1]), dtype=np.float32)
        )


# -- on-demand path ---------------------------------------------------------------


def test_on_demand_exact_at_full_fanout(trained, engine):
    ds, _, _ = trained
    ids = np.array([5, 0, 11])  # unsorted on purpose: order must be preserved
    od = OnDemandInference(engine)
    assert np.array_equal(od.predict(ids), engine.logits[ids])
    assert od.num_requests == 1 and od.num_sampled_edges > 0


def test_on_demand_small_fanout_is_estimate(trained, engine):
    ds, _, cfg = trained
    od = OnDemandInference(engine, fanouts=[2] * cfg.num_layers)
    rows = od.predict([0, 1])
    assert rows.shape == (2, ds.num_classes)  # approximate, but well-formed


def test_deferred_mode_serves_fresh_rows(trained, engine):
    ds, _, _ = trained
    ids, rows = _rand_update(ds, seed=3)
    ref = IncrementalRefresher(engine, full_threshold=0.0, deferred=True)
    stats = ref.update_features(ids, rows)
    assert stats.mode == "deferred"
    assert ref.stale.size == stats.affected_per_layer[-1]

    truth = _updated_copy_engine(trained, ids, rows)
    probe = np.concatenate([ids[:2], [int(ref.stale[0])]])
    # stale tables still answer engine.predict; refresher.predict is fresh
    assert np.array_equal(ref.predict(probe), truth.logits[probe])

    # resolve() clears staleness with one full pass
    ref.resolve()
    assert ref.stale.size == 0
    assert np.array_equal(engine.logits, truth.logits)


def test_small_update_after_deferred_stays_deferred(trained, engine):
    """With staleness outstanding, an incremental pass would read
    poisoned layer tables — every further update must defer until
    resolve() clears the debt."""
    ds, _, _ = trained
    ref = IncrementalRefresher(engine, full_threshold=0.5, deferred=True)
    ids_a, rows_a = _rand_update(ds, seed=6)
    # force staleness regardless of graph density
    ref.full_threshold = 0.0
    assert ref.update_features(ids_a, rows_a).mode == "deferred"
    ref.full_threshold = 1.0  # small update would normally go incremental
    ids_b, rows_b = _rand_update(ds, seed=7)
    stats = ref.update_features(ids_b, rows_b)
    assert stats.mode == "deferred"

    # stale-aware predict still matches ground truth for both updates
    truth = _updated_copy_engine(trained, ids_a, rows_a)
    truth.features[ids_b] = rows_b
    truth.precompute()
    probe = np.concatenate([ids_a[:2], ids_b[:2]])
    assert np.array_equal(ref.predict(probe), truth.logits[probe])
    ref.resolve()
    assert np.array_equal(engine.logits, truth.logits)


def test_refresh_bumps_engine_version(trained, engine):
    ds, _, _ = trained
    v0 = engine.version
    ids, rows = _rand_update(ds, seed=8)
    IncrementalRefresher(engine, full_threshold=1.0).update_features(ids, rows)
    assert engine.version > v0


def test_stats_surface(engine):
    ref = IncrementalRefresher(engine)
    s = ref.stats()
    assert {"incremental", "full", "deferred", "stale_vertices"} <= set(s)
