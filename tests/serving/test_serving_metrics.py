"""/metrics correctness: server-side counters vs client-side truth.

A seeded open-loop run is measured independently on both sides of the
request path — the load harness records every outcome and latency at
the client, ``ServingMetrics`` records them in the frontend.  The
counters must agree exactly; the latency quantiles (same estimator,
measured around the same span) must agree tightly.
"""

import numpy as np
import pytest

from repro.serving import ServingMetrics, percentiles_ms
from repro.serving.metrics import OUTCOMES

from harness import make_frontend, make_service, seeded_run


@pytest.fixture
def serving(engine):
    svc = make_service(engine)
    fe = make_frontend(svc)
    yield svc, fe
    fe.close()
    svc.close()


def test_counters_match_client_side_exactly(trained, serving):
    ds, _, _ = trained
    svc, fe = serving
    _, report = seeded_run(
        fe, seed=17, rate=300.0, duration_s=1.0,
        mix={"predict": 0.6, "topk": 0.25, "update_edges": 0.1,
             "update_features": 0.05},
        feature_dim=ds.feature_dim,
    )
    snap = fe.metrics_snapshot()

    # every request the client fired is in exactly one server bucket
    assert snap["totals"]["requests"] == report.offered
    for outcome in OUTCOMES:
        assert snap["totals"][outcome] == report.count(outcome), outcome
    # and per endpoint too
    client_eps = report.per_endpoint()
    assert set(snap["endpoints"]) == set(client_eps)
    for name, client in client_eps.items():
        server = snap["endpoints"][name]
        assert server["requests"] == client["requests"], name
        for outcome in OUTCOMES:
            assert server[outcome] == client[outcome], (name, outcome)

    # conservation on the server side
    totals = snap["totals"]
    assert totals["requests"] == sum(totals[o] for o in OUTCOMES)
    # every update that was served drained exactly once
    updates_ok = sum(
        snap["endpoints"].get(ep, {}).get("ok", 0)
        for ep in ("update_edges", "update_features")
    )
    assert snap["num_drains"] == updates_ok > 0


def test_latency_quantiles_agree_with_client(serving):
    """Server quantiles vs client quantiles of the same requests.

    The client's ``call_s`` wraps the frontend call, the server measures
    inside it — identical estimator (shared ``percentiles_ms``), so the
    two p50/p99 differ only by call overhead: tight tolerance."""
    svc, fe = serving
    _, report = seeded_run(fe, seed=23, rate=200.0, duration_s=1.0,
                           mix={"predict": 1.0})
    snap = fe.metrics_snapshot()
    server = snap["endpoints"]["predict"]
    client = percentiles_ms(report.latencies("ok", which="call_s"))
    assert report.count("ok") == server["ok"] > 0
    for q in ("p50_ms", "p99_ms"):
        assert server[q] == pytest.approx(client[q], abs=25.0), q
        assert server[q] <= client[q] + 1e-6  # server span nests inside


def test_open_loop_latency_dominates_call_latency(serving):
    """Scheduled-arrival latency >= call latency for every request —
    the open-loop number includes client queueing by construction."""
    _, fe = serving
    _, report = seeded_run(fe, seed=5, rate=400.0, duration_s=0.5,
                           num_clients=2, mix={"predict": 1.0})
    ok = [r for r in report.records if r.outcome == "ok"]
    assert ok
    for rec in ok:
        assert rec.latency_s >= rec.call_s - 1e-6


def test_seeded_runs_fire_identical_schedules(trained, serving):
    """Same seed -> byte-identical request sequence (the reproducibility
    the stress suites and the benchmark sweep both rely on)."""
    ds, _, _ = trained
    _, fe = serving
    sched_a, _ = seeded_run(fe, seed=99, rate=100.0, duration_s=0.5,
                            feature_dim=ds.feature_dim)
    sched_b, _ = seeded_run(fe, seed=99, rate=100.0, duration_s=0.5,
                            feature_dim=ds.feature_dim)
    assert len(sched_a) == len(sched_b)
    for ra, rb in zip(sched_a, sched_b):
        assert (ra.t, ra.endpoint) == (rb.t, rb.endpoint)
        assert np.array_equal(ra.vertices, rb.vertices)


def test_metrics_recorder_validation_and_window():
    m = ServingMetrics(window=4)
    with pytest.raises(ValueError, match="unknown outcome"):
        m.record("predict", "teapot")
    with pytest.raises(ValueError, match="window"):
        ServingMetrics(window=0)
    for i in range(10):
        m.record("predict", "ok", latency_s=float(i))
    ep = m.snapshot()["endpoints"]["predict"]
    assert ep["ok"] == 10  # counters are exact even when the window rolls
    # quantiles come from the bounded window (last 4 samples: 6..9 s)
    assert ep["p50_ms"] == pytest.approx(7500.0)
    # the running mean is over ALL samples, not the window
    assert ep["mean_ms"] == pytest.approx(4500.0)


def test_empty_window_omits_percentile_keys():
    """An endpoint with zero served requests reports *no* latency
    quantiles rather than a fabricated 0.0 (which dashboards would read
    as an impossibly fast server)."""
    assert percentiles_ms([]) == {}
    m = ServingMetrics()
    for _ in range(3):
        m.record("predict", "rejected_queue_full", latency_s=0.0001)
    ep = m.snapshot()["endpoints"]["predict"]
    assert ep["rejected_queue_full"] == 3
    assert "p50_ms" not in ep and "p99_ms" not in ep
    # one served request brings the keys back
    m.record("predict", "ok", latency_s=0.050)
    ep = m.snapshot()["endpoints"]["predict"]
    assert ep["p50_ms"] == pytest.approx(50.0)
    assert ep["p99_ms"] == pytest.approx(50.0)


def test_rejections_do_not_pollute_latency_quantiles():
    m = ServingMetrics()
    m.record("predict", "ok", latency_s=0.100)
    for _ in range(50):
        m.record("predict", "rejected_queue_full", latency_s=0.0001)
    ep = m.snapshot()["endpoints"]["predict"]
    # 50 microsecond-fast rejections must not drag served p50 down
    assert ep["p50_ms"] == pytest.approx(100.0)
    assert ep["rejected_queue_full"] == 50
