"""On-disk feature layout: round-trip fidelity and loud manifest failures."""

import json
import os

import numpy as np
import pytest

from repro.featurestore.storage import (
    DATA_NAME,
    FORMAT_VERSION,
    FeatureLayoutError,
    data_path,
    manifest_path,
    open_feature_layout,
    read_manifest,
    write_feature_layout,
)


def _write(tmp_path, arr, **kw):
    d = str(tmp_path / "layout")
    write_feature_layout(d, arr, **kw)
    return d


@pytest.mark.parametrize(
    "dtype", ["float32", "float64", "float16", "int32", "int64", "uint8"]
)
def test_round_trip_exact(tmp_path, dtype):
    rng = np.random.default_rng(3)
    arr = (rng.standard_normal((37, 5)) * 100).astype(dtype)
    d = _write(tmp_path, arr)
    out, manifest = open_feature_layout(d)
    assert out.dtype == np.dtype(dtype)
    assert out.shape == (37, 5)
    np.testing.assert_array_equal(np.asarray(out), arr)
    assert manifest["shape"] == (37, 5)
    assert manifest["nbytes"] == arr.nbytes


def test_mapped_view_is_read_only(tmp_path):
    arr = np.arange(12, dtype=np.float32).reshape(4, 3)
    out, _ = open_feature_layout(_write(tmp_path, arr))
    with pytest.raises((ValueError, RuntimeError)):
        out[0, 0] = 1.0


def test_chunked_writes_are_byte_identical(tmp_path):
    arr = np.random.default_rng(0).standard_normal((100, 7)).astype(np.float32)
    d1 = str(tmp_path / "one")
    d2 = str(tmp_path / "many")
    write_feature_layout(d1, arr, chunk_rows=1000)
    write_feature_layout(d2, arr, chunk_rows=3)
    with open(data_path(d1), "rb") as a, open(data_path(d2), "rb") as b:
        assert a.read() == b.read()


def test_byte_swapped_input_written_native(tmp_path):
    arr = np.arange(20, dtype=np.float32).reshape(4, 5)
    swapped = arr.astype(arr.dtype.newbyteorder())
    d = _write(tmp_path, swapped)
    out, manifest = open_feature_layout(d)
    assert manifest["dtype"].isnative
    np.testing.assert_array_equal(np.asarray(out), arr)


def test_empty_matrix_round_trips_read_only(tmp_path):
    arr = np.zeros((0, 8), dtype=np.float32)
    out, _ = open_feature_layout(_write(tmp_path, arr))
    assert out.shape == (0, 8)
    assert not out.flags.writeable


def test_write_rejects_bad_inputs(tmp_path):
    d = str(tmp_path / "x")
    with pytest.raises(FeatureLayoutError, match="2-D"):
        write_feature_layout(d, np.zeros(5, dtype=np.float32))
    with pytest.raises(FeatureLayoutError, match="dtype"):
        write_feature_layout(d, np.array([[object()]]))
    with pytest.raises(FeatureLayoutError, match="chunk_rows"):
        write_feature_layout(d, np.zeros((2, 2), dtype=np.float32), chunk_rows=0)


# -- manifest validation ----------------------------------------------------------


@pytest.fixture
def layout(tmp_path):
    d = str(tmp_path / "layout")
    write_feature_layout(
        d, np.arange(24, dtype=np.float32).reshape(6, 4)
    )
    return d


def _patch_manifest(d, **updates):
    with open(manifest_path(d)) as fh:
        m = json.load(fh)
    m.update(updates)
    with open(manifest_path(d), "w") as fh:
        json.dump(m, fh)


def test_missing_manifest(tmp_path):
    with pytest.raises(FeatureLayoutError, match="missing manifest.json"):
        read_manifest(str(tmp_path / "nowhere"))


def test_corrupt_manifest_json(layout):
    with open(manifest_path(layout), "w") as fh:
        fh.write("{not json")
    with pytest.raises(FeatureLayoutError, match="unreadable manifest"):
        read_manifest(layout)


def test_manifest_must_be_object(layout):
    with open(manifest_path(layout), "w") as fh:
        json.dump([1, 2, 3], fh)
    with pytest.raises(FeatureLayoutError, match="JSON object"):
        read_manifest(layout)


def test_manifest_missing_fields(layout):
    with open(manifest_path(layout)) as fh:
        m = json.load(fh)
    del m["dtype"], m["nbytes"]
    with open(manifest_path(layout), "w") as fh:
        json.dump(m, fh)
    with pytest.raises(FeatureLayoutError, match="missing fields.*dtype.*nbytes"):
        read_manifest(layout)


def test_version_mismatch(layout):
    _patch_manifest(layout, format_version=FORMAT_VERSION + 1)
    with pytest.raises(FeatureLayoutError, match="format version"):
        read_manifest(layout)


def test_garbage_dtype(layout):
    _patch_manifest(layout, dtype="not-a-dtype")
    with pytest.raises(FeatureLayoutError, match="not a NumPy dtype"):
        read_manifest(layout)


@pytest.mark.parametrize("shape", [[6], [6, 4, 1], [6, -4], [6, "4"], "64"])
def test_bad_shape(layout, shape):
    _patch_manifest(layout, shape=shape)
    with pytest.raises(FeatureLayoutError, match="shape"):
        read_manifest(layout)


def test_byte_order_contradicts_dtype(layout):
    # dtype says little-endian (on this machine), byte_order claims big
    other = "big" if np.dtype("<f4").isnative else "little"
    _patch_manifest(layout, byte_order=other)
    with pytest.raises(FeatureLayoutError, match="refusing to guess"):
        read_manifest(layout)


def test_foreign_endianness_refused(layout):
    """A consistent manifest from an other-endian machine fails with a
    message that says how to fix it, not with silently-garbled rows."""
    foreign = np.dtype("float32").newbyteorder()
    order = "big" if foreign.str.startswith(">") else "little"
    _patch_manifest(layout, dtype=foreign.str, byte_order=order)
    with pytest.raises(FeatureLayoutError, match="endian.*write_feature_layout"):
        read_manifest(layout)


def test_nbytes_inconsistent(layout):
    _patch_manifest(layout, nbytes=17)
    with pytest.raises(FeatureLayoutError, match="nbytes 17 does not match"):
        read_manifest(layout)


def test_data_file_missing(layout):
    os.remove(data_path(layout))
    with pytest.raises(FeatureLayoutError, match="feature file missing"):
        open_feature_layout(layout)


def test_truncated_data_file(layout):
    size = os.path.getsize(data_path(layout))
    with open(data_path(layout), "r+b") as fh:
        fh.truncate(size - 4)
    with pytest.raises(FeatureLayoutError, match="truncated"):
        open_feature_layout(layout)


def test_overgrown_data_file(layout):
    with open(data_path(layout), "ab") as fh:
        fh.write(b"\x00" * 8)
    with pytest.raises(FeatureLayoutError, match=str(DATA_NAME)):
        open_feature_layout(layout)
