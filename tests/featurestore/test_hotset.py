"""Hot-set cache: gather fidelity, counters, and cachesim policy choice."""

import numpy as np
import pytest

from repro.cachesim.lru import LRUFeatureCache
from repro.featurestore.hotset import (
    HotSetCache,
    choose_policy,
    predict_lru_hit_rate,
    predict_static_hit_rate,
    top_rows_by_weight,
)

N, D = 50, 6


@pytest.fixture
def matrix():
    return np.random.default_rng(0).standard_normal((N, D)).astype(np.float32)


def _fetch(matrix):
    def cold(ids):
        return matrix[ids]

    return cold


# -- predictions -------------------------------------------------------------------


def test_top_rows_by_weight_orders_and_breaks_ties_low_id():
    w = np.array([1.0, 5.0, 5.0, 0.0, 9.0])
    np.testing.assert_array_equal(top_rows_by_weight(w, 3), [4, 1, 2])
    assert top_rows_by_weight(w, 0).size == 0
    assert top_rows_by_weight(w, 99).size == 5


def test_predict_static_hit_rate_is_weight_mass():
    w = np.array([6.0, 3.0, 1.0, 0.0])
    assert predict_static_hit_rate(w, 1) == pytest.approx(0.6)
    assert predict_static_hit_rate(w, 2) == pytest.approx(0.9)
    assert predict_static_hit_rate(np.zeros(4), 2) == 0.0


def test_predict_lru_hit_rate_matches_direct_replay():
    trace = np.random.default_rng(1).integers(0, 20, size=500)
    cache = LRUFeatureCache(8)
    cache.access_many(trace)
    assert predict_lru_hit_rate(trace, 8) == pytest.approx(
        cache.hits / cache.accesses
    )
    assert predict_lru_hit_rate(np.zeros(0), 8) == 0.0


def test_choose_policy_static_on_skew_lru_on_recency():
    skewed = np.array([100.0, 50.0] + [1.0] * 48)
    d = choose_policy(skewed, capacity=2)
    assert d.policy == "static"
    assert d.predicted_hit_rate == d.static_hit_rate

    # uniform weights but a tight working set: the LRU replay wins
    uniform = np.ones(N)
    trace = np.tile(np.arange(4), 200)
    d = choose_policy(uniform, capacity=5, trace=trace)
    assert d.lru_hit_rate > d.static_hit_rate
    assert d.policy == "lru"
    assert d.predicted_hit_rate == d.lru_hit_rate

    # explicit policy is honored either way
    assert choose_policy(uniform, 5, trace=trace, policy="static").policy == "static"
    with pytest.raises(ValueError, match="unknown policy"):
        choose_policy(uniform, 5, policy="mru")


def test_policy_decision_round_trips_json(matrix):
    import json

    d = choose_policy(np.ones(N), 5, trace=np.arange(10))
    assert json.loads(json.dumps(d.to_json()))["capacity"] == 5


# -- static cache ------------------------------------------------------------------


def test_static_gather_matches_direct_slicing(matrix):
    hot_ids = top_rows_by_weight(np.arange(N, dtype=float), 10)
    cache = HotSetCache(N, 10, policy="static", hot_ids=hot_ids)
    cache.warm(_fetch(matrix))
    rng = np.random.default_rng(2)
    for _ in range(5):
        ids = rng.integers(0, N, size=33)
        np.testing.assert_array_equal(
            cache.gather(ids, _fetch(matrix)), matrix[ids]
        )
    assert cache.lookups == cache.hits + cache.misses == 5 * 33
    assert cache.evictions == 0


def test_static_warm_does_not_count_and_all_hot_skips_cold(matrix):
    hot_ids = np.arange(10)
    cache = HotSetCache(N, 10, policy="static", hot_ids=hot_ids)
    cache.warm(_fetch(matrix))
    assert cache.lookups == 0 and cache.hot_rows == 10

    calls = []

    def counting(ids):
        calls.append(ids.size)
        return matrix[ids]

    out = cache.gather(np.array([3, 7, 3, 9]), counting)
    np.testing.assert_array_equal(out, matrix[[3, 7, 3, 9]])
    assert calls == []  # all-hit fast path never touches the cold tier
    assert cache.hits == 4 and cache.misses == 0


def test_static_counts_hits_exactly(matrix):
    cache = HotSetCache(N, 5, policy="static", hot_ids=np.arange(5))
    ids = np.array([0, 1, 2, 30, 40])
    cache.gather(ids, _fetch(matrix))
    assert (cache.hits, cache.misses) == (3, 2)


def test_static_requires_valid_hot_ids():
    with pytest.raises(ValueError, match="hot_ids"):
        HotSetCache(N, 5, policy="static")
    with pytest.raises(ValueError, match="out of range"):
        HotSetCache(N, 5, policy="static", hot_ids=np.array([N + 3]))
    with pytest.raises(ValueError, match="capacity"):
        HotSetCache(N, 0, policy="static", hot_ids=np.zeros(0, dtype=np.int64))
    with pytest.raises(ValueError, match="unknown policy"):
        HotSetCache(N, 5, policy="fifo")


# -- LRU cache ---------------------------------------------------------------------


def test_lru_gather_matches_direct_slicing(matrix):
    cache = HotSetCache(N, 8, policy="lru")
    rng = np.random.default_rng(3)
    for _ in range(10):
        ids = rng.integers(0, N, size=25)
        np.testing.assert_array_equal(
            cache.gather(ids, _fetch(matrix)), matrix[ids]
        )


def test_lru_counters_match_cachesim_replay(matrix):
    """The live cache IS the simulated policy: identical hits/misses/
    evictions as LRUFeatureCache on the same sequential trace."""
    trace = np.random.default_rng(4).integers(0, N, size=400)
    cache = HotSetCache(N, 8, policy="lru")
    for lo in range(0, trace.size, 16):
        cache.gather(trace[lo : lo + 16], _fetch(matrix))
    sim = LRUFeatureCache(8)
    sim.access_many(trace)
    assert (cache.hits, cache.misses, cache.evictions) == (
        sim.hits, sim.misses, sim.evictions
    )
    assert cache.hot_rows == sim.occupancy <= 8


def test_lru_batch_internal_repeat_is_a_hit(matrix):
    cache = HotSetCache(N, 4, policy="lru")
    cache.gather(np.array([7, 7, 7]), _fetch(matrix))
    assert (cache.hits, cache.misses) == (2, 1)


def test_lru_empty_gather(matrix):
    cache = HotSetCache(N, 4, policy="lru")
    out = cache.gather(np.zeros(0, dtype=np.int64), _fetch(matrix))
    assert out.shape[0] == 0
    assert cache.lookups == 0


def test_capacity_clamped_to_num_rows(matrix):
    cache = HotSetCache(N, 10 * N, policy="lru")
    assert cache.capacity == N


# -- update coherence --------------------------------------------------------------


def test_static_update_rows_refreshes_pins(matrix):
    work = matrix.copy()
    cache = HotSetCache(N, 5, policy="static", hot_ids=np.arange(5))
    cache.warm(_fetch(work))
    new = np.full((2, D), 7.5, dtype=np.float32)
    work[[1, 20]] = new
    cache.update_rows(np.array([1, 20]), new)
    ids = np.array([1, 20, 2])
    np.testing.assert_array_equal(cache.gather(ids, _fetch(work)), work[ids])


def test_lru_update_rows_refreshes_resident_entries(matrix):
    work = matrix.copy()
    cache = HotSetCache(N, 8, policy="lru")
    cache.gather(np.array([5, 6]), _fetch(work))
    new = np.full((2, D), -3.0, dtype=np.float32)
    work[[5, 40]] = new
    cache.update_rows(np.array([5, 40]), new)
    ids = np.array([5, 40])
    np.testing.assert_array_equal(cache.gather(ids, _fetch(work)), work[ids])


def test_reset_counters(matrix):
    cache = HotSetCache(N, 4, policy="lru")
    cache.gather(np.array([1, 2, 1]), _fetch(matrix))
    cache.reset_counters()
    assert (cache.hits, cache.misses, cache.evictions, cache.lookups) == (
        0, 0, 0, 0
    )
    assert cache.hot_rows == 2  # contents survive a counter reset
