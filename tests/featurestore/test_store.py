"""FeatureStore tiers: resident identity, mmap fidelity, update semantics."""

import json
import os

import numpy as np
import pytest

from repro.featurestore import FeatureStore, FeatureLayoutError
from repro.featurestore.storage import data_path


@pytest.fixture
def X():
    return np.random.default_rng(0).standard_normal((60, 5)).astype(np.float32)


@pytest.fixture
def degrees():
    return np.random.default_rng(1).integers(0, 40, size=60).astype(np.float64)


# -- resident tier -----------------------------------------------------------------


def test_resident_matrix_is_the_wrapped_array(X):
    store = FeatureStore.resident(X)
    assert store.matrix() is X
    assert store.tier == "resident"
    assert store.bytes_mapped == 0


def test_resident_gather_is_direct_slicing(X):
    store = FeatureStore.resident(X)
    ids = np.array([3, 3, 59, 0])
    np.testing.assert_array_equal(store.gather(ids), X[ids])


def test_resident_update_writes_in_place(X):
    store = FeatureStore.resident(X)
    rows = np.full((2, 5), 9.0, dtype=np.float32)
    store.update_rows([4, 7], rows)
    np.testing.assert_array_equal(X[[4, 7]], rows)  # caller's array mutated
    assert store.num_updates == 1


# -- mmap tier ---------------------------------------------------------------------


def test_mmap_gather_and_matrix_match_source(tmp_path, X, degrees):
    store = FeatureStore.create(
        str(tmp_path / "s"), X, degrees=degrees, hot_fraction=0.2
    )
    assert store.tier == "mmap"
    assert store.bytes_mapped == X.nbytes
    np.testing.assert_array_equal(np.asarray(store.matrix()), X)
    rng = np.random.default_rng(2)
    for _ in range(4):
        ids = rng.integers(0, 60, size=17)
        np.testing.assert_array_equal(store.gather(ids), X[ids])
    assert store.hot is not None and store.hot.lookups > 0


def test_mmap_update_materializes_patched_copy(tmp_path, X, degrees):
    d = str(tmp_path / "s")
    store = FeatureStore.create(d, X, degrees=degrees, hot_fraction=0.2)
    before = open(data_path(d), "rb").read()
    expected = X.copy()
    rows = np.full((2, 5), -1.5, dtype=np.float32)
    expected[[0, 30]] = rows
    store.update_rows([0, 30], rows)
    # reads see the update, through both paths, hot and cold rows alike
    np.testing.assert_array_equal(np.asarray(store.matrix()), expected)
    ids = np.arange(60)
    np.testing.assert_array_equal(store.gather(ids), expected[ids])
    # the cold file is never written; the map is no longer the backing
    assert open(data_path(d), "rb").read() == before
    assert store.bytes_mapped == 0
    assert store.stats()["patched"] is True


def test_mmap_duplicate_update_ids_last_wins(tmp_path, X, degrees):
    store = FeatureStore.create(
        str(tmp_path / "s"), X, degrees=degrees, hot_fraction=0.2
    )
    rows = np.stack([np.full(5, 1.0), np.full(5, 2.0)]).astype(np.float32)
    store.update_rows([11, 11], rows)
    np.testing.assert_array_equal(
        store.gather([11]), np.full((1, 5), 2.0, dtype=np.float32)
    )


def test_create_reuses_matching_layout_and_rejects_mismatch(tmp_path, X, degrees):
    d = str(tmp_path / "s")
    FeatureStore.create(d, X, degrees=degrees)
    mtime = os.path.getmtime(data_path(d))
    store = FeatureStore.create(d, X, degrees=degrees)  # reuse, no rewrite
    assert os.path.getmtime(data_path(d)) == mtime
    np.testing.assert_array_equal(store.gather([1, 2]), X[[1, 2]])
    with pytest.raises(FeatureLayoutError, match="refusing to reuse"):
        FeatureStore.create(d, X[:10], degrees=degrees[:10])
    with pytest.raises(FeatureLayoutError, match="refusing to reuse"):
        FeatureStore.create(d, X.astype(np.float64), degrees=degrees)


def test_open_validates_arguments(tmp_path, X, degrees):
    d = str(tmp_path / "s")
    FeatureStore.create(d, X, degrees=degrees)
    with pytest.raises(ValueError, match="hot_fraction"):
        FeatureStore.open(d, hot_fraction=1.5)
    with pytest.raises(ValueError, match="does not match"):
        FeatureStore.open(d, degrees=degrees[:7])
    with pytest.raises(ValueError, match="unknown tier"):
        FeatureStore("ssd", X)


def test_open_without_degrees_falls_back_to_lru(tmp_path, X):
    d = str(tmp_path / "s")
    FeatureStore.create(d, X)
    store = FeatureStore.open(d, policy="auto")
    assert store.hot is not None and store.hot.policy == "lru"
    assert store.decision.policy == "lru"


def test_zero_hot_fraction_disables_cache(tmp_path, X, degrees):
    d = str(tmp_path / "s")
    store = FeatureStore.create(d, X, degrees=degrees, hot_fraction=0.0)
    assert store.hot is None
    ids = np.array([5, 6, 5])
    np.testing.assert_array_equal(store.gather(ids), X[ids])
    assert store.cold_rows_read == 3


def test_stats_json_safe_with_expected_gauges(tmp_path, X, degrees):
    store = FeatureStore.create(
        str(tmp_path / "s"), X, degrees=degrees, hot_fraction=0.1
    )
    store.gather(np.arange(20))
    s = store.stats()
    for key in ("tier", "hot_rows", "hit_rate", "bytes_mapped", "policy"):
        assert key in s
    json.dumps(s)  # every gauge must be JSON-serializable
    assert s["tier"] == "mmap"
    assert s["hot_rows"] == store.hot.hot_rows
    assert s["decision"]["policy"] == store.hot.policy

    r = FeatureStore.resident(X).stats()
    json.dumps(r)
    assert r["tier"] == "resident" and r["hit_rate"] is None
