"""Bit-identical parity: every consumer, mmap+hotset vs resident.

The acceptance bar for the feature-store subsystem is *exactness*, not
closeness: training losses, final parameters, and serving outputs must
be byte-for-byte identical whichever tier backs the features — including
after live feature and edge updates.
"""

import os

import numpy as np
import pytest

from repro.core import TrainConfig, Trainer, save_checkpoint
from repro.core.checkpoint import training_meta
from repro.core.dist_trainer import DistributedTrainer
from repro.featurestore import FeatureStore
from repro.graph.datasets import load_dataset
from repro.sampling import MiniBatchTrainer
from repro.serving import (
    IncrementalRefresher,
    InferenceEngine,
    PredictionService,
)


@pytest.fixture(scope="module")
def ds():
    return load_dataset("ogbn-products", scale=0.02, seed=3)


def _cfg(seed=0, **kw):
    return TrainConfig(
        num_layers=2, hidden_features=8, eval_every=0, seed=seed, **kw
    )


def _mmap_store(tmp_path, ds, policy="auto", hot_fraction=0.15):
    return FeatureStore.create(
        str(tmp_path / "store"),
        ds.features,
        degrees=ds.graph.in_degrees(),
        hot_fraction=hot_fraction,
        policy=policy,
    )


def _params(model):
    return [p.data.copy() for p in model.parameters()]


def test_full_batch_training_is_bit_identical(tmp_path, ds):
    a = Trainer(ds, _cfg())
    ra = a.fit(num_epochs=4)
    b = Trainer(ds, _cfg(), feature_store=_mmap_store(tmp_path, ds))
    rb = b.fit(num_epochs=4)
    assert [e.loss for e in ra.epochs] == [e.loss for e in rb.epochs]
    for pa, pb in zip(_params(a.model), _params(b.model)):
        np.testing.assert_array_equal(pa, pb)
    assert ra.final_test_acc == rb.final_test_acc


@pytest.mark.parametrize("policy", ["static", "lru"])
def test_minibatch_training_is_bit_identical(tmp_path, ds, policy):
    a = MiniBatchTrainer(ds, fanouts=[5, 5], batch_size=64, config=_cfg())
    ra = a.fit(num_epochs=2)
    b = MiniBatchTrainer(
        ds, fanouts=[5, 5], batch_size=64, config=_cfg(),
        feature_store=_mmap_store(tmp_path, ds, policy=policy),
    )
    rb = b.fit(num_epochs=2)
    assert [e.loss for e in ra.epochs] == [e.loss for e in rb.epochs]
    for pa, pb in zip(_params(a.model), _params(b.model)):
        np.testing.assert_array_equal(pa, pb)


@pytest.mark.parametrize("backend", ["sim", "shm"])
def test_distributed_training_is_bit_identical(tmp_path, ds, backend):
    kw = dict(algorithm="cd-0", config=_cfg())
    a = DistributedTrainer(ds, 2, backend=backend, **kw)
    ra = a.fit(num_epochs=2)
    b = DistributedTrainer(
        ds, 2, backend=backend, feature_store=_mmap_store(tmp_path, ds), **kw
    )
    rb = b.fit(num_epochs=2)
    assert [e.loss for e in ra.epochs] == [e.loss for e in rb.epochs]
    assert a.evaluate() == b.evaluate()


def test_shm_defers_feature_slices_to_workers(tmp_path, ds):
    """With a non-resident store the parent never materializes per-rank
    feature copies; evaluate() gathers them on demand afterwards."""
    t = DistributedTrainer(
        ds, 2, algorithm="cd-0", config=_cfg(), backend="shm",
        feature_store=_mmap_store(tmp_path, ds),
    )
    assert all(state.features is None for state in t.ranks)
    t.fit(num_epochs=1)
    assert t.evaluate()["test"] >= 0.0
    for state in t.ranks:
        np.testing.assert_array_equal(
            state.features, ds.features[state.global_ids]
        )


# -- serving -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def checkpoint(ds, tmp_path_factory):
    trainer = Trainer(ds, _cfg())
    trainer.fit(num_epochs=3)
    path = os.path.join(str(tmp_path_factory.mktemp("ckpt")), "parity.npz")
    save_checkpoint(
        path, trainer.model, trainer.optimizer, epoch=3, extra=training_meta(_cfg())
    )
    return path


def _engine(checkpoint, ds, store=None):
    eng = InferenceEngine.from_checkpoint(checkpoint, ds, feature_store=store)
    eng.precompute()
    return eng


def test_serving_outputs_identical_and_survive_updates(tmp_path, ds, checkpoint):
    res = _engine(checkpoint, ds)
    mm = _engine(checkpoint, ds, store=_mmap_store(tmp_path, ds))
    rng = np.random.default_rng(7)
    ids = rng.integers(0, ds.num_vertices, size=64)
    np.testing.assert_array_equal(res.predict(ids), mm.predict(ids))
    for a, b in zip(res.topk(ids, k=3), mm.topk(ids, k=3)):
        np.testing.assert_array_equal(a, b)

    with PredictionService(res, refresher=IncrementalRefresher(res)) as sa, \
         PredictionService(mm, refresher=IncrementalRefresher(mm)) as sb:
        # live feature update: both tiers apply it, outputs stay identical
        changed = rng.integers(0, ds.num_vertices, size=9)
        rows = rng.standard_normal((9, ds.feature_dim)).astype(
            np.asarray(ds.features).dtype
        )
        sa.update_features(changed, rows)
        sb.update_features(changed, rows)
        np.testing.assert_array_equal(
            sa.predict_logits(ids), sb.predict_logits(ids)
        )
        # live topology update on top of the feature update
        add = rng.integers(0, ds.num_vertices, size=(6, 2))
        sa.update_edges(add=add)
        sb.update_edges(add=add)
        np.testing.assert_array_equal(
            sa.predict_logits(ids), sb.predict_logits(ids)
        )
    # the mmap store patched privately; the resident engine wrote its copy
    assert mm.feature_store.stats()["patched"] is True
    np.testing.assert_array_equal(
        np.asarray(mm.feature_store.matrix()), res.features
    )


def test_engine_feature_store_gauges_flow_to_stats(tmp_path, ds, checkpoint):
    mm = _engine(checkpoint, ds, store=_mmap_store(tmp_path, ds))
    s = mm.stats()
    assert s["feature_store"]["tier"] == "mmap"
    assert s["feature_store"]["bytes_mapped"] > 0
