"""Feature-store gauges surface through the serving metrics endpoint."""

import numpy as np
import pytest

from repro.core import TrainConfig, Trainer, save_checkpoint
from repro.core.checkpoint import training_meta
from repro.featurestore import FeatureStore
from repro.graph.datasets import load_dataset
from repro.serving import InferenceEngine, PredictionService, ServingFrontend


@pytest.fixture(scope="module")
def ds():
    return load_dataset("reddit", scale=0.02, seed=5)


@pytest.fixture(scope="module")
def checkpoint(ds, tmp_path_factory):
    cfg = TrainConfig(num_layers=2, hidden_features=8, eval_every=0, seed=0)
    trainer = Trainer(ds, cfg)
    trainer.fit(num_epochs=2)
    path = str(tmp_path_factory.mktemp("ckpt") / "gauges.npz")
    save_checkpoint(path, trainer.model, trainer.optimizer, epoch=2,
                    extra=training_meta(cfg))
    return path


def _snapshot(checkpoint, ds, store):
    engine = InferenceEngine.from_checkpoint(checkpoint, ds, feature_store=store)
    engine.precompute()
    service = PredictionService(engine)
    frontend = ServingFrontend(service, num_workers=1)
    try:
        frontend.call("predict", lambda: service.predict_logits([0, 1, 2]))
        return frontend.metrics_snapshot()
    finally:
        frontend.close()
        service.close()


def test_metrics_carry_mmap_feature_store_gauges(tmp_path, checkpoint, ds):
    store = FeatureStore.create(
        str(tmp_path / "store"), ds.features,
        degrees=ds.graph.in_degrees(), hot_fraction=0.1,
    )
    snap = _snapshot(checkpoint, ds, store)
    fs = snap["feature_store"]
    assert fs["tier"] == "mmap"
    assert fs["hot_rows"] == store.hot.hot_rows > 0
    assert fs["bytes_mapped"] == np.asarray(ds.features).nbytes
    assert 0.0 <= fs["hit_rate"] <= 1.0
    assert fs["decision"]["policy"] in ("static", "lru")


def test_metrics_carry_resident_feature_store_gauges(checkpoint, ds):
    snap = _snapshot(checkpoint, ds, None)
    fs = snap["feature_store"]
    assert fs["tier"] == "resident"
    assert fs["bytes_mapped"] == 0 and fs["hit_rate"] is None
