"""Read-only hand-out parity: every mmap/hot-set row batch is frozen.

The CSR arrays (``graph/csr.py``) and the result cache
(``serving/cache.py``) already hand out ``writeable=False`` arrays;
these tests pin the same contract onto the feature store's mmap tier —
gathers through the cold map, through the hot-set cache (both
policies), and the full-matrix view after an update must all raise on
caller mutation.  The resident tier stays writable: it is the
behavior-preserving drop-in for code that owned the matrix outright.
"""

import numpy as np
import pytest

from repro.featurestore import FeatureStore
from repro.featurestore.hotset import HotSetCache


@pytest.fixture
def X():
    return np.random.default_rng(0).standard_normal((48, 6)).astype(np.float32)


@pytest.fixture
def degrees():
    return np.random.default_rng(1).integers(1, 30, size=48).astype(np.float64)


def assert_frozen(rows):
    assert rows.flags.writeable is False
    with pytest.raises((ValueError, RuntimeError)):
        rows[0] = 0.0


# -- resident tier keeps the legacy writable contract ------------------------


def test_resident_gather_stays_writable(X):
    store = FeatureStore.resident(X)
    rows = store.gather([1, 2])
    assert rows.flags.writeable is True
    assert store.matrix().flags.writeable is True


# -- mmap tier freezes every hand-out ----------------------------------------


def test_mmap_gather_without_cache_is_frozen(tmp_path, X):
    store = FeatureStore.create(str(tmp_path / "f"), X, hot_fraction=0.0)
    assert store.hot is None
    rows = store.gather([0, 5, 5, 47])
    np.testing.assert_array_equal(rows, X[[0, 5, 5, 47]])
    assert_frozen(rows)


@pytest.mark.parametrize("policy", ["static", "lru"])
def test_hotset_gather_is_frozen_for_both_policies(tmp_path, X, degrees, policy):
    store = FeatureStore.create(
        str(tmp_path / "f"), X, hot_fraction=0.25, policy=policy, degrees=degrees
    )
    assert store.hot is not None and store.hot.policy == policy
    ids = np.array([0, 13, 13, 47, 2])
    for _ in range(2):  # second pass: cache hits must be frozen too
        rows = store.gather(ids)
        np.testing.assert_array_equal(rows, X[ids])
        assert_frozen(rows)


def test_hotset_gather_frozen_directly(X):
    hot = HotSetCache(num_rows=48, capacity=8, policy="lru")
    rows = hot.gather(np.array([1, 2, 3]), lambda ids: X[ids])
    assert_frozen(rows)


def test_mmap_matrix_is_read_only_before_and_after_update(tmp_path, X):
    store = FeatureStore.create(str(tmp_path / "f"), X, hot_fraction=0.0)
    with pytest.raises((ValueError, RuntimeError)):
        store.matrix()[0, 0] = 1.0  # the zero-copy map is mode="r"
    store.update_rows([3], np.ones((1, 6), dtype=np.float32))
    patched = store.matrix()
    assert patched.flags.writeable is False
    with pytest.raises((ValueError, RuntimeError)):
        patched[0, 0] = 1.0


def test_updates_still_land_after_freezing(tmp_path, X, degrees):
    """Freezing hand-outs must not freeze the store's own write path."""
    store = FeatureStore.create(
        str(tmp_path / "f"), X, hot_fraction=0.25, policy="static", degrees=degrees
    )
    hot_id = int(np.argsort(degrees)[::-1][0])  # pinned: exercises cache refresh
    before = store.gather([hot_id])
    new = np.full((1, 6), 42.0, dtype=np.float32)
    store.update_rows([hot_id], new)
    after = store.gather([hot_id])
    np.testing.assert_array_equal(after, new)
    assert not np.array_equal(before, after)
    assert_frozen(after)
    # A second update through the already-patched matrix also lands.
    store.update_rows([hot_id], new * 2)
    np.testing.assert_array_equal(store.gather([hot_id]), new * 2)


def test_frozen_gather_feeds_tensor_math(tmp_path, X):
    """Downstream consumers only read: a frozen batch must flow through
    the same ops the trainers/engine apply to gathered features."""
    from repro.nn.tensor import Tensor

    store = FeatureStore.create(str(tmp_path / "f"), X, hot_fraction=0.0)
    rows = store.gather([0, 1, 2])
    t = Tensor(rows)
    out = np.asarray(rows).sum(axis=1) + t.data.mean()
    assert out.shape == (3,)
