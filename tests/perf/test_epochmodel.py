"""Epoch-time model: Fig. 5/6 shape contracts."""

import pytest

from repro.perf.epochmodel import (
    DatasetScale,
    EpochModel,
    PartitionProfile,
    profiles_from_standin,
)


@pytest.fixture
def products_model():
    scale = DatasetScale(
        name="ogbn-products",
        num_vertices=2_449_029,
        num_edges=123_718_280,
        feature_dim=100,
        hidden_dims=(256, 256),
        num_classes=47,
        cache_reuse=2.0,
    )
    profiles = {
        p: PartitionProfile(p, rf, split)
        for p, rf, split in [
            (2, 1.49, 0.4),
            (4, 2.16, 0.6),
            (8, 2.98, 0.7),
            (16, 3.90, 0.8),
            (32, 4.85, 0.85),
            (64, 5.74, 0.9),
        ]
    }
    return EpochModel(scale, profiles)


class TestBreakdown:
    def test_algorithm_time_ordering(self, products_model):
        """Fig. 5: 0c fastest, cd-0 slowest, cd-r between."""
        for p in (4, 16, 64):
            t0c = products_model.breakdown(p, "0c").total
            tcd5 = products_model.breakdown(p, "cd-5").total
            tcd0 = products_model.breakdown(p, "cd-0").total
            assert t0c < tcd5 < tcd0

    def test_0c_has_no_remote_time(self, products_model):
        b = products_model.breakdown(16, "0c")
        assert b.rat_total == 0.0

    def test_cdr_hides_wire_time(self, products_model):
        """cd-r's RAT is pre/post-processing only (Section 6.3)."""
        b = products_model.breakdown(16, "cd-5")
        assert b.rat_comm == 0.0
        assert b.rat_pre_post > 0.0

    def test_cd0_exposes_wire_time(self, products_model):
        b = products_model.breakdown(16, "cd-0")
        assert b.rat_comm > 0.0

    def test_lat_shrinks_with_partitions(self, products_model):
        """Fig. 6: local aggregation scales with socket count."""
        lats = [
            products_model.breakdown(p, "cd-5").lat_forward for p in (2, 8, 32)
        ]
        assert lats[0] > lats[1] > lats[2]

    def test_speedup_grows_sublinearly(self, products_model):
        pts = products_model.scaling_curve([4, 16, 64], ["0c"])
        speedups = {p.num_partitions: p.speedup_vs_single for p in pts}
        assert speedups[4] < speedups[16] < speedups[64]
        assert speedups[64] < 64  # sublinear (Fig. 5 shows 16.1x)

    def test_single_socket_no_allreduce(self, products_model):
        assert products_model.breakdown(1, "0c").allreduce == 0.0

    def test_missing_profile(self, products_model):
        with pytest.raises(KeyError):
            products_model.breakdown(128, "0c")


class TestProfilesFromStandin:
    def test_measured_profiles(self, products_mini):
        profiles = profiles_from_standin(products_mini.graph, [2, 4], seed=0)
        assert profiles[2].replication_factor < profiles[4].replication_factor
        assert profiles[2].edge_balance >= 1.0
        assert 0.0 <= profiles[2].split_fraction <= 1.0
