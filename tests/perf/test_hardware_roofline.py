"""Hardware presets and the roofline."""

import pytest

from repro.perf.hardware import SocketSpec, XEON_8280, XEON_9242
from repro.perf.roofline import (
    KernelCost,
    ap_kernel_time,
    dense_layer_time,
    roofline_time,
)


class TestSockets:
    def test_8280_parameters(self):
        assert XEON_8280.cores == 28
        assert XEON_8280.mem_bw_Bps == 128e9

    def test_9242_reserves_oneccl_cores(self):
        assert XEON_9242.reserved_cores == 2
        assert XEON_9242.usable_cores == 46

    def test_peak_flops_positive(self):
        assert XEON_8280.peak_flops > 1e12  # multi-Tflop fp32

    def test_effective_below_peak(self):
        assert XEON_8280.effective_flops < XEON_8280.peak_flops
        assert XEON_8280.effective_bw < XEON_8280.mem_bw_Bps


class TestRoofline:
    def test_bandwidth_bound_regime(self):
        # huge bytes, negligible flops -> memory time dominates
        cost = KernelCost(bytes_moved=1e9, flops=1.0)
        t = roofline_time(cost, XEON_8280)
        assert t == pytest.approx(1e9 / XEON_8280.effective_bw)

    def test_compute_bound_regime(self):
        cost = KernelCost(bytes_moved=1.0, flops=1e12)
        t = roofline_time(cost, XEON_8280)
        assert t == pytest.approx(1e12 / XEON_8280.effective_flops)

    def test_imbalance_scales_time(self):
        cost_bal = KernelCost(1e9, 1.0, imbalance=1.0)
        cost_imb = KernelCost(1e9, 1.0, imbalance=2.0)
        assert roofline_time(cost_imb, XEON_8280) == pytest.approx(
            2 * roofline_time(cost_bal, XEON_8280)
        )

    def test_instruction_factor_only_on_compute(self):
        mem_bound = KernelCost(1e9, 1.0, instruction_factor=3.0)
        assert roofline_time(mem_bound, XEON_8280) == pytest.approx(
            1e9 / XEON_8280.effective_bw
        )

    def test_scalar_kernel_slower_when_compute_bound(self):
        fast = ap_kernel_time(1e9, 256, bytes_moved=1.0, socket=XEON_8280)
        slow = ap_kernel_time(
            1e9, 256, bytes_moved=1.0, socket=XEON_8280, reordered=False
        )
        assert slow > fast

    def test_dense_layer_time_scales(self):
        t1 = dense_layer_time(1e6, 128, 128, XEON_8280)
        t2 = dense_layer_time(2e6, 128, 128, XEON_8280)
        assert t2 == pytest.approx(2 * t1, rel=0.01)
