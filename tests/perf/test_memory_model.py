"""Memory model (Table 6 contracts)."""

import pytest

from repro.perf.memory import (
    graphsage_memory_bytes,
    papers_partition_vertices,
)


PAPERS_ARGS = dict(
    feature_dim=128,
    hidden_dims=[256, 256],
    num_classes=172,
    split_fraction=0.9,
)


class TestModel:
    def test_total_is_sum_of_parts(self):
        m = graphsage_memory_bytes(1e6, **PAPERS_ARGS, algorithm="cd-0")
        assert m.total == pytest.approx(
            m.weights
            + m.input_features
            + m.activations
            + m.gradients
            + m.optimizer_state
            + m.comm_buffers
        )

    def test_algorithm_ordering_matches_table6(self):
        """Paper Table 6: cd-5 > cd-0 > 0c at every partition count."""
        n = papers_partition_vertices(32, 4.63)
        mems = {
            algo: graphsage_memory_bytes(n, **PAPERS_ARGS, algorithm=algo).total_GB
            for algo in ("0c", "cd-0", "cd-5")
        }
        assert mems["0c"] < mems["cd-0"] < mems["cd-5"]

    def test_memory_shrinks_with_partitions(self):
        """Paper: 199 -> 124 -> 78 GB for cd-0 at 32/64/128."""
        rfs = {32: 4.63, 64: 5.63, 128: 6.62}
        totals = [
            graphsage_memory_bytes(
                papers_partition_vertices(p, rf), **PAPERS_ARGS, algorithm="cd-0"
            ).total_GB
            for p, rf in rfs.items()
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_papers_scale_magnitude(self):
        """cd-0 at 32 partitions lands in the paper's ~100-300 GB band."""
        n = papers_partition_vertices(32, 4.63)
        gb = graphsage_memory_bytes(n, **PAPERS_ARGS, algorithm="cd-0").total_GB
        assert 50 < gb < 400

    def test_zero_split_no_comm(self):
        m = graphsage_memory_bytes(
            1e5, 64, [32], 10, algorithm="cd-0", split_fraction=0.0
        )
        assert m.comm_buffers == 0.0

    def test_sgd_smaller_state_than_adam(self):
        a = graphsage_memory_bytes(1e5, 64, [32], 10, optimizer="adam")
        s = graphsage_memory_bytes(1e5, 64, [32], 10, optimizer="sgd")
        assert s.optimizer_state < a.optimizer_state

    def test_partition_vertices_formula(self):
        assert papers_partition_vertices(32, 4.63) == pytest.approx(
            111_059_956 * 4.63 / 32
        )
