"""Work counting: Tables 7 and 8 reproduction contracts."""

import numpy as np
import pytest

from repro.perf.minibatch import (
    PRODUCTS_BATCH_SIZE,
    PRODUCTS_FANOUTS,
    PRODUCTS_MB_FEATURE_DIMS,
    expected_unique,
    minibatch_epoch_work,
    minibatch_hops,
    sampled_frontier_sizes,
)
from repro.perf.workmodel import (
    PRODUCTS_AVG_DEGREE,
    PRODUCTS_FEATURE_DIMS,
    PRODUCTS_NUM_VERTICES,
    full_batch_work,
    products_full_batch_bops,
    total_work_bops,
)


class TestFullBatchWork:
    def test_table8_one_socket(self):
        """Paper: 77.19 B ops at 1 socket."""
        assert products_full_batch_bops(1) == pytest.approx(77.19, rel=0.01)

    def test_table8_sixteen_sockets(self):
        """Paper: 18.80 B ops per socket at 16 (clones included)."""
        assert products_full_batch_bops(16) == pytest.approx(18.80, rel=0.02)

    def test_per_hop_values(self):
        layers = full_batch_work(
            PRODUCTS_NUM_VERTICES, PRODUCTS_AVG_DEGREE, PRODUCTS_FEATURE_DIMS
        )
        bops = [l.b_ops for l in layers]
        # paper Table 8: 12.61, 32.29, 32.29
        assert bops[0] == pytest.approx(12.61, rel=0.01)
        assert bops[1] == pytest.approx(32.29, rel=0.01)

    def test_hop_ordering(self):
        layers = full_batch_work(100, 5, (8, 16))
        assert [l.hop for l in layers] == [1, 0]

    def test_total(self):
        layers = full_batch_work(10, 2, (4, 4))
        assert total_work_bops(layers) == pytest.approx(2 * 10 * 2 * 4 / 1e9)


class TestMinibatchWork:
    def test_dedup_model_bounds(self):
        assert expected_unique(1000, 100) <= 100
        assert expected_unique(10, 1e9) == pytest.approx(10, rel=0.01)
        assert expected_unique(0, 100) == 0.0
        assert expected_unique(5, 0) == 0.0

    def test_table7_shape(self):
        hops = minibatch_hops(
            PRODUCTS_BATCH_SIZE,
            PRODUCTS_FANOUTS,
            PRODUCTS_MB_FEATURE_DIMS,
            population=PRODUCTS_NUM_VERTICES,
        )
        assert hops[0].num_vertices == 2000
        # paper hop-1: 30,214 vertices; our dedup model ~30,000
        assert hops[1].num_vertices == pytest.approx(30_214, rel=0.05)
        # paper hop-2: 233,692; birthday model within 25%
        assert hops[2].num_vertices == pytest.approx(233_692, rel=0.25)

    def test_table7_epoch_totals(self):
        _, bops1, batches1 = minibatch_epoch_work(
            PRODUCTS_BATCH_SIZE,
            PRODUCTS_FANOUTS,
            PRODUCTS_MB_FEATURE_DIMS,
            population=PRODUCTS_NUM_VERTICES,
            num_sockets=1,
        )
        assert batches1 == 99  # paper: 99 mini-batches per socket
        assert bops1 == pytest.approx(19.98, rel=0.2)
        _, bops16, batches16 = minibatch_epoch_work(
            PRODUCTS_BATCH_SIZE,
            PRODUCTS_FANOUTS,
            PRODUCTS_MB_FEATURE_DIMS,
            population=PRODUCTS_NUM_VERTICES,
            num_sockets=16,
        )
        assert batches16 == 7
        assert bops16 < bops1 / 10

    def test_fullbatch_does_more_work(self):
        """The paper's headline: DistGNN does ~4x more work at 1 socket."""
        _, mb, _ = minibatch_epoch_work(
            PRODUCTS_BATCH_SIZE,
            PRODUCTS_FANOUTS,
            PRODUCTS_MB_FEATURE_DIMS,
            population=PRODUCTS_NUM_VERTICES,
        )
        fb = products_full_batch_bops(1)
        assert 2.0 < fb / mb < 8.0

    def test_mismatched_args(self):
        with pytest.raises(ValueError):
            minibatch_hops(10, (5, 5), (8,), population=100)


class TestEmpiricalSampler:
    def test_frontier_growth_and_dedup(self, small_rmat):
        seeds = np.arange(10)
        sizes = sampled_frontier_sizes(small_rmat, seeds, fanouts=(5, 5), seed=0)
        assert sizes[0] == 10
        assert len(sizes) == 3
        assert sizes[1] <= 10 * 5  # fanout bound
        assert sizes[2] <= small_rmat.num_vertices  # dedup bound

    def test_deterministic(self, small_rmat):
        a = sampled_frontier_sizes(small_rmat, np.arange(5), (4, 4), seed=1)
        b = sampled_frontier_sizes(small_rmat, np.arange(5), (4, 4), seed=1)
        assert a == b

    def test_isolated_seed(self, line_graph):
        sizes = sampled_frontier_sizes(line_graph, np.array([0]), (3,), seed=0)
        assert sizes == [1, 0]  # vertex 0 has no in-neighbours
