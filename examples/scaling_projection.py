"""Project paper-scale cluster performance from stand-in measurements.

Demonstrates the perf-model pipeline behind the Fig. 5/6 benchmarks:
measure Libra partition profiles on a stand-in graph, feed them with the
paper's real dataset dimensions into the roofline epoch model, and print
the projected epoch-time scaling of cd-0 / cd-5 / 0c up to 64 sockets.

Run:  python examples/scaling_projection.py [--dataset ogbn-products]
"""

import argparse

from repro import load_dataset
from repro.graph.datasets import PAPER_DATASET_STATS
from repro.perf.epochmodel import DatasetScale, EpochModel, profiles_from_standin


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="ogbn-products")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument(
        "--partitions", type=int, nargs="+", default=[2, 4, 8, 16, 32, 64]
    )
    args = parser.parse_args()

    ds = load_dataset(args.dataset, scale=args.scale, seed=0)
    paper = PAPER_DATASET_STATS[ds.name]
    hidden = (16,) if ds.name == "reddit" else (256, 256)
    scale = DatasetScale(
        name=ds.name,
        num_vertices=paper.num_vertices,
        num_edges=paper.num_edges,
        feature_dim=paper.num_features,
        hidden_dims=hidden,
        num_classes=paper.num_classes,
        cache_reuse=2.5,
    )

    print(f"measuring Libra profiles on the stand-in ({ds.summary()}) ...")
    profiles = profiles_from_standin(ds.graph, args.partitions, seed=0)
    model = EpochModel(scale, profiles)
    base = model.single_socket_time()
    print(f"\nprojected single-socket epoch at paper scale: {base:.2f} s\n")
    print(f"{'P':>4} {'rf':>6} | " + " | ".join(f"{a:>14}" for a in ("cd-0", "cd-5", "0c")))
    for p in args.partitions:
        cells = []
        for algo in ("cd-0", "cd-5", "0c"):
            b = model.breakdown(p, algo)
            cells.append(f"{b.total:7.3f}s {base / b.total:4.1f}x")
        print(f"{p:>4} {profiles[p].replication_factor:>6.2f} | " + " | ".join(cells))
    print(
        "\nreading: replication factor (rf) measured by Libra on the stand-in "
        "\ndrives the communication terms; the paper's ordering 0c < cd-5 < cd-0 "
        "\nholds at every socket count."
    )


if __name__ == "__main__":
    main()
