"""Quickstart: full-batch GraphSAGE training on one (simulated) socket.

Loads the Reddit stand-in dataset, trains the paper's 2-layer GraphSAGE
with the GCN aggregation operator, and reports per-epoch Total vs AP time
— the same breakdown as paper Fig. 2.

Run:  python examples/quickstart.py [--scale 0.2] [--epochs 40]
"""

import argparse

from repro import load_dataset
from repro.core import Trainer, TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="reddit", help="dataset stand-in name")
    parser.add_argument("--scale", type=float, default=0.2, help="stand-in size factor")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--lr", type=float, default=0.01)
    args = parser.parse_args()

    ds = load_dataset(args.dataset, scale=args.scale, seed=0)
    print(f"loaded {ds.summary()}")

    config = TrainConfig(learning_rate=args.lr, eval_every=10, seed=0).for_dataset(
        ds.name
    )
    trainer = Trainer(ds, config)
    result = trainer.fit(num_epochs=args.epochs, verbose=True)

    print()
    print(f"final test accuracy : {result.final_test_acc:.4f}")
    print(f"avg epoch time      : {result.avg_epoch_time_s * 1e3:.1f} ms")
    print(
        f"avg AP time         : {result.avg_ap_time_s * 1e3:.1f} ms "
        f"({100 * result.avg_ap_time_s / max(result.avg_epoch_time_s, 1e-12):.0f}% "
        "of the epoch — the paper's motivation for optimizing the AP)"
    )


if __name__ == "__main__":
    main()
