"""Distributed full-batch training with the DRPA algorithm family.

Partitions the OGBN-Products stand-in with Libra vertex-cut, then trains
the same model under all three communication regimes of the paper —
``cd-0`` (synchronous), ``cd-5`` (delayed, the paper's default), and
``0c`` (no communication) — on a simulated multi-socket world, and
compares accuracy, per-epoch communication volume, and the LAT/RAT split.

With ``--backend shm`` each rank runs in its own OS process over the
shared-memory world instead: identical numbers (losses, accuracy,
communication bytes), but the per-epoch wall-clock becomes a real
parallel measurement with genuine cd-r overlap.

Run:  python examples/distributed_training.py [--partitions 4] [--epochs 50]
      python examples/distributed_training.py --backend shm
"""

import argparse

import numpy as np

from repro import load_dataset
from repro.core import DistributedTrainer, TrainConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="ogbn-products")
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=50)
    parser.add_argument("--delay", type=int, default=5, help="cd-r delay r")
    parser.add_argument(
        "--backend", choices=("sim", "shm"), default="sim",
        help="sim: lockstep in-process world; shm: one process per rank",
    )
    args = parser.parse_args()

    ds = load_dataset(args.dataset, scale=args.scale, seed=0)
    print(f"loaded {ds.summary()}")
    config = TrainConfig(
        num_layers=3, hidden_features=32, learning_rate=0.01,
        eval_every=0, seed=0, delay=args.delay, backend=args.backend,
    )

    kind = "simulated" if args.backend == "sim" else "real (shm)"
    print(
        f"\ntraining on {args.partitions} {kind} sockets, {args.epochs} epochs:"
    )
    header = (
        f"{'algorithm':<8} {'test_acc':>9} {'loss':>8} "
        f"{'comm MB/ep':>11} {'LAT ms':>7} {'RAT ms':>7} {'ep ms':>7} {'repl.':>6}"
    )
    print(header)
    print("-" * len(header))
    for algo in ("cd-0", f"cd-{args.delay}", "0c"):
        trainer = DistributedTrainer(
            ds, args.partitions, algorithm=algo, config=config
        )
        result = trainer.fit(num_epochs=args.epochs)
        steady = result.epochs[2 * args.delay :] or result.epochs
        comm = np.mean([e.comm_bytes for e in steady]) / 1e6
        lat = np.mean([e.local_agg_time_s for e in steady]) * 1e3
        rat = np.mean([e.remote_agg_time_s for e in steady]) * 1e3
        epoch_ms = np.mean([e.total_time_s for e in steady]) * 1e3
        print(
            f"{algo:<8} {result.final_test_acc:>9.4f} {result.final_loss:>8.4f} "
            f"{comm:>11.2f} {lat:>7.1f} {rat:>7.1f} {epoch_ms:>7.1f} "
            f"{result.replication_factor:>6.2f}"
        )

    print(
        "\npaper contract: cd-0 matches single-socket accuracy exactly;"
        "\ncd-r trades a little freshness for ~1/r of cd-0's communication;"
        "\n0c is the communication-free roofline."
    )


if __name__ == "__main__":
    main()
