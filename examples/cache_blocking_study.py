"""Single-socket cache-blocking study (paper Table 3 / Fig. 3 in miniature).

Sweeps the number of source blocks ``nB`` for the aggregation primitive
on a dense and a sparse stand-in, reporting simulated cache reuse,
modelled memory IO, measured kernel walltime, and the auto-tuner's pick.

Run:  python examples/cache_blocking_study.py
"""

import time

from repro import load_dataset
from repro.cachesim import cache_vectors_for, simulate_lru_reuse
from repro.cachesim.traffic import ap_traffic
from repro.kernels import aggregate, choose_num_blocks

PAPER_FV_BYTES = {"reddit": 232_965 * 602 * 4, "ogbn-products": 2_449_029 * 100 * 4}


def main() -> None:
    for name in ("reddit", "ogbn-products"):
        ds = load_dataset(name, scale=0.25, seed=0)
        cache = cache_vectors_for(
            ds.graph.num_src, ds.feature_dim, paper_fv_bytes=PAPER_FV_BYTES[name]
        )
        print(f"\n=== {ds.summary()} | pressure-scaled cache: {cache} vectors ===")
        print(f"{'nB':>4} {'reuse':>7} {'IO MB':>8} {'kernel ms':>10}")
        for nb in (1, 2, 4, 8, 16, 32, 64):
            reuse = simulate_lru_reuse(ds.graph, nb, cache).reuse
            io = ap_traffic(
                ds.graph, ds.feature_dim, num_blocks=nb, cache_vectors=cache
            ).total
            t0 = time.perf_counter()
            aggregate(ds.graph, ds.features, kernel="blocked", num_blocks=nb)
            wall = (time.perf_counter() - t0) * 1e3
            print(f"{nb:>4} {reuse:>7.1f} {io / 1e6:>8.1f} {wall:>10.1f}")
        auto = choose_num_blocks(ds.graph, ds.feature_dim, cache_vectors=cache)
        print(f"auto-tuner pick: nB={auto} (minimizes modelled total IO)")
    print(
        "\npaper contract: the dense graph has an interior reuse peak and a "
        "\nblocking sweet spot; the sparse graph stays flat — blocking cannot "
        "\nmanufacture reuse that the structure does not contain."
    )


if __name__ == "__main__":
    main()
