"""Vertex-cut partitioning analysis (paper Table 4 in miniature).

Partitions every dataset stand-in with Libra across a range of partition
counts and reports the replication factor, edge balance, and the cd-0
communication volume each partitioning implies — then contrasts Libra
against random edge placement to show why partitioner quality matters.

Run:  python examples/partitioning_analysis.py [--scale 0.2]
"""

import argparse

from repro import load_dataset
from repro.partition import (
    build_partitions,
    libra_partition,
    partition_stats,
    random_edge_partition,
)
from repro.partition.stats import communication_volume


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument(
        "--partitions", type=int, nargs="+", default=[2, 4, 8, 16]
    )
    args = parser.parse_args()

    for name in ("reddit", "ogbn-products", "proteins"):
        ds = load_dataset(name, scale=args.scale, seed=0)
        print(f"\n=== {ds.summary()} ===")
        print(
            f"{'P':>4} {'libra rf':>9} {'random rf':>10} {'edge bal':>9} "
            f"{'split %':>8} {'cd-0 comm MB/layer':>19}"
        )
        for p in args.partitions:
            libra = build_partitions(
                ds.graph, libra_partition(ds.graph, p, seed=0), p
            )
            rand = build_partitions(
                ds.graph, random_edge_partition(ds.graph, p, seed=0), p
            )
            st = partition_stats(libra)
            vol = communication_volume(libra, ds.feature_dim) / 1e6
            print(
                f"{p:>4} {st.replication_factor:>9.2f} "
                f"{partition_stats(rand).replication_factor:>10.2f} "
                f"{st.edge_balance:>9.3f} "
                f"{100 * st.split_vertex_fraction:>7.1f}% {vol:>19.2f}"
            )
    print(
        "\npaper contract: Proteins partitions cleanest (natural clusters), "
        "Reddit worst (dense);\nreplication — and hence communication — grows "
        "concavely with partition count."
    )


if __name__ == "__main__":
    main()
