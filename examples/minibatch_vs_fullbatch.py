"""Mini-batch (Dist-DGL style) vs full-batch (DistGNN) training.

The executable version of the paper's Tables 7-9 argument: sampled
training does far less aggregation work per epoch, but pays sampling and
remote-feature-fetch costs and converges through noisier gradients;
full-batch DistGNN does complete-neighbourhood aggregation with DRPA
communication management.  This script runs both on the same stand-in
and reports accuracy, measured work, and communication.

Run:  python examples/minibatch_vs_fullbatch.py [--epochs 20]
"""

import argparse

import numpy as np

from repro import load_dataset
from repro.core import DistributedTrainer, TrainConfig
from repro.sampling import DistMiniBatchTrainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="ogbn-products")
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=20)
    args = parser.parse_args()

    ds = load_dataset(args.dataset, scale=args.scale, seed=0)
    print(f"loaded {ds.summary()}\n")
    cfg = TrainConfig(
        num_layers=3, hidden_features=32, learning_rate=0.01, eval_every=0, seed=0
    )

    print(f"[full-batch DistGNN cd-5, {args.ranks} ranks]")
    full = DistributedTrainer(ds, args.ranks, algorithm="cd-5", config=cfg)
    fres = full.fit(num_epochs=args.epochs)
    full_work = 0
    dims = [ds.feature_dim] + [cfg.hidden_features] * (cfg.num_layers - 1)
    full_work = sum(ds.num_edges * d for d in dims) * args.epochs
    print(
        f"  test acc {fres.final_test_acc:.4f} | comm "
        f"{fres.total_comm_bytes / 1e6:.1f} MB | aggregation work "
        f"{full_work / 1e9:.2f} B ops"
    )

    print(f"\n[mini-batch Dist-DGL style, {args.ranks} ranks, fanouts 10/10/10]")
    mini = DistMiniBatchTrainer(
        ds, args.ranks, fanouts=[10] * cfg.num_layers, batch_size=256, config=cfg
    )
    mres = mini.fit(num_epochs=args.epochs)
    comm = sum(e.comm_bytes for e in mres.epochs)
    print(
        f"  test acc {mres.final_test_acc:.4f} | comm {comm / 1e6:.1f} MB "
        "(remote feature fetches + per-batch AllReduce)"
    )
    print(
        "\npaper contract (Tables 7-9): full-batch does several times more "
        "\naggregation work per epoch yet remains time-competitive, because "
        "\nsampled training pays sampling, random gathers, and remote fetches."
    )


if __name__ == "__main__":
    main()
