"""Streaming topology: ingest arriving edges, keep serving fresh.

Walks the full dynamic-graph loop a live service runs:

1. hold out a suffix of the dataset's edges as the "arriving" stream;
2. bulk-partition the base with the online Libra state, then assign the
   stream chunk by chunk while appending it to the delta-CSR
   :class:`~repro.dyngraph.delta.DynamicGraph` (watching replication
   drift and auto-compaction);
3. train briefly on the base graph, precompute a serving engine, then
   push the same stream through ``update_edges`` and verify the served
   logits match a from-scratch precompute on the compacted graph.

Run:  python examples/streaming_ingest.py [--scale 0.08] [--partitions 4]
"""

import argparse
import dataclasses
import time

import numpy as np

from repro import load_dataset
from repro.core import Trainer, TrainConfig
from repro.dyngraph import DynamicGraph, LibraState
from repro.graph.builders import coo_to_csr
from repro.serving import IncrementalRefresher, InferenceEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="reddit")
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--stream-fraction", type=float, default=0.15)
    parser.add_argument("--chunk-size", type=int, default=1024)
    parser.add_argument("--epochs", type=int, default=5)
    args = parser.parse_args()

    ds = load_dataset(args.dataset, scale=args.scale, seed=0)
    print(f"loaded {ds.summary()}")

    # -- 1. split into base graph + arriving stream (seeded arrival order)
    src, dst, _ = ds.graph.to_coo()
    m = src.size
    order = np.random.default_rng(0).permutation(m)
    src, dst = src[order], dst[order]
    split = int(m * (1.0 - args.stream_fraction))
    n = ds.num_vertices
    base = coo_to_csr(src[:split], dst[:split], num_dst=n, num_src=n)
    base_ds = dataclasses.replace(ds, graph=base)
    print(f"base graph {base.num_edges} edges, stream {m - split} edges")

    # -- 2. online Libra + delta-CSR ingestion
    state = LibraState(n, args.partitions, seed=0)
    state.assign(src[:split], dst[:split])
    state.set_baseline()
    dyn = DynamicGraph(base)
    t0 = time.perf_counter()
    for lo in range(split, m, args.chunk_size):
        hi = min(lo + args.chunk_size, m)
        state.assign(src[lo:hi], dst[lo:hi])
        dyn.add_edges(src[lo:hi], dst[lo:hi])
    ingest_s = time.perf_counter() - t0
    print(
        f"ingested {m - split} edges in {ingest_s:.2f}s "
        f"({(m - split) / max(ingest_s, 1e-9):,.0f} edges/s), "
        f"loads {state.load.tolist()}, "
        f"rf {state.replication_factor:.3f} (drift {100 * state.drift():+.1f}%), "
        f"{dyn.num_compactions} compactions"
    )
    if state.should_repartition(0.1):
        print("drift trigger: offline repartition recommended")

    # -- 3. serve on the base, stream the same edges into the engine
    cfg = TrainConfig(num_layers=2, hidden_features=16, eval_every=0, seed=0)
    trainer = Trainer(base_ds, cfg)
    trainer.fit(args.epochs)
    engine = InferenceEngine(base_ds, trainer.model, cfg).precompute()
    refresher = IncrementalRefresher(engine, full_threshold=0.9)
    t0 = time.perf_counter()
    modes = {}
    for lo in range(split, m, args.chunk_size):
        hi = min(lo + args.chunk_size, m)
        stats = refresher.update_edges(
            add=np.stack([src[lo:hi], dst[lo:hi]], axis=1)
        )
        modes[stats.mode] = modes.get(stats.mode, 0) + 1
    update_s = time.perf_counter() - t0
    print(f"served {m - split} edge updates in {update_s:.2f}s, modes {modes}")

    # the served tables now equal a from-scratch precompute on the
    # compacted graph — the subsystem's central exactness guarantee
    truth = InferenceEngine(
        dataclasses.replace(ds, graph=engine.dynamic.csr()), trainer.model, cfg
    ).precompute()
    exact = np.array_equal(engine.logits, truth.logits)
    print(f"incremental tables == compacted-graph precompute: {exact}")


if __name__ == "__main__":
    main()
