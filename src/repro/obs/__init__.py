"""Observability: request tracing + the unified telemetry registry.

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` with explicit
  context propagation across pool boundaries, head-based sampling
  (``REPRO_TRACE=1``, ``REPRO_TRACE_SAMPLE``), a bounded span ring, and
  Chrome trace-event / JSONL export (``repro trace``, ``GET /trace``).
- :mod:`repro.obs.registry` — one :class:`Registry` absorbing the
  serving, batcher, cache, feature-store, kernel-timer, and comm-world
  counters under consistent ``repro_*`` names, rendered as Prometheus
  text exposition (``GET /metrics?format=prom``) or JSON from a single
  ``collect()`` pass.

See docs/ARCHITECTURE.md §9 for the span model, component accounting,
and sampling/overhead guidance.
"""

from repro.obs.registry import (
    Metric,
    Registry,
    comm_metrics,
    parse_prometheus,
    register_comm_world,
    render_prometheus,
    serving_registry,
    to_json,
    unregister_comm_world,
)
from repro.obs.trace import (
    COMPONENTS,
    Span,
    Tracer,
    activate,
    chrome_trace,
    current_span,
    get_tracer,
    set_tracer,
    to_jsonl,
    validate_chrome_trace,
)

__all__ = [
    "COMPONENTS",
    "Span",
    "Tracer",
    "activate",
    "chrome_trace",
    "current_span",
    "get_tracer",
    "set_tracer",
    "to_jsonl",
    "validate_chrome_trace",
    "Metric",
    "Registry",
    "comm_metrics",
    "parse_prometheus",
    "register_comm_world",
    "render_prometheus",
    "serving_registry",
    "to_json",
    "unregister_comm_world",
]
