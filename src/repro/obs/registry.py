"""Unified telemetry registry: one snapshot, two exposition formats.

Telemetry used to be island snapshots — ``ServingMetrics`` outcome
counters, the micro-batcher's ``stats()``, ``ResultCache`` hit/miss,
``FeatureStore.stats()``, ``AP_TIMER``, per-world ``CommCounters``.
:class:`Registry` absorbs them behind one ``collect()``:

- **collectors** are named callables returning :class:`Metric`
  families; they run *outside* the registry lock (they take their own
  subsystem locks — serializing them under ours would add lock-order
  edges for nothing);
- **naming** is consistent ``repro_*`` with Prometheus conventions
  (``_total`` suffix on monotone counters, base units in the name);
- **exposition** renders the same collected families as Prometheus
  text (:func:`render_prometheus`, served at ``GET
  /metrics?format=prom``) or JSON (:func:`to_json`) — both views are
  derived from one ``collect()`` pass, so they agree counter-for-
  counter by construction (and a CI invariant re-checks it anyway).

The existing ``GET /metrics`` JSON body is *not* rerouted through the
registry: it stays ``ServingFrontend.metrics_snapshot()`` bit-for-bit;
the registry's serving collector reads that same snapshot.

Communication counters (the satellite that was only reachable from
benchmark code): worlds self-register via :func:`register_comm_world`
— a weakref, pruned automatically, so short-lived test worlds cannot
leak — and every registry built with ``include_comm=True`` exposes
per-rank ``repro_comm_*`` series for all live worlds.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.sanitizers import make_lock

#: Prometheus metric kinds this registry emits.
KINDS = ("counter", "gauge")


@dataclass
class Metric:
    """One metric family: a name/kind/help plus labeled samples."""

    name: str
    kind: str
    help: str
    samples: List[Tuple[Dict[str, str], float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r} (one of {KINDS})")
        if not self.name.startswith("repro_"):
            raise ValueError(f"metric {self.name!r} must use the repro_* namespace")

    def add(self, value, **labels) -> "Metric":
        self.samples.append(
            ({k: str(v) for k, v in sorted(labels.items())}, float(value))
        )
        return self


class Registry:
    """Named collectors -> one consistent, sorted family list."""

    def __init__(self):
        self._lock = make_lock("obs.registry")
        self._collectors: Dict[str, Callable[[], List[Metric]]] = {}  # guarded-by: _lock

    def register(self, name: str, collector: Callable[[], List[Metric]]) -> None:
        with self._lock:
            if name in self._collectors:
                raise ValueError(f"collector {name!r} already registered")
            self._collectors[name] = collector

    def unregister(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    def collector_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collectors)

    def collect(self) -> List[Metric]:
        """Run every collector (outside the registry lock) and return
        the families sorted by name; duplicate family names are a
        programming error and fail loudly."""
        with self._lock:
            collectors = sorted(self._collectors.items())
        seen: Dict[str, str] = {}
        out: List[Metric] = []
        for cname, collector in collectors:
            for metric in collector():
                if metric.name in seen:
                    raise ValueError(
                        f"metric family {metric.name!r} emitted by both "
                        f"{seen[metric.name]!r} and {cname!r}"
                    )
                seen[metric.name] = cname
                out.append(metric)
        out.sort(key=lambda m: m.name)
        return out


# -- exposition ---------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(metrics: List[Metric]) -> str:
    """Prometheus text exposition (format 0.0.4) of collected families."""
    lines: List[str] = []
    for m in metrics:
        lines.append(f"# HELP {m.name} {m.help}")
        lines.append(f"# TYPE {m.name} {m.kind}")
        for labels, value in m.samples:
            if labels:
                body = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
                )
                lines.append(f"{m.name}{{{body}}} {_format_value(value)}")
            else:
                lines.append(f"{m.name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def to_json(metrics: List[Metric]) -> dict:
    """The same families as a JSON object (name -> kind/help/samples)."""
    return {
        m.name: {
            "kind": m.kind,
            "help": m.help,
            "samples": [
                {"labels": labels, "value": value} for labels, value in m.samples
            ],
        }
        for m in metrics
    }


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back to ``{family: {labels: value}}`` —
    used by the agreement tests and the CI conservation gate, so the
    renderer cannot drift from what a scraper would read."""
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            label_body = label_body.rstrip("}")
            labels = []
            for item in filter(None, label_body.split(",")):
                key, _, raw = item.partition("=")
                labels.append((key, raw.strip('"')))
            key = tuple(sorted(labels))
        else:
            name, key = name_part, ()
        out.setdefault(name, {})[key] = float(value_part)
    return out


# -- comm-world sources (weakref, self-pruning) -------------------------------

_comm_lock = make_lock("obs.registry.comm")
_comm_worlds: Dict[str, "weakref.ReferenceType"] = {}  # guarded-by: _comm_lock
_comm_seq = itertools.count(1)  # itertools.count is atomic in CPython


def register_comm_world(world, kind: str = "world") -> str:
    """Expose a world's ``CommCounters`` through every registry.

    Held by weakref: a world that goes away simply disappears from the
    next ``collect()``; returns the registered name (``sim-3`` /
    ``shm-1`` / ...).
    """
    name = f"{kind}-{next(_comm_seq)}"
    ref = weakref.ref(world)
    with _comm_lock:
        _comm_worlds[name] = ref
    return name


def unregister_comm_world(name: str) -> None:
    with _comm_lock:
        _comm_worlds.pop(name, None)


def _live_comm_worlds() -> List[Tuple[str, object]]:
    with _comm_lock:
        items = list(_comm_worlds.items())
    live, dead = [], []
    for name, ref in items:
        world = ref()
        if world is None:
            dead.append(name)
        else:
            live.append((name, world))
    if dead:
        with _comm_lock:
            for name in dead:
                _comm_worlds.pop(name, None)
    return live


def comm_metrics() -> List[Metric]:
    """Per-rank p2p/collective byte counters for every live world."""
    sent = Metric(
        "repro_comm_bytes_sent_total", "counter",
        "Bytes sent per rank (p2p + collectives)",
    )
    recv = Metric(
        "repro_comm_bytes_received_total", "counter",
        "Bytes received per rank (p2p + collectives)",
    )
    msgs = Metric(
        "repro_comm_messages_sent_total", "counter",
        "Point-to-point messages sent per rank",
    )
    colls = Metric(
        "repro_comm_collective_calls_total", "counter",
        "Collective invocations by name",
    )
    for name, world in sorted(_live_comm_worlds()):
        counters = world.counters
        for rank in range(counters.num_ranks):
            sent.add(counters.bytes_sent[rank], world=name, rank=rank)
            recv.add(counters.bytes_received[rank], world=name, rank=rank)
            msgs.add(counters.messages_sent[rank], world=name, rank=rank)
        for cname, calls in sorted(counters.collective_calls.items()):
            colls.add(calls, world=name, collective=cname)
    return [sent, recv, msgs, colls]


# -- subsystem collectors -----------------------------------------------------


def _serving_metrics(frontend) -> List[Metric]:
    """``ServingMetrics`` snapshot + frontend gauges as repro_* families.

    Reads the *same* ``metrics_snapshot()`` the JSON ``GET /metrics``
    body serves, so the two views cannot disagree on a counter.
    """
    from repro.serving.metrics import OUTCOMES

    snap = frontend.metrics_snapshot()
    requests = Metric(
        "repro_requests_total", "counter",
        "Finished requests by endpoint and outcome",
    )
    latency = Metric(
        "repro_request_latency_ms", "gauge",
        "Served (ok) request latency quantiles per endpoint",
    )
    for endpoint, ep in sorted(snap["endpoints"].items()):
        for outcome in OUTCOMES:
            requests.add(ep[outcome], endpoint=endpoint, outcome=outcome)
        for key in ("p50_ms", "p99_ms"):
            if key in ep:
                latency.add(ep[key], endpoint=endpoint, quantile=key[:-3])
        if ep.get("ok"):
            latency.add(ep["mean_ms"], endpoint=endpoint, quantile="mean")
    out = [
        requests,
        latency,
        Metric("repro_drains_total", "counter", "Completed drain windows")
        .add(snap["num_drains"]),
        Metric("repro_queue_depth", "gauge", "Admitted requests waiting for a worker")
        .add(snap["queue_depth"]),
        Metric("repro_in_flight", "gauge", "Requests executing on the worker pool")
        .add(snap["in_flight"]),
        Metric("repro_draining", "gauge", "1 while admission is closed for an update")
        .add(1.0 if snap["draining"] else 0.0),
        Metric("repro_queue_capacity", "gauge", "Admission queue bound")
        .add(snap["max_queue"]),
        Metric("repro_workers", "gauge", "Worker pool size")
        .add(snap["num_workers"]),
    ]
    if snap.get("cache_hit_rate") is not None:
        out.append(
            Metric(
                "repro_result_cache_hit_rate", "gauge",
                "LRU result cache hit rate over its lifetime",
            ).add(snap["cache_hit_rate"])
        )
    fs = snap.get("feature_store")
    if fs is not None:
        out.append(
            Metric(
                "repro_feature_store_cold_rows_read_total", "counter",
                "Feature rows fetched from the cold tier",
            ).add(fs["cold_rows_read"], tier=fs["tier"])
        )
        out.append(
            Metric(
                "repro_feature_store_updates_total", "counter",
                "Feature row update batches applied",
            ).add(fs["num_updates"], tier=fs["tier"])
        )
        out.append(
            Metric(
                "repro_feature_store_bytes_mapped", "gauge",
                "Bytes served through the zero-copy mmap view",
            ).add(fs["bytes_mapped"], tier=fs["tier"])
        )
        out.append(
            Metric(
                "repro_feature_store_hot_rows", "gauge",
                "Rows resident in the hot-set cache",
            ).add(fs["hot_rows"], tier=fs["tier"])
        )
        if fs.get("hit_rate") is not None:
            out.append(
                Metric(
                    "repro_feature_store_hit_rate", "gauge",
                    "Hot-set cache hit rate",
                ).add(fs["hit_rate"], tier=fs["tier"])
            )
    return out


def _service_metrics(service) -> List[Metric]:
    """Service / batcher / result-cache counters as repro_* families."""
    stats = service.stats()
    out = [
        Metric(
            "repro_service_requests_total", "counter",
            "Prediction-service entry calls",
        ).add(stats["requests"])
    ]
    batcher = stats.get("batcher")
    if batcher is not None:
        out.extend(
            [
                Metric(
                    "repro_batcher_requests_total", "counter",
                    "Lookups submitted to the micro-batcher",
                ).add(batcher["requests"]),
                Metric(
                    "repro_batcher_batches_total", "counter",
                    "Coalesced batches executed",
                ).add(batcher["batches"]),
                Metric(
                    "repro_batcher_vertices_submitted_total", "counter",
                    "Vertex ids submitted across all lookups",
                ).add(batcher["vertices_submitted"]),
                Metric(
                    "repro_batcher_vertices_computed_total", "counter",
                    "Unique vertex ids actually computed",
                ).add(batcher["vertices_computed"]),
                Metric(
                    "repro_batcher_pending", "gauge",
                    "Lookups queued but not yet picked into a batch",
                ).add(batcher["pending"]),
            ]
        )
    cache = stats.get("cache")
    if cache is not None:
        out.extend(
            [
                Metric(
                    "repro_result_cache_lookups_total", "counter",
                    "Row lookups against the result cache",
                ).add(cache["lookups"]),
                Metric(
                    "repro_result_cache_hits_total", "counter",
                    "Result cache row hits",
                ).add(cache["hits"]),
                Metric(
                    "repro_result_cache_misses_total", "counter",
                    "Result cache row misses",
                ).add(cache["misses"]),
                Metric(
                    "repro_result_cache_size", "gauge",
                    "Rows currently cached",
                ).add(cache["size"]),
            ]
        )
    return out


def _ap_metrics() -> List[Metric]:
    """Kernel aggregation-primitive wall time (``AP_TIMER``)."""
    # lazy: kernels.instrumentation imports repro.obs.trace, so a
    # module-level import here would be circular during package init
    from repro.kernels.instrumentation import AP_TIMER

    elapsed_s, calls = AP_TIMER.read()
    return [
        Metric(
            "repro_ap_seconds_total", "counter",
            "Accumulated aggregation-primitive wall time",
        ).add(elapsed_s),
        Metric(
            "repro_ap_calls_total", "counter",
            "Aggregation-primitive invocations",
        ).add(calls),
    ]


def _trace_metrics(tracer) -> List[Metric]:
    """Tracer health + per-endpoint latency-component totals."""
    st = tracer.stats()
    spans = Metric(
        "repro_trace_spans_total", "counter",
        "Root-span sampling decisions by result",
    )
    spans.add(st["sampled"], result="sampled")
    spans.add(st["seen"] - st["sampled"], result="skipped")
    out = [
        spans,
        Metric(
            "repro_trace_finished_spans_total", "counter",
            "Spans pushed into the trace ring",
        ).add(st["finished"]),
        Metric(
            "repro_trace_dropped_spans_total", "counter",
            "Spans overwritten by ring wraparound",
        ).add(st["dropped"]),
        Metric(
            "repro_trace_buffered_spans", "gauge",
            "Spans currently buffered in the ring",
        ).add(st["buffered"]),
    ]
    comp_total = Metric(
        "repro_request_component_seconds_total", "counter",
        "Accumulated latency-component seconds (sampled ok requests)",
    )
    comp_count = Metric(
        "repro_request_component_samples_total", "counter",
        "Latency-component observations (sampled ok requests)",
    )
    for endpoint, ep in tracer.decomposition().items():
        comp_total.add(ep["e2e"]["total_s"], endpoint=endpoint, component="e2e")
        comp_count.add(ep["e2e"]["count"], endpoint=endpoint, component="e2e")
        for name, agg in ep["components"].items():
            comp_total.add(agg["total_s"], endpoint=endpoint, component=name)
            comp_count.add(agg["count"], endpoint=endpoint, component=name)
    out.extend([comp_total, comp_count])
    return out


def serving_registry(
    frontend=None,
    service=None,
    tracer=None,
    include_ap: bool = True,
    include_comm: bool = True,
) -> Registry:
    """The standard registry composition for a serving process."""
    registry = Registry()
    if frontend is not None:
        registry.register("serving", lambda: _serving_metrics(frontend))
    if service is not None:
        registry.register("service", lambda: _service_metrics(service))
    if tracer is not None:
        registry.register("trace", lambda: _trace_metrics(tracer))
    if include_ap:
        registry.register("kernels", _ap_metrics)
    if include_comm:
        registry.register("comm", comm_metrics)
    return registry
