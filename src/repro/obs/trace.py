"""End-to-end request tracing: spans, head sampling, bounded ring export.

One admitted request = one **root span**; the stages it crosses (queue
wait, gate acquisition, batcher coalesce/flush, engine compute, feature
gather, kernel AP passes) attach child spans and **latency components**
to it.  Design constraints, in order:

- **Explicit context propagation.**  A span crosses a thread-pool
  boundary only by being carried on the work item (the frontend's
  ``_WorkItem.ctx``, the micro-batcher's ``_Request.ctx``); the
  executing thread then *activates* it for the duration of the work.
  The thread-local set by :func:`activate` never leaks across pools —
  it is scoped to one ``with`` block on one thread, so deep call sites
  (:class:`~repro.kernels.instrumentation.time_ap`,
  ``FeatureStore.gather``) can pick the current span up without their
  signatures knowing about tracing.
- **Bounded, lock-disciplined buffering.**  Finished spans land in a
  fixed-capacity ring under one :func:`make_lock` — a full ring
  overwrites the oldest span and counts a drop; tracing can never grow
  memory without bound or block the request path.
- **Head-based sampling.**  The keep/skip decision is made once, at
  root-span creation (``REPRO_TRACE=1`` to enable,
  ``REPRO_TRACE_SAMPLE=0.01`` for 1-in-100): an unsampled request
  carries a ``None`` context and every instrumentation site
  short-circuits, so the steady-state overhead of a disabled or
  down-sampled tracer is one ``None`` check.
- **Standard export.**  :func:`chrome_trace` renders the ring as Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``),
  :func:`to_jsonl` as one span per line; ``repro trace`` and
  ``GET /trace`` serve both.

Latency decomposition: component seconds accumulated on a root span
(:data:`COMPONENTS`: queue / gate / batch / compute / feature) are
defined to be **non-overlapping**, so their sum is ≤ the measured
end-to-end latency — the remainder is reported as unattributed slack,
and ``tests/serving/test_tracing.py`` pins the inequality.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.sanitizers import make_lock

#: canonical latency components of one served request, in pipeline
#: order.  Sites record others (e.g. ``drain``) too; these are the ones
#: the decomposition cross-check sums against end-to-end latency.
COMPONENTS = ("queue", "gate", "batch", "compute", "feature")

#: outcome ascribed to a span closed by ``with`` on an exception.
_ERROR_OUTCOME = "error"


# -- per-thread current span (set only via explicit activation) ---------------

_tls = threading.local()


def current_span() -> Optional["Span"]:
    """The span explicitly activated on *this* thread, else ``None``.

    This is how signature-stable deep call sites (kernels, feature
    store) attach children; it is only ever set inside an
    :func:`activate` block, never inherited across threads.
    """
    return getattr(_tls, "span", None)


class activate:
    """Context manager scoping ``span`` as this thread's current span.

    ``activate(None)`` is valid and clears the slot — a worker thread
    that just ran a sampled request must not leak its span into the
    next, unsampled one.
    """

    __slots__ = ("_span", "_prev")

    def __init__(self, span: Optional["Span"]):
        self._span = span

    def __enter__(self) -> Optional["Span"]:
        self._prev = getattr(_tls, "span", None)
        _tls.span = self._span
        return self._span

    def __exit__(self, *exc) -> bool:
        _tls.span = self._prev
        return False


# -- spans --------------------------------------------------------------------


class Span:
    """One timed interval of one request.

    Component/annotation state takes the span's own lock: a root span is
    closed by the *caller* thread (which may have timed out) while a
    worker thread is still attaching components — both must be safe.
    After :meth:`end` the span is immutable; late mutations are ignored
    (the worker finishing a timed-out request in the background must not
    corrupt the exported record).
    """

    __slots__ = (
        "tracer", "name", "cat", "trace_id", "span_id", "parent_id",
        "t_start", "_lock", "_components", "_args", "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str = "request",
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
    ):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.span_id = tracer.next_id()
        self.trace_id = self.span_id if trace_id is None else trace_id
        self.parent_id = parent_id
        self._lock = make_lock("obs.trace.span")
        self._components: Dict[str, float] = {}  # guarded-by: _lock
        self._args: Dict[str, object] = {}  # guarded-by: _lock
        self._ended = False  # guarded-by: _lock
        self.t_start = time.perf_counter()

    # -- mutation (pre-end only) ----------------------------------------------

    def add_component(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into latency component ``name``."""
        with self._lock:
            if self._ended:
                return
            self._components[name] = self._components.get(name, 0.0) + float(seconds)

    def component_seconds(self, name: str) -> float:
        with self._lock:
            return self._components.get(name, 0.0)

    def annotate(self, **kwargs) -> None:
        """Attach JSON-safe key/value arguments to the span."""
        with self._lock:
            if not self._ended:
                self._args.update(kwargs)

    # -- children -------------------------------------------------------------

    def child(self, name: str, cat: str = "serving") -> "Span":
        """Open a live child span (close it with :meth:`end` / ``with``)."""
        return Span(
            self.tracer, name, cat=cat,
            trace_id=self.trace_id, parent_id=self.span_id,
        )

    def child_complete(self, name: str, dur_s: float, cat: str = "serving", **args):
        """Record an already-measured child interval that ends *now*.

        Cheaper than ``child()``/``end()`` for sites that timed
        themselves anyway, and safe to call even after the parent was
        closed by a timed-out caller (the child still lands in the ring
        with its parent linkage).
        """
        t_end = time.perf_counter()
        self.tracer.push(
            {
                "trace_id": self.trace_id,
                "span_id": self.tracer.next_id(),
                "parent_id": self.span_id,
                "name": name,
                "cat": cat,
                "ts_us": self.tracer.to_wall_us(t_end - float(dur_s)),
                "dur_us": float(dur_s) * 1e6,
                "outcome": "ok",
                "thread": threading.get_ident(),
                "components_ms": {},
                "args": {str(k): v for k, v in args.items()},
            }
        )

    # -- completion -----------------------------------------------------------

    @property
    def ended(self) -> bool:
        with self._lock:
            return self._ended

    def end(self, outcome: str = "ok", e2e_s: Optional[float] = None) -> None:
        """Close the span into the ring; first close wins (idempotent).

        Root spans closed ``ok`` also feed the tracer's per-endpoint
        latency decomposition, cross-checked against ``e2e_s`` (defaults
        to the span's own wall time).
        """
        t_end = time.perf_counter()
        with self._lock:
            if self._ended:
                return
            self._ended = True
            components = dict(self._components)
            args = dict(self._args)
        self.tracer.push(
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "cat": self.cat,
                "ts_us": self.tracer.to_wall_us(self.t_start),
                "dur_us": (t_end - self.t_start) * 1e6,
                "outcome": outcome,
                "thread": threading.get_ident(),
                "components_ms": {k: v * 1e3 for k, v in components.items()},
                "args": args,
            }
        )
        if self.parent_id is None and outcome == "ok":
            e2e = (t_end - self.t_start) if e2e_s is None else float(e2e_s)
            self.tracer.record_components(self.name, components, e2e)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end(_ERROR_OUTCOME if exc_type is not None else "ok")
        return False


# -- decomposition aggregation ------------------------------------------------


class _Agg:
    """Sum/count plus a bounded window for quantiles (not thread-safe on
    its own — the tracer's decomposition lock serializes access)."""

    __slots__ = ("total_s", "count", "window")

    def __init__(self, window: int = 2048):
        self.total_s = 0.0
        self.count = 0
        self.window = deque(maxlen=window)

    def add(self, seconds: float) -> None:
        self.total_s += float(seconds)
        self.count += 1
        self.window.append(float(seconds))

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total_s": 0.0}
        lat = np.asarray(self.window, dtype=np.float64) * 1e3
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_ms": 1e3 * self.total_s / self.count,
            "p50_ms": float(np.percentile(lat, 50.0)),
            "p99_ms": float(np.percentile(lat, 99.0)),
        }


# -- tracer -------------------------------------------------------------------


class Tracer:
    """Sampling decision + bounded span ring + latency decomposition.

    Parameters default from the environment so one knob flips the whole
    serving stack: ``REPRO_TRACE`` (off unless set truthy),
    ``REPRO_TRACE_SAMPLE`` (head sampling rate in (0, 1], default keep
    everything), ``REPRO_TRACE_BUFFER`` (ring capacity in spans).
    """

    def __init__(
        self,
        enabled: Optional[bool] = None,
        sample_rate: Optional[float] = None,
        capacity: Optional[int] = None,
    ):
        env = os.environ
        if enabled is None:
            enabled = env.get("REPRO_TRACE", "") not in ("", "0", "false", "no")
        if sample_rate is None:
            sample_rate = float(env.get("REPRO_TRACE_SAMPLE", "1.0"))
        if capacity is None:
            capacity = int(env.get("REPRO_TRACE_BUFFER", "4096"))
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        # deterministic head sampling: keep every Nth root (0 = keep none)
        if sample_rate >= 1.0:
            self._period = 1
        elif sample_rate <= 0.0:
            self._period = 0
        else:
            self._period = max(1, int(round(1.0 / sample_rate)))
        # id allocation: itertools.count.__next__ is atomic in CPython
        self._ids = itertools.count(1)
        # wall-clock anchor so exported timestamps are absolute epoch µs
        self._wall0 = time.time()
        self._perf0 = time.perf_counter()
        self._lock = make_lock("obs.trace.ring")
        self._ring: List[dict] = []  # guarded-by: _lock
        self._slot = 0  # guarded-by: _lock — next overwrite index once full
        self._seen = 0  # guarded-by: _lock — root sampling decisions made
        self._sampled = 0  # guarded-by: _lock — root spans actually opened
        self._finished = 0  # guarded-by: _lock — spans pushed to the ring
        self._dropped = 0  # guarded-by: _lock — spans overwritten unread
        self._decomp_lock = make_lock("obs.trace.decomp")
        self._decomp: Dict[str, dict] = {}  # guarded-by: _decomp_lock

    # -- span creation --------------------------------------------------------

    def next_id(self) -> int:
        return next(self._ids)

    def to_wall_us(self, t_perf: float) -> float:
        """Map a ``perf_counter`` instant to absolute epoch microseconds."""
        return (self._wall0 + (t_perf - self._perf0)) * 1e6

    def root(self, name: str, cat: str = "request") -> Optional[Span]:
        """One head-sampled root span per admitted request, or ``None``.

        ``None`` is the contract for "not traced": every downstream site
        checks the context once and does no other work.
        """
        if not self.enabled or self._period == 0:
            return None
        with self._lock:
            self._seen += 1
            take = (self._seen - 1) % self._period == 0
            if take:
                self._sampled += 1
        if not take:
            return None
        return Span(self, name, cat=cat)

    # -- ring -----------------------------------------------------------------

    def push(self, record: dict) -> None:
        """Land one finished span; a full ring overwrites the oldest."""
        with self._lock:
            self._finished += 1
            if len(self._ring) < self.capacity:
                self._ring.append(record)
            else:
                self._ring[self._slot] = record
                self._slot = (self._slot + 1) % self.capacity
                self._dropped += 1

    def export(self) -> List[dict]:
        """Buffered spans, oldest first (a consistent copy)."""
        with self._lock:
            if len(self._ring) < self.capacity:
                return list(self._ring)
            return self._ring[self._slot:] + self._ring[: self._slot]

    def clear(self) -> None:
        with self._lock:
            self._ring = []
            self._slot = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample_rate": self.sample_rate,
                "capacity": self.capacity,
                "seen": self._seen,
                "sampled": self._sampled,
                "finished": self._finished,
                "dropped": self._dropped,
                "buffered": len(self._ring),
            }

    # -- latency decomposition ------------------------------------------------

    def record_components(self, endpoint: str, components: Dict[str, float], e2e_s: float):
        """Fold one ok root's component seconds into the per-endpoint
        histograms (sampled requests only, by construction)."""
        with self._decomp_lock:
            ep = self._decomp.get(endpoint)
            if ep is None:
                ep = self._decomp[endpoint] = {"e2e": _Agg(), "components": {}}
            ep["e2e"].add(e2e_s)
            for name, seconds in components.items():
                agg = ep["components"].get(name)
                if agg is None:
                    agg = ep["components"][name] = _Agg()
                agg.add(seconds)

    def decomposition(self) -> Dict[str, dict]:
        """Per-endpoint component histograms vs end-to-end latency.

        Per-component summaries are normalized by that component's own
        observation count (a ``batch`` mean is "per batched request").
        ``component_sum_mean_ms`` is instead the total attributed time
        divided by the number of ok roots: components are conditional
        (a full cache hit never touches the batcher), so only this
        per-request normalization is additive — it keeps the
        conservation invariant ``component_sum ≤ e2e mean``, whose slack
        is ``unattributed_mean_ms`` (clamped at the bound the tests
        pin: it cannot go negative without an accounting bug).
        """
        with self._decomp_lock:
            out: Dict[str, dict] = {}
            for endpoint, ep in sorted(self._decomp.items()):
                e2e = ep["e2e"].summary()
                comps = {
                    name: agg.summary()
                    for name, agg in sorted(ep["components"].items())
                }
                comp_mean = 1e3 * sum(
                    agg.total_s for agg in ep["components"].values()
                ) / max(ep["e2e"].count, 1)
                out[endpoint] = {
                    "count": e2e["count"],
                    "e2e": e2e,
                    "components": comps,
                    "component_sum_mean_ms": comp_mean,
                    "unattributed_mean_ms": max(
                        0.0, e2e.get("mean_ms", 0.0) - comp_mean
                    ),
                }
            return out


# -- module default tracer ----------------------------------------------------

_default_lock = make_lock("obs.trace.default")
_default: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-wide default tracer, built lazily from the
    environment (``REPRO_TRACE`` / ``REPRO_TRACE_SAMPLE`` /
    ``REPRO_TRACE_BUFFER``)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = Tracer()
        return _default


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Swap the default tracer (tests, CLI); returns the previous one."""
    global _default
    with _default_lock:
        previous = _default
        _default = tracer
        return previous


# -- export formats -----------------------------------------------------------


def chrome_trace(spans: List[dict]) -> dict:
    """Chrome trace-event JSON (``ph: "X"`` complete events) — loadable
    in Perfetto / ``chrome://tracing``.  Span linkage and the component
    breakdown ride in each event's ``args``."""
    events = []
    for s in spans:
        events.append(
            {
                "name": s["name"],
                "cat": s["cat"],
                "ph": "X",
                "ts": s["ts_us"],
                "dur": s["dur_us"],
                "pid": 1,
                "tid": s["thread"],
                "args": {
                    "trace_id": s["trace_id"],
                    "span_id": s["span_id"],
                    "parent_id": s["parent_id"],
                    "outcome": s["outcome"],
                    "components_ms": s["components_ms"],
                    **s["args"],
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


#: pinned Chrome trace-event schema: required event keys -> type check.
_EVENT_SCHEMA = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
    "args": dict,
}


def validate_chrome_trace(payload: dict) -> int:
    """Validate Chrome trace-event JSON against the pinned schema;
    returns the event count, raises ``ValueError`` on any deviation.
    Gated in CI so ``GET /trace`` output stays Perfetto-loadable."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace payload must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key, types in _EVENT_SCHEMA.items():
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] missing key {key!r}")
            if not isinstance(ev[key], types) or isinstance(ev[key], bool):
                raise ValueError(
                    f"traceEvents[{i}].{key} has type "
                    f"{type(ev[key]).__name__}, want {types}"
                )
        if ev["ph"] != "X":
            raise ValueError(f"traceEvents[{i}].ph must be 'X', got {ev['ph']!r}")
        if ev["dur"] < 0 or ev["ts"] < 0:
            raise ValueError(f"traceEvents[{i}] has negative ts/dur")
        args = ev["args"]
        for key in ("trace_id", "span_id", "outcome"):
            if key not in args:
                raise ValueError(f"traceEvents[{i}].args missing {key!r}")
    return len(events)


def to_jsonl(spans: List[dict]) -> str:
    """One span per line (the raw ring records, machine-mergeable)."""
    return "".join(json.dumps(s, sort_keys=True) + "\n" for s in spans)
