"""Resumable streaming Libra: online partition assignment for arriving edges.

Libra's greedy rule (:mod:`repro.partition.libra`) is inherently
streaming — each edge's assignment depends only on the membership matrix
and the load vector accumulated over all *previous* edges.
:class:`LibraState` materializes exactly that state so a service can
assign partitions to edges as they arrive, one or a chunk at a time,
instead of re-running the batch partitioner over the whole graph.

Equivalence contract (pinned in ``tests/dyngraph/test_ingest.py``):
feeding any prefix/suffix split of an edge sequence through one
``LibraState`` — across process restarts via :meth:`save` /
:meth:`load` — produces byte-identical assignments, loads, and
membership to one :func:`repro.partition.libra.libra_partition` replay
over the concatenated sequence with ``shuffle_edges=False`` and the same
seed.  (The batch partitioner's optional pre-shuffle is an offline
luxury; an online stream *is* its own arrival order.)

Because the state carries the membership matrix, it also knows the
current replication factor at every step.  Streaming assignment is
greedy and never revisits old decisions, so quality drifts as the graph
grows: :meth:`set_baseline` + :meth:`should_repartition` implement the
drift trigger that recommends an offline repartition once the
replication factor has degraded past a tolerance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE


class LibraState:
    """Online Libra partitioner state (membership, loads, tie-break noise).

    Parameters
    ----------
    num_vertices:
        Size of the (fixed) vertex set the membership matrix covers.
    num_partitions:
        Number of partitions (sockets).
    seed:
        Seeds the tie-break noise exactly like
        ``libra_partition(..., seed, shuffle_edges=False)`` does, which
        is what makes streaming and batch replay bit-equal.
    """

    def __init__(self, num_vertices: int, num_partitions: int, seed: int = 0):
        n, p = int(num_vertices), int(num_partitions)
        if p < 1:
            raise ValueError("num_partitions must be >= 1")
        if n < 0:
            raise ValueError("num_vertices must be >= 0")
        self.num_vertices = n
        self.num_partitions = p
        self.seed = int(seed)
        #: vertex -> partitions holding a clone of it
        self.member = np.zeros((n, p), dtype=bool)
        #: edges per partition
        self.load = np.zeros(p, dtype=np.int64)
        # Identical draw to libra_partition(shuffle_edges=False): the
        # permutation is never taken there, so random(p) is the first
        # consumption of the generator in both places.
        self.tie = np.random.default_rng(seed).random(p) * 1e-9
        self.num_assigned = 0
        self.baseline_rf: Optional[float] = None

    # -- assignment -------------------------------------------------------------

    def assign(self, src, dst) -> np.ndarray:
        """Assign a chunk of arriving edges, in order; returns partitions.

        The loop is sequential by construction (each decision feeds the
        next), exactly like the batch partitioner's.
        """
        src = np.atleast_1d(np.asarray(src, dtype=INDEX_DTYPE))
        dst = np.atleast_1d(np.asarray(dst, dtype=INDEX_DTYPE))
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src/dst must be equal-length 1-D sequences")
        if src.size and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= self.num_vertices
            or dst.max() >= self.num_vertices
        ):
            raise ValueError(
                f"edge endpoints must be in [0, {self.num_vertices})"
            )
        out = np.zeros(src.size, dtype=INDEX_DTYPE)
        if self.num_partitions == 1:
            self.num_assigned += src.size
            self.load[0] += src.size
            if src.size:
                self.member[src, 0] = True
                self.member[dst, 0] = True
            return out
        member, load, tie = self.member, self.load, self.tie
        for i in range(src.size):
            u = src[i]
            v = dst[i]
            mu = member[u]
            mv = member[v]
            both = mu & mv
            if both.any():
                cand = both
            else:
                either = mu | mv
                cand = either if either.any() else None
            if cand is None:
                part = int(np.argmin(load + tie))
            else:
                masked = np.where(cand, load + tie, np.inf)
                part = int(np.argmin(masked))
            out[i] = part
            member[u, part] = True
            member[v, part] = True
            load[part] += 1
        self.num_assigned += src.size
        return out

    def assign_one(self, u: int, v: int) -> int:
        return int(self.assign([u], [v])[0])

    def assign_graph(self, graph: CSRGraph) -> np.ndarray:
        """Stream a whole graph in CSR storage order.

        Returns the assignment indexed by **edge id** — the same indexing
        (and, by the equivalence contract, the same values) as
        ``libra_partition(graph, p, seed, shuffle_edges=False)``.
        """
        src, dst, eid = graph.to_coo()
        assignment = np.zeros(graph.num_edges, dtype=INDEX_DTYPE)
        assignment[eid] = self.assign(src, dst)
        return assignment

    # -- quality / drift --------------------------------------------------------

    @property
    def replication_factor(self) -> float:
        """Average clones per present vertex (paper Table 4 metric)."""
        clones = self.member.sum(axis=1)
        present = clones > 0
        if not present.any():
            return 0.0
        return float(clones[present].mean())

    def set_baseline(self, rf: Optional[float] = None) -> float:
        """Record the reference replication factor drift is measured from
        (defaults to the current one, e.g. right after bulk ingest)."""
        self.baseline_rf = float(
            self.replication_factor if rf is None else rf
        )
        return self.baseline_rf

    def drift(self) -> float:
        """Relative replication-factor growth over the baseline."""
        if not self.baseline_rf:
            return 0.0
        return self.replication_factor / self.baseline_rf - 1.0

    def should_repartition(self, tolerance: float = 0.1) -> bool:
        """Recommend an offline repartition once streaming quality has
        drifted more than ``tolerance`` (relative) past the baseline."""
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        return self.drift() > tolerance

    # -- persistence ------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "num_vertices": np.asarray(self.num_vertices),
            "num_partitions": np.asarray(self.num_partitions),
            "seed": np.asarray(self.seed),
            "member": np.packbits(self.member, axis=0),
            "load": self.load,
            "tie": self.tie,
            "num_assigned": np.asarray(self.num_assigned),
            "baseline_rf": np.asarray(
                np.nan if self.baseline_rf is None else self.baseline_rf
            ),
        }

    def save(self, path: str) -> None:
        """Persist to ``.npz`` so ingestion survives a process restart."""
        np.savez_compressed(path, **self.state_dict())

    @classmethod
    def load(cls, path: str) -> "LibraState":
        import os

        if not os.path.exists(path) and os.path.exists(path + ".npz"):
            path = path + ".npz"
        with np.load(path) as data:
            state = cls(
                int(data["num_vertices"]),
                int(data["num_partitions"]),
                seed=int(data["seed"]),
            )
            state.member = (
                np.unpackbits(
                    data["member"], axis=0, count=state.num_vertices
                ).astype(bool)
            )
            state.load = data["load"].astype(np.int64)
            state.tie = data["tie"]  # resumed verbatim, not re-drawn
            state.num_assigned = int(data["num_assigned"])
            baseline = float(data["baseline_rf"])
            state.baseline_rf = None if np.isnan(baseline) else baseline
        return state

    def stats(self) -> dict:
        return {
            "num_partitions": self.num_partitions,
            "num_assigned": self.num_assigned,
            "loads": self.load.tolist(),
            "replication_factor": self.replication_factor,
            "baseline_rf": self.baseline_rf,
            "drift": self.drift(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LibraState(p={self.num_partitions}, "
            f"assigned={self.num_assigned}, rf={self.replication_factor:.3f})"
        )


def streaming_libra_partition(
    graph: CSRGraph, num_partitions: int, seed: int = 0
) -> Tuple[np.ndarray, LibraState]:
    """Partition a whole graph through :class:`LibraState` in one go.

    Convenience for bootstrapping: returns the assignment (edge-id
    indexed, equal to ``libra_partition(..., shuffle_edges=False)``) plus
    the live state, ready to keep assigning arriving edges.
    """
    n = max(graph.num_vertices, graph.num_src)
    state = LibraState(n, num_partitions, seed=seed)
    assignment = state.assign_graph(graph)
    state.set_baseline()
    return assignment, state
