"""Topology updates for the online serving tier.

:mod:`repro.serving.refresh` keeps an engine's precomputed embedding
tables consistent under *feature* updates.  This module extends the same
machinery to *edge* updates: the engine's frozen ``graph`` is shadowed
by a :class:`~repro.dyngraph.delta.DynamicGraph`, arriving edge
mutations are applied to it, and the engine is re-pointed at the merged
view (plus a fresh degree normalizer — topology changes move degrees,
and both servable architectures normalize by in-degree).

The refresh itself rides the existing k-hop affected-set machinery,
seeded from the mutated edges' **endpoints**.  That seed set soundly
over-approximates every layer-0 output the mutation can move:

- a mutated edge ``u -> v`` changes row ``v``'s aggregation input set,
  and ``v``'s in-degree (hence ``norm[v]``) — ``v`` is a seed;
- ``norm[v]`` also scales ``v``'s *outgoing* contributions (GCN scales
  sources, GraphSAGE's self term), so ``v``'s out-neighbours move — the
  affected-set expansion's first hop covers them;
- ``u``'s own output is unchanged (its in-edges and norm are untouched),
  so seeding it costs a few extra rows but loses nothing.

Rows outside the affected sets keep bit-identical values under the new
topology, which is what makes the incremental path exactly equal to a
full ``precompute()`` on the compacted graph (pinned in
``tests/dyngraph/test_serving_updates.py``).

Wired into :class:`repro.serving.refresh.IncrementalRefresher.
update_edges` (incremental / full / deferred policy) and
:class:`repro.serving.server.PredictionService.update_edges` (HTTP
``POST /update_edges``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.models import norm_from_degrees
from repro.dyngraph.delta import DynamicGraph, _as_endpoint_arrays
from repro.graph.csr import INDEX_DTYPE


def as_edge_pairs(edges, what: str) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize an iterable of ``(u, v)`` pairs to ``(src, dst)`` arrays.

    The canonical wire/API format for edge updates is a sequence of
    pairs (``[[u, v], ...]``); ``None`` means no edges.
    """
    if edges is None:
        empty = np.zeros(0, dtype=INDEX_DTYPE)
        return empty, empty
    try:
        raw = np.asarray(edges)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ValueError(f"{what} must be (src, dst) integer pairs: {exc}")
    # strictly-integer endpoints: a float pair would truncate silently
    # (mutating the wrong edge), and bools are not vertex ids
    if raw.size and raw.dtype.kind not in "iu":
        raise ValueError(
            f"{what} must be (src, dst) integer pairs, got dtype {raw.dtype}"
        )
    pairs = raw.astype(INDEX_DTYPE)
    if pairs.size == 0:
        empty = np.zeros(0, dtype=INDEX_DTYPE)
        return empty, empty
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(
            f"{what} must be a sequence of (src, dst) pairs, "
            f"got shape {pairs.shape}"
        )
    return pairs[:, 0].copy(), pairs[:, 1].copy()


@dataclass(frozen=True)
class EdgeUpdateStats:
    """Outcome of one ``update_edges`` call."""

    #: "incremental" (row-subset recompute), "full" (whole-graph
    #: precompute), or "deferred" (tables left stale, on-demand serving).
    mode: str
    num_added: int
    num_removed: int
    #: distinct mutated-edge endpoints seeding the affected sets.
    num_seeds: int
    affected_per_layer: Tuple[int, ...]
    affected_fraction: float
    rows_recomputed: int
    #: live edges in the merged graph after the update.
    num_edges: int
    #: whether this update tripped an auto-compaction.
    compacted: bool
    delta_fraction: float

    def to_json(self) -> dict:
        """JSON-safe dict (the HTTP endpoint's response body)."""
        return {
            "mode": self.mode,
            "num_added": self.num_added,
            "num_removed": self.num_removed,
            "num_seeds": self.num_seeds,
            "affected_per_layer": list(self.affected_per_layer),
            "affected_fraction": self.affected_fraction,
            "rows_recomputed": self.rows_recomputed,
            "num_edges": self.num_edges,
            "compacted": self.compacted,
            "delta_fraction": self.delta_fraction,
        }


@dataclass(frozen=True)
class TopologyDelta:
    """What :func:`apply_topology` did to the engine's graph."""

    seeds: np.ndarray
    num_added: int
    num_removed: int
    compacted: bool


def apply_topology(
    engine,
    add=None,
    remove=None,
    compact_threshold: Optional[float] = 0.25,
) -> TopologyDelta:
    """Apply edge mutations to an engine's graph (tables untouched).

    Lazily shadows ``engine.graph`` with a :class:`DynamicGraph` (kept on
    ``engine.dynamic``), applies removals then additions, and re-points
    ``engine.graph`` / ``engine.norm`` at the merged view.  The caller is
    responsible for refreshing the embedding tables afterwards
    (incrementally from the returned seeds, or via ``precompute()``).
    """
    add_src, add_dst = as_edge_pairs(add, "add")
    rem_src, rem_dst = as_edge_pairs(remove, "remove")
    if add_src.size == 0 and rem_src.size == 0:
        raise ValueError("update_edges needs at least one edge to add or remove")
    # validate BOTH batches before touching the shadow graph: a bad add
    # must not leave removals half-applied (and unpublished — the next
    # update would then publish them without seeding their endpoints,
    # breaking the incremental == compacted-precompute contract)
    n = engine.num_vertices
    _as_endpoint_arrays(add_src, add_dst, n, "add")
    _as_endpoint_arrays(rem_src, rem_dst, n, "remove")
    dyn = engine.dynamic
    if dyn is None:
        dyn = DynamicGraph(engine.graph, compact_threshold=compact_threshold)
        engine.dynamic = dyn
    compactions_before = dyn.num_compactions
    # removals first: an add+remove of the same pair in one batch means
    # "replace" (the removal targets a pre-existing edge, not the new one)
    if rem_src.size:
        dyn.remove_edges(rem_src, rem_dst)
    if add_src.size:
        dyn.add_edges(add_src, add_dst)
    engine.graph = dyn.csr()
    engine.norm = norm_from_degrees(
        engine.model_kind, engine.graph.in_degrees()
    )
    seeds = np.unique(np.concatenate([add_src, add_dst, rem_src, rem_dst]))
    return TopologyDelta(
        seeds=seeds,
        num_added=int(add_src.size),
        num_removed=int(rem_src.size),
        compacted=dyn.num_compactions > compactions_before,
    )


def full_topology_update(engine, add=None, remove=None) -> EdgeUpdateStats:
    """Edge update + whole-graph precompute (no refresher attached).

    The simplest correct policy: apply the mutation and rebuild every
    table.  ``engine.version`` is bumped by the precompute, so caches
    layered on top invalidate as usual.
    """
    delta = apply_topology(engine, add=add, remove=remove)
    engine.precompute()
    dyn = engine.dynamic
    return EdgeUpdateStats(
        mode="full",
        num_added=delta.num_added,
        num_removed=delta.num_removed,
        num_seeds=int(delta.seeds.size),
        affected_per_layer=(engine.num_vertices,) * engine.num_layers,
        affected_fraction=1.0,
        rows_recomputed=engine.num_vertices * engine.num_layers,
        num_edges=dyn.num_edges,
        compacted=delta.compacted,
        delta_fraction=dyn.delta_fraction,
    )
