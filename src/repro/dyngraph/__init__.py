"""Streaming graph mutation: dynamic topology over the frozen-CSR stack.

Everything below this package assumes an immutable
:class:`~repro.graph.csr.CSRGraph`; everything above it (a service
facing live traffic) sees topology that never stops changing.  The
subsystem closes that gap in three layers:

- :mod:`repro.dyngraph.delta` — :class:`DynamicGraph`: a frozen CSR base
  plus an append-only delta edge buffer and deletion tombstones, with a
  merged read view and a ``compact()`` pinned bit-identical to a
  from-scratch rebuild (auto-triggered above a delta-fraction threshold).
- :mod:`repro.dyngraph.ingest` — :class:`LibraState`: resumable streaming
  Libra partitioner state, so arriving edges get partition assignments
  online, byte-equal to a batch ``libra_partition`` replay; includes the
  replication-drift trigger recommending offline repartition.
- :mod:`repro.dyngraph.serving_updates` — edge updates for the serving
  tier: ``update_edges(add, remove)`` on the refresher/service seeds the
  k-hop affected-set machinery from mutated-edge endpoints and refreshes
  exactly equal to a full precompute on the compacted graph.

CLI: ``repro ingest``.  HTTP: ``POST /update_edges`` on the prediction
server.  Benchmarks: ``benchmarks/bench_streaming.py`` →
``BENCH_streaming.json``.
"""

from repro.dyngraph.delta import DynamicGraph
from repro.dyngraph.ingest import LibraState, streaming_libra_partition
from repro.dyngraph.serving_updates import (
    EdgeUpdateStats,
    apply_topology,
    full_topology_update,
)

__all__ = [
    "DynamicGraph",
    "LibraState",
    "streaming_libra_partition",
    "EdgeUpdateStats",
    "apply_topology",
    "full_topology_update",
]
