"""Delta-CSR dynamic graph: a frozen base plus streaming mutations.

Everything downstream of :mod:`repro.graph.csr` — the kernels, the
partitioner, training, serving — consumes an immutable
:class:`~repro.graph.csr.CSRGraph`.  Production topology is not frozen:
new interactions arrive continuously and old ones are retracted.
:class:`DynamicGraph` bridges the two worlds the way DGL's mutable
``DGLGraph`` fronts its immutable CSR formats: the bulk of the edges
live in a frozen CSR **base**, arriving edges append to a small COO
**delta** buffer (O(1) amortized per edge, no CSR rebuild), and
deletions mark **tombstones** instead of rewriting either store.

The merged read view (:meth:`in_degrees`, :meth:`neighbors`,
:meth:`edge_ids_of`, :meth:`csr`) presents exactly the graph that a
from-scratch rebuild over the surviving edge sequence would produce:
``coo_to_csr`` sorts destination-major with a *stable* sort, so base
edges keep their row order and delta edges land after them in arrival
order.  :meth:`compact` folds the delta into a fresh base — pinned
bit-identical (``indptr``/``indices``/``edge_ids``) to that rebuild —
and mutation methods trigger it automatically once the delta fraction
passes ``compact_threshold``, keeping view and mutation costs bounded.

Edge identifiers are stable across the graph's lifetime: an edge keeps
the id it was assigned on insertion (base edges keep the base's ids),
deleted ids are never reused, and :meth:`compact` preserves them — so
edge feature rows and partition assignments indexed by edge id survive
any number of mutations and compactions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.builders import coo_to_csr
from repro.graph.csr import CSRGraph, INDEX_DTYPE


def _as_endpoint_arrays(
    src, dst, num_vertices: int, what: str
) -> Tuple[np.ndarray, np.ndarray]:
    src = np.atleast_1d(np.asarray(src, dtype=INDEX_DTYPE))
    dst = np.atleast_1d(np.asarray(dst, dtype=INDEX_DTYPE))
    if src.ndim != 1 or dst.ndim != 1 or src.size != dst.size:
        raise ValueError(
            f"{what} endpoints must be equal-length 1-D sequences, "
            f"got shapes {src.shape} and {dst.shape}"
        )
    if src.size and (
        src.min() < 0
        or dst.min() < 0
        or src.max() >= num_vertices
        or dst.max() >= num_vertices
    ):
        raise ValueError(
            f"{what} endpoints must be in [0, {num_vertices}); the vertex "
            "set of a DynamicGraph is fixed (features/labels align to it)"
        )
    return src, dst


class DynamicGraph:
    """Mutable directed graph over a fixed vertex set.

    Parameters
    ----------
    base:
        Starting topology.  Must be square (``num_src == num_vertices``):
        the vertex set is fixed for the graph's lifetime because every
        aligned array (features, labels, embedding tables) is sized to it.
    compact_threshold:
        Auto-compact when ``delta_fraction`` exceeds this value after a
        mutation.  ``None`` disables auto-compaction (callers compact
        explicitly).
    """

    def __init__(
        self, base: CSRGraph, compact_threshold: Optional[float] = 0.25
    ):
        if not base.is_square:
            raise ValueError(
                "DynamicGraph requires a square base graph "
                f"(num_src={base.num_src} != num_vertices={base.num_vertices})"
            )
        if compact_threshold is not None and compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive (or None)")
        self._base = base
        self.compact_threshold = compact_threshold
        #: per-base-edge liveness (tombstones are ``False`` entries).
        self._base_alive = np.ones(base.num_edges, dtype=bool)
        self._base_dead = 0
        # delta buffers: python lists so appends are O(1) amortized
        self._d_src: List[int] = []
        self._d_dst: List[int] = []
        self._d_eid: List[int] = []
        self._d_alive: List[bool] = []
        self._d_dead = 0
        #: (u, v) -> delta positions, so pair lookups (remove_edges,
        #: has_edge) cost O(matches) instead of a full delta scan
        self._d_index: dict = {}
        #: next edge id to hand out (ids are never reused)
        self._next_eid = int(base.edge_ids.max(initial=-1)) + 1
        self._deg = base.in_degrees().astype(INDEX_DTYPE)
        self._merged: Optional[CSRGraph] = None  # cached merged CSR
        self.num_compactions = 0
        self.num_added = 0
        self.num_removed = 0

    # -- sizes -----------------------------------------------------------------

    @property
    def base(self) -> CSRGraph:
        """Current frozen base (replaced by :meth:`compact`)."""
        return self._base

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def num_edges(self) -> int:
        """Live edges across base and delta."""
        return (
            self._base.num_edges
            - self._base_dead
            + len(self._d_src)
            - self._d_dead
        )

    @property
    def num_delta_edges(self) -> int:
        """Live edges still in the delta buffer."""
        return len(self._d_src) - self._d_dead

    @property
    def num_tombstones(self) -> int:
        """Dead entries still occupying the base or delta stores."""
        return self._base_dead + self._d_dead

    @property
    def delta_fraction(self) -> float:
        """Un-compacted state relative to the base: ``(delta entries +
        base tombstones) / base edges``.  This is the quantity the
        auto-compaction threshold is compared against — it measures how
        far the stores have drifted from a clean CSR, not graph growth.
        """
        return (len(self._d_src) + self._base_dead) / max(
            self._base.num_edges, 1
        )

    # -- mutation --------------------------------------------------------------

    def add_edges(self, src, dst) -> np.ndarray:
        """Append edges ``src[i] -> dst[i]``; returns their new edge ids.

        Parallel edges are allowed (the base CSR allows them too).
        """
        src, dst = _as_endpoint_arrays(src, dst, self.num_vertices, "add")
        eids = np.arange(
            self._next_eid, self._next_eid + src.size, dtype=INDEX_DTYPE
        )
        pos = len(self._d_src)
        self._d_src.extend(src.tolist())
        self._d_dst.extend(dst.tolist())
        self._d_eid.extend(eids.tolist())
        self._d_alive.extend([True] * src.size)
        for i, (u, v) in enumerate(zip(src.tolist(), dst.tolist())):
            self._d_index.setdefault((u, v), []).append(pos + i)
        self._next_eid += src.size
        np.add.at(self._deg, dst, 1)
        self.num_added += src.size
        self._dirty()
        return eids

    def add_edge(self, u: int, v: int) -> int:
        return int(self.add_edges([u], [v])[0])

    def remove_edges(self, src, dst, strict: bool = True) -> np.ndarray:
        """Tombstone every live edge matching each ``(src[i], dst[i])``.

        Parallel edges matching a pair are all removed.  With ``strict``
        (the default) a pair with no live match raises ``ValueError``;
        otherwise it is ignored.  The whole batch is validated before any
        tombstone is written, so a failing pair leaves the graph
        untouched.  Returns the removed edge ids.
        """
        src, dst = _as_endpoint_arrays(src, dst, self.num_vertices, "remove")
        taken = set()
        victims: List[Tuple[str, int, int]] = []  # (store, pos, dst)
        for u, v in zip(src.tolist(), dst.tolist()):
            hits = [h for h in self._live_matches(u, v) if h not in taken]
            if not hits:
                if strict:
                    raise ValueError(f"no live edge {u} -> {v} to remove")
                continue
            taken.update(hits)
            victims.extend((store, pos, v) for store, pos in hits)
        removed: List[int] = []
        for store, pos, v in victims:
            if store == "base":
                self._base_alive[pos] = False
                self._base_dead += 1
                removed.append(int(self._base.edge_ids[pos]))
            else:
                self._d_alive[pos] = False
                self._d_dead += 1
                removed.append(self._d_eid[pos])
            self._deg[v] -= 1
            self.num_removed += 1
        if removed:
            self._dirty()
        return np.asarray(removed, dtype=INDEX_DTYPE)

    def remove_edge(self, u: int, v: int) -> np.ndarray:
        return self.remove_edges([u], [v])

    def _live_matches(self, u: int, v: int) -> List[Tuple[str, int]]:
        """``(store, position)`` of every live edge ``u -> v``."""
        lo, hi = int(self._base.indptr[v]), int(self._base.indptr[v + 1])
        row = self._base.indices[lo:hi]
        alive = self._base_alive[lo:hi]
        hits: List[Tuple[str, int]] = [
            ("base", lo + int(i)) for i in np.flatnonzero((row == u) & alive)
        ]
        for i in self._d_index.get((u, v), ()):
            if self._d_alive[i]:
                hits.append(("delta", i))
        return hits

    def _dirty(self) -> None:
        self._merged = None
        if (
            self.compact_threshold is not None
            and self.delta_fraction > self.compact_threshold
        ):
            self.compact()

    # -- merged read view -------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._live_matches(int(u), int(v)))

    def in_degree(self, v: int) -> int:
        return int(self._deg[v])

    def in_degrees(self) -> np.ndarray:
        return self._deg.copy()

    def neighbors(self, v: int) -> np.ndarray:
        """Live in-neighbours of ``v``: base row order, then arrival order."""
        return self._row(v)[0]

    def edge_ids_of(self, v: int) -> np.ndarray:
        return self._row(v)[1]

    def _row(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = int(self._base.indptr[v]), int(self._base.indptr[v + 1])
        alive = self._base_alive[lo:hi]
        srcs = [self._base.indices[lo:hi][alive]]
        eids = [self._base.edge_ids[lo:hi][alive]]
        d_src = [
            u
            for u, dv, a in zip(self._d_src, self._d_dst, self._d_alive)
            if dv == v and a
        ]
        d_eid = [
            e
            for e, dv, a in zip(self._d_eid, self._d_dst, self._d_alive)
            if dv == v and a
        ]
        srcs.append(np.asarray(d_src, dtype=INDEX_DTYPE))
        eids.append(np.asarray(d_eid, dtype=INDEX_DTYPE))
        return np.concatenate(srcs), np.concatenate(eids)

    def live_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Surviving ``(src, dst, edge_ids)`` — base storage order first,
        then delta arrival order.  This is *the* canonical edge sequence:
        ``coo_to_csr`` over it defines what :meth:`csr`/:meth:`compact`
        must equal bit-for-bit.
        """
        alive = self._base_alive
        d_alive = np.asarray(self._d_alive, dtype=bool)
        b_src, b_dst, b_eid = self._base.to_coo()
        d_src = np.asarray(self._d_src, dtype=INDEX_DTYPE)[d_alive]
        d_dst = np.asarray(self._d_dst, dtype=INDEX_DTYPE)[d_alive]
        d_eid = np.asarray(self._d_eid, dtype=INDEX_DTYPE)[d_alive]
        return (
            np.concatenate([b_src[alive], d_src]),
            np.concatenate([b_dst[alive], d_dst]),
            np.concatenate([b_eid[alive], d_eid]),
        )

    def csr(self) -> CSRGraph:
        """The merged topology as an immutable :class:`CSRGraph`.

        Bit-identical to rebuilding from scratch over :meth:`live_edges`
        (cached until the next mutation; after a compaction this is the
        base itself, so the call is free).
        """
        if self._merged is None:
            if self.num_tombstones == 0 and not self._d_src:
                self._merged = self._base
            else:
                src, dst, eid = self.live_edges()
                n = self.num_vertices
                self._merged = coo_to_csr(
                    src, dst, num_dst=n, num_src=n, edge_ids=eid
                )
        return self._merged

    # -- compaction -------------------------------------------------------------

    def compact(self) -> CSRGraph:
        """Fold delta and tombstones into a fresh frozen base.

        Returns the new base, bit-identical to ``coo_to_csr`` over the
        surviving edge sequence.  Edge ids are preserved; the id counter
        keeps monotonically increasing so removed ids are never reused.
        """
        new_base = self.csr()
        self._base = new_base
        self._base_alive = np.ones(new_base.num_edges, dtype=bool)
        self._base_dead = 0
        self._d_src, self._d_dst, self._d_eid = [], [], []
        self._d_alive, self._d_dead = [], 0
        self._d_index = {}
        self._merged = new_base
        self.num_compactions += 1
        return new_base

    def stats(self) -> dict:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_base_edges": int(self._base.num_edges),
            "num_delta_edges": self.num_delta_edges,
            "num_tombstones": self.num_tombstones,
            "delta_fraction": self.delta_fraction,
            "num_added": self.num_added,
            "num_removed": self.num_removed,
            "num_compactions": self.num_compactions,
            "compact_threshold": self.compact_threshold,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, delta={self.num_delta_edges}, "
            f"tombstones={self.num_tombstones})"
        )
