"""repro — a from-scratch reproduction of DistGNN (SC 2021).

DistGNN scales full-batch GNN training on CPU clusters via (1) an
architecture-optimized aggregation primitive, (2) vertex-cut graph
partitioning (Libra) for communication reduction, and (3) the Delayed
Remote Partial Aggregates (DRPA) family — ``0c`` / ``cd-0`` / ``cd-r`` —
for communication avoidance.

Public entry points::

    from repro import load_dataset, aggregate, libra_partition
    from repro.core import Trainer, DistributedTrainer, TrainConfig
    from repro.nn import GraphSAGE

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.graph import CSRGraph, load_dataset
from repro.kernels import aggregate
from repro.partition import libra_partition

__all__ = ["CSRGraph", "load_dataset", "aggregate", "libra_partition", "__version__"]
