"""Rule registry for ``repro check``.

Each rule exposes ``code`` (stable REPxxx identifier), ``name``, and
``check(ctx) -> Iterable[Violation]``.  Add new rules here to enroll
them in the default run.
"""

from .blocking import BlockingUnderLockRule
from .excepts import BroadExceptRule
from .guarded import GuardedByRule
from .readonly import ReadOnlyHandoutRule

ALL_RULES = [
    GuardedByRule,
    BlockingUnderLockRule,
    ReadOnlyHandoutRule,
    BroadExceptRule,
]

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "GuardedByRule",
    "BlockingUnderLockRule",
    "ReadOnlyHandoutRule",
    "BroadExceptRule",
]
