"""REP101 — guarded-by discipline.

Attributes declared with ``# guarded-by: <lock>`` may only be touched
while the canonical lock is held: lexically inside ``with self.<lock>:``
(aliases count), or in a method marked ``# requires-lock: <lock>``.
``__init__`` is exempt (construction happens-before publication), and a
``# racy-ok: <reason>`` marker on the access line suppresses the
finding for documented benign races.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..annotations import markers_in_range
from ..linter import FileContext, Violation
from .common import (
    collect_class_locks,
    collect_name_locks,
    self_attr,
    walk_held,
)


class GuardedByRule:
    code = "REP101"
    name = "guarded-by discipline"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        name_locks = collect_name_locks(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, name_locks)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, name_locks
    ) -> Iterator[Violation]:
        facts = collect_class_locks(ctx, cls)
        if not facts.guarded:
            return
        # Sanity: every guard target must be a known lock of the class.
        for attr, lock in sorted(facts.guarded.items()):
            if facts.canonical(lock) not in facts.lock_names() | {lock}:
                pass  # tolerated: guard may name a lock the class receives
        violations: List[Violation] = []

        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue

            def on_node(node: ast.AST, held) -> None:
                attr = self_attr(node)
                if attr is None or attr not in facts.guarded:
                    return
                lock = facts.canonical(facts.guarded[attr])
                if lock in held:
                    return
                line = getattr(node, "lineno", 0)
                markers = markers_in_range(ctx.comments, line, line)
                if markers.get("racy-ok"):
                    return
                violations.append(
                    ctx.violation(
                        self.code,
                        node,
                        f"self.{attr} accessed without holding self.{lock}"
                        f" (guarded-by: {lock})",
                    )
                )

            walk_held(ctx, item, facts, name_locks, on_node)

        # One finding per (scope, message) site; repeated hits on one
        # line collapse naturally via the dict.
        seen = {}
        for v in violations:
            seen.setdefault((v.scope, v.line, v.message), v)
        yield from seen.values()
