"""REP104 — classified broad excepts.

``except Exception:`` / ``except BaseException:`` / bare ``except:``
swallow every error indiscriminately.  Each one must either re-raise
(an ``ast.Raise`` anywhere in the handler) or carry an
``# audit[broad-except]: <reason>`` marker stating where the error goes
(metrics counter, future delivery, HTTP 500, ...).  Unclassified broad
handlers are exactly how serving bugs turn into silent wrong answers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..annotations import markers_in_range
from ..linter import FileContext, Violation

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "bare except"
    node = handler.type
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return f"except {node.id}"
    if isinstance(node, ast.Attribute) and node.attr in _BROAD:
        return f"except {node.attr}"
    return ""


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


class BroadExceptRule:
    code = "REP104"
    name = "classified broad excepts"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            kind = _is_broad(node)
            if not kind:
                continue
            if _reraises(node):
                continue
            markers = markers_in_range(ctx.comments, node.lineno, node.lineno)
            if markers.get("audit[broad-except]"):
                continue
            yield ctx.violation(
                self.code,
                node,
                f"{kind} without re-raise or '# audit[broad-except]: "
                "<reason>' marker",
            )
