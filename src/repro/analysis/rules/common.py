"""Shared AST helpers for the lint rules: lock discovery + held tracking.

The rules reason about locks at *name* level, mirroring the runtime
sanitizer: ``self._lock`` inside a class and ``_POOL_LOCK`` at module
scope are lock names; ``with <lock>:`` pushes the canonical name onto
the held set for the duration of the block.  Nested ``def``/``lambda``
bodies run later on arbitrary threads, so they reset the held set (a
``# requires-lock:`` marker re-seeds it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Set

from ..annotations import markers_in_range, markers_on_lines
from ..invariants import LOCK_FACTORY_NAMES, THREADING_LOCK_CTORS
from ..linter import FileContext


def self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def is_lock_ctor(node: ast.AST) -> bool:
    """Does this expression construct a mutex/condition?"""
    if not isinstance(node, ast.Call):
        return False
    name = _callee_name(node)
    if name in LOCK_FACTORY_NAMES:
        return True
    if name in THREADING_LOCK_CTORS:
        if isinstance(node.func, ast.Name):
            return True
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            return node.func.value.id == "threading"
    return False


def condition_alias_target(node: ast.AST) -> Optional[str]:
    """``threading.Condition(self._lock)`` -> '_lock' (structural alias)."""
    if isinstance(node, ast.Call) and _callee_name(node) == "Condition" and node.args:
        return self_attr(node.args[0])
    return None


def _strip_self(name: str) -> str:
    return name[5:] if name.startswith("self.") else name


@dataclass
class ClassLocks:
    """Lock facts for one class, from structure + comment markers."""

    locks: Set[str] = field(default_factory=set)
    aliases: Dict[str, str] = field(default_factory=dict)  # attr -> lock attr
    guarded: Dict[str, str] = field(default_factory=dict)  # attr -> lock attr

    def canonical(self, name: str) -> str:
        return self.aliases.get(name, name)

    def lock_names(self) -> Set[str]:
        return self.locks | set(self.aliases)


EMPTY_CLASS_LOCKS = ClassLocks()


def collect_class_locks(ctx: FileContext, cls: ast.ClassDef) -> ClassLocks:
    facts = ClassLocks()
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            # Declaration markers must sit on the assignment's own lines;
            # the line-above convenience would bleed across adjacent decls.
            markers = markers_on_lines(
                ctx.comments, node.lineno, getattr(node, "end_lineno", node.lineno)
            )
            for target in targets:
                attr = self_attr(target)
                if attr is None:
                    continue
                if value is not None and is_lock_ctor(value):
                    facts.locks.add(attr)
                    alias = condition_alias_target(value)
                    if alias is not None:
                        facts.aliases[attr] = alias
                if "alias-of" in markers:
                    facts.aliases[attr] = _strip_self(markers["alias-of"])
                if "guarded-by" in markers:
                    facts.guarded[attr] = _strip_self(markers["guarded-by"])
    return facts


def collect_name_locks(ctx: FileContext) -> Set[str]:
    """Plain-name lock bindings (module globals or function locals)."""
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and is_lock_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def def_markers(ctx: FileContext, func: ast.AST) -> Dict[str, str]:
    """Markers on the ``def`` line itself (or the line above) only."""
    lineno = getattr(func, "lineno", None)
    if lineno is None:
        return {}
    return markers_in_range(ctx.comments, lineno, lineno)


def initial_held(ctx: FileContext, func: ast.AST, facts: ClassLocks) -> FrozenSet[str]:
    markers = def_markers(ctx, func)
    requires = markers.get("requires-lock")
    if not requires:
        return frozenset()
    return frozenset(
        facts.canonical(_strip_self(part.strip()))
        for part in requires.split(",")
        if part.strip()
    )


def acquired_name(
    expr: ast.AST, facts: ClassLocks, name_locks: Set[str]
) -> Optional[str]:
    """Canonical lock name a ``with <expr>:`` item acquires, if any."""
    attr = self_attr(expr)
    if attr is not None and attr in facts.lock_names():
        return facts.canonical(attr)
    if isinstance(expr, ast.Name) and expr.id in name_locks:
        return expr.id
    return None


def walk_held(
    ctx: FileContext,
    func: ast.AST,
    facts: ClassLocks,
    name_locks: Set[str],
    on_node: Callable[[ast.AST, FrozenSet[str]], None],
) -> None:
    """Visit ``func``'s body calling ``on_node(node, held_lock_names)``."""

    def visit(node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                visit(item.context_expr, held)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
                name = acquired_name(item.context_expr, facts, name_locks)
                if name is not None:
                    acquired.add(name)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closure bodies run later, possibly without the lock.
            inner = initial_held(ctx, node, facts)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Lambda):
            visit(node.body, frozenset())
            return
        on_node(node, held)
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    body = getattr(func, "body", [])
    start = initial_held(ctx, func, facts)
    for stmt in body:
        visit(stmt, start)


def iter_functions(ctx: FileContext):
    """Yield ``(class_node_or_None, function_node)`` pairs, outermost only.

    Nested defs are handled inside :func:`walk_held`, so they are not
    yielded separately.
    """
    def visit(node: ast.AST, cls: Optional[ast.ClassDef]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
            else:
                yield from visit(child, cls)

    yield from visit(ctx.tree, None)
