"""REP103 — read-only hand-out contract.

Arrays crossing the cache / feature-store / CSR API boundary are handed
out ``writeable=False`` so a caller mutation cannot silently corrupt
shared serving state.  Three checks:

1. Every registered hand-out function (``invariants.HANDOUT_FUNCTIONS``)
   must exist and contain at least one freeze operation —
   ``x.setflags(write=False)``, ``x.flags.writeable = False``, or a call
   to a registered freezer helper.  A missing function is registry drift
   and also flagged.
2. ``setflags(write=True)`` anywhere is a violation (thawing a frozen
   hand-out defeats the contract).
3. In-place stores through known-frozen attributes
   (``invariants.FROZEN_ATTRS``: CSR ``indptr``/``indices``/``edge_ids``)
   are violations — they would raise at runtime on the real frozen
   arrays; the lint catches them before a test has to.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..invariants import FREEZER_HELPERS, FROZEN_ATTRS, HANDOUT_FUNCTIONS
from ..linter import FileContext, Violation


def _write_flag_value(call: ast.Call) -> Optional[bool]:
    """The ``write=`` value of a ``setflags`` call, if determinable."""
    for kw in call.keywords:
        if kw.arg == "write" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    if call.args and isinstance(call.args[0], ast.Constant):
        return bool(call.args[0].value)
    return None


def _is_freeze_op(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "setflags" and _write_flag_value(node) is False:
                return True
            if func.attr in FREEZER_HELPERS:
                return True
        elif isinstance(func, ast.Name) and func.id in FREEZER_HELPERS:
            return True
        return False
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
            ):
                if isinstance(node.value, ast.Constant) and node.value.value is False:
                    return True
    return False


def _attr_of_store_target(target: ast.AST) -> Optional[str]:
    """Attribute name a subscript-store or aug-store writes through."""
    if isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Attribute):
            return base.attr
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


class ReadOnlyHandoutRule:
    code = "REP103"
    name = "read-only hand-out contract"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_registry(ctx)
        yield from self._check_thaw_and_frozen_stores(ctx)

    # -- 1: registered hand-out functions must freeze --------------------

    def _check_registry(self, ctx: FileContext) -> Iterator[Violation]:
        wanted: Dict[str, Tuple[str, str]] = {
            qualname: (suffix, qualname)
            for suffix, qualname in HANDOUT_FUNCTIONS
            if ctx.path.endswith(suffix)
        }
        if not wanted:
            return
        seen: Set[str] = set()
        for node, qualname in list(ctx.qualnames.items()):
            if qualname not in wanted or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            seen.add(qualname)
            if not any(_is_freeze_op(sub) for sub in ast.walk(node)):
                yield ctx.violation(
                    self.code,
                    node,
                    f"hand-out function {qualname} returns arrays without a "
                    "freeze (setflags(write=False) / flags.writeable = False "
                    "/ freezer helper)",
                )
        for qualname in sorted(set(wanted) - seen):
            yield Violation(
                code=self.code,
                path=ctx.path,
                line=1,
                scope="",
                message=(
                    f"registered hand-out function {qualname} not found "
                    "(update analysis/invariants.py if it moved)"
                ),
            )

    # -- 2 + 3: thaw calls and stores through frozen attrs ---------------

    def _check_thaw_and_frozen_stores(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setflags"
                    and _write_flag_value(node) is True
                ):
                    yield ctx.violation(
                        self.code,
                        node,
                        "setflags(write=True) re-enables writes on a "
                        "handed-out array",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._frozen_store(ctx, node, target)
            elif isinstance(node, ast.AugAssign):
                yield from self._frozen_store(ctx, node, node.target)

    def _frozen_store(
        self, ctx: FileContext, stmt: ast.AST, target: ast.AST
    ) -> Iterator[Violation]:
        if not isinstance(target, ast.Subscript):
            return  # plain attribute rebinds are fine; only element stores
        attr = _attr_of_store_target(target)
        if attr in FROZEN_ATTRS:
            yield ctx.violation(
                self.code,
                stmt,
                f"in-place store through frozen CSR attribute .{attr} "
                "(frozen at construction in graph/csr.py)",
            )
