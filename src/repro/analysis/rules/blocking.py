"""REP102 — no blocking calls while holding a lock.

Flags, lexically inside ``with <lock>:`` (or a ``# requires-lock:``
method):

- ``time.sleep(...)`` (any duration),
- ``<x>.join()`` with no arguments — a thread/process join without a
  timeout (``str.join`` always takes an argument, so it never matches),
- ``<x>.get()`` / ``<x>.result()`` with no timeout — unbounded waits on
  queues and futures,
- ``<x>.wait(...)`` without a timeout, unless ``<x>`` is itself a held
  condition (``Condition.wait`` releases its own lock),
- ``urlopen`` / ``socket.create_connection`` — network I/O.

These are latency/deadlock hazards: any thread contending for the held
lock stalls for the full duration of the call.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Set

from ..linter import FileContext, Violation
from .common import (
    EMPTY_CLASS_LOCKS,
    collect_class_locks,
    collect_name_locks,
    iter_functions,
    self_attr,
    walk_held,
)

_NETWORK_CALLEES = {"urlopen", "create_connection", "getaddrinfo"}


def _has_timeout(call: ast.Call) -> bool:
    if any(kw.arg in ("timeout", "block") for kw in call.keywords):
        return True
    return bool(call.args)


class BlockingUnderLockRule:
    code = "REP102"
    name = "blocking call under lock"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        name_locks = collect_name_locks(ctx)
        from_time_sleep = self._imports_sleep(ctx)
        for cls, func in iter_functions(ctx):
            facts = (
                collect_class_locks(ctx, cls) if cls is not None else EMPTY_CLASS_LOCKS
            )
            found = []

            def on_node(node: ast.AST, held: FrozenSet[str]) -> None:
                if not held or not isinstance(node, ast.Call):
                    return
                message = self._classify(node, held, facts, name_locks, from_time_sleep)
                if message:
                    found.append(
                        ctx.violation(
                            self.code,
                            node,
                            f"{message} while holding {sorted(held)}",
                        )
                    )

            walk_held(ctx, func, facts, name_locks, on_node)
            yield from found

    @staticmethod
    def _imports_sleep(ctx: FileContext) -> bool:
        for node in ctx.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                if any(alias.name == "sleep" for alias in node.names):
                    return True
        return False

    def _classify(
        self,
        call: ast.Call,
        held: FrozenSet[str],
        facts,
        name_locks: Set[str],
        from_time_sleep: bool,
    ) -> Optional[str]:
        func = call.func
        callee = None
        if isinstance(func, ast.Attribute):
            callee = func.attr
        elif isinstance(func, ast.Name):
            callee = func.id

        if callee == "sleep":
            if isinstance(func, ast.Attribute):
                if isinstance(func.value, ast.Name) and func.value.id == "time":
                    return "time.sleep()"
                return None
            return "sleep()" if from_time_sleep else None

        if callee in _NETWORK_CALLEES:
            return f"network call {callee}()"

        if not isinstance(func, ast.Attribute):
            return None

        if callee == "join" and not call.args and not call.keywords:
            return "join() without timeout"

        if callee in ("get", "result") and not _has_timeout(call):
            return f"{callee}() without timeout"

        if callee == "wait" and not _has_timeout(call):
            receiver = self._receiver_lock(func.value, facts, name_locks)
            if receiver is not None and receiver in held:
                return None  # Condition.wait on a held lock releases it.
            return "wait() without timeout"

        return None

    @staticmethod
    def _receiver_lock(expr: ast.AST, facts, name_locks: Set[str]) -> Optional[str]:
        attr = self_attr(expr)
        if attr is not None and attr in facts.lock_names():
            return facts.canonical(attr)
        if isinstance(expr, ast.Name) and expr.id in name_locks:
            return expr.id
        return None
