"""Runtime concurrency sanitizer: lock-order recording + blocking probes.

This module is the dynamic half of ``repro check`` (the static half lives
in :mod:`repro.analysis.linter`).  Every lock-owning module in the tree
creates its primitives through :func:`make_lock` / :func:`make_condition`
instead of calling :mod:`threading` directly.  When the sanitizer is off
(the default) those factories return plain ``threading.Lock`` /
``threading.Condition`` objects — zero overhead, bit-identical behavior.

When ``REPRO_SANITIZE=1`` (or a test forces it on) the factories return
:class:`SanitizedLock` wrappers that report every acquisition and release
to a process-global :class:`LockOrderRecorder`.  The recorder maintains:

- a per-thread stack of currently-held lock *names*,
- a name-level lock-order graph: an edge ``A -> B`` means some thread
  acquired ``B`` while holding ``A`` (with an acquire-site witness),
- a list of *blocking calls under a held lock* observed by the probes
  (currently ``time.sleep``, patched process-wide while sanitizing).

A cycle in the order graph is a potential deadlock even if the test run
happened not to interleave badly — the same signal lockdep / TSan's
deadlock detector use.  Findings are exposed via
:meth:`LockOrderRecorder.findings` and, when ``REPRO_SANITIZE_REPORT`` is
set, written as JSON at interpreter exit so CI can gate on a clean run.

Design notes
------------
- Edges are recorded at *name* level, not object level.  Two instances of
  the same class share a lock name (e.g. ``serving.cache``); re-acquiring
  the same name on one thread is intentionally *not* an edge, so
  per-instance locks of one class never self-report.  Cross-name cycles
  (``A -> B`` and ``B -> A``) are exactly the hierarchy violations we
  care about.
- ``threading.Condition`` accepts a duck-typed lock: it only needs
  ``acquire(blocking, timeout)``/``release`` and falls back to a
  probe-based ``_is_owned``.  ``SanitizedLock`` satisfies that contract,
  so ``Condition.wait`` transparently records the release/re-acquire
  pair (a ``wait`` on a held condition is *not* a blocking call — it
  releases its own lock).
- The recorder itself uses one plain ``threading.Lock`` held only for
  dict updates; sanitized locks never nest inside it.
"""

from __future__ import annotations

import atexit
import contextlib
import json
import os
import sys
import threading
import time as _time
from typing import Dict, List, Optional, Tuple

ENV_FLAG = "REPRO_SANITIZE"
ENV_REPORT = "REPRO_SANITIZE_REPORT"

_IMPORT_PID = os.getpid()
_REAL_SLEEP = _time.sleep

# Test hook: overrides the environment flag when not None.
_FORCE: Optional[bool] = None


def enabled(force: Optional[bool] = None) -> bool:
    """Is the sanitizer on? ``force`` > module force-flag > environment."""
    if force is not None:
        return force
    if _FORCE is not None:
        return _FORCE
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def set_force(value: Optional[bool]) -> None:
    """Force the sanitizer on/off for tests (None restores env control)."""
    global _FORCE
    _FORCE = value


def _call_site(skip_internal: Tuple[str, ...] = ("sanitizers.py", "threading.py")) -> str:
    """file:line of the nearest frame outside this module and threading."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename.endswith(skip_internal):
        frame = frame.f_back
    if frame is None:
        return "?"
    path = frame.f_code.co_filename
    parts = path.replace(os.sep, "/").rsplit("/", 3)
    short = "/".join(parts[-3:]) if len(parts) > 3 else path
    return f"{short}:{frame.f_lineno}"


class LockOrderRecorder:
    """Collects lock-order edges, held stacks, and blocking-call findings."""

    # Bound memory even under pathological instrumentation.
    MAX_BLOCKING = 256

    def __init__(self) -> None:
        self._mu = threading.Lock()
        # (before, after) -> {"count", "site", "thread"} witness of first sighting
        self._edges: Dict[Tuple[str, str], Dict[str, object]] = {}
        # (call, held-names, site) -> count
        self._blocking: Dict[Tuple[str, Tuple[str, ...], str], int] = {}
        self._tls = threading.local()

    # -- per-thread held stack -------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held(self) -> Tuple[str, ...]:
        """Names of sanitized locks the current thread holds (outer first)."""
        return tuple(self._stack())

    # -- event hooks (called by SanitizedLock) ---------------------------

    def on_acquire(self, name: str, site: str) -> None:
        stack = self._stack()
        outer = [h for h in dict.fromkeys(stack) if h != name]
        if outer:
            with self._mu:
                for before in outer:
                    edge = self._edges.get((before, name))
                    if edge is None:
                        self._edges[(before, name)] = {
                            "count": 1,
                            "site": site,
                            "thread": threading.current_thread().name,
                        }
                    else:
                        edge["count"] = int(edge["count"]) + 1  # type: ignore[index]
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def on_blocking_call(self, call: str, site: str) -> None:
        held = tuple(dict.fromkeys(self._stack()))
        if not held:
            return
        key = (call, held, site)
        with self._mu:
            if key not in self._blocking and len(self._blocking) >= self.MAX_BLOCKING:
                return
            self._blocking[key] = self._blocking.get(key, 0) + 1

    # -- analysis --------------------------------------------------------

    def edges(self) -> List[Dict[str, object]]:
        with self._mu:
            return [
                {"before": a, "after": b, **info}
                for (a, b), info in sorted(self._edges.items())
            ]

    def cycles(self) -> List[List[str]]:
        """Cycles in the name-level order graph (each a canonical rotation)."""
        with self._mu:
            adj: Dict[str, set] = {}
            for a, b in self._edges:
                adj.setdefault(a, set()).add(b)
        found = set()

        def walk(path: List[str]) -> None:
            node = path[-1]
            for nxt in sorted(adj.get(node, ())):
                if nxt == path[0]:
                    cyc = tuple(path)
                    pivot = cyc.index(min(cyc))
                    found.add(cyc[pivot:] + cyc[:pivot])
                elif nxt not in path and len(path) < 16:
                    walk(path + [nxt])

        for start in sorted(adj):
            walk([start])
        return [list(c) for c in sorted(found)]

    def blocking_calls(self) -> List[Dict[str, object]]:
        with self._mu:
            return [
                {"call": call, "held": list(held), "site": site, "count": count}
                for (call, held, site), count in sorted(self._blocking.items())
            ]

    def findings(self) -> Dict[str, object]:
        """Everything that should fail a sanitized run: cycles + blocking."""
        return {"cycles": self.cycles(), "blocking": self.blocking_calls()}

    def clear(self) -> None:
        with self._mu:
            self._edges.clear()
            self._blocking.clear()
        # Thread-local stacks are intentionally untouched: live threads may
        # legitimately hold locks across a clear().

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe report of the full recorder state."""
        edges = self.edges()
        return {
            "enabled": enabled(),
            "edges": edges,
            "num_edges": len(edges),
            "cycles": self.cycles(),
            "blocking": self.blocking_calls(),
        }


_RECORDER = LockOrderRecorder()


def current_recorder() -> LockOrderRecorder:
    return _RECORDER


@contextlib.contextmanager
def scoped_recorder(recorder: Optional[LockOrderRecorder] = None):
    """Swap the global recorder for the duration of a test block."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder if recorder is not None else LockOrderRecorder()
    try:
        yield _RECORDER
    finally:
        _RECORDER = previous


class SanitizedLock:
    """A ``threading.Lock`` that reports acquire/release to a recorder.

    Satisfies the duck-lock contract ``threading.Condition`` expects, so
    ``threading.Condition(make_lock("x"))`` instruments the condition's
    own lock transparently.
    """

    __slots__ = ("_name", "_lock", "_recorder")

    def __init__(
        self,
        name: str,
        recorder: Optional[LockOrderRecorder] = None,
    ) -> None:
        self._name = name
        self._lock = threading.Lock()
        self._recorder = recorder

    @property
    def name(self) -> str:
        return self._name

    def _rec(self) -> LockOrderRecorder:
        return self._recorder if self._recorder is not None else _RECORDER

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._rec().on_acquire(self._name, _call_site())
        return got

    def release(self) -> None:
        self._rec().on_release(self._name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SanitizedLock {self._name!r} locked={self._lock.locked()}>"


def make_lock(
    name: str,
    *,
    recorder: Optional[LockOrderRecorder] = None,
    force: Optional[bool] = None,
):
    """A mutex: plain ``threading.Lock`` unless the sanitizer is on."""
    if not enabled(force):
        return threading.Lock()
    install_probes()
    return SanitizedLock(name, recorder)


def make_condition(
    name: str,
    *,
    recorder: Optional[LockOrderRecorder] = None,
    force: Optional[bool] = None,
):
    """A condition variable over its own (possibly sanitized) lock."""
    if not enabled(force):
        return threading.Condition()
    install_probes()
    return threading.Condition(SanitizedLock(name, recorder))


# -- blocking-call probes ----------------------------------------------------

_PROBES_INSTALLED = False


def _probed_sleep(seconds: float) -> None:
    recorder = _RECORDER
    if recorder.held():
        recorder.on_blocking_call(f"time.sleep({seconds!r})", _call_site())
    _REAL_SLEEP(seconds)


def install_probes() -> None:
    """Patch ``time.sleep`` to flag sleeps made while holding a lock."""
    global _PROBES_INSTALLED
    if _PROBES_INSTALLED:
        return
    _time.sleep = _probed_sleep
    _PROBES_INSTALLED = True


def uninstall_probes() -> None:
    global _PROBES_INSTALLED
    if _PROBES_INSTALLED:
        _time.sleep = _REAL_SLEEP
        _PROBES_INSTALLED = False


# -- exit report -------------------------------------------------------------


def _write_report_at_exit() -> None:
    path = os.environ.get(ENV_REPORT, "").strip()
    if not path or not enabled() or os.getpid() != _IMPORT_PID:
        # Forked shm workers inherit the hook; only the parent reports.
        return
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(_RECORDER.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError:  # pragma: no cover - best-effort reporting
        pass


atexit.register(_write_report_at_exit)
