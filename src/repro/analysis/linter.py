"""AST lint engine for the project-invariant rules behind ``repro check``.

The engine is deliberately small: it parses each Python file once into a
:class:`FileContext` (AST + comment map + parent links + qualnames) and
hands it to every registered rule.  Rules yield :class:`Violation`
records with stable fingerprints so a baseline file can suppress known
findings without pinning line numbers.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .annotations import comment_map, markers_in_range


@dataclass
class Violation:
    """One rule finding at a specific site."""

    code: str
    path: str  # repo-relative, forward slashes
    line: int
    scope: str  # dotted qualname of the enclosing class/function ('' at module level)
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselines: excludes the line number so
        unrelated edits above a finding do not churn the baseline."""
        raw = "|".join((self.code, self.path, self.scope, self.message))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        where = f" [{self.scope}]" if self.scope else ""
        return f"{self.path}:{self.line} {self.code}{where} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.Module
    comments: Dict[int, str]
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    qualnames: Dict[ast.AST, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path.replace(os.sep, "/"),
            source=source,
            tree=tree,
            comments=comment_map(source),
        )
        ctx._index()
        return ctx

    def _index(self) -> None:
        stack: List[str] = []

        def visit(node: ast.AST) -> None:
            scoped = isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if scoped:
                stack.append(node.name)  # type: ignore[attr-defined]
                self.qualnames[node] = ".".join(stack)
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                visit(child)
            if scoped:
                stack.pop()

        visit(self.tree)

    def markers(self, node: ast.AST) -> Dict[str, str]:
        """Markers on the node's line span plus the line directly above."""
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return {}
        return markers_in_range(
            self.comments, lineno, getattr(node, "end_lineno", lineno)
        )

    def scope_of(self, node: ast.AST) -> str:
        cur: Optional[ast.AST] = node
        while cur is not None:
            if cur in self.qualnames:
                return self.qualnames[cur]
            cur = self.parents.get(cur)
        return ""

    def violation(self, code: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=code,
            path=self.path,
            line=getattr(node, "lineno", 0),
            scope=self.scope_of(node),
            message=message,
        )


# -- file discovery ----------------------------------------------------------


def iter_python_files(paths: Sequence[str], root: str = ".") -> Iterator[str]:
    """Yield repo-relative python files under ``paths`` (files or dirs)."""
    seen: Set[str] = set()
    for path in paths:
        full = os.path.join(root, path) if not os.path.isabs(path) else path
        if os.path.isfile(full) and full.endswith(".py"):
            rel = os.path.relpath(full, root)
            if rel not in seen:
                seen.add(rel)
                yield rel
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if rel not in seen:
                    seen.add(rel)
                    yield rel


# -- engine ------------------------------------------------------------------


def default_rules() -> List[object]:
    from .rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def check_source(path: str, source: str, rules: Optional[Sequence[object]] = None) -> List[Violation]:
    """Lint one in-memory module (also the test-fixture entry point)."""
    if rules is None:
        rules = default_rules()
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                code="REP000",
                path=path.replace(os.sep, "/"),
                line=exc.lineno or 0,
                scope="",
                message=f"syntax error: {exc.msg}",
            )
        ]
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(rule.check(ctx))
    return violations


def check_paths(
    paths: Sequence[str],
    root: str = ".",
    rules: Optional[Sequence[object]] = None,
) -> List[Violation]:
    if rules is None:
        rules = default_rules()
    violations: List[Violation] = []
    for rel in iter_python_files(paths, root=root):
        with open(os.path.join(root, rel), "r", encoding="utf-8") as fh:
            source = fh.read()
        violations.extend(check_source(rel, source, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.code))
    return violations


# -- baseline ----------------------------------------------------------------


def load_baseline(path: str) -> Set[str]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("suppressions", []) if isinstance(data, dict) else data
    fingerprints: Set[str] = set()
    for entry in entries:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
    return fingerprints


def write_baseline(path: str, violations: Iterable[Violation]) -> None:
    entries = [
        {"fingerprint": v.fingerprint, "code": v.code, "path": v.path,
         "scope": v.scope, "message": v.message}
        for v in violations
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"suppressions": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")


def split_baselined(
    violations: Sequence[Violation], baseline: Set[str]
) -> "tuple[List[Violation], List[Violation]]":
    fresh = [v for v in violations if v.fingerprint not in baseline]
    suppressed = [v for v in violations if v.fingerprint in baseline]
    return fresh, suppressed


# -- reports -----------------------------------------------------------------


def render_text(
    fresh: Sequence[Violation], suppressed: Sequence[Violation]
) -> str:
    lines = [v.render() for v in fresh]
    summary = f"{len(fresh)} violation(s)"
    if suppressed:
        summary += f", {len(suppressed)} suppressed by baseline"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    fresh: Sequence[Violation], suppressed: Sequence[Violation]
) -> str:
    by_code: Dict[str, int] = {}
    for v in fresh:
        by_code[v.code] = by_code.get(v.code, 0) + 1
    return json.dumps(
        {
            "violations": [v.to_json() for v in fresh],
            "suppressed": [v.to_json() for v in suppressed],
            "count": len(fresh),
            "by_code": by_code,
        },
        indent=2,
        sort_keys=True,
    )
