"""Comment-marker syntax shared by the lint rules.

The linter reads machine-checkable invariants out of ordinary comments so
the declarations live next to the code they govern (the same way
Clang/Java thread-safety annotations ride on declarations):

``# guarded-by: _lock``
    On a ``self.attr = ...`` assignment: ``attr`` may only be read or
    written while ``self._lock`` is held (``with self._lock:`` or a
    ``# requires-lock: _lock`` helper).  Enforced by REP101.

``# alias-of: _lock``
    On a ``self.cond = threading.Condition(self._lock)`` assignment:
    holding ``self.cond`` *is* holding ``self._lock``.

``# requires-lock: _lock``
    On a ``def`` line (or the line above): the method is only called
    with ``self._lock`` already held; its body is checked as if inside
    ``with self._lock:``.

``# racy-ok: <reason>``
    On a statement (or the line above): suppress REP101 for that access;
    the reason is mandatory and should say why the race is benign.

``# audit[broad-except]: <reason>``
    On an ``except Exception:`` line (or the line above): classifies the
    broad handler for REP104; the reason says where the error goes.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, Optional, Tuple

#: Lock markers name identifiers; prose after the name(s) is ignored, so
#: ``# guarded-by: _lock — why it matters`` declares just ``_lock``.
MARKER_RE = re.compile(
    r"(?P<name>guarded-by|alias-of|requires-lock)\s*:\s*"
    r"(?P<arg>[A-Za-z_][\w.]*(?:\s*,\s*[A-Za-z_][\w.]*)*)"
)
RACY_RE = re.compile(r"racy-ok\s*:\s*(?P<reason>[^#]*)")
AUDIT_RE = re.compile(r"audit\[(?P<category>[\w-]+)\]\s*:\s*(?P<reason>.*)")


def comment_map(source: str) -> Dict[int, str]:
    """Map line number -> comment text (without ``#``) for a module."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_markers(comment: str) -> Dict[str, str]:
    """Extract ``name -> argument`` markers from one comment string.

    Audit markers are keyed ``audit[<category>]``.
    """
    markers: Dict[str, str] = {}
    match = MARKER_RE.search(comment)
    if match:
        markers[match.group("name")] = match.group("arg").strip()
    racy = RACY_RE.search(comment)
    if racy:
        markers["racy-ok"] = racy.group("reason").strip()
    audit = AUDIT_RE.search(comment)
    if audit:
        markers[f"audit[{audit.group('category')}]"] = audit.group("reason").strip()
    return markers


def markers_in_range(
    comments: Dict[int, str], first_line: int, last_line: Optional[int]
) -> Dict[str, str]:
    """Merged markers for a statement spanning ``first_line..last_line``.

    The line directly above the statement also counts, so long markers
    can sit on their own line.
    """
    merged: Dict[str, str] = {}
    end = last_line if last_line is not None else first_line
    for line in range(first_line - 1, end + 1):
        comment = comments.get(line)
        if comment:
            merged.update(parse_markers(comment))
    return merged


def markers_on_lines(
    comments: Dict[int, str], first_line: int, last_line: Optional[int]
) -> Dict[str, str]:
    """Markers strictly on the statement's own lines (no line-above).

    Declaration markers (``guarded-by``/``alias-of``) use this so a
    marker trailing one assignment cannot bleed onto the next.
    """
    merged: Dict[str, str] = {}
    end = last_line if last_line is not None else first_line
    for line in range(first_line, end + 1):
        comment = comments.get(line)
        if comment:
            merged.update(parse_markers(comment))
    return merged


def has_audit_marker(
    comments: Dict[int, str],
    category: str,
    first_line: int,
    last_line: Optional[int] = None,
) -> bool:
    markers = markers_in_range(comments, first_line, last_line)
    reason = markers.get(f"audit[{category}]")
    return bool(reason)


def lines_with_marker(comments: Dict[int, str], name: str) -> Iterable[Tuple[int, str]]:
    for line, comment in sorted(comments.items()):
        markers = parse_markers(comment)
        if name in markers:
            yield line, markers[name]
