"""Project-invariant registries consumed by the lint rules.

These are the *whole-project* facts that do not fit in per-line comment
markers: which API boundaries must hand out read-only arrays, which
attribute names are frozen by construction, and what counts as a lock
constructor.  Editing this file is how an invariant is added, widened, or
retired — the rules themselves stay generic.
"""

from __future__ import annotations

# -- read-only hand-out contract (REP103) ------------------------------------

#: Functions whose returned arrays cross an API boundary and must be
#: frozen (``writeable=False``) before hand-out.  Keyed by
#: (path suffix, dotted qualname); the rule requires each to contain at
#: least one freeze operation (``setflags(write=False)``,
#: ``x.flags.writeable = False``, or a call to a FREEZER_HELPERS member)
#: and flags registry drift when the function disappears.
HANDOUT_FUNCTIONS = {
    ("repro/graph/csr.py", "CSRGraph.__post_init__"),
    ("repro/serving/cache.py", "ResultCache._frozen_copy"),
    ("repro/featurestore/storage.py", "open_feature_layout"),
    ("repro/featurestore/store.py", "FeatureStore.gather"),
    ("repro/featurestore/store.py", "FeatureStore.matrix"),
    ("repro/featurestore/hotset.py", "HotSetCache.gather"),
}

#: Helper names whose invocation counts as freeze evidence inside a
#: registered hand-out function.
FREEZER_HELPERS = {
    "_frozen_copy",
    "_frozen_rows",
    "_frozen_view",
    "_freeze",
}

#: Attribute names that are frozen at construction (graph/csr.py seals
#: them in ``__post_init__``).  In-place stores through these attributes
#: anywhere in the tree are REP103 violations.
FROZEN_ATTRS = {
    "indptr",
    "indices",
    "edge_ids",
}

# -- lock constructors (REP101/REP102) ---------------------------------------

#: Call names that create a mutex / condition.  ``threading.Lock()`` et
#: al. are recognized structurally; these cover the sanitizer factories.
LOCK_FACTORY_NAMES = {
    "make_lock",
    "make_condition",
}

THREADING_LOCK_CTORS = {
    "Lock",
    "RLock",
    "Condition",
}
