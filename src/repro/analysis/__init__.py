"""Project-invariant static analysis + runtime concurrency sanitizer.

Two halves behind one CLI (``repro check``):

- :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — an
  AST-based lint engine enforcing the concurrency/immutability
  invariants the rest of the tree relies on (REP101 guarded-by
  discipline, REP102 no blocking calls under locks, REP103 read-only
  hand-outs, REP104 classified broad excepts), declared via comment
  markers (:mod:`repro.analysis.annotations`) and whole-project
  registries (:mod:`repro.analysis.invariants`).
- :mod:`repro.analysis.sanitizers` — runtime lock-order recording
  (``REPRO_SANITIZE=1``) with deadlock-cycle detection and held-lock
  blocking probes, fed by the ``make_lock``/``make_condition`` factories
  every locked module uses.

This package is stdlib-only on purpose: the lint half never imports the
modules it checks, and the sanitizer half is imported by every locked
module at startup.
"""

from .linter import (
    FileContext,
    Violation,
    check_paths,
    check_source,
    load_baseline,
    render_json,
    render_text,
    split_baselined,
    write_baseline,
)
from .rules import ALL_RULES, RULES_BY_CODE
from .sanitizers import (
    LockOrderRecorder,
    SanitizedLock,
    current_recorder,
    enabled,
    make_condition,
    make_lock,
    scoped_recorder,
)

__all__ = [
    "FileContext",
    "Violation",
    "check_paths",
    "check_source",
    "load_baseline",
    "render_json",
    "render_text",
    "split_baselined",
    "write_baseline",
    "ALL_RULES",
    "RULES_BY_CODE",
    "LockOrderRecorder",
    "SanitizedLock",
    "current_recorder",
    "enabled",
    "make_condition",
    "make_lock",
    "scoped_recorder",
]
