"""Measured request-path metrics for the serving front end.

:class:`ServingMetrics` is the server-side half of the open-loop load
story: the load generator (:mod:`repro.serving.loadgen`) measures
latency from the *client* side, and these counters must agree with it —
``tests/serving/test_serving_metrics.py`` cross-checks a seeded run.

Per endpoint (``predict`` / ``topk`` / ``update_edges`` / ...) the
recorder keeps monotone outcome counters plus a bounded window of
completed-request latencies for the quantiles; gauges (queue depth,
in-flight count, drain state) come from the front end at snapshot time.
All counters share one lock, so a snapshot is internally consistent:
``requests == ok + errors + bad_request + timeouts + rejected_queue_full
+ rejected_draining`` holds at every instant.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np

from repro.analysis.sanitizers import make_lock

#: every request lands in exactly one outcome bucket.
OUTCOMES = (
    "ok",                    # 200: computed and answered
    "bad_request",           # 400: malformed ids / payload
    "rejected_queue_full",   # 429: admission queue at capacity
    "rejected_draining",     # 503: quiesced for an update
    "timeout",               # 503: missed its per-request deadline
    "error",                 # 500: engine/internal failure
)


def percentiles_ms(latencies_s, qs=(50.0, 99.0)) -> Dict[str, float]:
    """``{"p50_ms": ..., "p99_ms": ...}`` via linear interpolation — the
    same estimator the load harness uses, so the two sides of the
    metrics cross-check cannot disagree on method.

    An empty window returns ``{}`` (the keys are *omitted*): reporting
    ``0.0`` made "no served requests yet" indistinguishable from a real
    0 ms quantile, which is exactly the wrong signal while the system is
    shedding everything.  Consumers read via ``.get``.
    """
    lat = np.asarray(list(latencies_s), dtype=np.float64)
    if lat.size == 0:
        return {}
    lat = lat * 1e3
    return {f"p{q:g}_ms": float(np.percentile(lat, q)) for q in qs}


class _EndpointMetrics:
    __slots__ = ("counts", "latencies", "latency_sum_s", "latency_count")

    def __init__(self, window: int):
        self.counts = {outcome: 0 for outcome in OUTCOMES}
        #: bounded sample window of *served* (ok) request latencies.
        self.latencies = deque(maxlen=window)
        self.latency_sum_s = 0.0
        self.latency_count = 0


class ServingMetrics:
    """Thread-safe per-endpoint outcome counters + latency quantiles."""

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._lock = make_lock("serving.metrics")
        self._endpoints: Dict[str, _EndpointMetrics] = {}  # guarded-by: _lock
        self.num_drains = 0  # guarded-by: _lock

    def _endpoint(self, name: str) -> _EndpointMetrics:  # requires-lock: _lock
        ep = self._endpoints.get(name)
        if ep is None:
            ep = self._endpoints[name] = _EndpointMetrics(self.window)
        return ep

    def record(self, endpoint: str, outcome: str, latency_s: Optional[float] = None):
        """Count one finished request; ``latency_s`` feeds the quantile
        window only for served (``ok``) requests — rejections answer in
        microseconds and would drag the percentiles of *served* latency
        down exactly when the system is saturated."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r} (one of {OUTCOMES})")
        with self._lock:
            ep = self._endpoint(endpoint)
            ep.counts[outcome] += 1
            if outcome == "ok" and latency_s is not None:
                ep.latencies.append(float(latency_s))
                ep.latency_sum_s += float(latency_s)
                ep.latency_count += 1

    def record_drain(self) -> None:
        with self._lock:
            self.num_drains += 1

    # -- snapshot -----------------------------------------------------------------

    def snapshot(self, **gauges) -> dict:
        """One consistent JSON-safe view; ``gauges`` (queue depth,
        in-flight, ...) are merged in at the top level."""
        with self._lock:
            endpoints = {}
            totals = {outcome: 0 for outcome in OUTCOMES}
            total_requests = 0
            for name, ep in sorted(self._endpoints.items()):
                requests = sum(ep.counts.values())
                total_requests += requests
                for outcome, n in ep.counts.items():
                    totals[outcome] += n
                mean_ms = (
                    1e3 * ep.latency_sum_s / ep.latency_count
                    if ep.latency_count
                    else 0.0
                )
                endpoints[name] = {
                    "requests": requests,
                    **ep.counts,
                    "mean_ms": mean_ms,
                    **percentiles_ms(ep.latencies),
                }
            num_drains = self.num_drains
        return {
            "endpoints": endpoints,
            "totals": {"requests": total_requests, **totals},
            "num_drains": num_drains,
            "latency_window": self.window,
            **gauges,
        }
