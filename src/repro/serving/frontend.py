"""Bounded worker-pool front end for the online request path.

``ThreadingHTTPServer`` spawns one thread per connection — under open-
loop traffic that is an unbounded admission policy, and the saturation
failure mode is collapse (every request slow) instead of shedding.
:class:`ServingFrontend` puts a real admission queue in front of the
:class:`~repro.serving.server.PredictionService`:

- **bounded queue + worker pool**: at most ``max_queue`` requests wait
  and ``num_workers`` execute; beyond that, admission fails fast with
  :class:`RequestRejected` (HTTP 429 + ``Retry-After``);
- **per-endpoint deadlines**: a request that misses its deadline answers
  :class:`RequestTimeout` (HTTP 503) — if it is still queued it is
  cancelled and never executes, if it is mid-engine the worker finishes
  the call in the background and moves on (workers never wedge);
- **graceful drain**: table rewrites (``update_edges`` /
  ``update_features``) quiesce through :meth:`drained` — admission
  closes (:class:`ServiceDraining`, HTTP 503 + ``Retry-After``),
  in-flight requests complete, the update runs alone, serving resumes;
- **measured**: every request lands in exactly one
  :class:`~repro.serving.metrics.ServingMetrics` outcome bucket, and
  queue depth / in-flight count / drain state are exposed as gauges.

The pool composes with the :class:`~repro.serving.batcher.MicroBatcher`
underneath: workers submit into the batcher, which coalesces concurrent
lookups into single engine gathers exactly as before.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import queue

from repro.analysis.sanitizers import make_lock
from repro.obs.trace import Span, Tracer, activate, get_tracer
from repro.serving.metrics import ServingMetrics


class ServingUnavailable(RuntimeError):
    """Base class for load-shedding outcomes (429/503, never a 500)."""

    #: HTTP status the server maps this to.
    status = 503
    #: metrics outcome bucket.
    outcome = "error"

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class RequestRejected(ServingUnavailable):
    """Admission queue at capacity — shed load instead of queueing."""

    status = 429
    outcome = "rejected_queue_full"


class ServiceDraining(ServingUnavailable):
    """Quiesced for a table rewrite; retry after the update lands."""

    status = 503
    outcome = "rejected_draining"


class RequestTimeout(ServingUnavailable):
    """Admitted but missed its per-endpoint deadline."""

    status = 503
    outcome = "timeout"


_STOP = object()


@dataclass
class _WorkItem:
    endpoint: str
    fn: Callable[[], object]
    future: Future = field(default_factory=Future)
    #: trace context, carried explicitly across the pool boundary — the
    #: worker thread activates it; thread-locals never cross the pool.
    ctx: Optional[Span] = None
    #: admission instant, for the ``queue`` latency component.
    t_admit: float = 0.0


class ServingFrontend:
    """Admission control + worker pool over a ``PredictionService``.

    Parameters
    ----------
    service:
        The composed request path (engine / cache / batcher / refresher).
    num_workers:
        Concurrent request executions (engine calls run threaded
        underneath when the kernel engine is configured for it).
    max_queue:
        Admitted-but-not-executing bound; beyond it requests answer 429.
    default_timeout_s / timeouts:
        Per-request deadline, overridable per endpoint
        (``timeouts={"predict": 0.5}``).
    retry_after_s:
        Hint returned with 429/503 answers (surfaced as the HTTP
        ``Retry-After`` header, rounded up to whole seconds there).
    drain_timeout_s:
        Upper bound on waiting for in-flight requests during a drain; a
        request stuck past it fails the drain rather than wedging every
        future update.
    """

    def __init__(
        self,
        service,
        num_workers: int = 4,
        max_queue: int = 256,
        default_timeout_s: float = 30.0,
        timeouts: Optional[Dict[str, float]] = None,
        retry_after_s: float = 0.05,
        drain_timeout_s: float = 30.0,
        metrics: Optional[ServingMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if default_timeout_s <= 0:
            raise ValueError("default_timeout_s must be > 0")
        self.service = service
        self.num_workers = int(num_workers)
        self.max_queue = int(max_queue)
        self.default_timeout_s = float(default_timeout_s)
        self.timeouts = dict(timeouts or {})
        self.retry_after_s = float(retry_after_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        # disabled by default (REPRO_TRACE unset): every root() is None
        # and the request path pays one branch
        self.tracer = tracer if tracer is not None else get_tracer()

        self._queue: "queue.Queue" = queue.Queue()
        self._lock = make_lock("serving.frontend")
        self._idle = threading.Condition(self._lock)  # alias-of: _lock
        self._depth = 0       # guarded-by: _lock — admitted, waiting for a worker
        self._in_flight = 0   # guarded-by: _lock — executing on a worker
        self._draining = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._drain_serial = make_lock("serving.frontend.drain")  # one drain at a time
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}", daemon=True
            )
            for i in range(self.num_workers)
        ]
        for w in self._workers:
            w.start()

    # -- gauges -------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def timeout_for(self, endpoint: str) -> float:
        return float(self.timeouts.get(endpoint, self.default_timeout_s))

    # -- request path -------------------------------------------------------------

    def _admit(
        self, endpoint: str, fn: Callable[[], object], ctx: Optional[Span] = None
    ) -> _WorkItem:
        item = _WorkItem(
            endpoint=endpoint, fn=fn, ctx=ctx, t_admit=time.perf_counter()
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("ServingFrontend is closed")
            if self._draining:
                raise ServiceDraining(
                    f"{endpoint}: serving is draining for an update",
                    retry_after_s=self.retry_after_s,
                )
            if self._depth >= self.max_queue:
                raise RequestRejected(
                    f"{endpoint}: admission queue full "
                    f"({self.max_queue} requests waiting)",
                    retry_after_s=self.retry_after_s,
                )
            self._depth += 1
        self._queue.put(item)
        return item

    def call(self, endpoint: str, fn: Callable[[], object], timeout_s=None):
        """Execute ``fn`` on the pool under admission control.

        Returns ``fn()``'s result, or raises: :class:`RequestRejected` /
        :class:`ServiceDraining` / :class:`RequestTimeout` on shedding,
        or whatever ``fn`` raised (``ValueError`` stays a 400 upstream).
        Every path records exactly one metrics outcome, and — when
        tracing samples the request — closes exactly one root span with
        that same outcome (shed requests get a root span too: a trace of
        a saturated server must show what was rejected, not just what
        ran).
        """
        timeout = self.timeout_for(endpoint) if timeout_s is None else float(timeout_s)
        t0 = time.perf_counter()
        # the root is opened before admission so a 429/503 still traces
        span = self.tracer.root(endpoint)
        try:
            item = self._admit(endpoint, fn, ctx=span)
        except ServingUnavailable as exc:
            self.metrics.record(endpoint, exc.outcome)
            if span is not None:
                span.end(exc.outcome)
            raise
        try:
            result = item.future.result(timeout=timeout)
        except FutureTimeout:
            # still queued -> cancel so it never executes; already
            # running -> the worker finishes in the background (its late
            # component writes are ignored by the already-ended span)
            item.future.cancel()
            self.metrics.record(endpoint, "timeout")
            if span is not None:
                span.end("timeout")
            raise RequestTimeout(
                f"{endpoint}: timed out after {timeout:g}s",
                retry_after_s=self.retry_after_s,
            ) from None
        except (ValueError, OverflowError):
            self.metrics.record(endpoint, "bad_request")
            if span is not None:
                span.end("bad_request")
            raise
        # audit[broad-except]: counted in the 'error' bucket, then re-raised
        except Exception:
            self.metrics.record(endpoint, "error")
            if span is not None:
                span.end("error")
            raise
        e2e_s = time.perf_counter() - t0
        self.metrics.record(endpoint, "ok", latency_s=e2e_s)
        if span is not None:
            # same wall time the metrics recorded: the decomposition
            # cross-check compares components against exactly this e2e
            span.end("ok", e2e_s=e2e_s)
        return result

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            with self._lock:
                self._depth -= 1
                if not item.future.set_running_or_notify_cancel():
                    # caller gave up while the item was queued
                    self._idle.notify_all()
                    continue
                self._in_flight += 1
            if item.ctx is not None:
                # queue component: admission -> worker pickup
                item.ctx.add_component("queue", time.perf_counter() - item.t_admit)
            try:
                # the carried ctx becomes this thread's current span for
                # the duration of the call (activate(None) clears any
                # leftover from a previously traced request)
                with activate(item.ctx):
                    result = item.fn()
            # audit[broad-except]: delivered to the caller via the future
            except BaseException as exc:  # noqa: BLE001
                item.future.set_exception(exc)
            else:
                item.future.set_result(result)
            finally:
                with self._lock:
                    self._in_flight -= 1
                    self._idle.notify_all()

    # -- drain / updates ----------------------------------------------------------

    @contextmanager
    def drained(self):
        """Quiesce the pool: close admission, wait for queued + in-flight
        requests to finish, run the body alone, reopen.

        New requests observe :class:`ServiceDraining` (503) for the whole
        window, and ``/healthz`` flips to ``draining``.  Raises
        ``TimeoutError`` if in-flight work outlives ``drain_timeout_s``
        (admission reopens — a stuck request must not brick the server).
        """
        with self._drain_serial:
            with self._lock:
                self._draining = True
            try:
                deadline = time.monotonic() + self.drain_timeout_s
                with self._idle:
                    while self._depth or self._in_flight:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._idle.wait(timeout=remaining):
                            raise TimeoutError(
                                f"drain timed out after {self.drain_timeout_s:g}s "
                                f"({self._depth} queued, {self._in_flight} in flight)"
                            )
                self.metrics.record_drain()
                yield
            finally:
                with self._lock:
                    self._draining = False

    def _traced_update(self, endpoint: str, body: Callable[[], object]):
        """Shared drain/metrics/tracing wrapper for the update paths:
        one outcome, one (optional) root span with the quiesce time in a
        ``drain`` component."""
        t0 = time.perf_counter()
        span = self.tracer.root(endpoint)
        try:
            with self.drained():
                if span is not None:
                    span.add_component("drain", time.perf_counter() - t0)
                with activate(span):
                    stats = body()
        except (ValueError, OverflowError):
            self.metrics.record(endpoint, "bad_request")
            if span is not None:
                span.end("bad_request")
            raise
        # audit[broad-except]: counted in the 'error' bucket, then re-raised
        except Exception:
            self.metrics.record(endpoint, "error")
            if span is not None:
                span.end("error")
            raise
        e2e_s = time.perf_counter() - t0
        self.metrics.record(endpoint, "ok", latency_s=e2e_s)
        if span is not None:
            span.end("ok", e2e_s=e2e_s)
        return stats

    def update_edges(self, add=None, remove=None):
        """Drain, apply the topology update, resume.  The quiesce means
        the refresher's in-place table rewrite never races a reader."""
        return self._traced_update(
            "update_edges",
            lambda: self.service.update_edges(add=add, remove=remove),
        )

    def update_features(self, vertex_ids, new_rows):
        """Drain, apply the feature update, resume."""
        return self._traced_update(
            "update_features",
            lambda: self.service.update_features(vertex_ids, new_rows),
        )

    # -- introspection / lifecycle ------------------------------------------------

    def healthz(self) -> dict:
        """Liveness body; the server maps ``draining`` to 503."""
        return {"status": "draining" if self.draining else "ok"}

    def metrics_snapshot(self) -> dict:
        """Counters + quantiles + live gauges (one consistent view of
        the counters; gauges are instantaneous)."""
        with self._lock:
            depth, in_flight, draining = self._depth, self._in_flight, self._draining
        cache = getattr(self.service, "cache", None)
        engine = getattr(self.service, "engine", None)
        store = getattr(engine, "feature_store", None)
        return self.metrics.snapshot(
            queue_depth=depth,
            in_flight=in_flight,
            draining=draining,
            max_queue=self.max_queue,
            num_workers=self.num_workers,
            cache_hit_rate=float(cache.hit_rate) if cache is not None else None,
            # feature-tier gauges: tier, hot rows, hit rate, bytes mapped
            feature_store=store.stats() if store is not None else None,
        )

    def close(self) -> None:
        """Stop the workers; pending requests fail with RuntimeError."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        for w in self._workers:
            w.join(timeout=10.0)
        # anything still queued was admitted before close: fail it fast
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP and item.future.set_running_or_notify_cancel():
                item.future.set_exception(RuntimeError("ServingFrontend is closed"))

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
