"""Checkpoint-backed full-graph inference engine.

The paper's full-batch setting makes layer-wise whole-graph inference
cheap relative to per-request recomputation: one pass of the vectorized
aggregation engine materializes every vertex's embedding at every layer,
after which a prediction is a table lookup.  :class:`InferenceEngine`
therefore separates *precompute* (offline, once per checkpoint or
feature refresh) from *lookup* (online, per request) — the same split
DGL's distributed GraphSAGE examples make between ``inference()`` and
sampled training.

This module is also the repo's **single full-graph inference path**:
:func:`full_graph_forward` is what the mini-batch trainers call for
their full-graph evaluation, and what the engine uses to fill its
per-layer embedding tables (which :mod:`repro.serving.refresh` then
updates incrementally).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.checkpoint import config_from_meta, load_checkpoint, peek_checkpoint
from repro.core.config import TrainConfig
from repro.core.models import build_model, norm_from_degrees
from repro.featurestore import FeatureStore
from repro.graph.csr import CSRGraph, INDEX_DTYPE
from repro.graph.datasets import Dataset
from repro.nn.gcn import GCN
from repro.nn.module import Module
from repro.nn.sage import GraphSAGE
from repro.nn.tensor import Tensor, no_grad

#: architectures the serving tier can rebuild from a checkpoint.
SERVABLE_MODELS = (GraphSAGE, GCN)


def topk_rows(rows: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` ``(classes, scores)``, scores descending.

    ``k`` is clamped to the row width; shared by the engine and the
    service so tie-breaking stays consistent everywhere.
    """
    k = int(min(k, rows.shape[1]))
    if k < 1:
        raise ValueError("k must be >= 1")
    part = np.argpartition(-rows, k - 1, axis=1)[:, :k]
    scores = np.take_along_axis(rows, part, axis=1)
    order = np.argsort(-scores, axis=1, kind="stable")
    classes = np.take_along_axis(part, order, axis=1)
    return classes, np.take_along_axis(scores, order, axis=1)


def model_kind(model: Module) -> str:
    """``"sage"`` / ``"gcn"`` for the two servable architectures."""
    if isinstance(model, GraphSAGE):
        return "sage"
    if isinstance(model, GCN):
        return "gcn"
    raise TypeError(
        f"serving supports {[m.__name__ for m in SERVABLE_MODELS]}, "
        f"got {type(model).__name__}"
    )


def full_graph_forward(
    model: Module,
    graph: CSRGraph,
    features: Union[np.ndarray, Tensor],
    norm: Optional[Tensor] = None,
    capture_inputs: bool = False,
):
    """Layer-wise whole-graph eval forward (no autograd tape).

    Returns the logits as a plain array, or ``(logits, layer_inputs)``
    when ``capture_inputs`` is set — ``layer_inputs[l]`` is the embedding
    table feeding layer ``l`` (``layer_inputs[0]`` is the feature matrix
    itself), which is exactly the state the incremental refresher keeps
    up to date.

    Bit-identical to ``model(graph, Tensor(features), norm)`` in eval
    mode: the per-layer loop is the same loop the models run, and
    dropout is the identity outside training.
    """
    if norm is None:
        norm = norm_from_degrees(model_kind(model), graph.in_degrees())
    was_training = model.training
    model.eval()
    inputs: List[np.ndarray] = []
    try:
        with no_grad():
            h = features if isinstance(features, Tensor) else Tensor(features)
            for layer in model.layers:
                if capture_inputs:
                    inputs.append(h.data)
                h = layer(graph, h, norm)
    finally:
        model.train(was_training)
    if capture_inputs:
        return h.data, inputs
    return h.data


class InferenceEngine:
    """Turns a training checkpoint into a query-able prediction service.

    Offline, :meth:`precompute` runs one layer-wise full-graph forward
    pass (eval mode, vectorized kernel engine, no autograd tape) and
    materializes the per-layer embedding tables plus the logits.
    Online, :meth:`predict` / :meth:`topk` are row lookups into the
    logits table.

    Features are read through a :class:`~repro.featurestore.FeatureStore`.
    By default the engine builds a private *resident* store over a
    writable copy of the dataset's feature matrix (exactly the old
    engine-owned copy), so :class:`repro.serving.refresh.
    IncrementalRefresher` can apply feature updates without mutating the
    dataset.  Passing an ``mmap``-tier store serves out-of-core graphs:
    precompute scans the read-only cold map, the on-demand path gathers
    through the hot-set cache, and updates land in the store's private
    patched copy (:meth:`update_feature_rows`) — answers stay
    bit-identical to the resident tier.
    """

    def __init__(
        self,
        dataset: Dataset,
        model: Module,
        config: Optional[TrainConfig] = None,
        checkpoint_epoch: int = 0,
        num_threads: Optional[int] = None,
        feature_store: Optional[FeatureStore] = None,
    ):
        self.model_kind = model_kind(model)  # validates the architecture
        self.dataset = dataset
        self.model = model
        self.graph = dataset.graph
        self.config = config
        self.checkpoint_epoch = int(checkpoint_epoch)
        #: kernel worker threads for the precompute pass: > 1 runs each
        #: layer's AP on the parallel execution engine (bit-identical
        #: embeddings/logits, faster precompute and refresh).  When set,
        #: the engine takes ownership of the model's kernel threading:
        #: ``layer.num_threads`` is overwritten *in place* on every layer
        #: so all engine-driven forwards — full precompute, incremental
        #: refresh, on-demand fallback — use it.  Don't share one model
        #: object between engines (or a live trainer) with different
        #: thread settings; ``from_checkpoint`` builds a private model.
        self.num_threads = num_threads
        if num_threads is not None:
            for layer in model.layers:
                layer.num_threads = num_threads
        #: engine-owned feature tier (refresh target).  The default
        #: resident store wraps a private writable copy of the dataset
        #: matrix; route updates through :meth:`update_feature_rows`.
        self.feature_store = (
            feature_store
            if feature_store is not None
            else FeatureStore.resident(np.array(dataset.features, copy=True))
        )
        #: delta-CSR shadow of ``graph``, attached lazily by the first
        #: ``update_edges`` (see :mod:`repro.dyngraph.serving_updates`).
        #: Once set, ``self.graph`` tracks its merged view and diverges
        #: from ``dataset.graph`` — the dataset stays frozen.
        self.dynamic = None
        self.norm = norm_from_degrees(self.model_kind, self.graph.in_degrees())
        #: ``layer_inputs[l]`` feeds layer ``l``; ``layer_inputs[0]``
        #: shares the store's current matrix (the array itself on the
        #: resident tier, a zero-copy view of the map on mmap), and
        #: :meth:`update_feature_rows` re-anchors it when an update
        #: swaps the backing (mmap materializing its patched copy).
        self.layer_inputs: List[np.ndarray] = []
        self.logits: Optional[np.ndarray] = None
        self.num_precomputes = 0
        #: monotonically increasing table version: bumped by every
        #: precompute and every refresher write, so caches layered on
        #: top (PredictionService) can detect and drop stale rows.
        self.version = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        dataset: Dataset,
        config: Optional[TrainConfig] = None,
        num_threads: Optional[int] = None,
        feature_store: Optional[FeatureStore] = None,
    ) -> "InferenceEngine":
        """Rebuild the trained model from a ``core.checkpoint`` file.

        The architecture comes from the checkpoint's embedded metadata
        (``repro train --checkpoint`` writes it); an explicit ``config``
        overrides it, and the dataset's paper shape is the fallback.
        ``num_threads`` parallelizes the precompute APs (the serving-tier
        knob — checkpoints carry architecture, not machine shape).
        ``feature_store`` swaps the default resident copy for e.g. an
        mmap-tier store (``repro serve --feature-store mmap``).
        """
        epoch, extra = peek_checkpoint(path)
        cfg = config_from_meta(
            extra, config or TrainConfig().for_dataset(dataset.name)
        )
        model = build_model(cfg, dataset.feature_dim, dataset.num_classes)
        load_checkpoint(path, model)
        return cls(
            dataset, model, config=cfg, checkpoint_epoch=epoch,
            num_threads=num_threads, feature_store=feature_store,
        )

    # -- features ---------------------------------------------------------------

    @property
    def features(self) -> np.ndarray:
        """The store's current full matrix.  Writable in place on the
        default resident tier (back-compat); the mmap tier's map is
        read-only — route updates through :meth:`update_feature_rows`."""
        return self.feature_store.matrix()

    def update_feature_rows(self, vertex_ids, rows) -> None:
        """Overwrite feature rows through the store (fancy-assignment
        semantics) and keep ``layer_inputs[0]`` anchored to the store's
        live matrix — on the mmap tier the first update swaps the
        read-only map for the private patched copy, and the stale view
        must not keep feeding layer 0's refresh reads."""
        self.feature_store.update_rows(vertex_ids, rows)
        if self.layer_inputs:
            self.layer_inputs[0] = np.asarray(self.feature_store.matrix())

    # -- offline precompute ------------------------------------------------------

    def precompute(self) -> "InferenceEngine":
        """Materialize per-layer embeddings and logits for every vertex."""
        self.logits, self.layer_inputs = full_graph_forward(
            self.model,
            self.graph,
            self.features,
            self.norm,
            capture_inputs=True,
        )
        self.num_precomputes += 1
        self.version += 1
        return self

    def ensure_ready(self) -> "InferenceEngine":
        if self.logits is None:
            self.precompute()
        return self

    @property
    def num_layers(self) -> int:
        return len(self.model.layers)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    # -- online lookups ----------------------------------------------------------

    def _check_ids(self, vertex_ids) -> np.ndarray:
        ids = np.atleast_1d(np.asarray(vertex_ids, dtype=INDEX_DTYPE))
        if ids.ndim != 1:
            raise ValueError("vertex_ids must be a 1-D sequence")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_vertices):
            raise ValueError(
                f"vertex ids must be in [0, {self.num_vertices}), "
                f"got range [{ids.min()}, {ids.max()}]"
            )
        return ids

    def predict(self, vertex_ids) -> np.ndarray:
        """Logit rows for ``vertex_ids`` — bit-identical to a direct
        model forward on the same checkpoint and features."""
        self.ensure_ready()
        return self.logits[self._check_ids(vertex_ids)]

    def predict_labels(self, vertex_ids) -> np.ndarray:
        """Argmax class per requested vertex."""
        return np.argmax(self.predict(vertex_ids), axis=1)

    def topk(self, vertex_ids, k: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex top-``k`` ``(classes, scores)``, scores descending."""
        return topk_rows(self.predict(vertex_ids), k)

    def stats(self) -> dict:
        return {
            "model": self.model_kind,
            "num_layers": self.num_layers,
            "num_vertices": self.num_vertices,
            "num_edges": self.graph.num_edges,
            "dynamic": self.dynamic.stats() if self.dynamic is not None else None,
            "checkpoint_epoch": self.checkpoint_epoch,
            "num_precomputes": self.num_precomputes,
            "num_threads": self.num_threads,
            "ready": self.logits is not None,
            "feature_store": self.feature_store.stats(),
        }
