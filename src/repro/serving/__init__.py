"""Online inference serving over trained checkpoints.

The serving tier turns a training checkpoint into a query-able
prediction service, exploiting the paper's full-batch economics: one
layer-wise whole-graph forward pass (the vectorized kernel engine in
eval mode) is cheap, so embeddings and logits are **precomputed** and a
request is a table lookup.

- :mod:`repro.serving.engine` — :class:`InferenceEngine`: checkpoint
  loading, layer-wise precompute, ``predict``/``topk`` lookups; also the
  repo's single full-graph inference path (:func:`full_graph_forward`).
- :mod:`repro.serving.refresh` — incremental recompute of the k-hop
  affected set after feature updates, with a sampler-backed on-demand
  fallback (:class:`OnDemandInference`) for large or deferred updates.
- :mod:`repro.serving.batcher` — :class:`MicroBatcher`: coalesces
  concurrent lookups into one engine call.
- :mod:`repro.serving.cache` — :class:`ResultCache`: measured-traffic
  LRU over result rows (the real counterpart of :mod:`repro.cachesim`).
- :mod:`repro.serving.server` — :class:`PredictionService` composition
  and the stdlib HTTP endpoint (``repro serve``).
- :mod:`repro.serving.frontend` — :class:`ServingFrontend`: bounded
  admission queue + worker pool, per-endpoint deadlines, graceful drain
  around table rewrites (429/503 + ``Retry-After`` load shedding).
- :mod:`repro.serving.gate` — :class:`ReadWriteGate`: writer-preferred
  reader-writer exclusion so in-place table rewrites never tear a read.
- :mod:`repro.serving.metrics` — :class:`ServingMetrics`: per-endpoint
  outcome counters and latency quantiles behind ``GET /metrics``.
- :mod:`repro.serving.loadgen` — open-loop load generator (Poisson and
  bursty MMPP arrivals, seeded schedules, coordinated-omission-free
  latency accounting); drives ``repro loadgen`` and the serving bench.

Topology is not frozen either: ``update_edges(add, remove)`` on the
refresher/service (backed by :mod:`repro.dyngraph.serving_updates`)
applies streaming edge mutations through a delta-CSR shadow graph and
refreshes exactly as if the compacted graph had been fully precomputed;
the server exposes it as ``POST /update_edges``.
"""

from repro.dyngraph.serving_updates import EdgeUpdateStats
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.engine import InferenceEngine, full_graph_forward
from repro.serving.frontend import (
    RequestRejected,
    RequestTimeout,
    ServiceDraining,
    ServingFrontend,
    ServingUnavailable,
)
from repro.serving.gate import ReadWriteGate
from repro.serving.loadgen import (
    FrontendTarget,
    HttpTarget,
    LoadReport,
    ScheduledRequest,
    VirtualClock,
    build_schedule,
    bursty_arrivals,
    poisson_arrivals,
    run_open_loop,
)
from repro.serving.metrics import ServingMetrics, percentiles_ms
from repro.serving.refresh import (
    IncrementalRefresher,
    OnDemandInference,
    RefreshStats,
    affected_sets,
)
from repro.serving.server import PredictionServer, PredictionService

__all__ = [
    "InferenceEngine",
    "full_graph_forward",
    "IncrementalRefresher",
    "OnDemandInference",
    "RefreshStats",
    "affected_sets",
    "MicroBatcher",
    "ResultCache",
    "PredictionService",
    "PredictionServer",
    "EdgeUpdateStats",
    "ServingFrontend",
    "ServingUnavailable",
    "RequestRejected",
    "RequestTimeout",
    "ServiceDraining",
    "ReadWriteGate",
    "ServingMetrics",
    "percentiles_ms",
    "FrontendTarget",
    "HttpTarget",
    "LoadReport",
    "ScheduledRequest",
    "VirtualClock",
    "build_schedule",
    "bursty_arrivals",
    "poisson_arrivals",
    "run_open_loop",
]
