"""Online inference serving over trained checkpoints.

The serving tier turns a training checkpoint into a query-able
prediction service, exploiting the paper's full-batch economics: one
layer-wise whole-graph forward pass (the vectorized kernel engine in
eval mode) is cheap, so embeddings and logits are **precomputed** and a
request is a table lookup.

- :mod:`repro.serving.engine` — :class:`InferenceEngine`: checkpoint
  loading, layer-wise precompute, ``predict``/``topk`` lookups; also the
  repo's single full-graph inference path (:func:`full_graph_forward`).
- :mod:`repro.serving.refresh` — incremental recompute of the k-hop
  affected set after feature updates, with a sampler-backed on-demand
  fallback (:class:`OnDemandInference`) for large or deferred updates.
- :mod:`repro.serving.batcher` — :class:`MicroBatcher`: coalesces
  concurrent lookups into one engine call.
- :mod:`repro.serving.cache` — :class:`ResultCache`: measured-traffic
  LRU over result rows (the real counterpart of :mod:`repro.cachesim`).
- :mod:`repro.serving.server` — :class:`PredictionService` composition
  and the stdlib HTTP endpoint (``repro serve``).

Topology is not frozen either: ``update_edges(add, remove)`` on the
refresher/service (backed by :mod:`repro.dyngraph.serving_updates`)
applies streaming edge mutations through a delta-CSR shadow graph and
refreshes exactly as if the compacted graph had been fully precomputed;
the server exposes it as ``POST /update_edges``.
"""

from repro.dyngraph.serving_updates import EdgeUpdateStats
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.engine import InferenceEngine, full_graph_forward
from repro.serving.refresh import (
    IncrementalRefresher,
    OnDemandInference,
    RefreshStats,
    affected_sets,
)
from repro.serving.server import PredictionServer, PredictionService

__all__ = [
    "InferenceEngine",
    "full_graph_forward",
    "IncrementalRefresher",
    "OnDemandInference",
    "RefreshStats",
    "affected_sets",
    "MicroBatcher",
    "ResultCache",
    "PredictionService",
    "PredictionServer",
    "EdgeUpdateStats",
]
