"""Reader-writer gate for the online request path.

The serving tier has exactly one write pattern — a table rewrite
(``update_features`` / ``update_edges`` / checkpoint swap) — and many
concurrent readers (``predict`` / ``topk``).  The incremental refresher
mutates the per-layer embedding tables *in place*, so a reader gathering
rows mid-refresh would observe a torn mix of pre- and post-update
values.  :class:`ReadWriteGate` makes updates quiesce instead: readers
share the gate, a writer waits for in-flight readers to finish and
excludes new ones while it rewrites.

Writer-preferred: once a writer is waiting, new readers queue behind it,
so sustained read traffic cannot starve an update.  The gate is not
reentrant — the request path never nests read sections, and updates
never read through the gated path.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.analysis.sanitizers import make_condition


class ReadWriteGate:
    """Many concurrent readers, exclusive writers, writer-preferred."""

    def __init__(self):
        self._cond = make_condition("serving.gate")
        self._active_readers = 0  # guarded-by: _cond
        self._writer_active = False  # guarded-by: _cond
        self._writers_waiting = 0  # guarded-by: _cond

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()

    # -- introspection (metrics / tests) ------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
