"""Open-loop load generation for the serving tier.

A closed-loop driver (issue the next request when the previous one
returns) measures a system that is never allowed to fall behind — the
latency curve looks flat right up to the point where it is meaningless.
Real traffic is *open-loop*: arrivals happen on their own clock whether
or not the server has caught up, which is what exposes the saturation
knee and the queueing tail.  This module generates such traffic:

- **arrival processes** — :func:`poisson_arrivals` (memoryless, the
  classic open-loop baseline) and :func:`bursty_arrivals` (a two-state
  Markov-modulated Poisson process: exponentially-distributed dwells in
  a slow and a fast state, the standard bursty-traffic model);
- **schedules** — :func:`build_schedule` pre-draws every request's
  arrival time, endpoint (mixed ``predict`` / ``topk`` /
  ``update_edges`` / ``update_features`` traffic) and payload from one
  seeded RNG, so a run is exactly reproducible;
- **execution** — :func:`run_open_loop` fires a schedule at a target
  (in-process :class:`FrontendTarget` or HTTP :class:`HttpTarget`) and
  reports client-side latency measured **from the scheduled arrival
  time** (no coordinated omission: a request delayed because the
  server fell behind counts that delay);
- **virtual time** — :class:`VirtualClock` lets the deterministic test
  suites replay a schedule without real sleeping.

Used by ``benchmarks/bench_serving.py`` (offered-load sweep), the
``repro loadgen`` CLI, and — through ``tests/serving/harness.py`` — the
concurrency/fault test suites.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.sanitizers import make_lock

from repro.serving.frontend import ServingUnavailable
from repro.serving.metrics import OUTCOMES, percentiles_ms

#: default traffic mix: read-heavy with a trickle of mutations.
DEFAULT_MIX = {"predict": 0.7, "topk": 0.25, "update_edges": 0.05}


# -- arrival processes ------------------------------------------------------------


def poisson_arrivals(rate: float, duration_s: float, rng) -> np.ndarray:
    """Arrival offsets (seconds) of a Poisson process of ``rate`` req/s
    over ``[0, duration_s)`` — i.i.d. exponential inter-arrivals."""
    if rate <= 0 or duration_s <= 0:
        return np.zeros(0, dtype=np.float64)
    # draw with 5-sigma headroom, then clip to the horizon
    n = int(rate * duration_s + 5.0 * np.sqrt(rate * duration_s) + 10)
    times = np.cumsum(rng.exponential(1.0 / rate, size=n))
    while times.size and times[-1] < duration_s:  # pragma: no cover - headroom
        times = np.concatenate(
            [times, times[-1] + np.cumsum(rng.exponential(1.0 / rate, size=n))]
        )
    return times[times < duration_s]


def bursty_arrivals(
    rate: float,
    duration_s: float,
    rng,
    burst_factor: float = 4.0,
    mean_dwell_s: float = 0.25,
) -> np.ndarray:
    """Two-state MMPP arrivals averaging ``rate`` req/s.

    The process alternates between a slow and a fast Poisson state with
    exponentially-distributed dwell times (mean ``mean_dwell_s`` each, so
    half the time is spent in each state); the fast state runs at
    ``burst_factor`` times the slow one, with the pair scaled so the
    long-run average is ``rate``.  Offered load is the same as the
    Poisson generator — only the burstiness differs, which is exactly
    the axis the saturation comparison needs.
    """
    if rate <= 0 or duration_s <= 0:
        return np.zeros(0, dtype=np.float64)
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    rate_slow = 2.0 * rate / (1.0 + burst_factor)
    rate_fast = burst_factor * rate_slow
    times: List[np.ndarray] = []
    t = 0.0
    fast = bool(rng.integers(2))
    while t < duration_s:
        dwell = float(rng.exponential(mean_dwell_s))
        state_rate = rate_fast if fast else rate_slow
        seg = poisson_arrivals(state_rate, min(dwell, duration_s - t), rng)
        times.append(t + seg)
        t += dwell
        fast = not fast
    out = np.concatenate(times) if times else np.zeros(0)
    return out[out < duration_s]


ARRIVALS = {"poisson": poisson_arrivals, "bursty": bursty_arrivals}


# -- schedules --------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduledRequest:
    """One pre-drawn request: when, what, and with which payload."""

    t: float
    endpoint: str
    vertices: np.ndarray
    k: Optional[int] = None
    #: ``(src, dst)`` pairs for ``update_edges`` requests.
    edges: Optional[np.ndarray] = None
    #: feature rows for ``update_features`` requests.
    rows: Optional[np.ndarray] = None


def zipf_vertices(rng, num_vertices: int, size: int, skew: float = 1.1) -> np.ndarray:
    """Zipf-skewed vertex draws over a random hot-set permutation (the
    same hot-set model the closed-loop serving benchmark uses)."""
    ranks = rng.zipf(skew, size=size) - 1
    perm = rng.permutation(num_vertices)
    return perm[np.minimum(ranks, num_vertices - 1)]


def build_schedule(
    arrival_times: Sequence[float],
    num_vertices: int,
    rng,
    mix: Optional[Dict[str, float]] = None,
    batch_size: int = 8,
    k: int = 3,
    update_batch: int = 4,
    feature_dim: Optional[int] = None,
    zipf_skew: float = 1.1,
) -> List[ScheduledRequest]:
    """Pre-draw every request of a run from one seeded RNG.

    ``mix`` maps endpoint name to weight over ``predict`` / ``topk`` /
    ``update_edges`` / ``update_features`` (``update_features`` requires
    ``feature_dim``).  Payloads are Zipf-skewed vertex batches; edge
    updates add ``update_batch`` uniform-random edges.
    """
    mix = dict(DEFAULT_MIX if mix is None else mix)
    if not mix:
        raise ValueError("mix must name at least one endpoint")
    known = {"predict", "topk", "update_edges", "update_features"}
    unknown = set(mix) - known
    if unknown:
        raise ValueError(f"unknown endpoints in mix: {sorted(unknown)}")
    if "update_features" in mix and feature_dim is None:
        raise ValueError("update_features traffic needs feature_dim")
    names = sorted(mix)
    weights = np.array([mix[n] for n in names], dtype=np.float64)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative and sum > 0")
    weights = weights / weights.sum()
    times = np.sort(np.asarray(arrival_times, dtype=np.float64))
    picks = rng.choice(len(names), size=times.size, p=weights)
    hot = zipf_vertices(rng, num_vertices, times.size * batch_size, skew=zipf_skew)
    schedule: List[ScheduledRequest] = []
    for i, (t, pick) in enumerate(zip(times, picks)):
        endpoint = names[pick]
        ids = hot[i * batch_size : (i + 1) * batch_size]
        if endpoint == "predict":
            schedule.append(ScheduledRequest(t=float(t), endpoint="predict", vertices=ids))
        elif endpoint == "topk":
            schedule.append(
                ScheduledRequest(t=float(t), endpoint="topk", vertices=ids, k=k)
            )
        elif endpoint == "update_edges":
            edges = rng.integers(0, num_vertices, size=(update_batch, 2))
            schedule.append(
                ScheduledRequest(
                    t=float(t), endpoint="update_edges", vertices=ids, edges=edges
                )
            )
        else:
            ids = ids[: max(1, batch_size // 4)]
            rows = rng.standard_normal((ids.size, feature_dim)).astype(np.float32)
            schedule.append(
                ScheduledRequest(
                    t=float(t), endpoint="update_features", vertices=ids, rows=rows
                )
            )
    return schedule


# -- clocks -----------------------------------------------------------------------


class VirtualClock:
    """Deterministic manual clock (``time`` / ``sleep`` protocol).

    ``sleep`` *advances* time instead of waiting, so a schedule replays
    instantly and identically; targets can call ``advance`` to model
    service time.  Thread-safe, monotone.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)  # guarded-by: _lock
        self._lock = make_lock("loadgen.clock")

    def time(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, dt: float) -> None:
        self.advance(dt)

    def advance(self, dt: float) -> None:
        if dt < 0:
            return
        with self._lock:
            self._now += dt


class WallClock:
    """Real time behind the same protocol."""

    @staticmethod
    def time() -> float:
        return time.perf_counter()

    @staticmethod
    def sleep(dt: float) -> None:
        time.sleep(dt)


# -- targets ----------------------------------------------------------------------


class FrontendTarget:
    """Drives a :class:`~repro.serving.frontend.ServingFrontend` in
    process — the request path minus socket parsing."""

    def __init__(self, frontend):
        self.frontend = frontend

    def __call__(self, req: ScheduledRequest):
        fe = self.frontend
        svc = fe.service
        if req.endpoint == "predict":
            return fe.call("predict", lambda: svc.predict(req.vertices))
        if req.endpoint == "topk":
            return fe.call("topk", lambda: svc.topk(req.vertices, k=req.k))
        if req.endpoint == "update_edges":
            return fe.update_edges(add=req.edges)
        if req.endpoint == "update_features":
            return fe.update_features(req.vertices, req.rows)
        raise ValueError(f"unknown endpoint {req.endpoint!r}")


class HttpTarget:
    """Drives a live server over HTTP (``repro loadgen --url``)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _post(self, path: str, payload: dict):
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
            return json.load(resp)

    def __call__(self, req: ScheduledRequest):
        if req.endpoint == "predict":
            return self._post("/predict", {"vertices": req.vertices.tolist()})
        if req.endpoint == "topk":
            return self._post(
                "/predict", {"vertices": req.vertices.tolist(), "k": req.k}
            )
        if req.endpoint == "update_edges":
            return self._post("/update_edges", {"add": req.edges.tolist()})
        if req.endpoint == "update_features":
            return self._post(
                "/update_features",
                {"vertices": req.vertices.tolist(), "features": req.rows.tolist()},
            )
        raise ValueError(f"unknown endpoint {req.endpoint!r}")


def classify_exception(exc: BaseException) -> str:
    """Map a target failure to its metrics outcome bucket."""
    if isinstance(exc, ServingUnavailable):
        return exc.outcome
    if isinstance(exc, urllib.error.HTTPError):
        if exc.code == 429:
            return "rejected_queue_full"
        if exc.code == 503:
            body = ""
            try:
                body = exc.read().decode("utf-8", "replace")
            # audit[broad-except]: best-effort body read on an error path
            except Exception:  # pragma: no cover
                pass
            return "rejected_draining" if "draining" in body else "timeout"
        if exc.code == 400:
            return "bad_request"
        return "error"
    if isinstance(exc, (ValueError, OverflowError)):
        return "bad_request"
    return "error"


# -- open-loop execution ----------------------------------------------------------


@dataclass
class RequestRecord:
    """Client-side view of one fired request."""

    endpoint: str
    scheduled_s: float
    #: scheduled arrival -> completion (includes client queueing: no
    #: coordinated omission).
    latency_s: float
    #: around the target call only (comparable to server-side metrics).
    call_s: float
    outcome: str


@dataclass
class LoadReport:
    """Everything a run measured, with JSON-safe summaries."""

    records: List[RequestRecord]
    horizon_s: float
    elapsed_s: float

    @property
    def offered(self) -> int:
        return len(self.records)

    def count(self, outcome: str) -> int:
        return sum(1 for r in self.records if r.outcome == outcome)

    def latencies(self, outcome: str = "ok", which: str = "latency_s") -> np.ndarray:
        return np.array(
            [getattr(r, which) for r in self.records if r.outcome == outcome],
            dtype=np.float64,
        )

    def per_endpoint(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        lat: Dict[str, List[float]] = {}
        for rec in self.records:
            ep = out.setdefault(
                rec.endpoint, {outcome: 0 for outcome in OUTCOMES}
            )
            ep[rec.outcome] += 1
            if rec.outcome == "ok":
                lat.setdefault(rec.endpoint, []).append(rec.latency_s)
        for name, ep in out.items():
            ep["requests"] = sum(ep[o] for o in OUTCOMES)
            ep.update(percentiles_ms(np.array(lat.get(name, []), dtype=np.float64)))
        return out

    def summary(self) -> dict:
        ok = self.count("ok")
        rejected = self.count("rejected_queue_full") + self.count("rejected_draining")
        elapsed = max(self.elapsed_s, 1e-9)
        horizon = max(self.horizon_s, 1e-9)
        return {
            "offered": self.offered,
            "offered_rps": self.offered / horizon,
            "horizon_s": self.horizon_s,
            "elapsed_s": self.elapsed_s,
            "ok": ok,
            "achieved_rps": ok / elapsed,
            "rejected": rejected,
            "rejected_queue_full": self.count("rejected_queue_full"),
            "rejected_draining": self.count("rejected_draining"),
            "timeouts": self.count("timeout"),
            "errors": self.count("error"),
            "bad_request": self.count("bad_request"),
            "reject_rate": rejected / max(self.offered, 1),
            "timeout_rate": self.count("timeout") / max(self.offered, 1),
            **percentiles_ms(self.latencies("ok")),
            "mean_ms": float(1e3 * self.latencies("ok").mean())
            if ok
            else 0.0,
            "per_endpoint": self.per_endpoint(),
        }


def run_open_loop(
    target: Callable[[ScheduledRequest], object],
    schedule: Sequence[ScheduledRequest],
    num_clients: int = 32,
    clock=None,
    synchronous: bool = False,
) -> LoadReport:
    """Fire ``schedule`` at ``target`` on its own clock.

    A dispatcher releases each request at its scheduled time into a
    pool of ``num_clients`` client threads; if every client is busy the
    request waits, and that wait **counts** in its recorded latency
    (measured from the scheduled arrival).  ``synchronous=True`` runs
    requests inline on the dispatcher (with :class:`VirtualClock`, a
    fully deterministic replay).
    """
    clock = clock if clock is not None else WallClock()
    schedule = sorted(schedule, key=lambda r: r.t)
    horizon = schedule[-1].t if schedule else 0.0
    records: List[RequestRecord] = []
    records_lock = make_lock("loadgen.records")
    start = clock.time()

    def fire(req: ScheduledRequest) -> None:
        t_call = clock.time()
        try:
            target(req)
        # audit[broad-except]: classified into an outcome bucket, never fatal
        except Exception as exc:  # noqa: BLE001
            outcome = classify_exception(exc)
        else:
            outcome = "ok"
        done = clock.time()
        rec = RequestRecord(
            endpoint=req.endpoint,
            scheduled_s=req.t,
            latency_s=done - (start + req.t),
            call_s=done - t_call,
            outcome=outcome,
        )
        with records_lock:
            records.append(rec)

    if synchronous:
        for req in schedule:
            delay = (start + req.t) - clock.time()
            if delay > 0:
                clock.sleep(delay)
            fire(req)
    else:
        work: "queue.Queue" = queue.Queue()

        def client() -> None:
            while True:
                req = work.get()
                if req is None:
                    return
                fire(req)

        clients = [
            threading.Thread(target=client, name=f"loadgen-client-{i}", daemon=True)
            for i in range(num_clients)
        ]
        for c in clients:
            c.start()
        for req in schedule:
            delay = (start + req.t) - clock.time()
            if delay > 0:
                clock.sleep(delay)
            work.put(req)
        for _ in clients:
            work.put(None)
        for c in clients:
            c.join()
    elapsed = clock.time() - start
    return LoadReport(records=records, horizon_s=horizon, elapsed_s=elapsed)
