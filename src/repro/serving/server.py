"""JSON-over-HTTP prediction service (stdlib only).

:class:`PredictionService` composes the serving pieces — engine lookups,
optional LRU result cache, optional micro-batching, optional stale-aware
refresher routing — behind one ``predict``/``topk`` surface, and
:class:`PredictionServer` exposes that surface on a
``ThreadingHTTPServer``:

- ``POST /predict``  body ``{"vertices": [..], "k": 3?}`` ->
  ``{"vertices", "labels", "topk"?}``
- ``GET /stats``     engine / cache / batcher / refresher counters
- ``GET /healthz``   liveness

Request flow: per-request cache probe first (a full hit never queues),
then the missing ids go through the micro-batcher, which coalesces
misses across concurrent requests into one engine gather.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import INDEX_DTYPE
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.engine import InferenceEngine, topk_rows
from repro.serving.refresh import IncrementalRefresher


class PredictionService:
    """Cache- and batch-aware front end over an :class:`InferenceEngine`."""

    def __init__(
        self,
        engine: InferenceEngine,
        cache: Optional[ResultCache] = None,
        batch: bool = False,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        refresher: Optional[IncrementalRefresher] = None,
    ):
        engine.ensure_ready()
        self.engine = engine
        self.cache = cache
        self.refresher = refresher
        # stale-aware lookups when a refresher is attached (deferred
        # updates route affected vertices through the on-demand path)
        self._lookup = refresher.predict if refresher is not None else engine.predict
        self.batcher = (
            MicroBatcher(self._lookup, max_batch=max_batch, max_wait_ms=max_wait_ms)
            if batch
            else None
        )
        self.num_requests = 0
        self._cached_version = engine.version

    # -- request path ----------------------------------------------------------------

    def _compute(self, ids: np.ndarray) -> np.ndarray:
        if self.batcher is not None:
            return self.batcher.predict(ids)
        return self._lookup(ids)

    def predict_logits(self, vertex_ids) -> np.ndarray:
        """One logit row per requested vertex (request order preserved)."""
        ids = self.engine._check_ids(vertex_ids)
        self.num_requests += 1
        if ids.size == 0:
            return np.zeros((0, self.engine.dataset.num_classes), dtype=np.float32)
        if self.cache is None:
            return self._compute(ids)
        # a table rewrite (precompute or refresher update) invalidates
        # every cached row — drop them rather than serve stale results
        if self.engine.version != self._cached_version:
            self.cache.reset()
            self._cached_version = self.engine.version
        found, missing = self.cache.get_many(ids)
        if missing.size:
            rows = self._compute(missing)
            self.cache.put_many(missing, rows)
            found.update(zip(missing.tolist(), rows))
        return np.stack([found[v] for v in ids.tolist()])

    def predict(self, vertex_ids) -> np.ndarray:
        """Argmax label per requested vertex."""
        return np.argmax(self.predict_logits(vertex_ids), axis=1)

    def topk(self, vertex_ids, k: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(classes, scores)`` per requested vertex, derived
        from the (possibly cached) logit rows."""
        return topk_rows(self.predict_logits(vertex_ids), k)

    # -- lifecycle / introspection ------------------------------------------------------

    def stats(self) -> dict:
        out = {"requests": self.num_requests, "engine": self.engine.stats()}
        out["cache"] = self.cache.stats() if self.cache is not None else None
        out["batcher"] = self.batcher.stats() if self.batcher is not None else None
        out["refresher"] = (
            self.refresher.stats() if self.refresher is not None else None
        )
        return out

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PredictionHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`PredictionService`."""

    server_version = "repro-serve/1.0"

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        if self.path != "/predict":
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            req = json.loads(self.rfile.read(length) or b"{}")
            vertices = np.asarray(req["vertices"], dtype=INDEX_DTYPE)
            k = req.get("k")
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad request: {exc}"})
            return
        try:
            svc = self.service
            resp = {
                "vertices": vertices.tolist(),
                "labels": svc.predict(vertices).tolist(),
            }
            if k is not None:
                classes, scores = svc.topk(vertices, k=int(k))
                resp["topk"] = [
                    [
                        {"class": int(c), "score": float(s)}
                        for c, s in zip(crow, srow)
                    ]
                    for crow, srow in zip(classes, scores)
                ]
            self._reply(200, resp)
        except ValueError as exc:  # e.g. out-of-range vertex ids
            self._reply(400, {"error": str(exc)})


class PredictionServer:
    """``ThreadingHTTPServer`` wrapper owning a service."""

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
    ):
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _PredictionHandler)
        self.httpd.service = service  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` — resolves port 0 to the real one."""
        return self.httpd.server_address[:2]

    def serve_forever(self) -> None:  # pragma: no cover - interactive path
        self.httpd.serve_forever()

    def start_background(self) -> "PredictionServer":
        """Serve on a daemon thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.close()
