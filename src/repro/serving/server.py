"""JSON-over-HTTP prediction service (stdlib only).

:class:`PredictionService` composes the serving pieces — engine lookups,
optional LRU result cache, optional micro-batching, optional stale-aware
refresher routing — behind one ``predict``/``topk``/``update`` surface,
and :class:`PredictionServer` exposes that surface over HTTP with a
:class:`~repro.serving.frontend.ServingFrontend` doing admission
control (bounded queue, per-endpoint deadlines, graceful drain):

- ``POST /predict``          body ``{"vertices": [..], "k": 3?}`` ->
  ``{"vertices", "labels", "topk"?}``
- ``POST /update_edges``     body ``{"add": [[u, v], ..]?, "remove":
  [[u, v], ..]?}`` -> refresh outcome (mode, affected rows, edge count)
- ``POST /update_features``  body ``{"vertices": [..], "features":
  [[..], ..]}`` -> refresh outcome
- ``GET /stats``             engine / cache / batcher / refresher counters
- ``GET /metrics``           request-path metrics: per-endpoint outcome
  counters and p50/p99, queue depth, in-flight count, cache hit rate
  (JSON); ``?format=prom`` renders the unified telemetry registry as
  Prometheus text exposition instead
- ``GET /trace``             buffered request spans as Chrome
  trace-event JSON (Perfetto-loadable; ``REPRO_TRACE=1`` to record)
- ``GET /healthz``           liveness; flips to ``draining`` (503)
  while an update quiesces the pool

Request flow: handler threads only parse and enqueue — execution happens
on the frontend's bounded worker pool, under the service's reader-writer
gate.  Per-request cache probe first (a full hit never queues past the
pool), then the missing ids go through the micro-batcher, which
coalesces misses across concurrent requests into one engine gather.
Updates **quiesce**: the frontend drains in-flight requests, the table
rewrite runs alone behind the write side of the gate, and serving
resumes — a reader can never observe a torn mix of pre- and post-update
rows.

Failure modes are all structured JSON, never a traceback: malformed
bodies answer ``400``; a full admission queue answers ``429`` with
``Retry-After``; drain windows and missed deadlines answer ``503`` with
``Retry-After``; engine failures answer ``500``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs

import numpy as np

from repro.analysis.sanitizers import make_lock
from repro.graph.csr import INDEX_DTYPE
from repro.obs.registry import render_prometheus, serving_registry
from repro.obs.trace import chrome_trace, current_span
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.engine import InferenceEngine, topk_rows
from repro.serving.frontend import ServingFrontend, ServingUnavailable
from repro.serving.gate import ReadWriteGate
from repro.serving.refresh import IncrementalRefresher, RefreshStats


def _int_field(value, what: str) -> int:
    """Strictly-integer JSON field (bools and floats are rejected —
    ``1.5`` silently truncating to vertex 1 is a served-wrong-row bug)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    return int(value)


def _vertex_ids(value) -> np.ndarray:
    if not isinstance(value, list):
        raise ValueError(
            f"vertices must be a list of integer vertex ids, got {value!r}"
        )
    return np.asarray(
        [_int_field(v, f"vertices[{i}]") for i, v in enumerate(value)],
        dtype=INDEX_DTYPE,
    )


def _edge_pairs(value, what: str):
    if value is None:
        return None
    if not isinstance(value, list):
        raise ValueError(f"{what} must be a list of [src, dst] pairs")
    pairs = []
    for i, pair in enumerate(value):
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ValueError(f"{what}[{i}] must be a [src, dst] pair")
        pairs.append(
            (_int_field(pair[0], f"{what}[{i}][0]"),
             _int_field(pair[1], f"{what}[{i}][1]"))
        )
    return pairs


def _feature_rows(value, what: str = "features") -> np.ndarray:
    """2-D float feature rows from a JSON list-of-lists body."""
    if not isinstance(value, list):
        raise ValueError(f"{what} must be a list of feature rows")
    try:
        rows = np.asarray(value, dtype=np.float32)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{what} must be numeric rows: {exc}")
    rows = np.atleast_2d(rows)
    if rows.ndim != 2:
        raise ValueError(f"{what} must be 2-D (one row per vertex)")
    if not np.isfinite(rows).all():
        raise ValueError(f"{what} must be finite (no NaN/inf)")
    return rows


class PredictionService:
    """Cache- and batch-aware front end over an :class:`InferenceEngine`.

    Reads (``predict`` / ``topk``) share a :class:`ReadWriteGate`;
    updates (``update_edges`` / ``update_features``) take its write side,
    so the refresher's in-place table rewrites quiesce instead of racing
    concurrent lookups — every response reflects exactly one table
    version (pinned by ``tests/serving/test_concurrency.py``).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        cache: Optional[ResultCache] = None,
        batch: bool = False,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        refresher: Optional[IncrementalRefresher] = None,
    ):
        engine.ensure_ready()
        self.engine = engine
        self.cache = cache
        self.refresher = refresher
        # stale-aware lookups when a refresher is attached (deferred
        # updates route affected vertices through the on-demand path)
        self._lookup = refresher.predict if refresher is not None else engine.predict
        self.batcher = (
            MicroBatcher(self._lookup, max_batch=max_batch, max_wait_ms=max_wait_ms)
            if batch
            else None
        )
        self.num_requests = 0  # guarded-by: _count_lock
        self._count_lock = make_lock("serving.service.count")
        # Written only under the gate's read side; concurrent readers may
        # both observe a version bump and reset the cache — idempotent.
        self._cached_version = engine.version
        # readers share; topology/feature updates take the write side
        # and therefore wait out in-flight lookups before rewriting
        self._gate = ReadWriteGate()

    # -- fault-injection seam ----------------------------------------------------------

    def wrap_lookup(self, wrapper) -> None:
        """Wrap the engine lookup with ``wrapper(old) -> new`` — the
        supported seam the fault/stress harness uses to inject failures,
        latency, or instrumentation into the request path (covers both
        the direct path and the micro-batcher's compute function)."""
        self._lookup = wrapper(self._lookup)
        if self.batcher is not None:
            self.batcher.compute = wrapper(self.batcher.compute)

    # -- request path ----------------------------------------------------------------

    def _compute(self, ids: np.ndarray) -> np.ndarray:
        span = current_span()
        if self.batcher is not None:
            # explicit ctx hand-off: the batcher worker is another
            # thread, and the span must ride the request to reach it
            return self.batcher.predict(ids, ctx=span)
        if span is None:
            return self._lookup(ids)
        feature_before = span.component_seconds("feature")
        t0 = time.perf_counter()
        rows = self._lookup(ids)
        elapsed = time.perf_counter() - t0
        # feature-gather time recorded inside this interval is its own
        # component; subtract it so components stay non-overlapping
        feature_during = span.component_seconds("feature") - feature_before
        span.add_component("compute", max(0.0, elapsed - feature_during))
        span.child_complete(
            "engine.predict", elapsed, cat="serving", rows=int(ids.size)
        )
        return rows

    def predict_logits(self, vertex_ids) -> np.ndarray:
        """One logit row per requested vertex (request order preserved)."""
        ids = self.engine._check_ids(vertex_ids)
        with self._count_lock:
            self.num_requests += 1
        if ids.size == 0:
            return np.zeros((0, self.engine.dataset.num_classes), dtype=np.float32)
        span = current_span()
        t_gate = time.perf_counter()
        with self._gate.read():
            if span is not None:
                # gate component: how long the read side waited out a
                # writer (≈0 outside update windows)
                span.add_component("gate", time.perf_counter() - t_gate)
            if self.cache is None:
                return self._compute(ids)
            # a table rewrite (precompute or refresher update) invalidates
            # every cached row — drop them rather than serve stale results
            if self.engine.version != self._cached_version:
                self.cache.reset()
                self._cached_version = self.engine.version
            t_probe = time.perf_counter()
            found, missing = self.cache.get_many(ids)
            if span is not None:
                span.child_complete(
                    "cache.probe", time.perf_counter() - t_probe, cat="serving",
                    lookups=int(ids.size),
                    hits=int(ids.size - missing.size),
                    misses=int(missing.size),
                )
            if missing.size:
                rows = self._compute(missing)
                self.cache.put_many(missing, rows)
                found.update(zip(missing.tolist(), rows))
            return np.stack([found[v] for v in ids.tolist()])

    def predict(self, vertex_ids) -> np.ndarray:
        """Argmax label per requested vertex."""
        return np.argmax(self.predict_logits(vertex_ids), axis=1)

    def topk(self, vertex_ids, k: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(classes, scores)`` per requested vertex, derived
        from the (possibly cached) logit rows."""
        logits = self.predict_logits(vertex_ids)
        span = current_span()
        if span is None:
            return topk_rows(logits, k)
        t0 = time.perf_counter()
        out = topk_rows(logits, k)
        span.child_complete(
            "engine.topk", time.perf_counter() - t0, cat="serving",
            k=int(k), rows=int(logits.shape[0]),
        )
        return out

    # -- updates ---------------------------------------------------------------

    def update_edges(self, add=None, remove=None):
        """Apply edge mutations (``(src, dst)`` pair sequences) and
        refresh the tables they invalidate.

        Routes through the attached refresher's incremental / full /
        deferred policy; without one, the engine's graph is mutated and
        fully precomputed.  Either way ``engine.version`` moves, so the
        next request drops every cached row.  Takes the gate's write
        side: in-flight lookups finish first, new ones wait.  Returns
        :class:`~repro.dyngraph.serving_updates.EdgeUpdateStats`.
        """
        with self._gate.write():
            if self.refresher is not None:
                return self.refresher.update_edges(add=add, remove=remove)
            from repro.dyngraph.serving_updates import full_topology_update

            return full_topology_update(self.engine, add=add, remove=remove)

    def update_features(self, vertex_ids, new_rows) -> RefreshStats:
        """Apply a feature update (one row per vertex) and refresh.

        With a refresher attached this is its incremental / full /
        deferred policy; without one, the engine's features are written
        (last-wins within the batch) and fully precomputed.  Takes the
        gate's write side, like :meth:`update_edges`.
        """
        with self._gate.write():
            if self.refresher is not None:
                return self.refresher.update_features(vertex_ids, new_rows)
            engine = self.engine
            ids = engine._check_ids(vertex_ids)
            rows = np.atleast_2d(
                np.asarray(new_rows, dtype=engine.features.dtype)
            )
            if rows.shape != (ids.size, engine.features.shape[1]):
                raise ValueError(
                    f"new_rows shape {rows.shape} does not match "
                    f"({ids.size}, {engine.features.shape[1]})"
                )
            changed, last = np.unique(ids[::-1], return_index=True)
            engine.update_feature_rows(changed, rows[::-1][last])
            engine.precompute()
            return RefreshStats(
                mode="full",
                num_updated=int(changed.size),
                affected_per_layer=(engine.num_vertices,) * engine.num_layers,
                affected_fraction=1.0,
                rows_recomputed=engine.num_vertices * engine.num_layers,
            )

    # -- lifecycle / introspection ------------------------------------------------------

    def stats(self) -> dict:
        with self._count_lock:
            num_requests = self.num_requests
        out = {"requests": num_requests, "engine": self.engine.stats()}
        out["cache"] = self.cache.stats() if self.cache is not None else None
        out["batcher"] = self.batcher.stats() if self.batcher is not None else None
        out["refresher"] = (
            self.refresher.stats() if self.refresher is not None else None
        )
        return out

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PredictionHandler(BaseHTTPRequestHandler):
    """Parses requests and routes them through the server's frontend."""

    server_version = "repro-serve/2.0"

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def frontend(self) -> ServingFrontend:
        return self.server.frontend  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: dict, retry_after_s=None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            # Retry-After is whole seconds on the wire; round up so the
            # client never retries before the hint
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            health = self.frontend.healthz()
            if health["status"] == "ok":
                self._reply(200, health)
            else:
                self._reply(
                    503, health, retry_after_s=self.frontend.retry_after_s
                )
        elif path == "/stats":
            self._reply(200, self.service.stats())
        elif path == "/metrics":
            fmt = parse_qs(query).get("format", ["json"])[0]
            if fmt == "prom":
                # the registry view; the JSON body below stays the
                # frontend snapshot bit-for-bit
                self._reply_text(
                    200,
                    render_prometheus(self.server.registry.collect()),  # type: ignore[attr-defined]
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif fmt == "json":
                self._reply(200, self.frontend.metrics_snapshot())
            else:
                self._reply(400, {"error": f"unknown metrics format {fmt!r}"})
        elif path == "/trace":
            self._reply(200, chrome_trace(self.frontend.tracer.export()))
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        try:
            req = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"body is not valid JSON: {exc}")
        if not isinstance(req, dict):
            raise ValueError(
                f"body must be a JSON object, got {type(req).__name__}"
            )
        return req

    def do_POST(self) -> None:
        routes = {
            "/predict": self._post_predict,
            "/update_edges": self._post_update_edges,
            "/update_features": self._post_update_features,
        }
        route = routes.get(self.path)
        if route is None:
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        try:
            route()
        except ServingUnavailable as exc:
            # backpressure / drain / deadline: 429 or 503 + Retry-After
            self._reply(
                exc.status,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                retry_after_s=exc.retry_after_s,
            )
        except (ValueError, OverflowError) as exc:
            # malformed body / ids / k / pairs (OverflowError: an id too
            # large for the index dtype is out-of-range, not a 500)
            self._reply(400, {"error": f"bad request: {exc}"})
        # audit[broad-except]: answered as a JSON 500, never a traceback page
        except Exception as exc:  # noqa: BLE001
            self._reply(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )

    def _post_predict(self) -> None:
        req = self._read_json()
        if "vertices" not in req:
            raise ValueError("missing required key 'vertices'")
        vertices = _vertex_ids(req["vertices"])
        k = req.get("k")
        if k is not None:
            k = _int_field(k, "k")
        svc = self.service

        def run() -> dict:
            resp = {
                "vertices": vertices.tolist(),
                "labels": svc.predict(vertices).tolist(),
            }
            if k is not None:
                classes, scores = svc.topk(vertices, k=k)
                resp["topk"] = [
                    [
                        {"class": int(c), "score": float(s)}
                        for c, s in zip(crow, srow)
                    ]
                    for crow, srow in zip(classes, scores)
                ]
            return resp

        # `k` requests are the heavier class: meter them separately
        endpoint = "predict" if k is None else "topk"
        self._reply(200, self.frontend.call(endpoint, run))

    def _post_update_edges(self) -> None:
        req = self._read_json()
        unknown = set(req) - {"add", "remove"}
        if unknown:
            raise ValueError(f"unknown keys {sorted(unknown)}")
        add = _edge_pairs(req.get("add"), "add")
        remove = _edge_pairs(req.get("remove"), "remove")
        stats = self.frontend.update_edges(add=add, remove=remove)
        self._reply(200, {"status": "ok", **stats.to_json()})

    def _post_update_features(self) -> None:
        req = self._read_json()
        unknown = set(req) - {"vertices", "features"}
        if unknown:
            raise ValueError(f"unknown keys {sorted(unknown)}")
        if "vertices" not in req or "features" not in req:
            raise ValueError("missing required keys 'vertices' and 'features'")
        vertices = _vertex_ids(req["vertices"])
        rows = _feature_rows(req["features"])
        if rows.shape[0] != vertices.size:
            raise ValueError(
                f"features has {rows.shape[0]} rows for {vertices.size} vertices"
            )
        stats = self.frontend.update_features(vertices, rows)
        self._reply(
            200,
            {
                "status": "ok",
                "mode": stats.mode,
                "num_updated": stats.num_updated,
                "affected_per_layer": list(stats.affected_per_layer),
                "affected_fraction": stats.affected_fraction,
                "rows_recomputed": stats.rows_recomputed,
            },
        )


class PredictionServer:
    """``ThreadingHTTPServer`` + :class:`ServingFrontend` owning a service.

    Handler threads do I/O and parsing only; the frontend's bounded
    worker pool executes.  Pass a pre-built ``frontend`` to control
    admission limits and deadlines, or let the server build one with
    defaults.
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
        frontend: Optional[ServingFrontend] = None,
    ):
        self.service = service
        self.frontend = (
            frontend if frontend is not None else ServingFrontend(service)
        )
        if self.frontend.service is not service:
            raise ValueError("frontend must wrap the same service")
        # one unified registry behind GET /metrics?format=prom: serving
        # counters, batcher/cache, feature store, AP timer, comm worlds
        self.registry = serving_registry(
            frontend=self.frontend, service=service, tracer=self.frontend.tracer
        )
        self.httpd = ThreadingHTTPServer((host, port), _PredictionHandler)
        self.httpd.service = service  # type: ignore[attr-defined]
        self.httpd.frontend = self.frontend  # type: ignore[attr-defined]
        self.httpd.registry = self.registry  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` — resolves port 0 to the real one."""
        return self.httpd.server_address[:2]

    def serve_forever(self) -> None:  # pragma: no cover - interactive path
        self.httpd.serve_forever()

    def start_background(self) -> "PredictionServer":
        """Serve on a daemon thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.frontend.close()
        self.service.close()
