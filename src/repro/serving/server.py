"""JSON-over-HTTP prediction service (stdlib only).

:class:`PredictionService` composes the serving pieces — engine lookups,
optional LRU result cache, optional micro-batching, optional stale-aware
refresher routing — behind one ``predict``/``topk`` surface, and
:class:`PredictionServer` exposes that surface on a
``ThreadingHTTPServer``:

- ``POST /predict``       body ``{"vertices": [..], "k": 3?}`` ->
  ``{"vertices", "labels", "topk"?}``
- ``POST /update_edges``  body ``{"add": [[u, v], ..]?, "remove":
  [[u, v], ..]?}`` -> refresh outcome (mode, affected rows, edge count)
- ``GET /stats``          engine / cache / batcher / refresher counters
- ``GET /healthz``        liveness

Request flow: per-request cache probe first (a full hit never queues),
then the missing ids go through the micro-batcher, which coalesces
misses across concurrent requests into one engine gather.  Edge updates
land on the engine's delta-CSR shadow graph and refresh through the
attached :class:`IncrementalRefresher` (full precompute without one).

Malformed bodies — invalid JSON, non-object payloads, non-integer or
out-of-range vertex ids, bad ``k``, bad edge pairs — answer ``400`` with
a JSON error body; unexpected failures answer ``500`` with a JSON error
body instead of a traceback.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import INDEX_DTYPE
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import ResultCache
from repro.serving.engine import InferenceEngine, topk_rows
from repro.serving.refresh import IncrementalRefresher


def _int_field(value, what: str) -> int:
    """Strictly-integer JSON field (bools and floats are rejected —
    ``1.5`` silently truncating to vertex 1 is a served-wrong-row bug)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    return int(value)


def _vertex_ids(value) -> np.ndarray:
    if not isinstance(value, list):
        raise ValueError(
            f"vertices must be a list of integer vertex ids, got {value!r}"
        )
    return np.asarray(
        [_int_field(v, f"vertices[{i}]") for i, v in enumerate(value)],
        dtype=INDEX_DTYPE,
    )


def _edge_pairs(value, what: str):
    if value is None:
        return None
    if not isinstance(value, list):
        raise ValueError(f"{what} must be a list of [src, dst] pairs")
    pairs = []
    for i, pair in enumerate(value):
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ValueError(f"{what}[{i}] must be a [src, dst] pair")
        pairs.append(
            (_int_field(pair[0], f"{what}[{i}][0]"),
             _int_field(pair[1], f"{what}[{i}][1]"))
        )
    return pairs


class PredictionService:
    """Cache- and batch-aware front end over an :class:`InferenceEngine`."""

    def __init__(
        self,
        engine: InferenceEngine,
        cache: Optional[ResultCache] = None,
        batch: bool = False,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        refresher: Optional[IncrementalRefresher] = None,
    ):
        engine.ensure_ready()
        self.engine = engine
        self.cache = cache
        self.refresher = refresher
        # stale-aware lookups when a refresher is attached (deferred
        # updates route affected vertices through the on-demand path)
        self._lookup = refresher.predict if refresher is not None else engine.predict
        self.batcher = (
            MicroBatcher(self._lookup, max_batch=max_batch, max_wait_ms=max_wait_ms)
            if batch
            else None
        )
        self.num_requests = 0
        self._cached_version = engine.version
        # serializes concurrent topology updates (handler threads);
        # readers are not blocked — they observe either table version,
        # and the version check below drops cache rows from the old one
        self._update_lock = threading.Lock()

    # -- request path ----------------------------------------------------------------

    def _compute(self, ids: np.ndarray) -> np.ndarray:
        if self.batcher is not None:
            return self.batcher.predict(ids)
        return self._lookup(ids)

    def predict_logits(self, vertex_ids) -> np.ndarray:
        """One logit row per requested vertex (request order preserved)."""
        ids = self.engine._check_ids(vertex_ids)
        self.num_requests += 1
        if ids.size == 0:
            return np.zeros((0, self.engine.dataset.num_classes), dtype=np.float32)
        if self.cache is None:
            return self._compute(ids)
        # a table rewrite (precompute or refresher update) invalidates
        # every cached row — drop them rather than serve stale results
        if self.engine.version != self._cached_version:
            self.cache.reset()
            self._cached_version = self.engine.version
        found, missing = self.cache.get_many(ids)
        if missing.size:
            rows = self._compute(missing)
            self.cache.put_many(missing, rows)
            found.update(zip(missing.tolist(), rows))
        return np.stack([found[v] for v in ids.tolist()])

    def predict(self, vertex_ids) -> np.ndarray:
        """Argmax label per requested vertex."""
        return np.argmax(self.predict_logits(vertex_ids), axis=1)

    def topk(self, vertex_ids, k: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(classes, scores)`` per requested vertex, derived
        from the (possibly cached) logit rows."""
        return topk_rows(self.predict_logits(vertex_ids), k)

    # -- topology updates ---------------------------------------------------------------

    def update_edges(self, add=None, remove=None):
        """Apply edge mutations (``(src, dst)`` pair sequences) and
        refresh the tables they invalidate.

        Routes through the attached refresher's incremental / full /
        deferred policy; without one, the engine's graph is mutated and
        fully precomputed.  Either way ``engine.version`` moves, so the
        next request drops every cached row.  Returns
        :class:`~repro.dyngraph.serving_updates.EdgeUpdateStats`.
        """
        with self._update_lock:
            if self.refresher is not None:
                return self.refresher.update_edges(add=add, remove=remove)
            from repro.dyngraph.serving_updates import full_topology_update

            return full_topology_update(self.engine, add=add, remove=remove)

    # -- lifecycle / introspection ------------------------------------------------------

    def stats(self) -> dict:
        out = {"requests": self.num_requests, "engine": self.engine.stats()}
        out["cache"] = self.cache.stats() if self.cache is not None else None
        out["batcher"] = self.batcher.stats() if self.batcher is not None else None
        out["refresher"] = (
            self.refresher.stats() if self.refresher is not None else None
        )
        return out

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PredictionHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`PredictionService`."""

    server_version = "repro-serve/1.0"

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        try:
            req = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"body is not valid JSON: {exc}")
        if not isinstance(req, dict):
            raise ValueError(
                f"body must be a JSON object, got {type(req).__name__}"
            )
        return req

    def do_POST(self) -> None:
        routes = {
            "/predict": self._post_predict,
            "/update_edges": self._post_update_edges,
        }
        route = routes.get(self.path)
        if route is None:
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        try:
            route()
        except (ValueError, OverflowError) as exc:
            # malformed body / ids / k / pairs (OverflowError: an id too
            # large for the index dtype is out-of-range, not a 500)
            self._reply(400, {"error": f"bad request: {exc}"})
        except Exception as exc:  # noqa: BLE001 — JSON 500, never a traceback page
            self._reply(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )

    def _post_predict(self) -> None:
        req = self._read_json()
        if "vertices" not in req:
            raise ValueError("missing required key 'vertices'")
        vertices = _vertex_ids(req["vertices"])
        k = req.get("k")
        if k is not None:
            k = _int_field(k, "k")
        svc = self.service
        resp = {
            "vertices": vertices.tolist(),
            "labels": svc.predict(vertices).tolist(),
        }
        if k is not None:
            classes, scores = svc.topk(vertices, k=k)
            resp["topk"] = [
                [
                    {"class": int(c), "score": float(s)}
                    for c, s in zip(crow, srow)
                ]
                for crow, srow in zip(classes, scores)
            ]
        self._reply(200, resp)

    def _post_update_edges(self) -> None:
        req = self._read_json()
        unknown = set(req) - {"add", "remove"}
        if unknown:
            raise ValueError(f"unknown keys {sorted(unknown)}")
        add = _edge_pairs(req.get("add"), "add")
        remove = _edge_pairs(req.get("remove"), "remove")
        stats = self.service.update_edges(add=add, remove=remove)
        self._reply(200, {"status": "ok", **stats.to_json()})


class PredictionServer:
    """``ThreadingHTTPServer`` wrapper owning a service."""

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
    ):
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _PredictionHandler)
        self.httpd.service = service  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` — resolves port 0 to the real one."""
        return self.httpd.server_address[:2]

    def serve_forever(self) -> None:  # pragma: no cover - interactive path
        self.httpd.serve_forever()

    def start_background(self) -> "PredictionServer":
        """Serve on a daemon thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.close()
