"""Incremental embedding refresh after vertex feature updates.

A feature update at vertex set ``S`` invalidates exactly the k-hop
out-neighbourhood of ``S``: layer ``l``'s output row ``v`` depends on
``v``'s own layer input plus its in-neighbours' inputs, so the affected
row set grows by one hop of out-edges per layer.  The refresher computes
those per-layer affected sets from the CSR structure and recomputes
*only those rows* against the engine's (updated) per-layer embedding
tables — a row-subset CSR keeps the per-row reduction order identical to
the full pass, so an incremental refresh is exactly equal to a full
recompute.

When the affected set exceeds ``full_threshold`` of the graph the
row-subset pass stops paying for itself.  The refresher then either
falls back to one full :meth:`~repro.serving.engine.InferenceEngine.
precompute` (default), or — in ``deferred`` mode — leaves the tables
stale and answers queries for affected vertices through
:class:`OnDemandInference`, a :class:`~repro.sampling.sampler.
NeighborSampler`-backed per-request path (exact at full fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE
from repro.nn.functional import _cached_reverse
from repro.nn.tensor import Tensor, no_grad
from repro.sampling.sampler import NeighborSampler
from repro.serving.engine import InferenceEngine


def _multi_row_take(indptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Edge positions of the given CSR rows, row order preserved
    (vectorized multi-range gather — no per-row Python loop)."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    ends = np.cumsum(counts)
    total = int(ends[-1]) if rows.size else 0
    if total == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    offsets = np.repeat(starts - np.concatenate(([0], ends[:-1])), counts)
    return offsets + np.arange(total, dtype=INDEX_DTYPE)


def out_neighbors(graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
    """Destinations of all edges leaving ``vertices`` (sorted, unique).

    Walks the reverse CSR that ``F.spmm`` caches on the graph for its
    backward pass (built here if inference never trained).
    """
    rev = _cached_reverse(graph)
    vertices = np.asarray(vertices, dtype=INDEX_DTYPE)
    return np.unique(rev.indices[_multi_row_take(rev.indptr, vertices)])


def affected_sets(
    graph: CSRGraph, changed: np.ndarray, num_layers: int
) -> List[np.ndarray]:
    """Per-layer affected *output* row sets for a feature change.

    ``affected[l]`` lists the vertices whose layer-``l`` output differs
    after the inputs of ``changed`` vertices were modified: the change
    set itself (every layer mixes in the self term) plus one hop of
    out-edges per layer crossed.  Each layer expands only the vertices
    discovered by the previous hop, so the traversal cost is
    proportional to the reach, not layers x accumulated set.
    """
    changed = np.unique(np.asarray(changed, dtype=INDEX_DTYPE))
    affected: List[np.ndarray] = []
    current = changed
    fresh = changed  # vertices whose out-edges are not expanded yet
    for _ in range(num_layers):
        reach = out_neighbors(graph, fresh)
        fresh = np.setdiff1d(reach, current, assume_unique=False)
        current = np.union1d(current, reach)
        affected.append(current)
    return affected


def row_subgraph(graph: CSRGraph, rows: np.ndarray) -> CSRGraph:
    """Rectangular CSR keeping only the given destination rows.

    Column indices stay in the global source id space, and each kept
    row's edge order is untouched — so a kernel pass over the subgraph
    reduces each row in exactly the full graph's floating-point order.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    counts = graph.indptr[rows + 1] - graph.indptr[rows]
    indptr = np.zeros(rows.size + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    take = _multi_row_take(graph.indptr, rows)
    return CSRGraph(
        indptr=indptr,
        indices=graph.indices[take],
        edge_ids=graph.edge_ids[take],
        num_src=graph.num_src,
    )


@dataclass(frozen=True)
class RefreshStats:
    """Outcome of one :meth:`IncrementalRefresher.update_features` call."""

    #: "incremental" (row-subset recompute), "full" (whole-graph
    #: precompute), or "deferred" (tables left stale, on-demand serving).
    mode: str
    num_updated: int
    affected_per_layer: Tuple[int, ...]
    affected_fraction: float
    rows_recomputed: int


class OnDemandInference:
    """Sampler-backed per-request inference over the engine's features.

    Builds the request vertices' k-hop in-neighbourhood with
    :class:`NeighborSampler` and pushes it through the model layer by
    layer using the **global** degree normalizers, so at full fan-out
    (the default: the graph's maximum in-degree) the result is exactly
    the full-graph forward.  Smaller fan-outs trade exactness for
    bounded per-request work — the Dist-DGL estimator.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        fanouts: Optional[Sequence[int]] = None,
        seed: int = 0,
    ):
        self.engine = engine
        if fanouts is None:
            full = max(int(engine.graph.in_degrees().max(initial=0)), 1)
            fanouts = [full] * engine.num_layers
        if len(fanouts) != engine.num_layers:
            raise ValueError("need one fanout per layer")
        self.fanouts = list(fanouts)
        self.sampler = NeighborSampler(engine.graph, self.fanouts, seed=seed)
        self.num_requests = 0
        self.num_sampled_edges = 0

    def predict(self, vertex_ids) -> np.ndarray:
        """Logit rows for ``vertex_ids``, recomputed from raw features."""
        engine = self.engine
        ids = engine._check_ids(vertex_ids)
        if ids.size == 0:
            return np.zeros((0, engine.dataset.num_classes), dtype=np.float32)
        batch = self.sampler.sample(ids)
        self.num_requests += 1
        self.num_sampled_edges += batch.total_sampled_edges
        norm = engine.norm.data
        model = engine.model
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                # rides the feature store's hot-set cache on the mmap
                # tier (bit-identical rows either way)
                h = engine.feature_store.gather(batch.input_vertices)
                for layer, block in zip(model.layers, batch.blocks):
                    z = layer.aggregate(
                        block.graph, Tensor(h), Tensor(norm[block.src_global])
                    )
                    h = layer.combine(
                        z,
                        Tensor(h[: block.num_dst]),
                        Tensor(norm[block.dst_global]),
                    ).data
        finally:
            model.train(was_training)
        # sampler seeds are sorted-unique; map back to the request order
        seeds = batch.seeds
        return h[np.searchsorted(seeds, ids)]


class IncrementalRefresher:
    """Keeps an engine's embedding tables consistent under feature updates."""

    def __init__(
        self,
        engine: InferenceEngine,
        full_threshold: float = 0.25,
        deferred: bool = False,
        fanouts: Optional[Sequence[int]] = None,
    ):
        if not 0.0 <= full_threshold <= 1.0:
            raise ValueError("full_threshold must be in [0, 1]")
        self.engine = engine.ensure_ready()
        self.full_threshold = float(full_threshold)
        self.deferred = bool(deferred)
        #: kept so :meth:`update_edges` can rebuild the on-demand path
        #: over the mutated topology with the same fan-out policy.
        self._fanouts = fanouts
        self.on_demand = OnDemandInference(engine, fanouts=fanouts)
        #: vertices whose precomputed rows are stale (deferred mode only).
        self._stale = np.zeros(0, dtype=INDEX_DTYPE)
        self.num_incremental = 0
        self.num_full = 0
        self.num_deferred = 0
        self.num_topology_updates = 0

    @property
    def stale(self) -> np.ndarray:
        return self._stale

    # -- updates ----------------------------------------------------------------

    def update_features(self, vertex_ids, new_rows) -> RefreshStats:
        """Apply a feature update and refresh the affected embeddings.

        ``new_rows`` must align with ``vertex_ids`` (one feature row per
        vertex).  Repeated ids within one batch are deduplicated before
        the write and the refresh: the **last** row per vertex wins
        (matching NumPy fancy-assignment semantics), each vertex is
        written once, and ``num_updated`` counts distinct vertices.
        """
        engine = self.engine
        ids = engine._check_ids(vertex_ids)
        rows = np.asarray(new_rows, dtype=engine.features.dtype)
        rows = np.atleast_2d(rows)
        if rows.shape != (ids.size, engine.features.shape[1]):
            raise ValueError(
                f"new_rows shape {rows.shape} does not match "
                f"({ids.size}, {engine.features.shape[1]})"
            )
        # first occurrence in the reversed batch == last occurrence in
        # the original, so this is an explicit last-wins dedupe
        changed, last = np.unique(ids[::-1], return_index=True)
        engine.update_feature_rows(changed, rows[::-1][last])
        affected = affected_sets(engine.graph, changed, engine.num_layers)
        fraction = affected[-1].size / max(engine.num_vertices, 1)
        mode, recomputed = self._apply_refresh_policy(affected, fraction)
        return RefreshStats(
            mode=mode,
            num_updated=changed.size,
            affected_per_layer=tuple(a.size for a in affected),
            affected_fraction=fraction,
            rows_recomputed=recomputed,
        )

    def _apply_refresh_policy(
        self, affected: List[np.ndarray], fraction: float
    ) -> Tuple[str, int]:
        """Shared incremental / full / deferred routing for feature and
        topology updates: returns ``(mode, rows_recomputed)``.

        A pending stale set poisons the layer tables an incremental
        pass would read from, so while staleness is outstanding every
        update defers (on-demand serves from raw features and the live
        graph, which are always fresh); resolve() clears the debt in
        one full pass.
        """
        engine = self.engine
        if fraction <= self.full_threshold and self._stale.size == 0:
            recomputed = self._recompute_rows(affected)
            self.num_incremental += 1
            mode = "incremental"
        elif self.deferred:
            self._stale = np.union1d(self._stale, affected[-1])
            self.num_deferred += 1
            mode, recomputed = "deferred", 0
        else:
            engine.precompute()
            self.num_full += 1
            mode, recomputed = "full", engine.num_vertices * engine.num_layers
        if mode != "full":  # precompute() already bumped the version
            engine.version += 1
        return mode, recomputed

    def _recompute_rows(self, affected: List[np.ndarray]) -> int:
        """Row-subset recompute: layer ``l``'s affected rows against the
        (already updated) layer-``l`` input table."""
        engine = self.engine
        model = engine.model
        norm = engine.norm.data
        tables = engine.layer_inputs + [engine.logits]
        recomputed = 0
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                for l, layer in enumerate(model.layers):
                    rows = affected[l]
                    if rows.size == 0:
                        continue
                    sub = row_subgraph(engine.graph, rows)
                    h_full = Tensor(tables[l])
                    z = layer.aggregate(sub, h_full, engine.norm)
                    out = layer.combine(
                        z,
                        Tensor(tables[l][rows]),
                        Tensor(norm[rows]),
                    )
                    tables[l + 1][rows] = out.data
                    recomputed += rows.size
        finally:
            model.train(was_training)
        return recomputed

    # -- topology updates ---------------------------------------------------------

    def update_edges(self, add=None, remove=None):
        """Apply edge mutations and refresh the affected embeddings.

        ``add`` / ``remove`` are sequences of ``(src, dst)`` pairs (see
        :mod:`repro.dyngraph.serving_updates`).  The mutation lands on
        the engine's delta-CSR shadow graph; the refresh then reuses the
        k-hop affected-set machinery, seeded from the mutated edges'
        endpoints, under the same incremental / full / deferred policy
        as feature updates — and is exactly equal to a full
        ``precompute()`` on the compacted graph.  Returns
        :class:`~repro.dyngraph.serving_updates.EdgeUpdateStats`.
        """
        from repro.dyngraph.serving_updates import EdgeUpdateStats, apply_topology

        engine = self.engine
        delta = apply_topology(engine, add=add, remove=remove)
        self.num_topology_updates += 1
        affected = affected_sets(engine.graph, delta.seeds, engine.num_layers)
        fraction = affected[-1].size / max(engine.num_vertices, 1)
        # the on-demand sampler holds the old CSR (and its full-fanout
        # default is a property of the old topology): rebuild it over
        # the merged view, carrying the traffic counters across
        prev = self.on_demand
        self.on_demand = OnDemandInference(engine, fanouts=self._fanouts)
        self.on_demand.num_requests = prev.num_requests
        self.on_demand.num_sampled_edges = prev.num_sampled_edges
        mode, recomputed = self._apply_refresh_policy(affected, fraction)
        dyn = engine.dynamic
        return EdgeUpdateStats(
            mode=mode,
            num_added=delta.num_added,
            num_removed=delta.num_removed,
            num_seeds=int(delta.seeds.size),
            affected_per_layer=tuple(a.size for a in affected),
            affected_fraction=fraction,
            rows_recomputed=recomputed,
            num_edges=dyn.num_edges,
            compacted=delta.compacted,
            delta_fraction=dyn.delta_fraction,
        )

    # -- stale-aware serving ------------------------------------------------------

    def predict(self, vertex_ids) -> np.ndarray:
        """Fresh logit rows: table lookups, with stale vertices (deferred
        mode) answered through the on-demand sampler path."""
        engine = self.engine
        ids = engine._check_ids(vertex_ids)
        out = engine.predict(ids)
        if self._stale.size == 0:
            return out
        stale_mask = np.isin(ids, self._stale)
        if stale_mask.any():
            out = np.array(out, copy=True)
            out[stale_mask] = self.on_demand.predict(ids[stale_mask])
        return out

    def resolve(self) -> RefreshStats:
        """Clear any deferred staleness with one full precompute."""
        engine = self.engine
        engine.precompute()
        self.num_full += 1
        stale = self._stale.size
        self._stale = np.zeros(0, dtype=INDEX_DTYPE)
        return RefreshStats(
            mode="full",
            num_updated=0,
            affected_per_layer=(stale,) * engine.num_layers,
            affected_fraction=stale / max(engine.num_vertices, 1),
            rows_recomputed=engine.num_vertices * engine.num_layers,
        )

    def stats(self) -> dict:
        return {
            "incremental": self.num_incremental,
            "full": self.num_full,
            "deferred": self.num_deferred,
            "topology_updates": self.num_topology_updates,
            "stale_vertices": int(self._stale.size),
            "on_demand_requests": self.on_demand.num_requests,
            "full_threshold": self.full_threshold,
        }
