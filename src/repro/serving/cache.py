"""LRU result cache for the online request path.

The real-traffic counterpart of :mod:`repro.cachesim`: where the cache
simulator replays kernel access traces to *model* reuse, this cache
actually holds per-vertex logit rows for the serving tier and reports
measured hit/miss counters (surfaced by ``/stats`` and the serving
benchmark).  Fully-associative LRU over vertex ids, thread-safe — the
HTTP server handles requests on multiple threads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.analysis.sanitizers import make_lock
from repro.graph.csr import INDEX_DTYPE


class ResultCache:
    """Thread-safe LRU mapping vertex id -> result row (logits).

    Rows are **copied on insert** and the stored copy is marked
    non-writeable: the cache never aliases caller memory (inserting the
    row views of a batch matrix would otherwise pin the whole matrix
    alive, and a caller mutating its array after ``put`` would corrupt
    the cached logits), and ``get``/``get_many`` hand back the read-only
    stored row — mutation attempts raise instead of silently poisoning
    later hits.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()  # guarded-by: _lock
        self._lock = make_lock("serving.cache")
        #: conservation invariant (checked under contention by the
        #: serving stress suite): ``hits + misses == lookups`` always —
        #: all three move inside one critical section per access.
        self.lookups = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    @staticmethod
    def _frozen_copy(row: np.ndarray) -> np.ndarray:
        copy = np.array(row, copy=True)
        copy.setflags(write=False)
        return copy

    # -- single-key ---------------------------------------------------------------

    def get(self, vertex_id: int) -> Optional[np.ndarray]:
        with self._lock:
            self.lookups += 1
            row = self._rows.get(int(vertex_id))
            if row is None:
                self.misses += 1
                return None
            self._rows.move_to_end(int(vertex_id))
            self.hits += 1
            return row

    def put(self, vertex_id: int, row: np.ndarray) -> None:
        row = self._frozen_copy(row)
        with self._lock:
            self._put_locked(int(vertex_id), row)

    def _put_locked(self, key: int, row: np.ndarray) -> None:  # requires-lock: _lock
        rows = self._rows
        if key in rows:
            rows.move_to_end(key)
        elif len(rows) >= self.capacity:
            rows.popitem(last=False)
        rows[key] = row

    # -- vectorized request path ---------------------------------------------------

    def get_many(self, vertex_ids: np.ndarray) -> Tuple[dict, np.ndarray]:
        """Look up a request's ids in one pass.

        Returns ``(found, missing)``: a dict of id -> cached row, and the
        (unique) ids that must be computed.  Duplicate requested ids
        count one access each, like repeated singleton gets.
        """
        ids = np.asarray(vertex_ids, dtype=INDEX_DTYPE)
        found: dict = {}
        missing = []
        with self._lock:
            self.lookups += ids.size
            rows = self._rows
            for key in ids.tolist():
                row = rows.get(key)
                if row is None:
                    self.misses += 1
                    missing.append(key)
                else:
                    rows.move_to_end(key)
                    self.hits += 1
                    found[key] = row
        return found, np.unique(np.array(missing, dtype=INDEX_DTYPE))

    def put_many(self, vertex_ids: np.ndarray, rows: np.ndarray) -> None:
        """Insert one result row per id (aligned arrays)."""
        ids = np.asarray(vertex_ids, dtype=INDEX_DTYPE)
        if len(rows) != ids.size:
            raise ValueError("rows must align with vertex_ids")
        frozen = [self._frozen_copy(row) for row in rows]
        with self._lock:
            for key, row in zip(ids.tolist(), frozen):
                self._put_locked(key, row)

    # -- introspection --------------------------------------------------------------

    @property
    def accesses(self) -> int:
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            hits, misses = self.hits, self.misses
        accesses = hits + misses
        return hits / accesses if accesses else 0.0

    def reset(self) -> None:
        with self._lock:
            self._rows.clear()
            self.lookups = 0
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        # One consistent snapshot: size and the counters are read under
        # the lock so a concurrent put/get can't skew the reported rate.
        with self._lock:
            lookups = self.lookups
            hits, misses, size = self.hits, self.misses, len(self._rows)
        accesses = hits + misses
        return {
            "capacity": self.capacity,
            "size": size,
            "lookups": lookups,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / accesses if accesses else 0.0,
        }
