"""Micro-batching request queue for the online path.

Concurrent lookups are coalesced into one engine call: a worker thread
takes the first queued request, waits up to ``max_wait_ms`` for more (or
greedily drains whatever is already queued once the window closes), and
executes a single deduplicated batch.  Each caller gets its own rows
back through a :class:`concurrent.futures.Future`.

This is the standard serving trade — a small bounded latency tax on the
first request in exchange for one vectorized table gather instead of N
scalar ones — and the counters make the coalescing measurable
(``requests`` vs ``batches``, submitted vs computed vertices).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.analysis.sanitizers import make_lock
from repro.graph.csr import INDEX_DTYPE
from repro.obs.trace import activate

_SENTINEL = object()


@dataclass
class _Request:
    ids: np.ndarray
    future: Future
    #: trace context carried *explicitly* across the pool boundary (the
    #: batcher worker is a different thread; thread-locals do not cross).
    ctx: Optional[object] = None
    #: submit instant, for the per-request ``batch`` (coalesce-wait)
    #: latency component.
    t_submit: float = 0.0


class MicroBatcher:
    """Coalesces concurrent ``vertex_ids -> rows`` lookups.

    Parameters
    ----------
    compute:
        Batch function mapping a 1-D unique id array to one row per id.
    max_batch:
        Coalescing stops once this many vertex ids are gathered.
    max_wait_ms:
        How long the worker holds the first request of a batch open for
        followers.  ``0`` still coalesces everything already queued.
    """

    def __init__(
        self,
        compute: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.compute = compute
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = make_lock("serving.batcher")
        self._closed = False  # guarded-by: _lock
        self.num_requests = 0  # guarded-by: _lock
        self.num_batches = 0  # guarded-by: _lock
        self.vertices_submitted = 0  # guarded-by: _lock
        self.vertices_computed = 0  # guarded-by: _lock
        self._worker = threading.Thread(
            target=self._loop, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # -- client side ----------------------------------------------------------------

    def submit(self, vertex_ids, ctx=None) -> Future:
        """Enqueue a lookup; the Future resolves to one row per id.

        ``ctx`` (an :class:`~repro.obs.trace.Span` or ``None``) rides on
        the request so the worker can attribute coalesce-wait and
        compute time back to the originating request's trace.
        """
        ids = np.atleast_1d(np.asarray(vertex_ids, dtype=INDEX_DTYPE))
        fut: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self.num_requests += 1
            self.vertices_submitted += ids.size
        self._queue.put(
            _Request(ids=ids, future=fut, ctx=ctx, t_submit=time.perf_counter())
        )
        return fut

    def predict(self, vertex_ids, timeout: Optional[float] = 30.0, ctx=None) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(vertex_ids, ctx=ctx).result(timeout=timeout)

    def pending(self) -> int:
        """Requests queued but not yet picked into a batch (a queue-depth
        gauge for ``/metrics``; approximate by nature)."""
        return self._queue.qsize()

    def close(self) -> None:
        """Stop the worker after the current batch; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SENTINEL)
        self._worker.join(timeout=30.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker side ----------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._drain_cancelled()
                return
            batch, saw_sentinel = self._fill_batch([item])
            self._execute(batch)
            if saw_sentinel:
                self._drain_cancelled()
                return

    def _fill_batch(self, batch: List[_Request]):
        """Hold the batch open up to ``max_wait_s``; always greedily
        drain requests that are already queued."""
        deadline = time.perf_counter() + self.max_wait_s
        total = sum(r.ids.size for r in batch)
        while total < self.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                return batch, True
            batch.append(item)
            total += item.ids.size
        return batch, False

    def _execute(self, batch: List[_Request]) -> None:
        all_ids = np.concatenate([r.ids for r in batch])
        uniq, inverse = np.unique(all_ids, return_inverse=True)
        # one rider's ctx is *activated* during compute so deep sites
        # (feature gather, kernel timers) nest under a real request;
        # every rider still gets its batch/compute components below.
        lead = next((r.ctx for r in batch if r.ctx is not None), None)
        t_compute = time.perf_counter()
        for r in batch:
            if r.ctx is not None:
                r.ctx.add_component("batch", t_compute - r.t_submit)
        feature_before = lead.component_seconds("feature") if lead is not None else 0.0
        try:
            with activate(lead):
                rows = np.asarray(self.compute(uniq))
        # audit[broad-except]: propagated to every waiting caller's future
        except Exception as exc:
            for r in batch:
                r.future.set_exception(exc)
            return
        compute_s = time.perf_counter() - t_compute
        if lead is not None:
            # the lead's feature-gather seconds were recorded *inside*
            # this compute interval; subtract so components stay
            # non-overlapping (sum ≤ end-to-end is a pinned invariant)
            feature_during = lead.component_seconds("feature") - feature_before
            lead.add_component("compute", max(0.0, compute_s - feature_during))
            lead.child_complete(
                "batch.flush", compute_s, cat="serving",
                batch_requests=len(batch), submitted=int(all_ids.size),
                unique=int(uniq.size),
            )
        for r in batch:
            if r.ctx is not None and r.ctx is not lead:
                r.ctx.add_component("compute", compute_s)
        with self._lock:
            self.num_batches += 1
            self.vertices_computed += uniq.size
        offset = 0
        for r in batch:
            take = inverse[offset : offset + r.ids.size]
            offset += r.ids.size
            r.future.set_result(rows[take])

    def _drain_cancelled(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SENTINEL:
                item.future.set_exception(RuntimeError("MicroBatcher closed"))

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            submitted = self.vertices_submitted
            computed = self.vertices_computed
            return {
                "requests": self.num_requests,
                "batches": self.num_batches,
                "vertices_submitted": submitted,
                "vertices_computed": computed,
                "coalesced_vertices": submitted - computed,
                "pending": self._queue.qsize(),
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_s * 1000.0,
            }
