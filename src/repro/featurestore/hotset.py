"""Pinned hot-set cache over a cold feature tier.

The paper's reuse analysis (Section 4, modeled in :mod:`repro.cachesim`)
shows that aggregation traffic over a power-law graph concentrates on
the high-degree rows: a vertex's feature row is re-read once per
out-edge, so pinning the top-``C`` rows by degree captures the degree
mass of the trace.  :class:`HotSetCache` makes that real:

- ``static`` policy — degree-ordered pinned set, materialized once from
  the cold tier; lookups are a vectorized slot-table probe with zero
  eviction churn (the default, per the paper).
- ``lru`` policy — fully-associative LRU at feature-row granularity,
  exactly the replacement policy :class:`repro.cachesim.lru.
  LRUFeatureCache` simulates, for access patterns without a usable
  degree skew.

:func:`choose_policy` is the cachesim bridge: it predicts the static
hit rate from the access-weight (degree) mass and the LRU hit rate by
replaying a model trace through ``LRUFeatureCache``, then picks the
winner.  The measured ``hits/misses/evictions`` counters let the
benchmark validate those predictions against live traffic
(``benchmarks/bench_featurestore.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.sanitizers import make_lock
from repro.cachesim.lru import LRUFeatureCache
from repro.graph.csr import INDEX_DTYPE


def _frozen_rows(rows: np.ndarray) -> np.ndarray:
    """Seal a gather result before it crosses the API boundary (the
    read-only hand-out contract, REP103)."""
    rows.setflags(write=False)
    return rows

#: default absolute tolerance on |measured - predicted| hit rate: the
#: prediction trace and the live trace are drawn from the same access
#: process but with independent seeds, so this bounds sampling noise,
#: not model error (deterministic patterns like the full precompute
#: scan predict exactly).
PREDICTION_TOLERANCE = 0.1

#: cap on replayed prediction-trace length — LRU replay is a Python
#: loop; a prefix this long pins the steady-state hit rate well enough
#: for policy selection.
MAX_REPLAY_ACCESSES = 200_000


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of cachesim-driven admission-policy selection."""

    policy: str  # "static" | "lru"
    capacity: int
    predicted_hit_rate: float
    static_hit_rate: float
    lru_hit_rate: Optional[float]
    tolerance: float = PREDICTION_TOLERANCE

    def to_json(self) -> dict:
        return {
            "policy": self.policy,
            "capacity": int(self.capacity),
            "predicted_hit_rate": float(self.predicted_hit_rate),
            "static_hit_rate": float(self.static_hit_rate),
            "lru_hit_rate": (
                None if self.lru_hit_rate is None else float(self.lru_hit_rate)
            ),
            "tolerance": float(self.tolerance),
        }


def top_rows_by_weight(weights: np.ndarray, capacity: int) -> np.ndarray:
    """The ``capacity`` highest-weight row ids, heaviest first.

    Ties break toward the lower id (stable sort) so the pinned set is
    deterministic for a given degree vector.
    """
    weights = np.asarray(weights)
    capacity = int(min(max(capacity, 0), weights.size))
    if capacity == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    order = np.argsort(-weights, kind="stable")[:capacity]
    return order.astype(INDEX_DTYPE)


def predict_static_hit_rate(weights: np.ndarray, capacity: int) -> float:
    """Hit rate of pinning the top-``capacity`` rows under traffic whose
    per-row access counts are proportional to ``weights`` (the paper's
    degree-mass argument: an edge-gather trace touches row ``v`` exactly
    ``weights[v]`` times when ``weights`` is the degree vector)."""
    weights = np.asarray(weights, dtype=np.float64)
    total = float(weights.sum())
    if total <= 0.0:
        return 0.0
    hot = top_rows_by_weight(weights, capacity)
    return float(weights[hot].sum() / total)


def predict_lru_hit_rate(
    trace: np.ndarray, capacity: int, max_accesses: int = MAX_REPLAY_ACCESSES
) -> float:
    """Hit rate of an LRU of ``capacity`` rows on ``trace``, via the
    exact :class:`~repro.cachesim.lru.LRUFeatureCache` replay (prefix-
    truncated to ``max_accesses`` to bound the Python loop)."""
    trace = np.asarray(trace).ravel()
    if trace.size == 0:
        return 0.0
    cache = LRUFeatureCache(max(int(capacity), 1))
    cache.access_many(trace[: int(max_accesses)])
    return cache.hits / cache.accesses


def choose_policy(
    weights: np.ndarray,
    capacity: int,
    trace: Optional[np.ndarray] = None,
    policy: str = "auto",
    tolerance: float = PREDICTION_TOLERANCE,
) -> PolicyDecision:
    """Pick the admission policy for a hot set of ``capacity`` rows.

    ``weights`` are expected per-row access counts (in-degrees for
    aggregation traffic); ``trace`` is an optional model access trace
    for the LRU replay.  ``policy="auto"`` compares the two predictions
    and keeps static on ties — the paper's degree-ordered pinning is the
    default, LRU the fallback for patterns it mispredicts.
    """
    if policy not in ("auto", "static", "lru"):
        raise ValueError(f"unknown policy {policy!r} (auto/static/lru)")
    static_pred = predict_static_hit_rate(weights, capacity)
    lru_pred = (
        predict_lru_hit_rate(trace, capacity) if trace is not None else None
    )
    if policy == "auto":
        policy = (
            "lru" if lru_pred is not None and lru_pred > static_pred else "static"
        )
    predicted = static_pred if policy == "static" else (
        lru_pred if lru_pred is not None else static_pred
    )
    return PolicyDecision(
        policy=policy,
        capacity=int(capacity),
        predicted_hit_rate=predicted,
        static_hit_rate=static_pred,
        lru_hit_rate=lru_pred,
        tolerance=float(tolerance),
    )


class HotSetCache:
    """Row cache in front of a cold fetch function.

    ``gather(ids, cold_fetch)`` returns one feature row per id, serving
    hot rows from memory and delegating the misses to ``cold_fetch`` in
    one batched call.  Counter conservation mirrors
    :class:`~repro.serving.cache.ResultCache`:
    ``lookups == hits + misses`` at every instant, and for the LRU
    policy ``len(cache) == inserts - evictions``.
    """

    def __init__(
        self,
        num_rows: int,
        capacity: int,
        policy: str = "static",
        hot_ids: Optional[np.ndarray] = None,
    ):
        if policy not in ("static", "lru"):
            raise ValueError(f"unknown policy {policy!r} (static/lru)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.num_rows = int(num_rows)
        self.capacity = int(min(capacity, num_rows)) if num_rows else int(capacity)
        self.capacity = max(self.capacity, 1)
        self.policy = policy
        # One lock covers the counters and both residency structures:
        # concurrent serving gathers would otherwise race the LRU
        # recency order and the hit/miss conservation invariant.
        self._lock = make_lock("featurestore.hotset")
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        # static: slot table row-id -> pinned slot (-1 = cold); read-only
        # after construction
        self._slot = np.full(self.num_rows, -1, dtype=np.int64)
        self._pinned_ids = np.zeros(0, dtype=INDEX_DTYPE)
        self._rows: Optional[np.ndarray] = None  # guarded-by: _lock
        # lru: id -> cached row (OrderedDict insertion order = recency)
        self._lru: "OrderedDict[int, Optional[np.ndarray]]" = OrderedDict()  # guarded-by: _lock
        if policy == "static":
            if hot_ids is None:
                raise ValueError("static policy needs hot_ids to pin")
            hot_ids = np.asarray(hot_ids, dtype=INDEX_DTYPE)[: self.capacity]
            if hot_ids.size and (
                hot_ids.min() < 0 or hot_ids.max() >= self.num_rows
            ):
                raise ValueError("hot_ids out of range")
            self._pinned_ids = hot_ids
            self._slot[hot_ids] = np.arange(hot_ids.size, dtype=np.int64)

    # -- introspection ----------------------------------------------------------

    @property
    def lookups(self) -> int:
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def _hot_rows_locked(self) -> int:  # requires-lock: _lock
        if self.policy == "static":
            return int(self._pinned_ids.size) if self._rows is not None else 0
        return len(self._lru)

    @property
    def hot_rows(self) -> int:
        """Rows currently resident in the hot tier."""
        with self._lock:
            return self._hot_rows_locked()

    @property
    def pinned_ids(self) -> np.ndarray:
        return self._pinned_ids

    def stats(self) -> dict:
        # One critical section so the reported counters satisfy the
        # conservation invariant (lookups == hits + misses) exactly.
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
            hot_rows = self._hot_rows_locked()
        lookups = hits + misses
        return {
            "policy": self.policy,
            "capacity": self.capacity,
            "hot_rows": hot_rows,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "lookups": lookups,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # -- the gather path --------------------------------------------------------

    def warm(self, cold_fetch: Callable[[np.ndarray], np.ndarray]) -> None:
        """Materialize the static pinned rows (no-op for LRU, which
        warms on traffic).  Pin reads don't count as misses — they are
        the one-time admission, not steady-state traffic."""
        with self._lock:
            self._warm_locked(cold_fetch)

    def _warm_locked(self, cold_fetch) -> None:  # requires-lock: _lock
        if self.policy == "static" and self._rows is None:
            # The pinned matrix must stay privately writable: update_rows
            # rewrites pins in place, so never adopt a frozen hand-out.
            self._rows = np.array(cold_fetch(self._pinned_ids), copy=True)

    def gather(
        self, ids: np.ndarray, cold_fetch: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """One row per id; misses are fetched from ``cold_fetch`` in a
        single batched call (duplicate misses fetch once).  The returned
        batch is read-only (hand-out contract)."""
        ids = np.asarray(ids, dtype=INDEX_DTYPE)
        with self._lock:
            if self.policy == "static":
                rows = self._gather_static(ids, cold_fetch)
            else:
                rows = self._gather_lru(ids, cold_fetch)
        return _frozen_rows(rows)

    def _gather_static(self, ids, cold_fetch):  # requires-lock: _lock
        if self._rows is None:
            self._warm_locked(cold_fetch)
        slots = self._slot[ids]
        hit = slots >= 0
        num_hits = int(hit.sum())
        self.hits += num_hits
        self.misses += ids.size - num_hits
        if num_hits == ids.size:
            return self._rows[slots]
        cold = cold_fetch(ids[~hit])
        out = np.empty((ids.size,) + cold.shape[1:], dtype=cold.dtype)
        if num_hits:
            out[hit] = self._rows[slots[hit]]
        out[~hit] = cold
        return out

    def _gather_lru(self, ids, cold_fetch):  # requires-lock: _lock
        cache = self._lru
        # id -> output positions still waiting for the cold row.  A
        # missed id is inserted immediately (value None until the
        # batched fetch lands), so a repeat within the batch is a hit —
        # the same sequential semantics LRUFeatureCache simulates.
        pending: Dict[int, List[int]] = {}
        out_rows: List[Optional[np.ndarray]] = [None] * ids.size
        for pos, key in enumerate(ids.tolist()):
            if key in cache:
                cache.move_to_end(key)
                self.hits += 1
                row = cache[key]
                if row is None:
                    pending[key].append(pos)
                else:
                    out_rows[pos] = row
            else:
                self.misses += 1
                if len(cache) >= self.capacity:
                    evicted, _ = cache.popitem(last=False)
                    self.evictions += 1
                    # an evicted not-yet-filled key keeps its pending
                    # positions: the batch fetch below still serves them
                cache[key] = None
                pending.setdefault(key, []).append(pos)
        if pending:
            cold_ids = np.fromiter(
                pending.keys(), dtype=INDEX_DTYPE, count=len(pending)
            )
            cold = cold_fetch(cold_ids)
            for row, key in zip(cold, pending):
                for pos in pending[key]:
                    out_rows[pos] = row
                if cache.get(key, row) is None:
                    cache[key] = np.ascontiguousarray(row)
        if not out_rows:
            template = cold_fetch(np.zeros(0, dtype=INDEX_DTYPE))
            return template
        return np.stack(out_rows)

    # -- coherence under updates ------------------------------------------------

    def update_rows(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Keep cached copies coherent after the backing rows changed.

        Static pins are rewritten in place; LRU entries for the updated
        ids are refreshed if resident (last write per id wins, matching
        fancy-assignment semantics upstream).
        """
        ids = np.asarray(ids, dtype=INDEX_DTYPE)
        rows = np.asarray(rows)
        with self._lock:
            if self.policy == "static":
                if self._rows is None:
                    return
                slots = self._slot[ids]
                hot = slots >= 0
                if hot.any():
                    self._rows[slots[hot]] = rows[hot]
                return
            for key, row in zip(ids.tolist(), rows):
                if key in self._lru and self._lru[key] is not None:
                    self._lru[key] = np.ascontiguousarray(row)
