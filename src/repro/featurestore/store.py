"""Tiered feature store: resident / mmap cold tier + hot-set cache.

:class:`FeatureStore` is the one abstraction every feature consumer in
the repo reads through — both trainers, the neighbor-sampling paths, and
the serving engine's precompute/refresh.  Two tiers:

- ``resident`` — wraps an in-memory matrix and preserves today's
  behavior *exactly*: ``matrix()`` returns the wrapped array itself and
  ``gather(ids)`` is ``features[ids]``, so a store-threaded consumer is
  bit-identical to the pre-store code path (the drop-in default).
- ``mmap`` — a read-only zero-copy :mod:`storage <repro.featurestore.
  storage>` map as the cold tier, optionally fronted by a
  :class:`~repro.featurestore.hotset.HotSetCache` whose admission policy
  the cache simulator chose.  The OS page cache shares the cold tier
  across every process that opens (or forks with) the store — shm SPMD
  ranks read one file instead of holding per-rank feature copies.

Updates (``update_rows``) keep the mmap tier servable: the read-only map
is never written; instead the first update materializes one private
patched copy (exactly the full writable copy the serving engine used to
hold unconditionally) and subsequent updates land in place there and in
any cached hot rows — reads before and after an update are always
consistent with NumPy fancy-assignment semantics on a resident matrix.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.analysis.sanitizers import make_lock
from repro.featurestore.hotset import (
    HotSetCache,
    PolicyDecision,
    choose_policy,
    top_rows_by_weight,
)
from repro.featurestore.storage import open_feature_layout, write_feature_layout
from repro.graph.csr import INDEX_DTYPE
from repro.obs.trace import current_span

TIERS = ("resident", "mmap")


def _frozen_rows(rows: np.ndarray) -> np.ndarray:
    """Freeze a freshly gathered row batch before it leaves the store."""
    rows.setflags(write=False)
    return rows


def _frozen_view(matrix: np.ndarray) -> np.ndarray:
    """Hand out a read-only view; the backing array stays writable so
    ``update_rows`` can keep patching it in place."""
    view = matrix.view()
    view.setflags(write=False)
    return view


class FeatureStore:
    """Row-oriented view over a feature matrix with tiered backing."""

    def __init__(
        self,
        tier: str,
        base: np.ndarray,
        hot: Optional[HotSetCache] = None,
        path: Optional[str] = None,
        decision: Optional[PolicyDecision] = None,
    ):
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r} (one of {TIERS})")
        self.tier = tier
        self._base = base
        self.hot = hot
        self.path = path
        #: how the hot-set policy was chosen (mmap tier with a cache).
        self.decision = decision
        #: private patched copy, created by the first mmap-tier update.
        self._patched: Optional[np.ndarray] = None
        self._stats_lock = make_lock("featurestore.store.stats")
        self.cold_rows_read = 0  # guarded-by: _stats_lock
        self.num_updates = 0  # guarded-by: _stats_lock
        if hot is not None:
            hot.warm(self._cold_fetch)

    # -- construction -----------------------------------------------------------

    @classmethod
    def resident(cls, features: np.ndarray) -> "FeatureStore":
        """Wrap an in-memory matrix; behavior-preserving default tier."""
        return cls("resident", np.asarray(features))

    @classmethod
    def open(
        cls,
        path: str,
        hot_fraction: float = 0.1,
        policy: str = "auto",
        degrees: Optional[np.ndarray] = None,
        trace: Optional[np.ndarray] = None,
        tolerance: Optional[float] = None,
    ) -> "FeatureStore":
        """Open an on-disk layout as the mmap cold tier.

        ``hot_fraction`` of the rows are cached hot (0 disables the
        cache); ``degrees`` (access weights) drive the paper's static
        degree-ordered pinning, ``trace`` the LRU replay — see
        :func:`~repro.featurestore.hotset.choose_policy`.  Without
        ``degrees`` there is nothing to rank static pins by, so the
        policy falls back to LRU.
        """
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        base, _manifest = open_feature_layout(path)
        num_rows = base.shape[0]
        capacity = int(round(hot_fraction * num_rows))
        hot = None
        decision = None
        if capacity >= 1:
            if degrees is None and policy in ("auto", "static"):
                policy = "lru"
            weights = (
                np.asarray(degrees, dtype=np.float64)
                if degrees is not None
                else np.zeros(num_rows)
            )
            if degrees is not None and weights.shape != (num_rows,):
                raise ValueError(
                    f"degrees shape {weights.shape} does not match "
                    f"{num_rows} feature rows"
                )
            kwargs = {} if tolerance is None else {"tolerance": tolerance}
            decision = choose_policy(
                weights, capacity, trace=trace, policy=policy, **kwargs
            )
            hot_ids = (
                top_rows_by_weight(weights, capacity)
                if decision.policy == "static"
                else None
            )
            hot = HotSetCache(
                num_rows, capacity, policy=decision.policy, hot_ids=hot_ids
            )
        return cls("mmap", base, hot=hot, path=path, decision=decision)

    @classmethod
    def create(cls, path: str, features: np.ndarray, **open_kwargs) -> "FeatureStore":
        """Spill ``features`` to ``path`` (if no layout is there yet) and
        open the result as an mmap store.  An existing layout is reused
        only when its shape matches — anything else fails loudly rather
        than serving another matrix's rows."""
        from repro.featurestore.storage import FeatureLayoutError, read_manifest

        features = np.asarray(features)
        try:
            manifest = read_manifest(path)
        except FeatureLayoutError:
            write_feature_layout(path, features)
        else:
            if manifest["shape"] != features.shape or (
                manifest["dtype"] != features.dtype.newbyteorder("=")
            ):
                raise FeatureLayoutError(
                    f"existing layout at {path!r} holds shape "
                    f"{manifest['shape']} dtype {np.dtype(manifest['dtype']).str!r}, "
                    f"requested {tuple(features.shape)} "
                    f"{features.dtype.str!r}: refusing to reuse it"
                )
        return cls.open(path, **open_kwargs)

    # -- shape ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(self._base.shape[0])

    @property
    def dim(self) -> int:
        return int(self._base.shape[1])

    @property
    def shape(self):
        return self._base.shape

    @property
    def dtype(self):
        return self._base.dtype

    @property
    def bytes_mapped(self) -> int:
        """Bytes served through the zero-copy mmap view (0 when resident
        or after an update materialized the private patched copy)."""
        if self.tier == "mmap" and self._patched is None:
            return int(self._base.nbytes)
        return 0

    # -- reads ------------------------------------------------------------------

    def _backing(self) -> np.ndarray:
        return self._patched if self._patched is not None else self._base

    def _cold_fetch(self, ids: np.ndarray) -> np.ndarray:
        """Internal fetch: fresh writable rows (the hot cache adopts
        them as its own storage; ``gather`` freezes before hand-out)."""
        with self._stats_lock:
            self.cold_rows_read += int(ids.size)
        return self._backing()[ids]

    def gather(self, ids) -> np.ndarray:
        """One feature row per id (a fresh array, request order kept) —
        bit-identical to ``features[ids]`` on the resident matrix.
        Mmap-tier batches come back read-only, matching the CSR arrays
        and the result cache's hand-out contract; route writes through
        :meth:`update_rows`.

        When the calling thread carries an active trace span, the
        gather records a ``feature.gather`` child span with the hot-hit
        vs cold-read split and charges its wall time to the request's
        ``feature`` latency component; untraced calls take one ``None``
        check extra."""
        ids = np.asarray(ids, dtype=INDEX_DTYPE)
        span = current_span()
        fetch = self._cold_fetch
        if span is not None:
            t0 = time.perf_counter()
            cold = [0]

            def fetch(miss, _inner=self._cold_fetch):
                cold[0] += int(miss.size)
                return _inner(miss)

        if self.tier == "resident":
            rows = fetch(ids)
        elif self.hot is None:
            rows = _frozen_rows(fetch(ids))
        else:
            rows = self.hot.gather(ids, fetch)
        if span is not None:
            elapsed = time.perf_counter() - t0
            span.add_component("feature", elapsed)
            span.child_complete(
                "feature.gather", elapsed, cat="featurestore",
                rows=int(ids.size), cold_rows=cold[0],
                hot_rows=int(ids.size) - cold[0],
            )
        return rows

    def matrix(self) -> np.ndarray:
        """The whole matrix for full-scan consumers (precompute, full-
        batch training).  Resident: the wrapped array itself (writable,
        the drop-in contract).  Mmap: the read-only zero-copy map, or a
        read-only view of the private patched copy once an update has
        landed — either way consumers cannot scribble on served rows."""
        if self.tier == "resident":
            return self._base
        if self._patched is not None:
            return _frozen_view(self._patched)
        return self._base

    # -- writes -----------------------------------------------------------------

    def update_rows(self, ids, rows) -> None:
        """Overwrite rows (NumPy fancy-assignment semantics: duplicate
        ids resolve last-wins).  Resident writes in place; mmap writes
        the private patched copy (materialized on first update — the
        read-only cold file is never touched) and refreshes any cached
        hot rows so ``gather`` never serves a stale copy."""
        ids = np.asarray(ids, dtype=INDEX_DTYPE)
        rows = np.asarray(rows, dtype=self.dtype)
        if self.tier == "mmap" and self._patched is None:
            self._patched = np.array(self._base, copy=True)
        self._backing()[ids] = rows
        if self.hot is not None:
            self.hot.update_rows(ids, rows)
        with self._stats_lock:
            self.num_updates += 1

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe gauges: tier, hot rows, hit rate, bytes mapped.

        Reads the store's own counters under ``_stats_lock``, then asks
        the hot cache *outside* it — ``hot.gather`` already calls back
        into ``_cold_fetch`` while holding the cache lock, so nesting
        the other way here would close a lock-order cycle."""
        with self._stats_lock:
            cold_rows_read = self.cold_rows_read
            num_updates = self.num_updates
        out = {
            "tier": self.tier,
            "num_rows": self.num_rows,
            "dim": self.dim,
            "dtype": str(np.dtype(self.dtype)),
            "bytes_mapped": self.bytes_mapped,
            "cold_rows_read": cold_rows_read,
            "num_updates": num_updates,
            "patched": self._patched is not None,
            "hot_rows": self.hot.hot_rows if self.hot is not None else 0,
            "hit_rate": self.hot.hit_rate if self.hot is not None else None,
            "policy": self.hot.policy if self.hot is not None else None,
        }
        if self.hot is not None:
            out["hot"] = self.hot.stats()
        if self.decision is not None:
            out["decision"] = self.decision.to_json()
        return out

    def __repr__(self) -> str:  # pragma: no cover - logging convenience
        hot = f", hot={self.hot.capacity} ({self.hot.policy})" if self.hot else ""
        return (
            f"FeatureStore(tier={self.tier!r}, shape={tuple(self.shape)}, "
            f"dtype={np.dtype(self.dtype)}{hot})"
        )
