"""Feature store: mmap cold tier + cachesim-driven hot-set cache.

The memory hierarchy for raw vertex features, threaded through every
feature consumer in the repo (trainers, samplers, the serving engine):

- :mod:`repro.featurestore.storage` — the on-disk layout: a chunked
  row-major ``features.bin`` plus a dtype/shape/endianness manifest,
  opened as a zero-copy read-only ``np.memmap`` with every manifest
  field validated before the first row is read.
- :mod:`repro.featurestore.hotset` — :class:`HotSetCache`: the pinned
  hot set in front of the cold tier.  Degree-ordered static pinning
  (the paper's reuse analysis) is the default policy, exact LRU the
  fallback; :func:`choose_policy` picks between them using the
  :mod:`repro.cachesim` machinery and the measured hit/miss/eviction
  counters validate the prediction (``bench_featurestore.py``).
- :mod:`repro.featurestore.store` — :class:`FeatureStore`: the tiered
  facade.  The ``resident`` tier wraps an in-memory matrix and
  preserves the pre-store behavior bit for bit (the drop-in default);
  the ``mmap`` tier serves out-of-core graphs from the shared cold
  file — one set of OS page-cache pages across shm SPMD ranks and
  sampler workers instead of per-process copies.
"""

from repro.featurestore.hotset import (
    HotSetCache,
    PolicyDecision,
    choose_policy,
    predict_lru_hit_rate,
    predict_static_hit_rate,
    top_rows_by_weight,
)
from repro.featurestore.storage import (
    FeatureLayoutError,
    open_feature_layout,
    read_manifest,
    write_feature_layout,
)
from repro.featurestore.store import FeatureStore

__all__ = [
    "FeatureStore",
    "HotSetCache",
    "PolicyDecision",
    "choose_policy",
    "predict_static_hit_rate",
    "predict_lru_hit_rate",
    "top_rows_by_weight",
    "FeatureLayoutError",
    "write_feature_layout",
    "open_feature_layout",
    "read_manifest",
]
