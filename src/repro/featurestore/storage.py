"""On-disk feature layout: chunked row-major binary + JSON manifest.

The cold tier of the feature store is one raw ``features.bin`` file
(row-major, written in bounded chunks so a matrix larger than RAM can be
spilled) plus a ``manifest.json`` describing exactly how to read it back:
format version, NumPy dtype string *with explicit byte order*, shape,
and total byte count.  :func:`open_feature_layout` maps the file
read-only (``np.memmap``) — a zero-copy view whose pages the OS shares
across every process that opens it, which is what lets shm SPMD ranks
and sampler workers read one cold tier instead of holding per-process
copies.

Every manifest field is *validated before the first row is read*: a
dtype, shape, endianness, or file-size mismatch raises
:class:`FeatureLayoutError` with a message naming the disagreement —
silently misreading rows (the classic raw-binary failure mode) is the
bug class this module exists to exclude.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Tuple

import numpy as np

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
DATA_NAME = "features.bin"
#: rows per write chunk — bounds writer memory at chunk_rows * row bytes.
DEFAULT_CHUNK_ROWS = 8192


class FeatureLayoutError(ValueError):
    """The on-disk layout and its manifest disagree (or are unreadable)."""


def manifest_path(dirpath: str) -> str:
    return os.path.join(dirpath, MANIFEST_NAME)


def data_path(dirpath: str) -> str:
    return os.path.join(dirpath, DATA_NAME)


def write_feature_layout(
    dirpath: str,
    features: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> str:
    """Spill a 2-D feature matrix to ``dirpath`` (created if missing).

    Rows are written in native byte order regardless of the input
    array's (a byte-swapped source is converted chunk by chunk), so the
    file is always directly mappable on the machine that wrote it.
    Returns ``dirpath``.
    """
    features = np.asarray(features)
    if features.ndim != 2:
        raise FeatureLayoutError(
            f"features must be 2-D (rows x dim), got shape {features.shape}"
        )
    if features.dtype.hasobject:
        raise FeatureLayoutError(f"unsupported dtype {features.dtype}")
    if chunk_rows < 1:
        raise FeatureLayoutError("chunk_rows must be >= 1")
    native = features.dtype.newbyteorder("=")
    os.makedirs(dirpath, exist_ok=True)
    with open(data_path(dirpath), "wb") as fh:
        for lo in range(0, features.shape[0], int(chunk_rows)):
            chunk = np.ascontiguousarray(
                features[lo : lo + int(chunk_rows)], dtype=native
            )
            fh.write(chunk.tobytes())
    manifest = {
        "format_version": FORMAT_VERSION,
        "dtype": np.dtype(native).str,
        "shape": [int(features.shape[0]), int(features.shape[1])],
        "chunk_rows": int(chunk_rows),
        "byte_order": _byte_order_name(np.dtype(native)),
        "nbytes": int(features.shape[0] * features.shape[1] * native.itemsize),
    }
    with open(manifest_path(dirpath), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return dirpath


def _byte_order_name(dt: np.dtype) -> str:
    """``"little"`` / ``"big"`` for multi-byte dtypes, ``"na"`` for 1-byte."""
    order = dt.byteorder
    if order == "=":
        order = "<" if sys.byteorder == "little" else ">"
    return {"<": "little", ">": "big", "|": "na"}[order]


def read_manifest(dirpath: str) -> dict:
    """Load and fully validate ``manifest.json`` (no data is read yet).

    Returns the manifest dict with ``dtype`` resolved to a ``np.dtype``
    and ``shape`` to a tuple.  Raises :class:`FeatureLayoutError` on any
    missing, malformed, or internally inconsistent field.
    """
    path = manifest_path(dirpath)
    if not os.path.exists(path):
        raise FeatureLayoutError(
            f"no feature layout at {dirpath!r}: missing {MANIFEST_NAME}"
        )
    try:
        with open(path) as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise FeatureLayoutError(f"unreadable manifest {path!r}: {exc}")
    if not isinstance(raw, dict):
        raise FeatureLayoutError(f"manifest {path!r} must be a JSON object")
    missing = {"format_version", "dtype", "shape", "byte_order", "nbytes"} - set(raw)
    if missing:
        raise FeatureLayoutError(
            f"manifest {path!r} missing fields {sorted(missing)}"
        )
    if raw["format_version"] != FORMAT_VERSION:
        raise FeatureLayoutError(
            f"unsupported feature layout format version "
            f"{raw['format_version']!r} (this build reads {FORMAT_VERSION})"
        )
    try:
        dt = np.dtype(raw["dtype"])
    except TypeError as exc:
        raise FeatureLayoutError(
            f"manifest dtype {raw['dtype']!r} is not a NumPy dtype: {exc}"
        )
    if dt.hasobject:
        raise FeatureLayoutError(f"manifest dtype {raw['dtype']!r} unsupported")
    shape = raw["shape"]
    if (
        not isinstance(shape, (list, tuple))
        or len(shape) != 2
        or not all(isinstance(s, int) and s >= 0 for s in shape)
    ):
        raise FeatureLayoutError(
            f"manifest shape {shape!r} must be two non-negative integers"
        )
    shape = (int(shape[0]), int(shape[1]))
    declared_order = raw["byte_order"]
    if declared_order != _byte_order_name(dt):
        raise FeatureLayoutError(
            f"manifest byte_order {declared_order!r} contradicts dtype "
            f"{raw['dtype']!r} ({_byte_order_name(dt)}): refusing to guess "
            "which one describes the file"
        )
    if not dt.isnative:
        raise FeatureLayoutError(
            f"feature file is {declared_order}-endian ({raw['dtype']!r}) but "
            f"this machine is {sys.byteorder}-endian: mapping it would "
            "silently misread every row — rewrite the layout with "
            "write_feature_layout on this machine"
        )
    expected = shape[0] * shape[1] * dt.itemsize
    if raw["nbytes"] != expected:
        raise FeatureLayoutError(
            f"manifest nbytes {raw['nbytes']} does not match shape "
            f"{shape} x dtype {raw['dtype']!r} ({expected} bytes)"
        )
    out = dict(raw)
    out["dtype"] = dt
    out["shape"] = shape
    return out


def open_feature_layout(dirpath: str) -> Tuple[np.memmap, dict]:
    """Map the feature file read-only; returns ``(memmap, manifest)``.

    The actual file size is checked against the manifest before the map
    is created — a truncated or overgrown file fails loudly instead of
    serving garbage rows (or segfaulting on a page past EOF).
    """
    manifest = read_manifest(dirpath)
    path = data_path(dirpath)
    if not os.path.exists(path):
        raise FeatureLayoutError(
            f"manifest present but feature file missing: {path!r}"
        )
    actual = os.path.getsize(path)
    if actual != manifest["nbytes"]:
        raise FeatureLayoutError(
            f"feature file {path!r} is {actual} bytes, manifest declares "
            f"{manifest['nbytes']} (shape {manifest['shape']}, dtype "
            f"{np.dtype(manifest['dtype']).str!r}): the file is truncated "
            "or was written with a different layout"
        )
    if manifest["nbytes"] == 0:
        # np.memmap refuses zero-length maps; an empty matrix is still valid
        empty = np.zeros(manifest["shape"], dtype=manifest["dtype"])
        empty.flags.writeable = False
        return empty, manifest
    mm = np.memmap(
        path, dtype=manifest["dtype"], mode="r", shape=manifest["shape"]
    )
    return mm, manifest
