"""Distributed mini-batch training — an executable Dist-DGL stand-in.

Dist-DGL (the paper's comparator in Tables 7–9) trains with data-parallel
neighbourhood sampling: training vertices are split across ranks, each
rank samples its batches against the full graph, fetches the features of
sampled frontier vertices from their owning rank ("it holds the vertex
features in a distributed data server which can be queried for data
access"), and gradients are AllReduced per mini-batch.

This module executes that pipeline on the simulated world so its
communication volume and work can be measured next to DistGNN's —
completing the Table 9 comparison with counted rather than modelled
traffic.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.comm.collectives import all_reduce
from repro.comm.communicator import World
from repro.core.config import TrainConfig
from repro.core.metrics import EpochStats, TrainResult
from repro.graph.csr import INDEX_DTYPE
from repro.graph.datasets import Dataset
from repro.nn import Adam, GraphSAGE, SGD, Tensor, accuracy, masked_cross_entropy
from repro.sampling.sampler import NeighborSampler


class DistMiniBatchTrainer:
    """Data-parallel sampled training over a simulated world."""

    def __init__(
        self,
        dataset: Dataset,
        num_ranks: int,
        fanouts: Sequence[int],
        batch_size: int = 512,
        config: Optional[TrainConfig] = None,
        feature_store=None,
    ):
        from repro.featurestore import FeatureStore

        self.dataset = dataset
        self.config = config or TrainConfig().for_dataset(dataset.name)
        # the simulated Dist-DGL feature server reads through the store
        # (resident default = direct dataset slicing, bit-identical)
        self.feature_store = (
            feature_store
            if feature_store is not None
            else FeatureStore.resident(dataset.features)
        )
        cfg = self.config
        if len(fanouts) != cfg.num_layers:
            raise ValueError("need one fanout per layer")
        self.num_ranks = num_ranks
        self.batch_size = int(batch_size)
        self.world = World(num_ranks)
        #: feature ownership: vertex -> owning rank (hash distribution, the
        #: Dist-DGL feature-server layout).
        self.owner = (
            np.arange(dataset.num_vertices, dtype=INDEX_DTYPE) % num_ranks
        )
        self.samplers = [
            NeighborSampler(dataset.graph, fanouts, seed=cfg.seed + 31 * r)
            for r in range(num_ranks)
        ]
        self.models = [
            GraphSAGE(
                in_features=dataset.feature_dim,
                hidden_features=cfg.hidden_features,
                num_classes=dataset.num_classes,
                num_layers=cfg.num_layers,
                seed=cfg.seed,
                kernel=cfg.kernel,
            )
            for _ in range(num_ranks)
        ]
        self.optimizers = [self._make_optimizer(m) for m in self.models]
        rng = np.random.default_rng(cfg.seed + 7)
        train = np.flatnonzero(dataset.train_mask)
        shuffled = rng.permutation(train)
        #: per-rank training shards (equal split, Dist-DGL style).
        self.shards: List[np.ndarray] = np.array_split(shuffled, num_ranks)
        self.rng = np.random.default_rng(cfg.seed + 13)

    def _make_optimizer(self, model):
        cfg = self.config
        if cfg.optimizer == "adam":
            return Adam(
                model.parameters(), lr=cfg.learning_rate,
                weight_decay=cfg.weight_decay,
            )
        return SGD(
            model.parameters(), lr=cfg.learning_rate,
            momentum=cfg.momentum, weight_decay=cfg.weight_decay,
        )

    # -- feature fetch accounting ---------------------------------------------------

    def _fetch_features(self, rank: int, vertices: np.ndarray) -> np.ndarray:
        """Read input features, counting remote fetches as communication."""
        remote = vertices[self.owner[vertices] != rank]
        if remote.size:
            d = self.dataset.feature_dim
            owners = self.owner[remote]
            counts = np.bincount(owners, minlength=self.num_ranks)
            for owner_rank, cnt in enumerate(counts.tolist()):
                if cnt and owner_rank != rank:
                    self.world.counters.record_p2p(
                        owner_rank, rank, int(cnt) * d * 4
                    )
        return self.feature_store.gather(vertices)

    # -- lockstep epoch -----------------------------------------------------------

    def train_epoch(self, epoch: int) -> EpochStats:
        ds, cfg = self.dataset, self.config
        t0 = time.perf_counter()
        counters_before = self.world.counters.snapshot()
        offsets = [self.rng.permutation(shard) for shard in self.shards]
        steps = max(
            -(-shard.size // self.batch_size) for shard in self.shards
        )
        losses = []
        for step in range(steps):
            grads_ready = False
            for rank in range(self.num_ranks):
                shard = offsets[rank]
                lo = step * self.batch_size
                seeds = shard[lo : lo + self.batch_size]
                model = self.models[rank]
                model.zero_grad()
                if seeds.size == 0:
                    continue
                batch = self.samplers[rank].sample(seeds)
                h = Tensor(self._fetch_features(rank, batch.input_vertices))
                for layer, block in zip(model.layers, batch.blocks):
                    z = layer.aggregate(block.graph, h)
                    h_self = _row_slice(h, block.num_dst)
                    h = layer.combine(z, h_self, Tensor(block.norm()))
                loss = masked_cross_entropy(h, ds.labels[batch.seeds])
                loss.backward()
                losses.append(float(loss.data))
                grads_ready = True
            if grads_ready:
                self._allreduce_step()
        self.world.advance_epoch()
        delta = self.world.counters.delta_since(counters_before)
        return EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            total_time_s=time.perf_counter() - t0,
            comm_bytes=delta.total_bytes,
        )

    def _allreduce_step(self) -> None:
        param_lists = [m.parameters() for m in self.models]
        for i in range(len(param_lists[0])):
            grads = [
                pl[i].grad if pl[i].grad is not None else np.zeros_like(pl[i].data)
                for pl in param_lists
            ]
            reduced = all_reduce(self.world, grads, op="mean")
            for pl, g in zip(param_lists, reduced):
                pl[i].grad = g
        for opt in self.optimizers:
            opt.step()

    def evaluate(self) -> dict:
        from repro.serving.engine import full_graph_forward

        ds = self.dataset
        logits = full_graph_forward(self.models[0], ds.graph, ds.features)
        return {
            "train": accuracy(logits, ds.labels, ds.train_mask),
            "val": accuracy(logits, ds.labels, ds.val_mask),
            "test": accuracy(logits, ds.labels, ds.test_mask),
        }

    def fit(self, num_epochs: int, verbose: bool = False) -> TrainResult:
        result = TrainResult()
        for epoch in range(num_epochs):
            stats = self.train_epoch(epoch)
            result.epochs.append(stats)
            if verbose:
                print(f"epoch {epoch:3d} loss {stats.loss:.4f}")
        final = self.evaluate()
        result.final_test_acc = final["test"]
        result.best_val_acc = final["val"]
        return result


def _row_slice(t: Tensor, n: int) -> Tensor:
    from repro.sampling.minibatch_trainer import _row_slice as impl

    return impl(t, n)
