"""Mini-batch training with neighbourhood sampling.

The paper's comparator (Dist-DGL, Tables 7–9) and its stated future work
("we expect to demonstrate highly scalable DistGNN for mini-batch
training") both revolve around fan-out neighbourhood sampling.  This
package makes that pipeline executable on the same substrates:

- :mod:`repro.sampling.sampler` — fan-out neighbour sampling producing a
  stack of bipartite *message-flow blocks* (frontier -> frontier), the
  structure DGL calls MFGs.
- :mod:`repro.sampling.minibatch_trainer` — mini-batch GraphSAGE training
  over sampled blocks, with the paper's per-hop work accounting attached
  so measured runs can be compared against Table 7's model.
"""

from repro.sampling.sampler import MessageFlowBlock, NeighborSampler, SampledBatch
from repro.sampling.minibatch_trainer import MiniBatchTrainer
from repro.sampling.dist_minibatch import DistMiniBatchTrainer

__all__ = [
    "NeighborSampler",
    "MessageFlowBlock",
    "SampledBatch",
    "MiniBatchTrainer",
    "DistMiniBatchTrainer",
]
