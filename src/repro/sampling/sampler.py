"""Fan-out neighbourhood sampling (the Dist-DGL training mode).

Sampling proceeds from the seed (output) vertices backwards: each hop
draws up to ``fanout`` in-neighbours per frontier vertex from the full
graph and materializes a bipartite **message-flow block** whose rows are
the current frontier and whose columns are the next (larger) frontier.
The source frontier always lists the destination frontier first, so the
GCN self-connection (``z + h`` in the combine step) is a plain row slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.builders import coo_to_csr
from repro.graph.csr import CSRGraph, INDEX_DTYPE


@dataclass
class MessageFlowBlock:
    """One bipartite hop: edges from the src frontier into the dst frontier.

    ``graph`` is a rectangular CSR with ``num_vertices == len(dst_global)``
    rows and ``num_src == len(src_global)`` columns; ``src_global[:len(
    dst_global)] == dst_global`` (self rows lead the source frontier).
    """

    graph: CSRGraph
    src_global: np.ndarray
    dst_global: np.ndarray

    @property
    def num_dst(self) -> int:
        return self.dst_global.size

    @property
    def num_src(self) -> int:
        return self.src_global.size

    @property
    def num_sampled_edges(self) -> int:
        return self.graph.num_edges

    def norm(self) -> np.ndarray:
        """GCN normalizer over sampled degrees: 1 / (deg + 1), column."""
        deg = self.graph.in_degrees().astype(np.float32)
        return (1.0 / (deg + 1.0)).reshape(-1, 1)


@dataclass
class SampledBatch:
    """Blocks ordered input-side first (apply ``blocks[0]`` at layer 0)."""

    seeds: np.ndarray
    blocks: List[MessageFlowBlock]

    @property
    def input_vertices(self) -> np.ndarray:
        """Global ids whose features feed the first layer."""
        return self.blocks[0].src_global

    @property
    def total_sampled_edges(self) -> int:
        return sum(b.num_sampled_edges for b in self.blocks)

    def work_ops(self, feature_dims: Sequence[int]) -> float:
        """Paper Table 7 accounting: sampled edges x feature width per hop."""
        if len(feature_dims) != len(self.blocks):
            raise ValueError("one feature dim per block required")
        return float(
            sum(
                b.num_sampled_edges * d
                for b, d in zip(self.blocks, feature_dims)
            )
        )


class NeighborSampler:
    """Fan-out sampler over a full graph."""

    def __init__(
        self,
        graph: CSRGraph,
        fanouts: Sequence[int],
        seed: int = 0,
    ):
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError("fanouts must be positive, one per layer")
        self.graph = graph
        #: fanouts[i] applies at layer i (innermost = seeds' layer is last).
        self.fanouts = list(fanouts)
        self.rng = np.random.default_rng(seed)

    def sample(self, seeds: np.ndarray) -> SampledBatch:
        """Sample a batch: one block per fanout, seeds outward."""
        seeds = np.unique(np.asarray(seeds, dtype=INDEX_DTYPE))
        if seeds.size == 0:
            raise ValueError("cannot sample an empty seed set")
        blocks_rev: List[MessageFlowBlock] = []
        frontier = seeds
        # iterate output-side inwards; fanouts apply innermost-last
        for fanout in reversed(self.fanouts):
            block = self._sample_hop(frontier, fanout)
            blocks_rev.append(block)
            frontier = block.src_global
        return SampledBatch(seeds=seeds, blocks=list(reversed(blocks_rev)))

    def _sample_hop(self, dst_frontier: np.ndarray, fanout: int) -> MessageFlowBlock:
        g = self.graph
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for v in dst_frontier.tolist():
            nbrs = g.neighbors(v)
            if nbrs.size == 0:
                continue
            if nbrs.size > fanout:
                nbrs = self.rng.choice(nbrs, size=fanout, replace=False)
            src_parts.append(nbrs.astype(INDEX_DTYPE))
            dst_parts.append(np.full(nbrs.size, v, dtype=INDEX_DTYPE))
        if src_parts:
            src = np.concatenate(src_parts)
            dst = np.concatenate(dst_parts)
        else:
            src = np.zeros(0, dtype=INDEX_DTYPE)
            dst = np.zeros(0, dtype=INDEX_DTYPE)
        # source frontier: dst rows first, then newly discovered vertices
        extra = np.setdiff1d(src, dst_frontier)
        src_global = np.concatenate([dst_frontier, extra]).astype(INDEX_DTYPE)
        lookup = {int(gv): i for i, gv in enumerate(src_global.tolist())}
        dst_lookup = {int(gv): i for i, gv in enumerate(dst_frontier.tolist())}
        lsrc = np.array([lookup[int(s)] for s in src], dtype=INDEX_DTYPE)
        ldst = np.array([dst_lookup[int(d)] for d in dst], dtype=INDEX_DTYPE)
        block_graph = coo_to_csr(
            lsrc,
            ldst,
            num_dst=dst_frontier.size,
            num_src=src_global.size,
        )
        return MessageFlowBlock(
            graph=block_graph, src_global=src_global, dst_global=dst_frontier
        )
