"""Mini-batch GraphSAGE training over sampled message-flow blocks.

This is the Dist-DGL-style training mode of Tables 7–9, executable: each
step samples a batch with :class:`~repro.sampling.sampler.NeighborSampler`
and pushes it through the same :class:`~repro.nn.sage.SageConvGCN` layers
full-batch training uses (one block per layer; the self term is the
leading row-slice of the source frontier).  Evaluation runs the trained
weights full-graph, as Dist-DGL does for test accuracy.

Per-block aggregation dispatches through ``TrainConfig.kernel`` exactly
like the full-batch path, so sampled message-flow blocks ride the
vectorized segment-reduce engine too (sampled blocks are rectangular
CSRs, which the engine handles natively).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import TrainConfig
from repro.core.metrics import EpochStats, TrainResult
from repro.featurestore import FeatureStore
from repro.graph.datasets import Dataset
from repro.nn import Adam, GraphSAGE, SGD, Tensor, accuracy, masked_cross_entropy
from repro.sampling.sampler import NeighborSampler, SampledBatch


class MiniBatchTrainer:
    """Sampled training driver (one simulated socket).

    Per-batch feature slicing goes through a
    :class:`~repro.featurestore.FeatureStore` (default: resident over
    ``dataset.features``, bit-identical to direct slicing).  With an
    ``mmap``-tier store the input frontier gathers ride the hot-set
    cache — the access pattern the feature-store benchmark measures as
    ``sampled minibatch``.
    """

    def __init__(
        self,
        dataset: Dataset,
        fanouts: Sequence[int],
        batch_size: int = 512,
        config: Optional[TrainConfig] = None,
        feature_store: Optional[FeatureStore] = None,
    ):
        self.dataset = dataset
        self.config = config or TrainConfig().for_dataset(dataset.name)
        self.feature_store = (
            feature_store
            if feature_store is not None
            else FeatureStore.resident(dataset.features)
        )
        cfg = self.config
        if len(fanouts) != cfg.num_layers:
            raise ValueError("need one fanout per layer")
        self.batch_size = int(batch_size)
        self.sampler = NeighborSampler(dataset.graph, fanouts, seed=cfg.seed)
        self.model = GraphSAGE(
            in_features=dataset.feature_dim,
            hidden_features=cfg.hidden_features,
            num_classes=dataset.num_classes,
            num_layers=cfg.num_layers,
            seed=cfg.seed,
            kernel=cfg.kernel,
        )
        self.optimizer = self._make_optimizer()
        self.rng = np.random.default_rng(cfg.seed + 101)
        self.train_vertices = np.flatnonzero(dataset.train_mask)
        #: cumulative paper-style sampled work (ops).
        self.total_work_ops = 0.0

    def _make_optimizer(self):
        cfg = self.config
        if cfg.optimizer == "adam":
            return Adam(
                self.model.parameters(), lr=cfg.learning_rate,
                weight_decay=cfg.weight_decay,
            )
        if cfg.optimizer == "sgd":
            return SGD(
                self.model.parameters(), lr=cfg.learning_rate,
                momentum=cfg.momentum, weight_decay=cfg.weight_decay,
            )
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    # -- batch forward ------------------------------------------------------------

    def forward_batch(self, batch: SampledBatch) -> Tensor:
        """Push one sampled batch through the layer stack."""
        h = Tensor(self.feature_store.gather(batch.input_vertices))
        for layer, block in zip(self.model.layers, batch.blocks):
            z = layer.aggregate(block.graph, h)
            # self term: dst rows lead the src frontier, so a row slice
            h_self = _row_slice(h, block.num_dst)
            h = layer.combine(z, h_self, Tensor(block.norm()))
        return h

    def train_step(self, seeds: np.ndarray) -> float:
        ds = self.dataset
        batch = self.sampler.sample(seeds)
        dims = [self.dataset.feature_dim] + [
            self.config.hidden_features
        ] * (self.config.num_layers - 1)
        self.total_work_ops += batch.work_ops(dims)
        self.model.zero_grad()
        logits = self.forward_batch(batch)
        loss = masked_cross_entropy(logits, ds.labels[batch.seeds])
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    # -- epoch loop -----------------------------------------------------------------

    def train_epoch(self, epoch: int) -> EpochStats:
        t0 = time.perf_counter()
        order = self.rng.permutation(self.train_vertices)
        losses = []
        for lo in range(0, order.size, self.batch_size):
            seeds = order[lo : lo + self.batch_size]
            if seeds.size == 0:
                continue
            losses.append(self.train_step(seeds))
        return EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            total_time_s=time.perf_counter() - t0,
        )

    def evaluate(self) -> dict:
        """Full-graph inference with the trained weights (the single
        inference path shared with the serving tier)."""
        from repro.serving.engine import full_graph_forward

        ds = self.dataset
        logits = full_graph_forward(
            self.model, ds.graph, self.feature_store.matrix()
        )
        return {
            "train": accuracy(logits, ds.labels, ds.train_mask),
            "val": accuracy(logits, ds.labels, ds.val_mask),
            "test": accuracy(logits, ds.labels, ds.test_mask),
        }

    def fit(self, num_epochs: int, verbose: bool = False) -> TrainResult:
        result = TrainResult()
        for epoch in range(num_epochs):
            stats = self.train_epoch(epoch)
            result.epochs.append(stats)
            if verbose and epoch % 5 == 0:
                accs = self.evaluate()
                print(
                    f"epoch {epoch:3d} loss {stats.loss:.4f} "
                    f"test {accs['test']:.4f}"
                )
        final = self.evaluate()
        result.final_test_acc = final["test"]
        result.best_val_acc = final["val"]
        return result


def _row_slice(t: Tensor, n: int) -> Tensor:
    """Differentiable leading-row slice ``t[:n]``."""
    from repro.nn.functional import _make

    data = t.data[:n]

    def backward(g):
        full = np.zeros_like(t.data)
        full[:n] = g
        return (full,)

    return _make(data, (t,), backward, "row_slice")
