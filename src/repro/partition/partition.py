"""Partition data structures (paper Section 5.2).

A partition holds every edge assigned to it plus a *local* copy of each
endpoint vertex.  Vertices present in several partitions are
*split-vertices*; each clone owns its own feature rows and participates in
local aggregation, and the clones synchronize through the trees of
:mod:`repro.partition.tree`.

Local IDs are consecutive within a partition, and the global
``vertex_map`` records each partition's range so that a (partition,
local-id) pair — or equivalently a single *unified* id — pinpoints any
clone, exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.builders import coo_to_csr
from repro.graph.csr import CSRGraph, INDEX_DTYPE


@dataclass
class GraphPartition:
    """One partition: local CSR graph + local<->global vertex maps."""

    part_id: int
    #: local id -> global id (sorted ascending, enabling binary search).
    global_ids: np.ndarray
    #: local destination-major CSR; ``graph.edge_ids`` are **global** edge
    #: ids so global edge-feature matrices can be gathered directly.
    graph: CSRGraph

    @property
    def num_vertices(self) -> int:
        return self.global_ids.size

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def local_of(self, global_vertices: np.ndarray) -> np.ndarray:
        """Translate global vertex ids to local ids (must be present)."""
        gv = np.asarray(global_vertices, dtype=INDEX_DTYPE)
        idx = np.searchsorted(self.global_ids, gv)
        ok = (idx < self.global_ids.size) & (
            self.global_ids[np.minimum(idx, self.global_ids.size - 1)] == gv
        )
        if not np.all(ok):
            missing = gv[~ok]
            raise KeyError(f"vertices not in partition {self.part_id}: {missing[:5]}")
        return idx.astype(INDEX_DTYPE)

    def contains(self, global_vertices: np.ndarray) -> np.ndarray:
        gv = np.asarray(global_vertices, dtype=INDEX_DTYPE)
        idx = np.searchsorted(self.global_ids, gv)
        return (idx < self.global_ids.size) & (
            self.global_ids[np.minimum(idx, self.global_ids.size - 1)] == gv
        )


@dataclass
class PartitionedGraph:
    """The full vertex-cut partitioning of a graph."""

    graph: CSRGraph
    num_partitions: int
    #: edge id -> partition.
    assignment: np.ndarray
    parts: List[GraphPartition]
    #: ``(num_partitions + 1,)`` offsets of the consecutive local-id ranges
    #: (the paper's ``vertex_map``): unified id of (p, local) =
    #: ``vertex_map[p] + local``.
    vertex_map: np.ndarray
    #: boolean ``(num_global_vertices, num_partitions)`` clone membership.
    membership: np.ndarray

    @property
    def split_vertices(self) -> np.ndarray:
        """Global ids of vertices replicated into >= 2 partitions."""
        return np.flatnonzero(self.membership.sum(axis=1) >= 2).astype(INDEX_DTYPE)

    def clones_of(self, global_vertex: int) -> List[Tuple[int, int]]:
        """All ``(partition, local_id)`` clones of a global vertex."""
        out = []
        for p in np.flatnonzero(self.membership[global_vertex]):
            part = self.parts[p]
            out.append((int(p), int(part.local_of(np.array([global_vertex]))[0])))
        return out

    def unified_id(self, part_id: int, local_id: int) -> int:
        """Single integer id of a clone (paper Section 5.2 local-ID scheme)."""
        return int(self.vertex_map[part_id] + local_id)

    def locate(self, unified_id: int) -> Tuple[int, int]:
        """Inverse of :meth:`unified_id` via the vertex_map."""
        p = int(np.searchsorted(self.vertex_map, unified_id, side="right") - 1)
        return p, int(unified_id - self.vertex_map[p])

    @property
    def replication_factor(self) -> float:
        """Average clones per present vertex (paper Table 4 metric)."""
        clones = self.membership.sum(axis=1)
        present = clones > 0
        return float(clones[present].mean()) if present.any() else 0.0


def build_partitions(
    graph: CSRGraph,
    assignment: np.ndarray,
    num_partitions: int,
    include_isolated: bool = True,
) -> PartitionedGraph:
    """Materialize partition structures from an edge assignment.

    Parameters
    ----------
    assignment:
        ``(num_edges,)`` partition per **edge id** (from
        :func:`repro.partition.libra.libra_partition` or a baseline).
    include_isolated:
        Vertices with no edges are absent from every partition under a pure
        edge distribution; training still needs their features/labels, so
        by default they are dealt round-robin to partitions.
    """
    assignment = np.asarray(assignment, dtype=INDEX_DTYPE)
    if assignment.size != graph.num_edges:
        raise ValueError("assignment must map every edge")
    if assignment.size and (
        assignment.min() < 0 or assignment.max() >= num_partitions
    ):
        raise ValueError("assignment references an out-of-range partition")

    src, dst, eid = graph.to_coo()
    parts_of_edges = assignment[eid]
    n = max(graph.num_vertices, graph.num_src)

    membership = np.zeros((n, num_partitions), dtype=bool)
    membership[src, parts_of_edges] = True
    membership[dst, parts_of_edges] = True
    if include_isolated:
        isolated = np.flatnonzero(~membership.any(axis=1))
        if isolated.size:
            membership[isolated, isolated % num_partitions] = True

    parts: List[GraphPartition] = []
    offsets = np.zeros(num_partitions + 1, dtype=INDEX_DTYPE)
    for p in range(num_partitions):
        global_ids = np.flatnonzero(membership[:, p]).astype(INDEX_DTYPE)
        emask = parts_of_edges == p
        lsrc = np.searchsorted(global_ids, src[emask])
        ldst = np.searchsorted(global_ids, dst[emask])
        local = coo_to_csr(
            lsrc,
            ldst,
            num_dst=global_ids.size,
            num_src=global_ids.size,
            edge_ids=eid[emask],
        )
        parts.append(GraphPartition(part_id=p, global_ids=global_ids, graph=local))
        offsets[p + 1] = offsets[p] + global_ids.size

    return PartitionedGraph(
        graph=graph,
        num_partitions=num_partitions,
        assignment=assignment,
        parts=parts,
        vertex_map=offsets,
        membership=membership,
    )
