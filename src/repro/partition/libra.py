"""Libra vertex-cut partitioner.

Libra (Xie et al. [32] in the paper) "works on a simple principle ... it
partitions the edges by assigning them to the least-loaded relevant
(based on edge vertices) partition" (Section 5.1).  Concretely, for each
edge ``(u, v)`` in turn:

1. if some partition already holds both ``u`` and ``v``, pick the
   least-loaded such partition (no new replica);
2. else if partitions hold ``u`` or ``v``, pick the least-loaded among
   them (one new replica);
3. else pick the globally least-loaded partition (two new replicas).

Load is the partition's edge count, which is why Libra "produces highly
balanced partitions in terms of the number of edges" despite having no
hard balance constraint (Section 6.3).

Membership is tracked as a dense boolean matrix ``(num_vertices,
num_partitions)`` so each step is a couple of NumPy row reads; the edge
loop itself is sequential because each decision depends on all previous
ones (the algorithm is inherently streaming).  The loop lives in
:class:`repro.dyngraph.ingest.LibraState` — this batch entry point is a
replay of the streaming state over one (optionally shuffled) edge
sequence, so streaming-vs-batch equivalence holds by construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dyngraph.ingest import LibraState
from repro.graph.csr import CSRGraph, INDEX_DTYPE


def libra_partition(
    graph: CSRGraph,
    num_partitions: int,
    seed: Optional[int] = 0,
    shuffle_edges: bool = True,
) -> np.ndarray:
    """Assign every edge of ``graph`` to a partition.

    Parameters
    ----------
    graph:
        Input graph (edges taken in CSR order unless shuffled).
    num_partitions:
        Number of partitions (sockets).
    seed:
        Seed for the edge-order shuffle and tie-breaking.
    shuffle_edges:
        Stream edges in random order (reduces order artifacts; Libra's
        greedy rule is order-sensitive).

    Returns
    -------
    ``(num_edges,)`` int array: partition of each edge, indexed by the
    graph's **edge id** (so the assignment composes with any CSR reorder).
    """
    p = int(num_partitions)
    if p < 1:
        raise ValueError("num_partitions must be >= 1")
    src, dst, eid = graph.to_coo()
    m = src.size
    assignment = np.zeros(graph.num_edges, dtype=INDEX_DTYPE)
    if p == 1 or m == 0:
        return assignment

    rng = np.random.default_rng(seed)
    order = rng.permutation(m) if shuffle_edges else np.arange(m)

    n = max(graph.num_vertices, graph.num_src)
    state = LibraState(n, p, seed=seed)
    # Tiny random tie-break noise keeps argmin from always favouring low
    # ids.  Drawn from *this* generator, after the permutation, so the
    # historical RNG stream (and every shuffled assignment ever
    # produced) is preserved; without a shuffle the permutation is never
    # drawn and this equals the state's own first-draw tie.
    state.tie = rng.random(p) * 1e-9
    assignment[eid[order]] = state.assign(src[order], dst[order])
    return assignment


def replication_factor_of_assignment(
    graph: CSRGraph, assignment: np.ndarray, num_partitions: int
) -> float:
    """Average clones per present vertex (paper Table 4 metric)."""
    src, dst, eid = graph.to_coo()
    parts = assignment[eid]
    n = max(graph.num_vertices, graph.num_src)
    member = np.zeros((n, num_partitions), dtype=bool)
    member[src, parts] = True
    member[dst, parts] = True
    clones = member.sum(axis=1)
    present = clones > 0
    if not present.any():
        return 0.0
    return float(clones[present].mean())
