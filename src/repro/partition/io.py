"""Persistence for partitionings.

Partitioning OGBN-Papers takes the paper minutes; production workflows
partition once and train many times.  A saved partitioning stores the
original graph, the edge assignment, and the partition count — the
partition structures are rebuilt deterministically on load (they are a
pure function of those three inputs).
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import load_graph, save_graph
from repro.partition.partition import PartitionedGraph, build_partitions


def save_partitioning(path: str, parted: PartitionedGraph) -> None:
    """Save a partitioning (graph + assignment) to ``path`` (npz)."""
    save_graph(
        path,
        parted.graph,
        partition_assignment=parted.assignment,
        num_partitions=np.asarray(parted.num_partitions),
    )


def load_partitioning(path: str, include_isolated: bool = True) -> PartitionedGraph:
    """Load and rebuild a partitioning saved by :func:`save_partitioning`."""
    graph, extras = load_graph(path)
    if "partition_assignment" not in extras:
        raise ValueError(f"{path!r} does not contain a partitioning")
    assignment = extras["partition_assignment"]
    num_partitions = int(extras["num_partitions"])
    return build_partitions(
        graph, assignment, num_partitions, include_isolated=include_isolated
    )
