"""Vertex-cut graph partitioning (paper Section 5.1–5.2).

DistGNN distributes *edges* across partitions (vertex-cut): every edge
lives in exactly one partition while a vertex may be replicated ("split")
into clones across several.  The partitioner of record is Libra — greedy
assignment of each edge to the least-loaded partition already containing
one of its endpoints — which the paper shows yields balanced partitions
and low replication factors on power-law graphs (Table 4).

- :mod:`repro.partition.libra` — the Libra partitioner.
- :mod:`repro.partition.baselines` — random / hash edge-cut baselines for
  the partitioner ablation.
- :mod:`repro.partition.partition` — partition data structures: local and
  global IDs, the ``vertex_map`` locating any local ID, split-vertex clone
  lists (paper Section 5.2).
- :mod:`repro.partition.tree` — the 1-level root/leaves trees coordinating
  split-vertex communication in Alg. 4.
- :mod:`repro.partition.stats` — replication factor and balance metrics.

Libra's greedy rule is inherently streaming, so it also runs online:
:class:`~repro.dyngraph.ingest.LibraState` (re-exported here) assigns
partitions to edges as they arrive, byte-equal to a batch replay.
"""

from repro.dyngraph.ingest import LibraState, streaming_libra_partition
from repro.partition.baselines import hash_edge_partition, random_edge_partition
from repro.partition.io import load_partitioning, save_partitioning
from repro.partition.libra import libra_partition
from repro.partition.partition import (
    GraphPartition,
    PartitionedGraph,
    build_partitions,
)
from repro.partition.stats import PartitionStats, partition_stats
from repro.partition.tree import SplitVertexTree, build_split_trees

__all__ = [
    "libra_partition",
    "LibraState",
    "streaming_libra_partition",
    "random_edge_partition",
    "hash_edge_partition",
    "GraphPartition",
    "PartitionedGraph",
    "build_partitions",
    "SplitVertexTree",
    "build_split_trees",
    "PartitionStats",
    "partition_stats",
    "save_partitioning",
    "load_partitioning",
]
