"""Baseline edge partitioners for the partitioner ablation.

These show *why* DistGNN uses Libra: random edge placement balances load
perfectly but replicates heavily (every hub vertex appears nearly
everywhere), inflating communication volume; source-hash placement keeps
each vertex's out-edges together but loses balance on power-law graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE


def random_edge_partition(
    graph: CSRGraph, num_partitions: int, seed: Optional[int] = 0
) -> np.ndarray:
    """Uniformly random edge assignment (perfect balance, worst replication)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_partitions, size=graph.num_edges, dtype=INDEX_DTYPE)


def hash_edge_partition(
    graph: CSRGraph, num_partitions: int, by: str = "src"
) -> np.ndarray:
    """Hash an endpoint to pick the partition.

    ``by="src"`` groups each vertex's out-edges (1D partitioning in the
    CAGNET taxonomy); ``by="dst"`` groups in-edges.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    src, dst, eid = graph.to_coo()
    key = {"src": src, "dst": dst}.get(by)
    if key is None:
        raise ValueError(f"by must be 'src' or 'dst', got {by!r}")
    assignment = np.zeros(graph.num_edges, dtype=INDEX_DTYPE)
    # Knuth multiplicative hash keeps consecutive ids from clustering.
    hashed = (key.astype(np.uint64) * np.uint64(2654435761)) % np.uint64(
        num_partitions
    )
    assignment[eid] = hashed.astype(INDEX_DTYPE)
    return assignment
