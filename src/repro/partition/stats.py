"""Partition-quality metrics (paper Tables 4 and 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.partition import PartitionedGraph


@dataclass(frozen=True)
class PartitionStats:
    """Quality summary of one partitioning."""

    num_partitions: int
    replication_factor: float
    edge_balance: float  # max edges / mean edges, 1.0 = perfect
    vertex_balance: float
    split_vertex_fraction: float  # split vertices / present vertices
    avg_split_fraction_per_partition: float  # paper Table 6 last row
    max_edges: int
    min_edges: int

    def row(self) -> str:
        return (
            f"P={self.num_partitions:<4d} rf={self.replication_factor:5.2f} "
            f"edge_bal={self.edge_balance:5.3f} split%={100 * self.split_vertex_fraction:5.1f}"
        )


def partition_stats(parted: PartitionedGraph) -> PartitionStats:
    """Compute replication factor, balance, and split-vertex shares."""
    edges = np.array([p.num_edges for p in parted.parts], dtype=np.float64)
    verts = np.array([p.num_vertices for p in parted.parts], dtype=np.float64)
    clones = parted.membership.sum(axis=1)
    present = clones > 0
    num_present = int(present.sum())
    split_global = int((clones >= 2).sum())

    # Per-partition fraction of local vertices that are split (Table 6 reports
    # "Split-vertices/partition (%)").
    fractions = []
    split_mask = clones >= 2
    for p in parted.parts:
        if p.num_vertices:
            fractions.append(float(split_mask[p.global_ids].mean()))
    avg_split_frac = float(np.mean(fractions)) if fractions else 0.0

    mean_edges = edges.mean() if edges.size else 0.0
    mean_verts = verts.mean() if verts.size else 0.0
    return PartitionStats(
        num_partitions=parted.num_partitions,
        replication_factor=parted.replication_factor,
        edge_balance=float(edges.max() / mean_edges) if mean_edges else 1.0,
        vertex_balance=float(verts.max() / mean_verts) if mean_verts else 1.0,
        split_vertex_fraction=split_global / num_present if num_present else 0.0,
        avg_split_fraction_per_partition=avg_split_frac,
        max_edges=int(edges.max()) if edges.size else 0,
        min_edges=int(edges.min()) if edges.size else 0,
    )


def communication_volume(
    parted: PartitionedGraph, feature_dim: int, feature_bytes: int = 4
) -> float:
    """Bytes per full split-vertex synchronization round (cd-0).

    Each leaf sends one feature row up and receives one row down, so the
    volume is ``2 * num_leaf_routes * d * bytes``.
    """
    clones = parted.membership.sum(axis=1)
    leaf_routes = int(np.maximum(clones - 1, 0).sum())
    return 2.0 * leaf_routes * feature_dim * feature_bytes
