"""1-level split-vertex trees (paper Section 5.3 / Alg. 4).

For every original vertex that got split, a 1-level tree is built over
its clones: one clone is chosen (randomly) as the **root**, the rest are
**leaves**.  Synchronization of partial aggregates runs leaves -> root
(send partials), root reduces, then root -> leaves (send the final
aggregate back).

``build_split_trees`` also produces, per partition, the index arrays the
communication pre/post-processing steps need: which local rows to gather
into send buffers and which to scatter-reduce receives into — the
"local gather" and "scatter-reduce" operations of Alg. 4 lines 10/14/15/20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import INDEX_DTYPE
from repro.partition.partition import PartitionedGraph


@dataclass(frozen=True)
class SplitVertexTree:
    """Clone tree of one split vertex."""

    global_id: int
    root_part: int
    root_local: int
    #: parallel arrays: partition and local id of each leaf clone.
    leaf_parts: np.ndarray
    leaf_locals: np.ndarray

    @property
    def num_clones(self) -> int:
        return 1 + self.leaf_parts.size


@dataclass
class TreeExchangePlan:
    """Vectorized routing tables for the tree exchanges of one tree set.

    For tree ``t`` with root on partition ``r`` and a leaf on partition
    ``p``, the leaf->root phase sends row ``leaf_local[t]`` from ``p`` to
    ``r`` where it reduces into ``root_local[t]``; root->leaf reverses the
    route.  All four directions are flattened into per-(src_part,
    dst_part) index arrays so each phase is pure fancy-indexing.
    """

    trees: List[SplitVertexTree]
    #: leaf->root routes: arrays of (leaf_part, leaf_local, root_part, root_local)
    leaf_part: np.ndarray
    leaf_local: np.ndarray
    root_part: np.ndarray
    root_local: np.ndarray
    #: tree index of each route (for binning in cd-r).
    tree_index: np.ndarray
    #: total number of split-vertex trees (valid even when the per-tree
    #: objects in ``trees`` are not materialized).
    num_trees: int = 0

    @property
    def num_routes(self) -> int:
        return self.leaf_part.size

    def routes_between(self, src_part: int, dst_part: int) -> np.ndarray:
        """Route indices for messages from ``src_part`` to ``dst_part``
        in the leaf->root direction."""
        return np.flatnonzero(
            (self.leaf_part == src_part) & (self.root_part == dst_part)
        )

    def select(self, route_indices: np.ndarray) -> "TreeExchangePlan":
        """Sub-plan containing only the given routes (used for binning)."""
        return TreeExchangePlan(
            trees=self.trees,
            leaf_part=self.leaf_part[route_indices],
            leaf_local=self.leaf_local[route_indices],
            root_part=self.root_part[route_indices],
            root_local=self.root_local[route_indices],
            tree_index=self.tree_index[route_indices],
            num_trees=self.num_trees,
        )


def build_split_trees(
    parted: PartitionedGraph, seed: Optional[int] = 0, build_tree_objects: bool = True
) -> TreeExchangePlan:
    """Build the 1-level trees and their flattened exchange plan.

    Roots are drawn uniformly among each vertex's clones ("we randomly
    assign one of its split-vertices as the root", Section 5.3).  The whole
    construction is vectorized over the (split-vertex, clone) pair list so
    large partitionings (hundreds of thousands of split vertices) build in
    milliseconds.
    """
    rng = np.random.default_rng(seed)
    split = parted.split_vertices
    if split.size == 0:
        empty = np.zeros(0, dtype=INDEX_DTYPE)
        return TreeExchangePlan(
            trees=[], leaf_part=empty, leaf_local=empty,
            root_part=empty, root_local=empty, tree_index=empty, num_trees=0,
        )
    sub = parted.membership[split]  # (num_split, P)
    rows, cols = np.nonzero(sub)  # clone pairs, row-major (sorted by tree)
    counts = sub.sum(axis=1)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(INDEX_DTYPE)
    choice = rng.integers(0, counts)
    root_pos = offsets[:-1] + choice
    root_parts = cols[root_pos].astype(INDEX_DTYPE)

    # Local ids of every clone pair, translated in one batch per partition.
    pair_local = np.empty(rows.size, dtype=INDEX_DTYPE)
    for p in range(parted.num_partitions):
        mask = cols == p
        if mask.any():
            pair_local[mask] = np.searchsorted(
                parted.parts[p].global_ids, split[rows[mask]]
            )
    root_locals = pair_local[root_pos]

    leaf_mask = np.ones(rows.size, dtype=bool)
    leaf_mask[root_pos] = False
    leaf_rows = rows[leaf_mask]
    lp = cols[leaf_mask].astype(INDEX_DTYPE)
    ll = pair_local[leaf_mask]
    rp = root_parts[leaf_rows]
    rl = root_locals[leaf_rows]
    ti = leaf_rows.astype(INDEX_DTYPE)

    trees: List[SplitVertexTree] = []
    if build_tree_objects:
        leaf_offsets = np.concatenate([[0], np.cumsum(counts - 1)]).astype(
            INDEX_DTYPE
        )
        for t in range(split.size):
            lo, hi = leaf_offsets[t], leaf_offsets[t + 1]
            trees.append(
                SplitVertexTree(
                    global_id=int(split[t]),
                    root_part=int(root_parts[t]),
                    root_local=int(root_locals[t]),
                    leaf_parts=lp[lo:hi],
                    leaf_locals=ll[lo:hi],
                )
            )

    return TreeExchangePlan(
        trees=trees,
        leaf_part=lp,
        leaf_local=ll,
        root_part=rp,
        root_local=rl,
        tree_index=ti,
        num_trees=int(split.size),
    )


def bin_routes(plan: TreeExchangePlan, num_bins: int) -> List[TreeExchangePlan]:
    """Split the exchange plan into ``r`` bins by tree (Alg. 4 lines 3–6).

    cd-r communicates one bin per epoch ("Communication can be further
    reduced by involving only a subset of split-vertices (through binning)
    in each epoch").  Binning by *tree* keeps each split vertex's full
    leaf set in one bin so a root reduction always sees all partials.
    """
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    bins = []
    num_trees = plan.num_trees
    if num_trees == 0:
        return [plan.select(np.zeros(0, dtype=np.int64)) for _ in range(num_bins)]
    for b in range(num_bins):
        # Trees are dealt contiguously, mirroring S_i <- {T_{i*k} ... T_{(i+1)*k}}.
        k = -(-num_trees // num_bins)
        lo, hi = b * k, min((b + 1) * k, num_trees)
        routes = np.flatnonzero((plan.tree_index >= lo) & (plan.tree_index < hi))
        bins.append(plan.select(routes))
    return bins
