"""Loop-reordered, bucketed aggregation — paper Algorithm 3.

LIBXSMM's contribution in the paper is (a) reordering the loop so each
``f_O[v]`` row is finalized once per block and (b) JITed SIMD inner
kernels.  The NumPy analogue of (b) lives in
:mod:`repro.kernels.vectorized`; this module contributes (a): it walks
destination rows in cache-sized *buckets* and runs each bucket through
the shared vectorized inner kernel (:func:`~repro.kernels.vectorized.segment_pass`),
so the per-edge message intermediate is bounded by the bucket's edge
count instead of the whole graph's.

- the *fast path* (``copylhs`` with an add-accumulating ``⊕``, the GNN
  workhorse) lowers to a sparse-matrix-times-dense-matrix product with no
  per-edge intermediate;
- the *general path* materializes per-edge messages one bucket at a time
  and segment-reduces them, keeping the working set cache-sized (the
  "loop reordering" half of Alg. 3).

Both paths produce bit-identical results to :mod:`repro.kernels.baseline`
for ``sum`` up to floating-point associativity, which the test suite pins
with tolerances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.vectorized import aggregate_vectorized

#: Rows processed per bucket on the general path; bounds the per-edge message
#: intermediate to roughly (bucket_avg_degree * CHUNK_ROWS, d) floats.
DEFAULT_CHUNK_ROWS = 8192


def aggregate_reordered(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
    out: Optional[np.ndarray] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Bucketed AP over the vectorized inner kernel (Alg. 3 analogue).

    Identical semantics to :func:`~repro.kernels.vectorized.aggregate_vectorized`
    (including the ``out=`` accumulate-without-finalize contract); the only
    difference is the bounded ``chunk_rows`` bucket size.
    """
    return aggregate_vectorized(
        graph,
        f_v,
        f_e,
        binary_op=binary_op,
        reduce_op=reduce_op,
        out=out,
        row_chunk=chunk_rows,
    )
