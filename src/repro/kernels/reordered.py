"""Loop-reordered, vectorized aggregation — paper Algorithm 3.

LIBXSMM's contribution in the paper is (a) reordering the loop so each
``f_O[v]`` row is finalized once per block and (b) JITed SIMD inner
kernels.  The NumPy analogue is to express the whole inner loop as
full-feature-width array operations:

- the *fast path* (``copylhs``/``sum``, the GNN workhorse) lowers to a
  sparse-matrix-times-dense-matrix product with no per-edge intermediate;
- the *general path* materializes per-edge messages in bounded row chunks
  and segment-reduces them, keeping the working set cache-sized (the
  "loop reordering" half of Alg. 3).

Both paths produce bit-identical results to :mod:`repro.kernels.baseline`
for ``sum`` up to floating-point associativity, which the test suite pins
with tolerances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.operators import (
    finalize_output,
    get_binary_op,
    get_reduce_op,
    init_output,
)
from repro.kernels.baseline import _feature_dim, _feature_dtype
from repro.kernels.segment import segment_reduce

#: Rows processed per chunk on the general path; bounds the per-edge message
#: intermediate to roughly (chunk_avg_degree * CHUNK_ROWS, d) floats.
DEFAULT_CHUNK_ROWS = 8192


def aggregate_reordered(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
    out: Optional[np.ndarray] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Vectorized AP with full-width inner kernels (Alg. 3 analogue)."""
    bop = get_binary_op(binary_op)
    rop = get_reduce_op(reduce_op)
    dim = _feature_dim(f_v, f_e)
    dtype = _feature_dtype(f_v, f_e)
    created = out is None
    if created:
        out = init_output(graph.num_vertices, dim, rop, dtype)

    if bop.name == "copylhs" and rop.name == "sum":
        _spmm_fast_path(graph, f_v, out)
    else:
        _general_path(graph, f_v, f_e, bop, rop, out, chunk_rows)
    if created:
        finalize_output(out, rop)
    return out


def _spmm_fast_path(graph: CSRGraph, f_v: np.ndarray, out: np.ndarray) -> None:
    """``f_O += A @ f_V`` via scipy's compiled CSR kernel."""
    adj = graph.to_scipy()
    out += adj @ f_v


def _general_path(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray],
    bop,
    rop,
    out: np.ndarray,
    chunk_rows: int,
) -> None:
    indptr, indices, eids = graph.indptr, graph.indices, graph.edge_ids
    n = graph.num_vertices
    chunk_rows = max(int(chunk_rows), 1)
    for row_lo in range(0, n, chunk_rows):
        row_hi = min(row_lo + chunk_rows, n)
        lo, hi = indptr[row_lo], indptr[row_hi]
        if lo == hi:
            continue
        lhs = f_v[indices[lo:hi]] if bop.uses_lhs else None
        rhs = f_e[eids[lo:hi]] if bop.uses_rhs else None
        msg = bop(lhs, rhs)
        local_indptr = indptr[row_lo : row_hi + 1] - lo
        segment_reduce(msg, local_indptr, rop, out[row_lo:row_hi])
