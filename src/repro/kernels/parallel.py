"""Multi-threaded kernel execution engine.

The paper's single-socket speedups (Fig. 2/4) come from parallelizing
the aggregation primitive across *destination* vertices with OpenMP
static/dynamic scheduling.  :mod:`repro.kernels.scheduling` simulates
those policies to quantify load imbalance; this module actually runs
them: the vectorized inner kernel
(:func:`repro.kernels.vectorized.segment_pass`) is executed over
disjoint destination-row chunks on a thread pool.

Why this is race-free and bit-identical to the single-threaded engine:

- **Disjoint output rows.**  Every chunk is a contiguous destination-row
  range ``[lo, hi)``; chunk boundaries align with CSR row boundaries, so
  two threads never touch the same ``out`` row — no synchronization is
  needed (the same argument the paper uses for blocking ``f_V`` instead
  of ``f_O``, Section 4.2).
- **Row-local arithmetic.**  A row's reduction only ever combines that
  row's own messages, in CSR storage order, regardless of how rows are
  grouped into chunks.  The result is therefore *bit-identical* to
  ``aggregate_vectorized`` for every ``⊗``/``⊕`` pair, any thread count,
  and any chunking policy — pinned by ``tests/kernels/test_parallel.py``.

NumPy/scipy release the GIL inside their compiled loops (gather, ufunc,
``reduceat``, CSR SpMM), so plain Python threads give genuine hardware
parallelism without forking.

Chunking policies (``schedule=``), mirroring the simulator:

- ``static``   — ``num_threads`` equal-*count* contiguous ranges
  (OpenMP ``schedule(static)``).
- ``dynamic``  — a work-queue of fixed ``chunk_rows``-sized chunks; idle
  threads pull the next chunk (OpenMP ``schedule(dynamic, chunk)``).
- ``balanced`` — ``num_threads`` equal-*work* contiguous ranges, cut at
  prefix-sum quantiles of :func:`~repro.kernels.scheduling.per_destination_work`
  (degree-aware static, what dynamic converges to on power-law graphs).

``schedule=None`` asks :func:`repro.kernels.tuning.choose_schedule` to
pick from the simulated static imbalance of this graph's degree skew.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.sanitizers import make_lock
from repro.graph.csr import CSRGraph
from repro.kernels.baseline import _feature_dim, _feature_dtype
from repro.kernels.operators import (
    finalize_with_graph,
    get_binary_op,
    get_reduce_op,
    init_output,
)
from repro.kernels.scheduling import per_destination_work
from repro.kernels.vectorized import segment_pass

#: Environment override for the default thread count (the CI matrix sets
#: this to run the kernel suite at 1 and 4 threads).
ENV_NUM_THREADS = "REPRO_NUM_THREADS"

#: Cap on the implicit (cpu-count) default; explicit requests are uncapped.
DEFAULT_MAX_THREADS = 8

#: Valid ``schedule=`` names.
SCHEDULES = ("static", "dynamic", "balanced")

# One lazily-created executor per thread count, shared across calls so a
# training loop doesn't pay thread spawn cost every aggregation.
_POOLS: dict = {}
_POOL_LOCK = make_lock("kernels.parallel.pool")


def _get_pool(num_threads: int) -> ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _POOLS.get(num_threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=num_threads, thread_name_prefix="repro-ap"
            )
            _POOLS[num_threads] = pool
        return pool


def _reset_pools_after_fork() -> None:
    # A forked child (the shm execution backend) inherits the registry
    # but not the parent's worker threads; drop the stale executors (and
    # the possibly-held lock) so the child lazily builds fresh ones.
    global _POOL_LOCK
    _POOL_LOCK = make_lock("kernels.parallel.pool")
    _POOLS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def requested_num_threads(num_threads: Optional[int] = None) -> Optional[int]:
    """The *explicitly requested* thread count, or ``None``.

    An explicit ``num_threads`` argument wins; otherwise the
    ``REPRO_NUM_THREADS`` environment variable.  The ``auto`` kernel
    heuristic only goes parallel when this returns > 1 — an unconfigured
    process keeps the single-threaded engine.
    """
    if num_threads is not None:
        n = int(num_threads)
        if n < 1:
            raise ValueError(f"num_threads must be >= 1, got {n}")
        return n
    env = os.environ.get(ENV_NUM_THREADS)
    if env:
        try:
            n = int(env)
        except ValueError:
            raise ValueError(
                f"{ENV_NUM_THREADS} must be an integer, got {env!r}"
            ) from None
        if n < 1:
            raise ValueError(f"{ENV_NUM_THREADS} must be >= 1, got {n}")
        return n
    return None


def resolve_num_threads(num_threads: Optional[int] = None) -> int:
    """Effective thread count for one parallel aggregation.

    Explicit argument, else ``REPRO_NUM_THREADS``, else the machine's
    CPU count capped at :data:`DEFAULT_MAX_THREADS`.
    """
    requested = requested_num_threads(num_threads)
    if requested is not None:
        return requested
    return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_THREADS))


def plan_row_chunks(
    graph: CSRGraph,
    num_threads: int,
    schedule: str = "static",
    chunk_rows: Optional[int] = None,
    work: Optional[np.ndarray] = None,
) -> List[Tuple[int, int]]:
    """Destination-row ranges ``[(lo, hi), ...]`` for one parallel pass.

    The ranges are contiguous, disjoint, cover ``[0, num_vertices)``
    exactly, and are returned in row order (empty ranges are dropped, so
    ``num_threads > num_vertices`` is fine).

    Parameters
    ----------
    schedule:
        ``"static"`` / ``"dynamic"`` / ``"balanced"`` (see module docs).
    chunk_rows:
        Dynamic policy only: rows per work-queue chunk.  Default sizes
        chunks so each thread sees ~8 of them — enough queue depth to
        rebalance, coarse enough to amortize dispatch.
    work:
        Balanced policy only: per-destination work array; defaults to
        :func:`~repro.kernels.scheduling.per_destination_work` (in-degree).
    """
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; available: {list(SCHEDULES)}"
        )
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    n = graph.num_vertices
    if n == 0:
        return []
    if schedule == "dynamic":
        step = (
            max(int(chunk_rows), 1)
            if chunk_rows is not None
            else max(1, -(-n // (num_threads * 8)))
        )
        bounds = np.arange(0, n + step, step, dtype=np.int64)
        bounds[-1] = n
    elif schedule == "balanced":
        if work is None:
            work = per_destination_work(graph)
        cum = np.cumsum(np.asarray(work, dtype=np.float64))
        total = cum[-1] if cum.size else 0.0
        if total <= 0.0:  # no edges: fall back to equal-count ranges
            bounds = np.linspace(0, n, num_threads + 1).astype(np.int64)
        else:
            # Cut after the row whose prefix sum reaches the k-th work
            # quantile (side="right"): a single hub row heavier than a
            # whole quantile becomes its own range instead of dragging
            # the following rows into it.
            targets = total * np.arange(1, num_threads) / num_threads
            cuts = np.searchsorted(cum, targets, side="right")
            bounds = np.concatenate(
                ([0], np.clip(cuts, 0, n), [n])
            ).astype(np.int64)
    else:  # static
        bounds = np.linspace(0, n, num_threads + 1).astype(np.int64)
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def _cached_plan(
    graph: CSRGraph,
    num_threads: int,
    schedule: Optional[str],
    chunk_rows: Optional[int],
) -> List[Tuple[int, int]]:
    """Chunk plan for ``graph``, cached on the graph instance.

    The plan (and the ``schedule=None`` policy choice feeding it) is a
    pure function of the immutable graph plus the call parameters, but
    costs an O(V) work-distribution pass — too much to repay on every
    forward/backward AP of every epoch.  Cached like ``_spmm_reverse``
    in :mod:`repro.nn.functional`; a racing duplicate computation is
    harmless (identical value).
    """
    key = (num_threads, schedule, chunk_rows)
    cache = getattr(graph, "_parallel_plans", None)
    if cache is None:
        cache = {}
        object.__setattr__(graph, "_parallel_plans", cache)
    plan = cache.get(key)
    if plan is None:
        resolved = schedule
        if resolved is None:
            from repro.kernels.tuning import choose_schedule

            resolved = choose_schedule(graph, num_threads)
        plan = plan_row_chunks(graph, num_threads, resolved, chunk_rows=chunk_rows)
        cache[key] = plan
    return plan


def _spmm_rows(
    graph: CSRGraph, f_v: np.ndarray, out: np.ndarray, row_lo: int, row_hi: int
) -> None:
    """``out[lo:hi] += A[lo:hi] @ f_V`` via scipy's compiled CSR kernel.

    The row-sliced analogue of the vectorized engine's SpMM fast path:
    per-row accumulation order equals the full-matrix product's, so the
    chunked result is bit-identical to the unchunked one.
    """
    import scipy.sparse as sp

    indptr = graph.indptr
    elo, ehi = int(indptr[row_lo]), int(indptr[row_hi])
    sub = sp.csr_matrix(
        (
            np.ones(ehi - elo, dtype=np.float64),
            graph.indices[elo:ehi],
            indptr[row_lo : row_hi + 1] - elo,
        ),
        shape=(row_hi - row_lo, graph.num_src),
    )
    out[row_lo:row_hi] += sub @ f_v


def aggregate_parallel(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
    out: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """Thread-parallel AP: ``f_O[v] = ⊕_u (f_V[u] ⊗ f_E[e_uv])``.

    Semantics are identical to
    :func:`~repro.kernels.vectorized.aggregate_vectorized` — including
    the ``out=`` accumulate-without-finalize contract and the single
    :func:`~repro.kernels.operators.finalize_with_graph` epilogue — and
    the output is bit-identical for every operator pair; only wall-clock
    differs.

    Parameters
    ----------
    num_threads:
        Worker count; ``None`` resolves via :func:`resolve_num_threads`
        (explicit arg > ``REPRO_NUM_THREADS`` > capped cpu count).
    schedule:
        Chunking policy (``"static"`` / ``"dynamic"`` / ``"balanced"``);
        ``None`` lets :func:`repro.kernels.tuning.choose_schedule` pick
        from the graph's simulated static imbalance.
    chunk_rows:
        Dynamic policy chunk size (rows); see :func:`plan_row_chunks`.
    """
    bop = get_binary_op(binary_op)
    rop = get_reduce_op(reduce_op)
    nt = resolve_num_threads(num_threads)
    chunks = _cached_plan(graph, nt, schedule, chunk_rows)
    dim = _feature_dim(f_v, f_e)
    dtype = _feature_dtype(f_v, f_e)
    created = out is None
    if created:
        out = init_output(graph.num_vertices, dim, rop, dtype)

    if bop.name == "copylhs" and rop.ufunc is np.add:

        def run(lo: int, hi: int) -> None:
            _spmm_rows(graph, f_v, out, lo, hi)

    else:

        def run(lo: int, hi: int) -> None:
            segment_pass(graph, f_v, f_e, bop, rop, out, lo, hi)

    if nt == 1 or len(chunks) <= 1:
        for lo, hi in chunks:
            run(lo, hi)
    else:
        pool = _get_pool(nt)
        futures = [pool.submit(run, lo, hi) for lo, hi in chunks]
        for future in futures:
            future.result()  # re-raises worker exceptions

    if created:
        finalize_with_graph(out, rop, graph)
    return out
