"""OpenMP thread-scheduling simulator.

The paper parallelizes the AP across destination vertices and observes
(Fig. 4) that *dynamic* scheduling matters for power-law graphs
(OGBN-Products) while being neutral for Reddit.  We reproduce this by
simulating the two OpenMP policies over the real per-destination work
distribution (in-degree × feature dim):

- **static**: destinations are pre-split into ``num_threads`` equal-count
  contiguous ranges; makespan = the heaviest range.
- **dynamic,chunk**: contiguous chunks are handed to the next idle thread
  (list-scheduling), which is exactly OpenMP ``schedule(dynamic, chunk)``.

The resulting *imbalance factor* (makespan ÷ ideal) feeds the single-socket
performance model used by the Fig. 4 benchmark.  The policies are not
just simulated: :mod:`repro.kernels.parallel` executes them for real on
a thread pool (``kernel="parallel"``), and
:func:`repro.kernels.tuning.choose_schedule` uses this simulator to pick
its chunking policy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one scheduling policy."""

    policy: str
    num_threads: int
    chunk: int
    makespan: float
    ideal: float

    @property
    def imbalance(self) -> float:
        """makespan / ideal; 1.0 = perfectly balanced."""
        return self.makespan / self.ideal if self.ideal > 0 else 1.0

    @property
    def efficiency(self) -> float:
        return 1.0 / self.imbalance


def per_destination_work(graph: CSRGraph, feature_dim: int = 1) -> np.ndarray:
    """Work per destination row: in-degree × feature width (flop-ish units)."""
    return graph.in_degrees().astype(np.float64) * float(feature_dim)


def simulate_schedule(
    work: np.ndarray,
    num_threads: int,
    policy: str = "dynamic",
    chunk: int = 64,
) -> ScheduleResult:
    """Simulate an OpenMP ``schedule(policy, chunk)`` over per-item work.

    Parameters
    ----------
    work:
        Per-destination work array (e.g. from :func:`per_destination_work`).
    policy:
        ``"static"`` or ``"dynamic"``.
    chunk:
        Chunk size for the dynamic policy (the paper allocates "a chunk of
        contiguous destination vertices at a time").
    """
    work = np.asarray(work, dtype=np.float64)
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    total = float(work.sum())
    ideal = total / num_threads if total > 0 else 0.0
    if work.size == 0 or total == 0.0:
        return ScheduleResult(policy, num_threads, chunk, 0.0, 0.0)

    if policy == "static":
        # Slice-sum per range rather than reduceat: when num_threads >
        # work.size the equal-count split has duplicate (empty) ranges,
        # which reduceat mis-handles but an empty slice sums correctly.
        splits = np.linspace(0, work.size, num_threads + 1).astype(np.int64)
        loads = np.array(
            [work[splits[t] : splits[t + 1]].sum() for t in range(num_threads)]
        )
        makespan = float(loads.max())
    elif policy == "dynamic":
        chunk = max(int(chunk), 1)
        chunk_loads = np.add.reduceat(work, np.arange(0, work.size, chunk))
        # List scheduling: each chunk goes to the earliest-finishing thread.
        heap = [0.0] * num_threads
        heapq.heapify(heap)
        for load in chunk_loads:
            t = heapq.heappop(heap)
            heapq.heappush(heap, t + float(load))
        makespan = max(heap)
    else:
        raise ValueError(f"unknown policy {policy!r}; use 'static' or 'dynamic'")
    return ScheduleResult(policy, num_threads, chunk, makespan, ideal)


def scheduling_gain(
    graph: CSRGraph,
    num_threads: int = 28,
    feature_dim: int = 1,
    chunk: Optional[int] = None,
) -> float:
    """Speedup of dynamic over static scheduling for this graph's skew.

    ~1.0 for balanced-degree graphs (Reddit), >1 for power-law graphs
    (OGBN-Products) — the Fig. 4 "DS" bar.  ``chunk=None`` sizes chunks so
    each thread sees ~32 of them, the regime OpenMP dynamic needs to
    actually balance.
    """
    work = per_destination_work(graph, feature_dim)
    if chunk is None:
        chunk = max(1, work.size // (num_threads * 32))
    static = simulate_schedule(work, num_threads, policy="static")
    dynamic = simulate_schedule(work, num_threads, policy="dynamic", chunk=chunk)
    if dynamic.makespan == 0:
        return 1.0
    return static.makespan / dynamic.makespan
