"""Global aggregation-primitive timing.

Fig. 2 of the paper breaks per-epoch time into Total vs AP.  Every call
through :func:`repro.kernels.spmm.aggregate` (forward *and* the SpMM
backward, which is also an AP invocation) adds its wall time here; the
trainers snapshot the counter around each epoch.

The counter is mutated from kernel call sites on worker threads while
trainers (and the telemetry registry) snapshot it concurrently, so the
accumulate/read pair is serialized under one lock.  When a request
trace is active on the calling thread, each AP invocation additionally
lands as a ``kernel.ap`` child span on the current request.
"""

from __future__ import annotations

import time
from typing import Tuple

from repro.analysis.sanitizers import make_lock
from repro.obs.trace import current_span


class APTimer:
    """Accumulated AP wall time and call count (thread-safe)."""

    def __init__(self) -> None:
        self._lock = make_lock("kernels.ap_timer")
        self.elapsed_s = 0.0  # guarded-by: _lock
        self.calls = 0  # guarded-by: _lock

    def add(self, seconds: float) -> None:
        with self._lock:
            self.elapsed_s += seconds
            self.calls += 1

    def reset(self) -> None:
        with self._lock:
            self.elapsed_s = 0.0
            self.calls = 0

    def snapshot(self) -> float:
        with self._lock:
            return self.elapsed_s

    def read(self) -> Tuple[float, int]:
        """One consistent ``(elapsed_s, calls)`` pair."""
        with self._lock:
            return self.elapsed_s, self.calls


AP_TIMER = APTimer()


class time_ap:
    """Context manager timing one AP invocation into :data:`AP_TIMER`."""

    __slots__ = ("_t0",)

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._t0
        AP_TIMER.add(elapsed)
        span = current_span()
        if span is not None:
            span.child_complete("kernel.ap", elapsed, cat="kernel")
        return False
