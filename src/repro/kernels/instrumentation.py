"""Global aggregation-primitive timing.

Fig. 2 of the paper breaks per-epoch time into Total vs AP.  Every call
through :func:`repro.kernels.spmm.aggregate` (forward *and* the SpMM
backward, which is also an AP invocation) adds its wall time here; the
trainers snapshot the counter around each epoch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class APTimer:
    """Accumulated AP wall time and call count."""

    elapsed_s: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        self.elapsed_s += seconds
        self.calls += 1

    def reset(self) -> None:
        self.elapsed_s = 0.0
        self.calls = 0

    def snapshot(self) -> float:
        return self.elapsed_s


AP_TIMER = APTimer()


class time_ap:
    """Context manager timing one AP invocation into :data:`AP_TIMER`."""

    __slots__ = ("_t0",)

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        AP_TIMER.add(time.perf_counter() - self._t0)
        return False
