"""SDDMM — sampled dense-dense matrix multiplication.

DGL's second core primitive (paper Section 2.2): "For computations on
edges, the message-passing functionality is formulated as sampled
dense-dense matrix multiplication (SDDMM)".  For each edge ``u -> v`` it
combines the endpoint feature rows:

    f_E[e] = f_src[u] (op) f_dst[v]

with ``op`` in {dot, add, sub, mul} — ``dot`` produces the attention
logits of GAT-style models, the element-wise ops produce edge features.

The kernel is one gather per endpoint plus a fused row-wise op, i.e. it
is memory-bound on the same ``f_V`` gather stream the AP analysis covers.
The ``dot`` path — whose output is a single column — never materializes
the full ``(E, d)`` endpoint gathers: it walks the edges in edge-id-
ordered chunks of :data:`~repro.kernels.reordered.DEFAULT_CHUNK_ROWS`
(the same bucket bound the reordered engine uses), keeping peak scratch
at ``2 * chunk * d`` floats instead of ``2 * E * d``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.reordered import DEFAULT_CHUNK_ROWS

SDDMM_OPS = ("dot", "add", "sub", "mul")


def sddmm(
    graph: CSRGraph,
    f_src: np.ndarray,
    f_dst: Optional[np.ndarray] = None,
    op: str = "dot",
    chunk_edges: Optional[int] = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Edge-wise combination of endpoint features.

    Parameters
    ----------
    graph:
        Destination-major CSR; output is ordered by **edge id** so edge
        feature matrices compose with any CSR ordering.
    f_src:
        ``(num_src, d)`` source-side features.
    f_dst:
        ``(num_vertices, d)`` destination-side features (defaults to
        ``f_src`` for square graphs).
    op:
        ``dot`` -> ``(num_edges, 1)``; element-wise ops -> ``(num_edges, d)``.
    chunk_edges:
        ``dot`` only: edges per pass.  Each chunk gathers, multiplies and
        row-reduces independently (the dot is edge-local), so results are
        byte-identical to the unchunked pass (``chunk_edges=None``) while
        the endpoint gathers stay cache-sized.  Element-wise ops return an
        ``(E, d)`` matrix anyway, so chunking buys them nothing.
    """
    if op not in SDDMM_OPS:
        raise ValueError(f"unknown sddmm op {op!r}; use one of {SDDMM_OPS}")
    if f_dst is None:
        f_dst = f_src
    src, dst, eid = graph.to_coo()
    if op == "dot":
        return _sddmm_dot_chunked(graph, f_src, f_dst, src, dst, eid, chunk_edges)
    lhs = f_src[src]
    rhs = f_dst[dst]
    if op == "add":
        vals = lhs + rhs
    elif op == "sub":
        vals = lhs - rhs
    else:
        vals = lhs * rhs
    out = np.empty_like(vals)
    out[eid] = vals
    return out


def _sddmm_dot_chunked(
    graph: CSRGraph,
    f_src: np.ndarray,
    f_dst: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    eid: np.ndarray,
    chunk_edges: Optional[int],
) -> np.ndarray:
    """Row-wise dot over edge-id-ordered chunks (bounded scratch).

    Processing in *edge-id* order keeps the output writes of every chunk
    contiguous; since the row reduction is edge-local, the chunked result
    is byte-identical to one full pass.
    """
    num_edges = graph.num_edges
    out = np.empty((num_edges, 1), dtype=np.result_type(f_src, f_dst))
    step = max(num_edges, 1) if not chunk_edges else max(int(chunk_edges), 1)
    if graph.has_contiguous_edge_ids:
        # COO rows already are edge-id order: chunk by plain slices.
        for lo in range(0, num_edges, step):
            sl = slice(lo, min(lo + step, num_edges))
            out[sl, 0] = np.sum(f_src[src[sl]] * f_dst[dst[sl]], axis=1)
    else:
        # Positions of the COO rows sorted by edge id, so chunk k computes
        # output rows [lo, hi) directly.
        order = np.empty(num_edges, dtype=eid.dtype)
        order[eid] = np.arange(num_edges, dtype=eid.dtype)
        for lo in range(0, num_edges, step):
            rows = order[lo : min(lo + step, num_edges)]
            out[lo : lo + rows.size, 0] = np.sum(
                f_src[src[rows]] * f_dst[dst[rows]], axis=1
            )
    return out


def edge_softmax(graph: CSRGraph, logits: np.ndarray) -> np.ndarray:
    """Per-destination softmax over incoming-edge logits (GAT attention).

    ``logits`` is ``(num_edges, 1)`` in edge-id order; the result sums to
    1 over each vertex's in-edges.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[1] != 1:
        raise ValueError("edge_softmax expects (num_edges, 1) logits")
    out = np.empty_like(logits, dtype=np.float64)
    indptr, eids = graph.indptr, graph.edge_ids
    for v in range(graph.num_vertices):
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        rows = eids[lo:hi]
        z = logits[rows, 0]
        z = z - z.max()
        e = np.exp(z)
        out[rows, 0] = e / e.sum()
    return out.astype(logits.dtype)


def edge_softmax_vectorized(graph: CSRGraph, logits: np.ndarray) -> np.ndarray:
    """Vectorized :func:`edge_softmax` via segment max/sum (production path)."""
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[1] != 1:
        raise ValueError("edge_softmax expects (num_edges, 1) logits")
    indptr, eids = graph.indptr, graph.edge_ids
    vals = logits[eids, 0].astype(np.float64)  # CSR order
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if not nonempty.any():
        return logits.copy()
    seg_max = np.maximum.reduceat(vals, starts[nonempty])
    # broadcast each segment's max back over its edges
    deg = np.diff(indptr)
    per_edge_max = np.repeat(seg_max, deg[nonempty])
    exp = np.exp(vals - per_edge_max)
    seg_sum = np.add.reduceat(exp, starts[nonempty])
    per_edge_sum = np.repeat(seg_sum, deg[nonempty])
    normalized = exp / per_edge_sum
    out = np.empty_like(logits, dtype=np.float64)
    out[eids, 0] = normalized
    return out.astype(logits.dtype)
