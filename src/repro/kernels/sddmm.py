"""SDDMM — sampled dense-dense matrix multiplication.

DGL's second core primitive (paper Section 2.2): "For computations on
edges, the message-passing functionality is formulated as sampled
dense-dense matrix multiplication (SDDMM)".  For each edge ``u -> v`` it
combines the endpoint feature rows:

    f_E[e] = f_src[u] (op) f_dst[v]

with ``op`` in {dot, add, sub, mul} — ``dot`` produces the attention
logits of GAT-style models, the element-wise ops produce edge features.

The kernel is one gather per endpoint plus a fused row-wise op, i.e. it
is memory-bound on the same ``f_V`` gather stream the AP analysis covers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

SDDMM_OPS = ("dot", "add", "sub", "mul")


def sddmm(
    graph: CSRGraph,
    f_src: np.ndarray,
    f_dst: Optional[np.ndarray] = None,
    op: str = "dot",
) -> np.ndarray:
    """Edge-wise combination of endpoint features.

    Parameters
    ----------
    graph:
        Destination-major CSR; output is ordered by **edge id** so edge
        feature matrices compose with any CSR ordering.
    f_src:
        ``(num_src, d)`` source-side features.
    f_dst:
        ``(num_vertices, d)`` destination-side features (defaults to
        ``f_src`` for square graphs).
    op:
        ``dot`` -> ``(num_edges, 1)``; element-wise ops -> ``(num_edges, d)``.
    """
    if op not in SDDMM_OPS:
        raise ValueError(f"unknown sddmm op {op!r}; use one of {SDDMM_OPS}")
    if f_dst is None:
        f_dst = f_src
    src, dst, eid = graph.to_coo()
    lhs = f_src[src]
    rhs = f_dst[dst]
    if op == "dot":
        vals = np.sum(lhs * rhs, axis=1, keepdims=True)
    elif op == "add":
        vals = lhs + rhs
    elif op == "sub":
        vals = lhs - rhs
    else:
        vals = lhs * rhs
    out = np.empty_like(vals)
    out[eid] = vals
    return out


def edge_softmax(graph: CSRGraph, logits: np.ndarray) -> np.ndarray:
    """Per-destination softmax over incoming-edge logits (GAT attention).

    ``logits`` is ``(num_edges, 1)`` in edge-id order; the result sums to
    1 over each vertex's in-edges.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[1] != 1:
        raise ValueError("edge_softmax expects (num_edges, 1) logits")
    out = np.empty_like(logits, dtype=np.float64)
    indptr, eids = graph.indptr, graph.edge_ids
    for v in range(graph.num_vertices):
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        rows = eids[lo:hi]
        z = logits[rows, 0]
        z = z - z.max()
        e = np.exp(z)
        out[rows, 0] = e / e.sum()
    return out.astype(logits.dtype)


def edge_softmax_vectorized(graph: CSRGraph, logits: np.ndarray) -> np.ndarray:
    """Vectorized :func:`edge_softmax` via segment max/sum (production path)."""
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[1] != 1:
        raise ValueError("edge_softmax expects (num_edges, 1) logits")
    indptr, eids = graph.indptr, graph.edge_ids
    vals = logits[eids, 0].astype(np.float64)  # CSR order
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if not nonempty.any():
        return logits.copy()
    seg_max = np.maximum.reduceat(vals, starts[nonempty])
    # broadcast each segment's max back over its edges
    deg = np.diff(indptr)
    per_edge_max = np.repeat(seg_max, deg[nonempty])
    exp = np.exp(vals - per_edge_max)
    seg_sum = np.add.reduceat(exp, starts[nonempty])
    per_edge_sum = np.repeat(seg_sum, deg[nonempty])
    normalized = exp / per_edge_sum
    out = np.empty_like(logits, dtype=np.float64)
    out[eids, 0] = normalized
    return out.astype(logits.dtype)
